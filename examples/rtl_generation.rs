//! Backend artifact generation: emit the parameterized RTL template, the
//! design-configuration file and the host schedule for a compiled design
//! (the three artifacts the paper's backend hands to Vivado/XRT).
//!
//! ```sh
//! cargo run --release --example rtl_generation
//! ```

use std::fs;

use nsflow::core::NsFlow;
use nsflow::workloads::traces;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = traces::nvsa();
    let design = NsFlow::new().compile(workload.trace)?;

    let dir = std::path::Path::new("target/generated");
    fs::create_dir_all(dir)?;
    fs::write(dir.join("nsflow_design.cfg"), design.config_text())?;
    fs::write(dir.join("nsflow_host_schedule.txt"), design.host_schedule())?;
    fs::write(dir.join("nsflow_top.sv"), design.rtl_text())?;

    println!("generated artifacts in {}:", dir.display());
    for name in [
        "nsflow_design.cfg",
        "nsflow_host_schedule.txt",
        "nsflow_top.sv",
    ] {
        let len = fs::metadata(dir.join(name))?.len();
        println!("  {name:<26} {len:>6} bytes");
    }

    println!("\n--- nsflow_top.sv (head) ---");
    for line in design.rtl_text().lines().take(14) {
        println!("{line}");
    }
    Ok(())
}
