//! Quickstart: compile a neuro-symbolic workload with the NSFlow frontend
//! and run it on the simulated FPGA backend.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nsflow::core::NsFlow;
use nsflow::trace::parser::{parse_trace, ModuleRegistry, ParsePrecision, LISTING1_NVSA};
use nsflow::workloads::traces;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. Ingest a workload ────────────────────────────────────────────
    // Either parse an FX-style trace dump (the paper's Listing 1)…
    let mut registry = ModuleRegistry::new();
    registry.insert("conv2", 64 * 9); // reduction length of the conv module
    let parsed = parse_trace(
        LISTING1_NVSA,
        "nvsa-snippet",
        &registry,
        ParsePrecision::default(),
        8,
    )?;
    println!(
        "parsed Listing 1: {} ops ({} NN, {} VSA, {} SIMD)",
        parsed.ops().len(),
        parsed.nn_nodes().len(),
        parsed.vsa_nodes().len(),
        parsed.simd_nodes().len()
    );

    // …or use one of the built-in workload models.
    let workload = traces::nvsa();
    println!(
        "NVSA workload: {} ops/loop × {} loops, symbolic FLOP share {:.1}%",
        workload.trace.ops().len(),
        workload.trace.loop_count(),
        100.0 * workload.trace.symbolic_flop_fraction()
    );

    // ── 2. Frontend: dataflow graph + two-phase DSE + planning ─────────
    let design = NsFlow::new().compile(workload.trace)?;
    println!(
        "DSE chose AdArray {} ({} PEs), partition {:?}:{:?}, SIMD ×{}",
        design.array(),
        design.array().total_pes(),
        design.mapping().n_l.first().unwrap_or(&0),
        design.mapping().n_v.first().unwrap_or(&0),
        design.config.simd_lanes
    );
    println!(
        "U250 utilization: DSP {:.0}%  LUT {:.0}%  FF {:.0}%  BRAM {:.0}%  URAM {:.0}%",
        design.utilization.dsp_pct,
        design.utilization.lut_pct,
        design.utilization.ff_pct,
        design.utilization.bram_pct,
        design.utilization.uram_pct
    );

    // The emitted artifacts (design config + host schedule).
    println!("\n--- design configuration ---\n{}", design.config_text());
    let schedule = design.host_schedule();
    println!("--- host schedule (first 5 lines) ---");
    for line in schedule.lines().take(5) {
        println!("{line}");
    }

    // ── 3. Backend: deploy and run on the cycle-level simulator ────────
    let report = design.deploy().run();
    println!(
        "\nend-to-end: {} cycles = {:.3} ms @ 272 MHz (array utilization {:.0}%)",
        report.cycles,
        report.seconds * 1e3,
        100.0 * report.array_utilization
    );

    // ── 4. Where did the cycles go? ────────────────────────────────────
    // Re-run the pooled scheduler directly to inspect the timeline:
    // stall taxonomy, NN/VSA/SIMD overlap, and the critical path
    // (export with `to_chrome_trace` for Perfetto).
    let timeline = nsflow::sim::schedule::run_pooled(
        &design.graph,
        design.array(),
        design.mapping(),
        &nsflow::sim::schedule::SimOptions {
            simd_lanes: design.config.simd_lanes,
            ..Default::default()
        },
    );
    let stalls = timeline.stall_totals();
    println!(
        "stalls: dep_wait {} | resource_wait {} | transfer {} cycles",
        stalls.dep_wait, stalls.resource_wait, stalls.transfer_stall
    );
    println!(
        "overlap: >=2 engine classes active {:.0}% of the time; critical path {} ops",
        100.0 * timeline.classes_overlap_cycles() as f64 / timeline.total_cycles().max(1) as f64,
        timeline.critical_path(&design.graph).nodes.len()
    );
    Ok(())
}
