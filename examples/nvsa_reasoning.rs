//! End-to-end neuro-vector-symbolic *reasoning*: solve synthetic Raven's
//! Progressive Matrices with the executable VSA pipeline, at full and at
//! mixed precision.
//!
//! ```sh
//! cargo run --release --example nvsa_reasoning
//! ```

use nsflow::core::par::{available_threads, KernelOptions};
use nsflow::workloads::accuracy::{evaluate, EvalConfig, Precision};
use nsflow::workloads::raven::{generate, TaskParams};
use nsflow::workloads::reasoning::{PipelineConfig, VsaReasoner};
use nsflow::workloads::suites::Suite;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // ── Solve one task step by step ─────────────────────────────────────
    let mut rng = StdRng::seed_from_u64(2025);
    let params = TaskParams::default();
    // The pipeline runs on the spectral kernel engine; `kernels` sizes its
    // worker pools (results are identical at any thread count).
    let pipeline = PipelineConfig {
        ambiguity_std: 0.08,
        kernels: KernelOptions::auto(),
        ..PipelineConfig::default()
    };
    println!(
        "kernel engine: spectral resonator, {} worker thread(s)\n",
        available_threads()
    );
    let reasoner = VsaReasoner::new(params.attributes, params.values, pipeline, &mut rng);

    let task = generate(&params, &mut rng);
    println!("rules per attribute: {:?}", task.rules);
    for (r, row) in task.grid.iter().enumerate() {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(c, cell)| {
                if r == 2 && c == 2 {
                    "  ?  ".to_string()
                } else {
                    format!("{cell:?}")
                }
            })
            .collect();
        println!("  {}", cells.join("  "));
    }

    let solution = reasoner.solve_explained(&task, &mut rng);
    println!("predicted hidden panel: {:?}", solution.predicted);
    println!("true hidden panel:      {:?}", task.answer_panel());
    println!(
        "chose candidate {} (answer {}): {}",
        solution.choice,
        task.answer,
        if solution.choice == task.answer {
            "correct"
        } else {
            "wrong"
        }
    );
    let sims: Vec<String> = solution
        .candidate_sims
        .iter()
        .map(|s| format!("{s:.2}"))
        .collect();
    println!("candidate similarities: [{}]", sims.join(", "));

    // ── Accuracy across precisions (a mini Tab. IV) ─────────────────────
    println!("\nreasoning accuracy, 60 tasks per point:");
    let cfg = EvalConfig { tasks: 60 };
    for suite in [Suite::RavenLike, Suite::PgmLike] {
        print!("  {:<12}", suite.name());
        for precision in [Precision::fp32(), Precision::mixed(), Precision::int4()] {
            let report = evaluate(suite, precision, &cfg, 42);
            print!("  {} {:>5.1}%", precision.label, 100.0 * report.accuracy);
        }
        println!();
    }
}
