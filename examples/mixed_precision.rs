//! Mixed precision end to end: what INT8/INT4 buys in memory and on-chip
//! resources, and what it costs in reasoning accuracy.
//!
//! ```sh
//! cargo run --release --example mixed_precision
//! ```

use nsflow::arch::PrecisionConfig;
use nsflow::core::NsFlow;
use nsflow::tensor::DType;
use nsflow::workloads::accuracy::{evaluate, model_memory_bytes, EvalConfig, Precision};
use nsflow::workloads::suites::Suite;
use nsflow::workloads::traces;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = traces::nvsa();
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);

    println!("NVSA model footprint across precisions:");
    for p in Precision::table4_columns() {
        println!(
            "  {:<5} {:>7.1} MB",
            p.label,
            mb(model_memory_bytes(
                workload.nn_params,
                workload.symbolic_elems,
                p
            ))
        );
    }
    let fp32 = model_memory_bytes(
        workload.nn_params,
        workload.symbolic_elems,
        Precision::fp32(),
    );
    let mp = model_memory_bytes(
        workload.nn_params,
        workload.symbolic_elems,
        Precision::mixed(),
    );
    println!(
        "  → mixed precision saves {:.1}× (paper: 5.8×)",
        fp32 as f64 / mp as f64
    );

    println!("\nreasoning accuracy (RAVEN-like, 60 tasks per point):");
    let cfg = EvalConfig { tasks: 60 };
    for p in Precision::table4_columns() {
        let r = evaluate(Suite::RavenLike, p, &cfg, 7);
        println!("  {:<5} {:>5.1}%", p.label, 100.0 * r.accuracy);
    }

    println!("\nFPGA deployment at each precision pair:");
    for (label, precision) in [
        ("FP16/FP16", PrecisionConfig::uniform(DType::Fp16)),
        ("INT8/INT8", PrecisionConfig::uniform(DType::Int8)),
        ("INT8/INT4 (paper MP)", PrecisionConfig::mixed()),
    ] {
        let design = NsFlow::new()
            .with_precision(precision)
            .compile(traces::nvsa().trace)?;
        println!(
            "  {:<22} {} PEs, LUT {:>4.0}%  FF {:>4.0}%  DSP {:>4.0}%",
            label,
            design.array().total_pes(),
            design.utilization.lut_pct,
            design.utilization.ff_pct,
            design.utilization.dsp_pct,
        );
    }
    Ok(())
}
