//! Inspect the two-phase DSE: how Phase I picks `(H, W, N)` under the PE
//! budget, what Phase II's per-node refinement adds, and how the chosen
//! design compares with naive fixed configurations.
//!
//! ```sh
//! cargo run --release --example design_space_exploration
//! ```

use nsflow::arch::{analytical, ArrayConfig, Mapping};
use nsflow::dse::{explore, phase1, space, DseOptions};
use nsflow::graph::DataflowGraph;
use nsflow::workloads::traces;

fn main() {
    let workload = traces::nvsa();
    let graph = DataflowGraph::from_trace(workload.trace);
    let nn = graph.trace().nn_nodes().len();
    let vsa = graph.trace().vsa_nodes().len();
    println!("NVSA dataflow graph: {nn} NN nodes, {vsa} VSA nodes per loop");
    println!(
        "critical path: {} nodes, {:.1} GMACs",
        graph.critical_path().len(),
        graph.critical_path_macs() as f64 / 1e9
    );

    // ── Design-space accounting (Tab. II) ───────────────────────────────
    let row = space::table2_row(10, nn + vsa, 30, 16, 16, nn);
    println!(
        "\ndesign space: original 10^{:.0} points → DAG 10^{:.1} ({}+ orders of magnitude pruned)",
        row.original_log10,
        row.dag_log10,
        row.reduction_magnitudes() as u64
    );

    // ── Phase I vs Phase II ─────────────────────────────────────────────
    let opts = DseOptions::default();
    let p1 = phase1(&graph, &opts);
    println!(
        "\nPhase I:  {} with static split {}:{} → {} cycles/loop ({} points evaluated)",
        p1.config,
        p1.mapping.n_l.first().unwrap_or(&0),
        p1.mapping.n_v.first().unwrap_or(&0),
        p1.timing.t_loop,
        p1.points_evaluated
    );
    let result = explore(&graph, &opts);
    println!(
        "Phase II: refined mapping → {} cycles/loop ({:.1}% gain, {} sweeps)",
        result.timing.t_loop,
        100.0 * result.phase2_gain,
        result.phase2_sweeps
    );

    // ── Compare against naive fixed designs ─────────────────────────────
    println!("\nnaive fixed configurations at the same PE budget:");
    for (h, w, n) in [(128, 64, 1), (64, 64, 2), (16, 16, 32)] {
        let cfg = ArrayConfig::new(h, w, n).expect("static dims");
        let mapping = if n >= 2 {
            Mapping::uniform(nn, vsa, (n - 1).max(1), 1)
        } else {
            Mapping::sequential(nn, vsa, n)
        };
        let t = analytical::loop_timing(&graph, &cfg, &mapping, 64);
        println!(
            "  {:>3}×{:<3}×{:<2} → {:>12} cycles/loop ({:+.1}% vs DSE)",
            h,
            w,
            n,
            t.t_loop,
            100.0 * (t.t_loop as f64 - result.timing.t_loop as f64) / result.timing.t_loop as f64
        );
    }
}
