//! Scalability: how NSFlow absorbs growing symbolic workloads (the
//! abstract's "only 4× runtime increase when symbolic workloads scale by
//! 150×") and how it compares with a TPU-like systolic array across
//! symbolic intensities.
//!
//! ```sh
//! cargo run --release --example scalability
//! ```

use std::time::Instant;

use nsflow::core::par::KernelOptions;
use nsflow::core::NsFlow;
use nsflow::sim::devices::{DeviceModel, TpuLikeArray};
use nsflow::vsa::engine::SpectralResonator;
use nsflow::vsa::resonator::{Resonator, ResonatorConfig};
use nsflow::vsa::Codebook;
use nsflow::workloads::traces;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("symbolic-scale sweep (NVSA-like, NN part fixed):\n");
    println!(
        "{:>6} {:>14} {:>12} {:>10}",
        "scale", "NSFlow cycles", "vs ×1", "TPU-like"
    );
    let mut base_cycles = None;
    for scale in [1usize, 5, 20, 50, 100, 150] {
        let trace = traces::nvsa_scaled_symbolic(scale);
        let design = NsFlow::new().compile(trace.clone())?;
        let report = design.deploy().run();
        let base = *base_cycles.get_or_insert(report.cycles);
        let tpu = TpuLikeArray::new_128x128().run(&trace);
        println!(
            "{:>5}× {:>14} {:>11.2}× {:>9.1}ms",
            scale,
            report.cycles,
            report.cycles as f64 / base as f64,
            tpu.total_seconds() * 1e3
        );
    }
    println!(
        "\nThe symbolic part rides the AdArray's folded sub-arrays and\n\
         overlaps the fixed NN pipeline, so a 150× symbolic scale-up costs\n\
         only a few × in end-to-end latency (the paper reports ~4×)."
    );

    // ── Functional kernels scale the same way ───────────────────────────
    // The software engine mirrors the hardware story: the reference
    // resonator's O(d²) factorization blows up with dimension while the
    // spectral-cached engine grows O(d·log d).
    println!("\nkernel engine scaling (3-factor resonator factorization):\n");
    println!(
        "{:>6} {:>14} {:>14} {:>9}",
        "dim", "reference", "spectral", "speedup"
    );
    for block_dim in [256usize, 512, 1024] {
        let mut rng = StdRng::seed_from_u64(7);
        let books: Vec<Codebook> = (0..3)
            .map(|_| Codebook::random_unitary(8, 1, block_dim, &mut rng))
            .collect();
        let target = books[0]
            .codeword(1)
            .bind(books[1].codeword(3))?
            .bind(books[2].codeword(5))?;
        let cfg = ResonatorConfig::default();

        let reference = Resonator::new(books.clone())?;
        let start = Instant::now();
        let slow = reference.factorize(&target, cfg)?;
        let ref_s = start.elapsed().as_secs_f64();

        let engine = SpectralResonator::new(books, KernelOptions::auto())?;
        let start = Instant::now();
        let fast = engine.factorize(&target, cfg)?;
        let eng_s = start.elapsed().as_secs_f64();

        assert_eq!(
            fast.indices, slow.indices,
            "engine must match the reference"
        );
        println!(
            "{:>6} {:>12.2}ms {:>12.2}ms {:>8.1}×",
            block_dim,
            ref_s * 1e3,
            eng_s * 1e3,
            ref_s / eng_s
        );
    }
    Ok(())
}
