//! Scalability: how NSFlow absorbs growing symbolic workloads (the
//! abstract's "only 4× runtime increase when symbolic workloads scale by
//! 150×") and how it compares with a TPU-like systolic array across
//! symbolic intensities.
//!
//! ```sh
//! cargo run --release --example scalability
//! ```

use nsflow::core::NsFlow;
use nsflow::sim::devices::{DeviceModel, TpuLikeArray};
use nsflow::workloads::traces;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("symbolic-scale sweep (NVSA-like, NN part fixed):\n");
    println!(
        "{:>6} {:>14} {:>12} {:>10}",
        "scale", "NSFlow cycles", "vs ×1", "TPU-like"
    );
    let mut base_cycles = None;
    for scale in [1usize, 5, 20, 50, 100, 150] {
        let trace = traces::nvsa_scaled_symbolic(scale);
        let design = NsFlow::new().compile(trace.clone())?;
        let report = design.deploy().run();
        let base = *base_cycles.get_or_insert(report.cycles);
        let tpu = TpuLikeArray::new_128x128().run(&trace);
        println!(
            "{:>5}× {:>14} {:>11.2}× {:>9.1}ms",
            scale,
            report.cycles,
            report.cycles as f64 / base as f64,
            tpu.total_seconds() * 1e3
        );
    }
    println!(
        "\nThe symbolic part rides the AdArray's folded sub-arrays and\n\
         overlaps the fixed NN pipeline, so a 150× symbolic scale-up costs\n\
         only a few × in end-to-end latency (the paper reports ~4×)."
    );
    Ok(())
}
