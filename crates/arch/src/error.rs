use std::fmt;

/// Error type for architecture configuration and mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchError {
    /// A configuration dimension was zero.
    ZeroDimension(String),
    /// A mapping requested more sub-arrays than the configuration has.
    SubArrayOverflow {
        /// Sub-arrays requested.
        requested: usize,
        /// Sub-arrays available.
        available: usize,
    },
    /// Mapping vectors do not match the node counts they map.
    MappingLengthMismatch {
        /// What was being mapped (for the message).
        what: String,
        /// Expected length.
        expected: usize,
        /// Provided length.
        actual: usize,
    },
    /// The microsimulator was asked for a problem size it cannot hold
    /// (e.g. circular-convolution dimension exceeding the column height).
    MicrosimCapacity {
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::ZeroDimension(what) => write!(f, "{what} must be nonzero"),
            ArchError::SubArrayOverflow {
                requested,
                available,
            } => {
                write!(
                    f,
                    "mapping requests {requested} sub-arrays but only {available} exist"
                )
            }
            ArchError::MappingLengthMismatch {
                what,
                expected,
                actual,
            } => {
                write!(f, "{what} mapping has length {actual}, expected {expected}")
            }
            ArchError::MicrosimCapacity { message } => {
                write!(f, "microsim capacity exceeded: {message}")
            }
        }
    }
}

impl std::error::Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }

    #[test]
    fn display_nonempty() {
        assert!(!ArchError::ZeroDimension("height".into())
            .to_string()
            .is_empty());
        assert!(!ArchError::SubArrayOverflow {
            requested: 5,
            available: 4
        }
        .to_string()
        .is_empty());
    }
}
