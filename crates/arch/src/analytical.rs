//! The paper's analytical runtime model, eqs. (1)–(5), plus trace-level
//! aggregation and the inter-loop pipelining rule.
//!
//! All results are **cycles** on the AdArray clock; the FPGA crate converts
//! them to wall-clock time at the deployment frequency (272 MHz on U250).

use nsflow_graph::DataflowGraph;
use nsflow_telemetry as telemetry;
use nsflow_trace::OpKind;

use crate::{simd, ArrayConfig, Mapping, VsaMapping};

/// Eq. (1): cycles for NN layer `(m, n, k)` on `n_l` sub-arrays of an
/// `H×W` geometry:
///
/// `t_l = (2H + W + m − 2) · ⌈⌈n/n_l⌉/H⌉ · ⌈k/W⌉`
///
/// # Panics
///
/// Panics in debug builds if `n_l == 0` or any dimension is zero.
#[must_use]
pub fn nn_layer_cycles(cfg: &ArrayConfig, n_l: usize, m: usize, n: usize, k: usize) -> u64 {
    debug_assert!(n_l > 0 && m > 0 && n > 0 && k > 0);
    let h = cfg.height() as u64;
    let w = cfg.width() as u64;
    let tile = 2 * h + w + m as u64 - 2;
    let n_tiles = div_ceil(div_ceil(n as u64, n_l as u64), h);
    let k_tiles = div_ceil(k as u64, w);
    tile * n_tiles * k_tiles
}

/// Eq. (3): spatial mapping of a VSA node — each of the `n_vec` vectors is
/// spread over all PEs of the `n_v` assigned sub-arrays:
///
/// `t = n_vec · ⌈d/(W·H·n_v)⌉ · T`, with `T = 3H + d − 1`.
#[must_use]
pub fn vsa_spatial_cycles(cfg: &ArrayConfig, n_v: usize, n_vec: usize, d: usize) -> u64 {
    debug_assert!(n_v > 0 && n_vec > 0 && d > 0);
    let h = cfg.height() as u64;
    let w = cfg.width() as u64;
    let t = 3 * h + d as u64 - 1;
    (n_vec as u64) * div_ceil(d as u64, w * h * n_v as u64) * t
}

/// Eq. (4): temporal mapping of a VSA node — vectors are distributed
/// across columns, each column streaming whole vectors:
///
/// `t = ⌈n_vec/W⌉ · ⌈d/(H·n_v)⌉ · T`, with `T = 3H + d − 1`.
#[must_use]
pub fn vsa_temporal_cycles(cfg: &ArrayConfig, n_v: usize, n_vec: usize, d: usize) -> u64 {
    debug_assert!(n_v > 0 && n_vec > 0 && d > 0);
    let h = cfg.height() as u64;
    let w = cfg.width() as u64;
    let t = 3 * h + d as u64 - 1;
    div_ceil(n_vec as u64, w) * div_ceil(d as u64, h * n_v as u64) * t
}

/// The faster of the two VSA mappings for one node, and which one it is.
#[must_use]
pub fn vsa_node_cycles(cfg: &ArrayConfig, n_v: usize, n_vec: usize, d: usize) -> (u64, VsaMapping) {
    let spatial = vsa_spatial_cycles(cfg, n_v, n_vec, d);
    let temporal = vsa_temporal_cycles(cfg, n_v, n_vec, d);
    if temporal <= spatial {
        (temporal, VsaMapping::Temporal)
    } else {
        (spatial, VsaMapping::Spatial)
    }
}

/// Eq. (1) for one trace node: cycles of an array-class NN op under
/// `n_assigned` sub-arrays, or `None` when the op is not a GEMM (it never
/// runs on the array). Only the sub-array geometry `(H, W)` of `cfg`
/// matters — the result is independent of `cfg.n_subarrays()`, which is
/// what lets the DSE tabulate node cycles once per `(H, W)` and reuse
/// them across every sub-array count.
#[must_use]
pub fn nn_op_cycles(cfg: &ArrayConfig, n_assigned: usize, kind: &OpKind) -> Option<u64> {
    match *kind {
        OpKind::Gemm { m, n, k } => Some(nn_layer_cycles(cfg, n_assigned, m, n, k)),
        _ => None,
    }
}

/// Eqs. (3)+(4) for one trace node: `(spatial, temporal)` cycles of an
/// array-class VSA op under `n_assigned` sub-arrays, or `None` when the
/// op is not a VSA convolution. Like [`nn_op_cycles`], independent of
/// `cfg.n_subarrays()`.
#[must_use]
pub fn vsa_op_cycle_pair(
    cfg: &ArrayConfig,
    n_assigned: usize,
    kind: &OpKind,
) -> Option<(u64, u64)> {
    match *kind {
        OpKind::VsaConv { n_vec, dim } => Some((
            vsa_spatial_cycles(cfg, n_assigned, n_vec, dim),
            vsa_temporal_cycles(cfg, n_assigned, n_vec, dim),
        )),
        _ => None,
    }
}

/// SIMD-unit cycles of one dataflow loop. This term depends only on the
/// trace and the lane count — not on the array configuration or the
/// mapping — so sweeps should compute it **once** and reuse it for every
/// design point (the DSE evaluation engine does).
#[must_use]
pub fn simd_loop_cycles(graph: &DataflowGraph, simd_lanes: usize) -> u64 {
    graph
        .trace()
        .ops()
        .iter()
        .filter(|op| op.kind().is_simd_op())
        .map(|op| simd::op_cycles(op.kind(), simd_lanes))
        .sum()
}

/// Timing of one dataflow loop under a given configuration and mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopTiming {
    /// Eq. (2): total NN cycles of the loop.
    pub t_nn: u64,
    /// Eq. (5): total VSA cycles of the loop (best consistent mapping).
    pub t_vsa: u64,
    /// SIMD-unit cycles of the loop.
    pub t_simd: u64,
    /// Cycles of one loop in the chosen mode (max of partitions when
    /// parallel; sum when sequential), with SIMD overlap applied.
    pub t_loop: u64,
    /// Whether the mapping ran partitions concurrently.
    pub parallel: bool,
}

/// Evaluates eqs. (2) and (5) plus the SIMD model over a dataflow graph.
///
/// In parallel mode the loop time is `max(t_nn, t_vsa, t_simd)` — NN and
/// VSA partitions run concurrently on disjoint sub-arrays and the SIMD
/// unit is sized so its latency hides behind them (Sec. V-C). In
/// sequential mode the whole array is time-shared: `t_nn + t_vsa` plus any
/// SIMD excess.
///
/// # Panics
///
/// Panics if `mapping` does not match the graph's NN/VSA node counts
/// (call [`Mapping::validate`] first).
#[must_use]
pub fn loop_timing(
    graph: &DataflowGraph,
    cfg: &ArrayConfig,
    mapping: &Mapping,
    simd_lanes: usize,
) -> LoopTiming {
    let trace = graph.trace();
    let nn_nodes = trace.nn_nodes();
    let vsa_nodes = trace.vsa_nodes();
    assert_eq!(mapping.n_l.len(), nn_nodes.len(), "NN mapping length");
    assert_eq!(mapping.n_v.len(), vsa_nodes.len(), "VSA mapping length");

    let mut t_nn = 0u64;
    for (idx, id) in nn_nodes.iter().enumerate() {
        t_nn += nn_op_cycles(cfg, mapping.n_l[idx], trace.op(*id).kind()).unwrap_or(0);
    }

    // Eq. (5): the whole loop commits to one mapping family (the min of
    // the two sums), matching the paper's formulation.
    let mut sum_spatial = 0u64;
    let mut sum_temporal = 0u64;
    for (idx, id) in vsa_nodes.iter().enumerate() {
        if let Some((s, t)) = vsa_op_cycle_pair(cfg, mapping.n_v[idx], trace.op(*id).kind()) {
            sum_spatial += s;
            sum_temporal += t;
        }
    }
    let t_vsa = sum_spatial.min(sum_temporal);

    let t_simd = simd_loop_cycles(graph, simd_lanes);

    let t_loop = if mapping.parallel {
        t_nn.max(t_vsa).max(t_simd)
    } else {
        (t_nn + t_vsa).max(t_simd)
    };
    telemetry::counter!("arch.timing_evals").incr();
    telemetry::counter!("arch.cycles.nn").add(t_nn);
    telemetry::counter!("arch.cycles.vsa").add(t_vsa);
    telemetry::counter!("arch.cycles.simd").add(t_simd);
    LoopTiming {
        t_nn,
        t_vsa,
        t_simd,
        t_loop,
        parallel: mapping.parallel,
    }
}

/// Total workload cycles across all loop iterations with the inter-loop
/// pipelining rule (Sec. V-B step ③): in parallel mode, loop `i+1`'s NN
/// phase starts as soon as loop `i`'s NN partition is free, so the
/// steady-state period is `t_loop` with an NN prologue and VSA epilogue;
/// sequentially the loops simply concatenate.
#[must_use]
pub fn workload_cycles(timing: &LoopTiming, loop_count: usize) -> u64 {
    debug_assert!(loop_count > 0);
    let l = loop_count as u64;
    if timing.parallel && loop_count > 1 {
        // Prologue: the first loop's NN phase cannot overlap anything.
        // Steady state: one t_loop per iteration. Epilogue: the last
        // loop's VSA tail beyond the overlapped window is already inside
        // its own t_loop, so total = t_nn + L·t_loop − overlap of first
        // NN. A simple, consistent pipeline bound:
        timing.t_nn + l * timing.t_loop.max(1) - timing.t_nn.min(timing.t_loop)
    } else {
        l * timing.t_loop.max(1)
    }
}

const fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, TraceBuilder};

    fn cfg(h: usize, w: usize, n: usize) -> ArrayConfig {
        ArrayConfig::new(h, w, n).unwrap()
    }

    #[test]
    fn eq1_single_tile() {
        // n ≤ H and k ≤ W on one sub-array: exactly one tile.
        let c = cfg(32, 16, 1);
        let cycles = nn_layer_cycles(&c, 1, 100, 32, 16);
        assert_eq!(cycles, 2 * 32 + 16 + 100 - 2);
    }

    #[test]
    fn eq1_tiling_multiplies() {
        let c = cfg(32, 16, 1);
        let one = nn_layer_cycles(&c, 1, 100, 32, 16);
        // Doubling n doubles the n-tile count; doubling k doubles k-tiles.
        assert_eq!(nn_layer_cycles(&c, 1, 100, 64, 16), 2 * one);
        assert_eq!(nn_layer_cycles(&c, 1, 100, 32, 32), 2 * one);
        assert_eq!(nn_layer_cycles(&c, 1, 100, 64, 32), 4 * one);
    }

    #[test]
    fn eq1_more_subarrays_reduce_cycles() {
        let c = cfg(16, 16, 8);
        let t1 = nn_layer_cycles(&c, 1, 500, 256, 64);
        let t4 = nn_layer_cycles(&c, 4, 500, 256, 64);
        assert!(t4 < t1, "more sub-arrays must not be slower: {t4} vs {t1}");
        // With n=256, H=16: 16 n-tiles at n_l=1, 4 at n_l=4 — exactly 4×.
        assert_eq!(t1, 4 * t4);
    }

    #[test]
    fn eq3_eq4_base_latency_is_t() {
        // One vector, d ≤ H, single sub-array: both mappings take exactly
        // T = 3H + d − 1.
        let c = cfg(32, 16, 1);
        let t = (3 * 32 + 24 - 1) as u64;
        assert_eq!(vsa_spatial_cycles(&c, 1, 1, 24), t);
        assert_eq!(vsa_temporal_cycles(&c, 1, 1, 24), t);
    }

    #[test]
    fn temporal_wins_for_many_vectors() {
        // Many short vectors: temporal spreads them over W columns.
        let c = cfg(32, 16, 1);
        let (cycles, mapping) = vsa_node_cycles(&c, 1, 64, 32);
        assert_eq!(mapping, VsaMapping::Temporal);
        assert_eq!(cycles, vsa_temporal_cycles(&c, 1, 64, 32));
    }

    #[test]
    fn spatial_wins_for_one_huge_vector() {
        // A single vector with d ≫ H: spatial uses all W·H·n_v PEs for it.
        let c = cfg(8, 16, 1);
        let spatial = vsa_spatial_cycles(&c, 1, 1, 4096);
        let temporal = vsa_temporal_cycles(&c, 1, 1, 4096);
        assert!(spatial < temporal, "{spatial} !< {temporal}");
        assert_eq!(vsa_node_cycles(&c, 1, 1, 4096).1, VsaMapping::Spatial);
    }

    fn small_graph() -> DataflowGraph {
        let mut b = TraceBuilder::new("t");
        let c1 = b.push(
            "conv",
            OpKind::Gemm {
                m: 256,
                n: 64,
                k: 64,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let _v = b.push(
            "bind",
            OpKind::VsaConv { n_vec: 8, dim: 128 },
            Domain::Symbolic,
            DType::Int4,
            &[c1],
        );
        DataflowGraph::from_trace(b.finish(4).unwrap())
    }

    #[test]
    fn loop_timing_parallel_takes_max() {
        let g = small_graph();
        let c = cfg(16, 16, 4);
        let m = Mapping::uniform(1, 1, 3, 1);
        let t = loop_timing(&g, &c, &m, 64);
        assert_eq!(t.t_loop, t.t_nn.max(t.t_vsa).max(t.t_simd));
        assert!(t.parallel);
    }

    #[test]
    fn loop_timing_sequential_sums() {
        let g = small_graph();
        let c = cfg(16, 16, 4);
        let m = Mapping::sequential(1, 1, 4);
        let t = loop_timing(&g, &c, &m, 64);
        assert_eq!(t.t_loop, (t.t_nn + t.t_vsa).max(t.t_simd));
        assert!(!t.parallel);
    }

    #[test]
    fn sequential_uses_whole_array_per_node() {
        let g = small_graph();
        let c = cfg(16, 16, 4);
        let seq = loop_timing(&g, &c, &Mapping::sequential(1, 1, 4), 64);
        let par = loop_timing(&g, &c, &Mapping::uniform(1, 1, 3, 1), 64);
        // Sequential t_nn is evaluated with all 4 sub-arrays, so it is no
        // slower than the parallel partition's 3-sub-array NN time.
        assert!(seq.t_nn <= par.t_nn);
    }

    #[test]
    fn workload_cycles_pipeline_beats_serial_concat() {
        let g = small_graph();
        let c = cfg(16, 16, 4);
        let par = loop_timing(&g, &c, &Mapping::uniform(1, 1, 3, 1), 64);
        let piped = workload_cycles(&par, 8);
        let serial_concat = 8 * (par.t_nn + par.t_vsa);
        assert!(piped < serial_concat, "{piped} !< {serial_concat}");
    }

    #[test]
    fn workload_cycles_single_loop_is_loop_time() {
        let g = small_graph();
        let c = cfg(16, 16, 4);
        let t = loop_timing(&g, &c, &Mapping::uniform(1, 1, 3, 1), 64);
        assert_eq!(workload_cycles(&t, 1), t.t_loop);
    }

    #[test]
    fn workload_cycles_single_loop_sequential_is_loop_time() {
        // loop_count = 1 takes the non-pipelined branch in both modes.
        let g = small_graph();
        let c = cfg(16, 16, 4);
        let t = loop_timing(&g, &c, &Mapping::sequential(1, 1, 4), 64);
        assert_eq!(workload_cycles(&t, 1), t.t_loop);
    }

    #[test]
    fn model_timings_never_trip_the_prologue_guard() {
        // For any timing produced by `loop_timing`, parallel t_loop is the
        // max over phases, so t_nn ≤ t_loop and the pipeline bound
        // simplifies to exactly L·t_loop — the prologue term cancels.
        let g = small_graph();
        let c = cfg(16, 16, 4);
        for nl in 1..4 {
            let t = loop_timing(&g, &c, &Mapping::uniform(1, 1, nl, 4 - nl), 64);
            assert!(t.t_nn <= t.t_loop, "t_nn must be bounded by t_loop");
            assert_eq!(workload_cycles(&t, 8), 8 * t.t_loop);
        }
    }

    #[test]
    fn prologue_guard_caps_hand_made_timings() {
        // A hand-constructed timing with t_nn > t_loop (impossible from
        // `loop_timing`, which takes the max) must not underflow: the
        // `min(t_nn, t_loop)` guard clamps the overlapped prologue.
        let t = LoopTiming {
            t_nn: 100,
            t_vsa: 5,
            t_simd: 0,
            t_loop: 10,
            parallel: true,
        };
        assert_eq!(workload_cycles(&t, 4), 100 + 4 * 10 - 10);
    }

    #[test]
    fn sequential_and_parallel_converge_when_simd_dominates() {
        // Crossover: once t_simd exceeds t_nn + t_vsa, both modes bottom
        // out at L·t_simd and the mode choice stops mattering.
        let par = LoopTiming {
            t_nn: 10,
            t_vsa: 20,
            t_simd: 500,
            t_loop: 500,
            parallel: true,
        };
        let seq = LoopTiming {
            t_nn: 10,
            t_vsa: 20,
            t_simd: 500,
            t_loop: 500,
            parallel: false,
        };
        assert_eq!(workload_cycles(&par, 6), workload_cycles(&seq, 6));
    }

    #[test]
    fn parallel_pipelining_beats_sequential_above_crossover() {
        // Crossover the other way: with array phases dominating, the
        // pipelined parallel schedule strictly beats sequential
        // concatenation of the same phase times.
        let par = LoopTiming {
            t_nn: 100,
            t_vsa: 80,
            t_simd: 1,
            t_loop: 100,
            parallel: true,
        };
        let seq = LoopTiming {
            t_nn: 100,
            t_vsa: 80,
            t_simd: 1,
            t_loop: 180,
            parallel: false,
        };
        assert!(workload_cycles(&par, 8) < workload_cycles(&seq, 8));
    }

    #[test]
    fn per_node_helpers_match_direct_equations() {
        let c = cfg(16, 8, 4);
        let gemm = OpKind::Gemm {
            m: 300,
            n: 48,
            k: 96,
        };
        let conv = OpKind::VsaConv {
            n_vec: 24,
            dim: 768,
        };
        assert_eq!(
            nn_op_cycles(&c, 3, &gemm),
            Some(nn_layer_cycles(&c, 3, 300, 48, 96))
        );
        assert_eq!(nn_op_cycles(&c, 3, &conv), None);
        assert_eq!(
            vsa_op_cycle_pair(&c, 2, &conv),
            Some((
                vsa_spatial_cycles(&c, 2, 24, 768),
                vsa_temporal_cycles(&c, 2, 24, 768)
            ))
        );
        assert_eq!(vsa_op_cycle_pair(&c, 2, &gemm), None);
    }

    #[test]
    fn node_cycles_ignore_subarray_count_of_config() {
        // The tabulation contract: per-node cycles depend on (H, W) and
        // the assigned count only, never on cfg.n_subarrays().
        let gemm = OpKind::Gemm {
            m: 300,
            n: 48,
            k: 96,
        };
        let conv = OpKind::VsaConv {
            n_vec: 24,
            dim: 768,
        };
        for n_cfg in [1, 4, 16] {
            let c = cfg(16, 8, n_cfg);
            assert_eq!(
                nn_op_cycles(&c, 2, &gemm),
                nn_op_cycles(&cfg(16, 8, 1), 2, &gemm)
            );
            assert_eq!(
                vsa_op_cycle_pair(&c, 2, &conv),
                vsa_op_cycle_pair(&cfg(16, 8, 1), 2, &conv)
            );
        }
    }

    #[test]
    fn simd_loop_cycles_matches_loop_timing_term() {
        let g = small_graph();
        let c = cfg(16, 16, 4);
        let t = loop_timing(&g, &c, &Mapping::uniform(1, 1, 3, 1), 64);
        assert_eq!(simd_loop_cycles(&g, 64), t.t_simd);
        // And it is mapping-independent.
        let t2 = loop_timing(&g, &c, &Mapping::sequential(1, 1, 4), 64);
        assert_eq!(t.t_simd, t2.t_simd);
    }
}
