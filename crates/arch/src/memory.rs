//! Re-organizable on-chip memory model (paper Sec. IV-C).
//!
//! Three double-buffered blocks plus a cache:
//!
//! - `Mem_A` is partitioned into `Mem_A1` (NN filters) and `Mem_A2` (VSA
//!   vectors) so both sub-array partitions can load concurrently; the two
//!   chunks merge at runtime when only one kind of op executes,
//! - `Mem_B` is the IFMAP buffer feeding the horizontal inputs (NN only),
//! - `Mem_C` collects array and SIMD outputs,
//! - the cache buffers intermediate results for all three blocks.
//!
//! Sizes are planned from the dataflow graph's
//! [`MemoryRequirements`]; this module
//! also provides the double-buffered transfer/stall model the scheduler
//! uses.
//!
//! [`MemoryRequirements`]: nsflow_graph::MemoryRequirements

use nsflow_graph::MemoryRequirements;

/// Planned on-chip memory sizes, in bytes (single buffer; the hardware
/// instantiates each block twice for double buffering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryPlan {
    /// NN-filter chunk of `Mem_A`.
    pub mem_a1: usize,
    /// VSA-vector chunk of `Mem_A`.
    pub mem_a2: usize,
    /// IFMAP buffer.
    pub mem_b: usize,
    /// Output buffer.
    pub mem_c: usize,
    /// URAM intermediate cache.
    pub cache: usize,
}

impl MemoryPlan {
    /// Plans block sizes from graph-level requirements, following the
    /// paper's rules: `Mem_A1 = max(filter in R_l)`, `Mem_A2 = max(node in
    /// R_v)`, `Mem_B = max NN IFMAP tile`, `Mem_C = max output`, cache
    /// `= 2·(Mem_A + Mem_B + Mem_C)`.
    #[must_use]
    pub fn from_requirements(req: &MemoryRequirements) -> Self {
        MemoryPlan {
            mem_a1: req.max_nn_filter_bytes,
            mem_a2: req.max_vsa_node_bytes,
            mem_b: req.max_nn_input_bytes,
            mem_c: req.max_output_bytes,
            cache: req.cache_bytes(),
        }
    }

    /// Capacity of `Mem_A` when its chunks are merged for non-parallel
    /// phases.
    #[must_use]
    pub fn merged_mem_a(&self) -> usize {
        self.mem_a1 + self.mem_a2
    }

    /// Total BRAM-backed bytes (A1+A2+B+C, double-buffered).
    #[must_use]
    pub fn bram_bytes(&self) -> usize {
        2 * (self.mem_a1 + self.mem_a2 + self.mem_b + self.mem_c)
    }

    /// Total URAM-backed bytes (the cache).
    #[must_use]
    pub fn uram_bytes(&self) -> usize {
        self.cache
    }

    /// Total on-chip bytes.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.bram_bytes() + self.uram_bytes()
    }
}

/// Off-chip transfer timing under double buffering.
///
/// A double-buffered block overlaps the next tile's load with the current
/// tile's compute: the visible stall is the amount by which the transfer
/// exceeds the compute window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Sustained off-chip bandwidth in bytes per cycle (e.g. a 512-bit AXI
    /// bus at array clock = 64 B/cycle).
    pub bytes_per_cycle: f64,
    /// Whether the memory blocks are double-buffered (the NSFlow design's
    /// ping-pong `Mem_A/B/C`). When false, every transfer serializes with
    /// compute — the ablation baseline without the re-organizable memory.
    pub double_buffered: bool,
}

impl TransferModel {
    /// Creates a double-buffered transfer model.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    #[must_use]
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        TransferModel {
            bytes_per_cycle,
            double_buffered: true,
        }
    }

    /// Creates a single-buffered model (transfers serialize with compute).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    #[must_use]
    pub fn single_buffered(bytes_per_cycle: f64) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        TransferModel {
            bytes_per_cycle,
            double_buffered: false,
        }
    }

    /// Raw cycles to move `bytes` off-chip ↔ on-chip.
    #[must_use]
    pub fn transfer_cycles(&self, bytes: usize) -> u64 {
        (bytes as f64 / self.bytes_per_cycle).ceil() as u64
    }

    /// Visible stall when a transfer of `bytes` accompanies
    /// `compute_cycles` of work: hidden behind compute when
    /// double-buffered, fully serialized otherwise.
    #[must_use]
    pub fn stall_cycles(&self, bytes: usize, compute_cycles: u64) -> u64 {
        let t = self.transfer_cycles(bytes);
        if self.double_buffered {
            t.saturating_sub(compute_cycles)
        } else {
            t
        }
    }
}

impl Default for TransferModel {
    fn default() -> Self {
        // 512-bit AXI @ array clock, double-buffered.
        TransferModel {
            bytes_per_cycle: 64.0,
            double_buffered: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> MemoryRequirements {
        MemoryRequirements {
            max_nn_filter_bytes: 1000,
            max_vsa_node_bytes: 500,
            max_nn_input_bytes: 2000,
            max_output_bytes: 300,
            total_bytes_per_loop: 10_000,
        }
    }

    #[test]
    fn plan_follows_paper_rules() {
        let p = MemoryPlan::from_requirements(&req());
        assert_eq!(p.mem_a1, 1000);
        assert_eq!(p.mem_a2, 500);
        assert_eq!(p.mem_b, 2000);
        assert_eq!(p.mem_c, 300);
        assert_eq!(p.cache, 2 * (1500 + 2000 + 300));
        assert_eq!(p.merged_mem_a(), 1500);
    }

    #[test]
    fn bram_bytes_double_buffer() {
        let p = MemoryPlan::from_requirements(&req());
        assert_eq!(p.bram_bytes(), 2 * (1000 + 500 + 2000 + 300));
        assert_eq!(p.total_bytes(), p.bram_bytes() + p.cache);
    }

    #[test]
    fn transfer_cycles_round_up() {
        let t = TransferModel::new(64.0);
        assert_eq!(t.transfer_cycles(0), 0);
        assert_eq!(t.transfer_cycles(1), 1);
        assert_eq!(t.transfer_cycles(64), 1);
        assert_eq!(t.transfer_cycles(65), 2);
    }

    #[test]
    fn double_buffering_hides_transfers_behind_compute() {
        let t = TransferModel::new(64.0);
        // 6400 bytes = 100 cycles of transfer.
        assert_eq!(t.stall_cycles(6400, 100), 0);
        assert_eq!(t.stall_cycles(6400, 60), 40);
        assert_eq!(t.stall_cycles(6400, 0), 100);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = TransferModel::new(0.0);
    }

    #[test]
    fn single_buffering_pays_the_full_transfer() {
        let db = TransferModel::new(64.0);
        let sb = TransferModel::single_buffered(64.0);
        // 6400 bytes = 100 cycles of transfer.
        assert_eq!(db.stall_cycles(6400, 100), 0);
        assert_eq!(sb.stall_cycles(6400, 100), 100);
        assert_eq!(sb.stall_cycles(6400, 0), db.stall_cycles(6400, 0));
    }
}
