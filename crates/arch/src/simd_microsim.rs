//! Cycle-level microsimulator for the custom SIMD unit.
//!
//! Mirrors [`crate::simd`]'s analytical cost model with an executable
//! lane-and-tree pipeline: operands stream through `lanes` ALUs in beats,
//! reductions drain through a `⌈log₂ lanes⌉`-stage adder tree. Tests pin
//! the microsimulated cycle counts to [`crate::simd::op_cycles`] and the
//! functional outputs to scalar references — the same verification pattern
//! the AdArray microsim applies to eqs. (1)–(5).

use nsflow_trace::{EltFunc, ReduceFunc};

use crate::simd::{elt_func_cost, tree_depth};

/// Result of a SIMD microsimulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimdSimResult {
    /// Output values (one per input element for element-wise ops; a single
    /// scalar for reductions).
    pub outputs: Vec<f32>,
    /// Total pipeline cycles.
    pub cycles: u64,
}

/// Executes an element-wise op over `inputs` on a `lanes`-wide unit.
///
/// # Panics
///
/// Panics if `lanes == 0` or `inputs` is empty.
#[must_use]
pub fn elementwise(inputs: &[f32], func: EltFunc, lanes: usize) -> SimdSimResult {
    assert!(lanes > 0, "lane count must be positive");
    assert!(!inputs.is_empty(), "need at least one element");
    let mut outputs = Vec::with_capacity(inputs.len());
    let mut cycles = 0u64;
    for beat in inputs.chunks(lanes) {
        cycles += elt_func_cost(func);
        // Softmax normalizes within the beat (the unit's per-group
        // normalizer); other functions are pure per-lane maps.
        if func == EltFunc::Softmax {
            let max = beat.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = beat.iter().map(|&x| (x - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            outputs.extend(exps.into_iter().map(|e| e / sum));
        } else {
            outputs.extend(beat.iter().map(|&x| apply(func, x)));
        }
    }
    SimdSimResult { outputs, cycles }
}

/// Executes a reduction over `inputs` on a `lanes`-wide unit with its
/// adder tree.
///
/// # Panics
///
/// Panics if `lanes == 0` or `inputs` is empty.
#[must_use]
pub fn reduce(inputs: &[f32], func: ReduceFunc, lanes: usize) -> SimdSimResult {
    assert!(lanes > 0, "lane count must be positive");
    assert!(!inputs.is_empty(), "need at least one element");
    // Beat phase: per-lane partial accumulators.
    let mut partials = vec![init_value(func); lanes];
    let mut cycles = 0u64;
    let per_beat = match func {
        ReduceFunc::Norm => 2,
        _ => 1,
    };
    for beat in inputs.chunks(lanes) {
        cycles += per_beat;
        for (lane, &x) in beat.iter().enumerate() {
            partials[lane] = accumulate(func, partials[lane], x);
        }
    }
    // Tree phase: log2(lanes) combining stages.
    let mut level = partials;
    for _ in 0..tree_depth(lanes) {
        cycles += 1;
        level = level
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    combine(func, pair[0], pair[1])
                } else {
                    pair[0]
                }
            })
            .collect();
    }
    let raw = level[0];
    let result = match func {
        ReduceFunc::Mean => raw / inputs.len() as f32,
        ReduceFunc::Norm => raw.sqrt(),
        _ => raw,
    };
    SimdSimResult {
        outputs: vec![result],
        cycles,
    }
}

fn apply(func: EltFunc, x: f32) -> f32 {
    match func {
        EltFunc::Relu => x.max(0.0),
        EltFunc::Clamp => x.clamp(0.0, 1.0),
        EltFunc::Transcendental => x.tanh(),
        EltFunc::Div => x * 0.5, // divide by a broadcast scalar of 2
        EltFunc::Add => x + 1.0, // add a broadcast scalar of 1
        EltFunc::Mul | EltFunc::Affine => x * 2.0,
        EltFunc::PoolMax => x,
        _ => x,
    }
}

fn init_value(func: ReduceFunc) -> f32 {
    match func {
        ReduceFunc::Max => f32::NEG_INFINITY,
        _ => 0.0,
    }
}

fn accumulate(func: ReduceFunc, acc: f32, x: f32) -> f32 {
    match func {
        ReduceFunc::Sum | ReduceFunc::Mean => acc + x,
        ReduceFunc::Max => acc.max(x),
        ReduceFunc::Norm => acc + x * x,
        _ => acc + x,
    }
}

fn combine(func: ReduceFunc, a: f32, b: f32) -> f32 {
    match func {
        ReduceFunc::Max => a.max(b),
        _ => a + b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd;
    use nsflow_trace::OpKind;

    #[test]
    fn elementwise_cycles_match_analytical_model() {
        for (elems, lanes, func) in [
            (100usize, 16usize, EltFunc::Relu),
            (1024, 64, EltFunc::Softmax),
            (7, 8, EltFunc::Div),
            (65, 64, EltFunc::Mul),
        ] {
            let inputs: Vec<f32> = (0..elems).map(|i| (i as f32 - 10.0) / 7.0).collect();
            let sim = elementwise(&inputs, func, lanes);
            let model = simd::op_cycles(&OpKind::Elementwise { elems, func }, lanes);
            assert_eq!(sim.cycles, model, "elems={elems} lanes={lanes} {func:?}");
            assert_eq!(sim.outputs.len(), elems);
        }
    }

    #[test]
    fn reduce_cycles_match_analytical_model() {
        for (elems, lanes, func) in [
            (100usize, 16usize, ReduceFunc::Sum),
            (64, 64, ReduceFunc::Max),
            (1000, 32, ReduceFunc::Norm),
            (5, 8, ReduceFunc::Mean),
        ] {
            let inputs: Vec<f32> = (0..elems).map(|i| (i as f32 - 10.0) / 7.0).collect();
            let sim = reduce(&inputs, func, lanes);
            let model = simd::op_cycles(&OpKind::Reduce { elems, func }, lanes);
            assert_eq!(sim.cycles, model, "elems={elems} lanes={lanes} {func:?}");
        }
    }

    #[test]
    fn reduce_sum_is_numerically_correct() {
        let inputs: Vec<f32> = (1..=100).map(|i| i as f32).collect();
        let sim = reduce(&inputs, ReduceFunc::Sum, 16);
        assert!((sim.outputs[0] - 5050.0).abs() < 1e-2);
    }

    #[test]
    fn reduce_max_and_mean_and_norm() {
        let inputs = vec![3.0, -1.0, 4.0, 1.0, -5.0, 9.0, 2.0, 6.0];
        assert_eq!(reduce(&inputs, ReduceFunc::Max, 4).outputs[0], 9.0);
        assert!((reduce(&inputs, ReduceFunc::Mean, 4).outputs[0] - 2.375).abs() < 1e-6);
        let norm = reduce(&inputs, ReduceFunc::Norm, 4).outputs[0];
        let expected: f32 = inputs.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - expected).abs() < 1e-4);
    }

    #[test]
    fn relu_clamps_negative_lanes() {
        let sim = elementwise(&[-2.0, 0.5, -0.1, 3.0], EltFunc::Relu, 2);
        assert_eq!(sim.outputs, vec![0.0, 0.5, 0.0, 3.0]);
    }

    #[test]
    fn softmax_beats_are_normalized() {
        let sim = elementwise(&[1.0, 2.0, 3.0, 4.0], EltFunc::Softmax, 4);
        let total: f32 = sim.outputs.iter().sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!(sim.outputs[3] > sim.outputs[0]);
    }

    #[test]
    #[should_panic(expected = "need at least one element")]
    fn empty_input_rejected() {
        let _ = elementwise(&[], EltFunc::Relu, 4);
    }
}
