use std::fmt;

use nsflow_tensor::DType;

use crate::{ArchError, Result};

/// AdArray hardware configuration: `N` sub-arrays of `H×W` PEs each
/// (the `(H, W, N)` triple the two-phase DSE searches for).
///
/// # Examples
///
/// ```
/// use nsflow_arch::ArrayConfig;
/// // The paper's NVSA deployment: 32×16×16 (Tab. III).
/// let cfg = ArrayConfig::new(32, 16, 16)?;
/// assert_eq!(cfg.total_pes(), 8192);
/// # Ok::<(), nsflow_arch::ArchError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayConfig {
    height: usize,
    width: usize,
    n_subarrays: usize,
}

impl ArrayConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::ZeroDimension`] if any parameter is zero.
    pub fn new(height: usize, width: usize, n_subarrays: usize) -> Result<Self> {
        if height == 0 {
            return Err(ArchError::ZeroDimension("sub-array height".into()));
        }
        if width == 0 {
            return Err(ArchError::ZeroDimension("sub-array width".into()));
        }
        if n_subarrays == 0 {
            return Err(ArchError::ZeroDimension("sub-array count".into()));
        }
        Ok(ArrayConfig {
            height,
            width,
            n_subarrays,
        })
    }

    /// Sub-array height `H` (rows of PEs).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Sub-array width `W` (columns of PEs).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of sub-arrays `N`.
    #[must_use]
    pub fn n_subarrays(&self) -> usize {
        self.n_subarrays
    }

    /// Total PE count `H·W·N`.
    #[must_use]
    pub fn total_pes(&self) -> usize {
        self.height * self.width * self.n_subarrays
    }

    /// Aspect ratio `H/W` as a float — Phase I prunes configurations to
    /// `1/4 ≤ H/W ≤ 16` (Tab. II).
    #[must_use]
    pub fn aspect_ratio(&self) -> f64 {
        self.height as f64 / self.width as f64
    }
}

impl fmt::Display for ArrayConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}×{}", self.height, self.width, self.n_subarrays)
    }
}

/// How a VSA node is mapped onto its sub-arrays (eqs. (3) vs (4)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VsaMapping {
    /// Spatial: each vector's dimension is spread across all PEs of the
    /// assigned sub-arrays; vectors processed one at a time.
    Spatial,
    /// Temporal: vectors are distributed across columns; each column
    /// processes whole vectors (folded over `H` when `d > H`).
    Temporal,
}

impl fmt::Display for VsaMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VsaMapping::Spatial => f.write_str("spatial"),
            VsaMapping::Temporal => f.write_str("temporal"),
        }
    }
}

/// A mapping scheme: sub-arrays assigned to each NN node (`N_l[i]`) and
/// each VSA node (`N_v[j]`) of one dataflow loop.
///
/// Invariants: every entry is at least 1 and at most `N`
/// ([`Mapping::validate`]); for any node pair active *concurrently*,
/// `N_l[i] + N_v[j] ≤ N` ([`Mapping::validate_concurrency`] — the pairs
/// come from the dataflow graph's layer spans, since partitions are
/// reconfigured between nodes at runtime).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// Sub-arrays per NN node (length = `|R_l|`).
    pub n_l: Vec<usize>,
    /// Sub-arrays per VSA node (length = `|R_v|`).
    pub n_v: Vec<usize>,
    /// Whether the loop executes NN and VSA partitions concurrently
    /// (parallel mode) or the whole array is time-shared (sequential).
    pub parallel: bool,
}

impl Mapping {
    /// Uniform mapping: every NN node gets `nl`, every VSA node gets `nv`.
    #[must_use]
    pub fn uniform(nn_nodes: usize, vsa_nodes: usize, nl: usize, nv: usize) -> Self {
        Mapping {
            n_l: vec![nl; nn_nodes],
            n_v: vec![nv; vsa_nodes],
            parallel: true,
        }
    }

    /// Sequential mapping: every node gets the whole array in turn.
    #[must_use]
    pub fn sequential(nn_nodes: usize, vsa_nodes: usize, n: usize) -> Self {
        Mapping {
            n_l: vec![n; nn_nodes],
            n_v: vec![n; vsa_nodes],
            parallel: false,
        }
    }

    /// Checks the mapping against a configuration and node counts.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::MappingLengthMismatch`] on wrong vector
    /// lengths, [`ArchError::ZeroDimension`] if any assignment is zero,
    /// and [`ArchError::SubArrayOverflow`] if a concurrent NN+VSA pair
    /// exceeds `N` (parallel mode) or any single assignment exceeds `N`.
    pub fn validate(&self, config: &ArrayConfig, nn_nodes: usize, vsa_nodes: usize) -> Result<()> {
        if self.n_l.len() != nn_nodes {
            return Err(ArchError::MappingLengthMismatch {
                what: "NN".into(),
                expected: nn_nodes,
                actual: self.n_l.len(),
            });
        }
        if self.n_v.len() != vsa_nodes {
            return Err(ArchError::MappingLengthMismatch {
                what: "VSA".into(),
                expected: vsa_nodes,
                actual: self.n_v.len(),
            });
        }
        let n = config.n_subarrays();
        for &a in self.n_l.iter().chain(&self.n_v) {
            if a == 0 {
                return Err(ArchError::ZeroDimension("sub-array assignment".into()));
            }
            if a > n {
                return Err(ArchError::SubArrayOverflow {
                    requested: a,
                    available: n,
                });
            }
        }
        Ok(())
    }

    /// Checks that a set of *concurrent* node pairs fits the array: for
    /// every `(layer i, vsa j)` pair active at the same time,
    /// `N_l[i] + N_v[j] ≤ N`. The pairs come from the dataflow graph's
    /// layer spans (partitions are time-varying, so only concurrently
    /// active nodes compete for sub-arrays).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::SubArrayOverflow`] for the first violating
    /// pair.
    pub fn validate_concurrency(
        &self,
        config: &ArrayConfig,
        concurrent_pairs: &[(usize, usize)],
    ) -> Result<()> {
        if !self.parallel {
            return Ok(());
        }
        let n = config.n_subarrays();
        for &(i, j) in concurrent_pairs {
            let need =
                self.n_l.get(i).copied().unwrap_or(0) + self.n_v.get(j).copied().unwrap_or(0);
            if need > n {
                return Err(ArchError::SubArrayOverflow {
                    requested: need,
                    available: n,
                });
            }
        }
        Ok(())
    }
}

/// Per-domain execution precision (Sec. IV-D): the paper's NVSA deployment
/// runs NN at INT8 and symbolic at INT4 ("MP" in Tab. IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrecisionConfig {
    /// NN-kernel precision.
    pub neural: DType,
    /// Symbolic-kernel precision.
    pub symbolic: DType,
}

impl PrecisionConfig {
    /// The paper's mixed-precision deployment (INT8 NN / INT4 symbolic).
    #[must_use]
    pub fn mixed() -> Self {
        PrecisionConfig {
            neural: DType::Int8,
            symbolic: DType::Int4,
        }
    }

    /// Uniform precision for both domains.
    #[must_use]
    pub fn uniform(dtype: DType) -> Self {
        PrecisionConfig {
            neural: dtype,
            symbolic: dtype,
        }
    }
}

impl Default for PrecisionConfig {
    fn default() -> Self {
        PrecisionConfig::mixed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validates_dimensions() {
        assert!(ArrayConfig::new(0, 16, 16).is_err());
        assert!(ArrayConfig::new(32, 0, 16).is_err());
        assert!(ArrayConfig::new(32, 16, 0).is_err());
        let c = ArrayConfig::new(32, 16, 16).unwrap();
        assert_eq!(c.total_pes(), 8192);
        assert_eq!(c.aspect_ratio(), 2.0);
        assert_eq!(c.to_string(), "32×16×16");
    }

    #[test]
    fn uniform_mapping_validates() {
        let cfg = ArrayConfig::new(8, 8, 4).unwrap();
        let m = Mapping::uniform(3, 2, 3, 1);
        assert!(m.validate(&cfg, 3, 2).is_ok());
    }

    #[test]
    fn mapping_length_checked() {
        let cfg = ArrayConfig::new(8, 8, 4).unwrap();
        let m = Mapping::uniform(3, 2, 2, 1);
        assert!(matches!(
            m.validate(&cfg, 4, 2),
            Err(ArchError::MappingLengthMismatch { .. })
        ));
    }

    #[test]
    fn concurrent_pairs_cannot_oversubscribe() {
        let cfg = ArrayConfig::new(8, 8, 4).unwrap();
        let m = Mapping::uniform(1, 1, 3, 2); // 3 + 2 > 4 if concurrent
                                              // Basic validation passes — each assignment individually fits…
        assert!(m.validate(&cfg, 1, 1).is_ok());
        // …but declaring the pair concurrent exposes the overflow.
        assert!(matches!(
            m.validate_concurrency(&cfg, &[(0, 0)]),
            Err(ArchError::SubArrayOverflow { .. })
        ));
        // Sequential mappings never contend.
        let seq = Mapping::sequential(1, 1, 4);
        assert!(seq.validate_concurrency(&cfg, &[(0, 0)]).is_ok());
    }

    #[test]
    fn sequential_mapping_may_use_whole_array_per_node() {
        let cfg = ArrayConfig::new(8, 8, 4).unwrap();
        let m = Mapping::sequential(2, 2, 4);
        assert!(m.validate(&cfg, 2, 2).is_ok());
        assert!(!m.parallel);
    }

    #[test]
    fn zero_assignment_rejected() {
        let cfg = ArrayConfig::new(8, 8, 4).unwrap();
        let m = Mapping {
            n_l: vec![0],
            n_v: vec![1],
            parallel: true,
        };
        assert!(matches!(
            m.validate(&cfg, 1, 1),
            Err(ArchError::ZeroDimension(_))
        ));
    }

    #[test]
    fn precision_presets() {
        let mp = PrecisionConfig::mixed();
        assert_eq!(mp.neural, DType::Int8);
        assert_eq!(mp.symbolic, DType::Int4);
        assert_eq!(PrecisionConfig::default(), mp);
        let u = PrecisionConfig::uniform(DType::Fp16);
        assert_eq!(u.neural, u.symbolic);
    }
}
