//! Custom SIMD unit model (paper Sec. IV-E).
//!
//! The unit has `lanes` processing elements, each with compact logic for
//! sum, mult/div, exp/log/tanh, norm and softmax. Cycle costs are
//! structural: element-wise ops stream `⌈elems/lanes⌉` beats (scaled by
//! the function's issue cost), reductions add a `⌈log₂ lanes⌉` tree
//! latency, and similarity kernels are dot products plus a softmax pass.

use nsflow_trace::{EltFunc, OpKind, ReduceFunc};

/// Per-lane issue cost of an element-wise function, in cycles.
///
/// Cheap integer ops are single-cycle; transcendentals and softmax use the
/// multi-cycle exp/log path of the compact lane logic.
#[must_use]
pub fn elt_func_cost(func: EltFunc) -> u64 {
    match func {
        EltFunc::Relu | EltFunc::Add | EltFunc::Clamp | EltFunc::PoolMax => 1,
        EltFunc::Mul | EltFunc::Affine => 1,
        EltFunc::Div => 4,
        EltFunc::Transcendental => 8,
        EltFunc::Softmax => 10, // exp + running sum + divide
        // EltFunc is non_exhaustive; unknown future functions default to
        // the transcendental path.
        _ => 8,
    }
}

/// Reduction-tree depth for a given lane count.
#[must_use]
pub fn tree_depth(lanes: usize) -> u64 {
    debug_assert!(lanes > 0);
    (usize::BITS - (lanes.max(1) - 1).leading_zeros()) as u64
}

/// Cycles for one SIMD-class op on a `lanes`-wide unit.
///
/// Array-class ops (`Gemm`, `VsaConv`) return 0 — they never execute here.
#[must_use]
pub fn op_cycles(kind: &OpKind, lanes: usize) -> u64 {
    debug_assert!(lanes > 0);
    let lanes64 = lanes as u64;
    match *kind {
        OpKind::Elementwise { elems, func } => {
            (elems as u64).div_ceil(lanes64) * elt_func_cost(func)
        }
        OpKind::Reduce { elems, func } => {
            let beats = (elems as u64).div_ceil(lanes64);
            let per_beat = match func {
                ReduceFunc::Sum | ReduceFunc::Max | ReduceFunc::Mean => 1,
                ReduceFunc::Norm => 2, // square + accumulate
                _ => 2,
            };
            beats * per_beat + tree_depth(lanes)
        }
        OpKind::Similarity { n_vec, dim } => {
            // n_vec dot products of length dim, then a softmax over n_vec.
            let dot = (n_vec as u64) * ((dim as u64).div_ceil(lanes64) + tree_depth(lanes));
            let softmax = (n_vec as u64).div_ceil(lanes64) * elt_func_cost(EltFunc::Softmax);
            dot + softmax
        }
        OpKind::Gemm { .. } | OpKind::VsaConv { .. } => 0,
        // OpKind is non_exhaustive; unknown future kinds are assumed
        // SIMD-resident with unit per-element cost.
        _ => 1,
    }
}

/// Smallest lane count (power of two, within `[8, max_lanes]`) whose SIMD
/// total stays at or below `target_cycles` — the paper's sizing rule
/// ("SIMD size is minimized such that latency of concurrent
/// elem-wise/vector reduction operations can be hidden").
///
/// Returns `max_lanes` if even the widest unit cannot hide the latency.
#[must_use]
pub fn minimal_lanes(ops: &[OpKind], target_cycles: u64, max_lanes: usize) -> usize {
    let mut lanes = 8usize;
    while lanes < max_lanes {
        let total: u64 = ops.iter().map(|k| op_cycles(k, lanes)).sum();
        if total <= target_cycles {
            return lanes;
        }
        lanes *= 2;
    }
    max_lanes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_depth_values() {
        assert_eq!(tree_depth(1), 0);
        assert_eq!(tree_depth(2), 1);
        assert_eq!(tree_depth(64), 6);
        assert_eq!(tree_depth(100), 7);
    }

    #[test]
    fn elementwise_scales_with_width() {
        let k = OpKind::Elementwise {
            elems: 1024,
            func: EltFunc::Relu,
        };
        assert_eq!(op_cycles(&k, 64), 16);
        assert_eq!(op_cycles(&k, 128), 8);
    }

    #[test]
    fn expensive_functions_cost_more() {
        let relu = OpKind::Elementwise {
            elems: 256,
            func: EltFunc::Relu,
        };
        let smax = OpKind::Elementwise {
            elems: 256,
            func: EltFunc::Softmax,
        };
        assert!(op_cycles(&smax, 64) > op_cycles(&relu, 64));
    }

    #[test]
    fn reduction_adds_tree_latency() {
        let k = OpKind::Reduce {
            elems: 64,
            func: ReduceFunc::Sum,
        };
        assert_eq!(op_cycles(&k, 64), 1 + 6);
        let norm = OpKind::Reduce {
            elems: 64,
            func: ReduceFunc::Norm,
        };
        assert!(op_cycles(&norm, 64) > op_cycles(&k, 64));
    }

    #[test]
    fn similarity_costs_dot_plus_softmax() {
        let k = OpKind::Similarity {
            n_vec: 7,
            dim: 1024,
        };
        let c = op_cycles(&k, 64);
        assert_eq!(c, 7 * (16 + 6) + 10);
    }

    #[test]
    fn array_ops_cost_nothing_on_simd() {
        assert_eq!(op_cycles(&OpKind::Gemm { m: 1, n: 1, k: 1 }, 64), 0);
        assert_eq!(op_cycles(&OpKind::VsaConv { n_vec: 1, dim: 8 }, 64), 0);
    }

    #[test]
    fn minimal_lanes_finds_smallest_sufficient_width() {
        let ops = vec![OpKind::Elementwise {
            elems: 4096,
            func: EltFunc::Relu,
        }];
        // 4096/64 = 64 cycles at 64 lanes.
        assert_eq!(minimal_lanes(&ops, 64, 1024), 64);
        assert_eq!(minimal_lanes(&ops, 512, 1024), 8);
        // Impossible target falls back to max width.
        assert_eq!(minimal_lanes(&ops, 0, 256), 256);
    }
}
