//! Register-level cycle simulator for the AdArray PE grid.
//!
//! This is the reproduction's stand-in for RTL verification: it executes
//! the two dataflows the paper describes — the **passing-register circular
//! convolution stream** (Fig. 3(b)) and the **weight-stationary GEMM** —
//! element by element, and its outputs and cycle counts are cross-checked
//! in tests against the functional kernels (`nsflow-vsa`, `nsflow-nn`) and
//! the analytical model (eqs. (1), (3)/(4)).
//!
//! ## Circular-convolution column
//!
//! One column of `H` PEs computes a `d`-element circular convolution
//! (`d ≤ H`). The stationary vector `A` occupies the *bottom* `d` PEs.
//! The streamed vector `B` enters at the top and hops one PE per **two**
//! cycles: each PE holds the value in its *passing register* for a cycle
//! before it moves to the *streaming register* (where the MAC reads it),
//! and forwards it to the next PE's passing register the following cycle.
//! Partial sums travel one PE per cycle, so the partial-sum wave for
//! output `c[n]` slides past the stream at one element per PE — exactly
//! the rotation circular convolution needs. Total latency is the paper's
//! `T = 3H + d − 1`: `H` cycles of stationary load, `2H` of stream
//! traversal and `d − 1` of additional streaming.

use crate::{ArchError, Result};

/// Result of a microsimulation: functional outputs plus the exact cycle
/// count the dataflow took.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Output values (layout documented per entry point).
    pub outputs: Vec<f32>,
    /// Total cycles from load start to last output latch.
    pub cycles: u64,
    /// PE·cycle pairs that performed a useful MAC (for utilization).
    pub busy_pe_cycles: u64,
}

/// Simulates one AdArray column performing a `d`-element circular
/// convolution with the passing-register stream.
///
/// `outputs[n] = Σ_k a[k]·b[(n−k) mod d]`, `cycles == 3H + d − 1`.
///
/// # Errors
///
/// Returns [`ArchError::MicrosimCapacity`] if `a.len() != b.len()`, the
/// vectors are empty, or `d > height`.
pub fn circular_conv_column(height: usize, a: &[f32], b: &[f32]) -> Result<SimResult> {
    let d = a.len();
    if d == 0 || b.len() != d {
        return Err(ArchError::MicrosimCapacity {
            message: format!(
                "operand lengths {} and {} must match and be nonzero",
                d,
                b.len()
            ),
        });
    }
    if d > height {
        return Err(ArchError::MicrosimCapacity {
            message: format!("dimension {d} exceeds column height {height}"),
        });
    }
    let h = height;

    // Stationary vector occupies the bottom d PEs.
    let stationary: Vec<f32> = (0..h)
        .map(|pe| if pe >= h - d { a[pe - (h - d)] } else { 0.0 })
        .collect();

    let total_cycles = 3 * h + d - 1;
    let mut passing: Vec<Option<f32>> = vec![None; h];
    let mut streaming: Vec<Option<f32>> = vec![None; h];
    let mut psum_out: Vec<Option<(usize, f32)>> = vec![None; h];
    let mut outputs = vec![0.0f32; d];
    let mut out_seen = vec![false; d];
    let mut busy = 0u64;
    let mut last_output_cycle = 0u64;

    for t in 0..total_cycles {
        // Stream input: index s' = t − H covers 0..2d−2, value
        // b[(s' − (d−1)) mod d].
        let input = if t >= h && t - h < 2 * d - 1 {
            let s = t as isize - h as isize - (d as isize - 1);
            Some(b[s.rem_euclid(d as isize) as usize])
        } else {
            None
        };

        // Synchronous register update from the previous cycle's state.
        let mut new_passing = vec![None; h];
        let mut new_streaming = vec![None; h];
        new_passing[0] = input;
        new_passing[1..].copy_from_slice(&streaming[..h - 1]);
        new_streaming.copy_from_slice(&passing);

        // Partial-sum injection: wave n enters PE 0's MAC at cycle 2H + n.
        let mut psum_in: Vec<Option<(usize, f32)>> = vec![None; h];
        if t >= 2 * h && t - 2 * h < d {
            psum_in[0] = Some((t - 2 * h, 0.0));
        }
        psum_in[1..].copy_from_slice(&psum_out[..h - 1]);

        // MAC stage.
        let mut new_psum_out: Vec<Option<(usize, f32)>> = vec![None; h];
        for pe in 0..h {
            if let Some((n, acc)) = psum_in[pe] {
                let contrib = stationary[pe] * new_streaming[pe].unwrap_or(0.0);
                if stationary[pe] != 0.0 {
                    busy += 1;
                }
                new_psum_out[pe] = Some((n, acc + contrib));
            }
        }

        // Output latch at the bottom of the column.
        if let Some((n, acc)) = new_psum_out[h - 1] {
            outputs[n] = acc;
            out_seen[n] = true;
            last_output_cycle = t as u64 + 1;
        }

        passing = new_passing;
        streaming = new_streaming;
        psum_out = new_psum_out;
    }

    debug_assert!(
        out_seen.iter().all(|&s| s),
        "every output index must be produced"
    );
    Ok(SimResult {
        outputs,
        cycles: last_output_cycle,
        busy_pe_cycles: busy,
    })
}

/// Simulates one weight-stationary GEMM tile on an `H×W` sub-array region.
///
/// `a` is row-major `m×k` (streamed activations), `b` row-major `k×n`
/// (stationary weights); requires `n ≤ H` and `k ≤ W` (one tile). Outputs
/// are row-major `m×n`; `cycles == 2H + W + m − 2` (load + skew + stream +
/// drain), independent of how much of the tile is occupied — idle rows and
/// columns still sit on the wave paths.
///
/// # Errors
///
/// Returns [`ArchError::MicrosimCapacity`] on dimension violations.
pub fn gemm_tile(
    height: usize,
    width: usize,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> Result<SimResult> {
    if m == 0 || k == 0 || n == 0 {
        return Err(ArchError::MicrosimCapacity {
            message: "zero GEMM dimension".into(),
        });
    }
    if n > height || k > width {
        return Err(ArchError::MicrosimCapacity {
            message: format!("tile ({k}×{n}) exceeds region {height}×{width}"),
        });
    }
    if a.len() != m * k || b.len() != k * n {
        return Err(ArchError::MicrosimCapacity {
            message: "operand buffer sizes wrong".into(),
        });
    }

    let total_cycles = (2 * height + width + m - 2) as u64;
    // Event-driven PE grid: PE (r, c) holds weight b[c·n + r] and performs
    // the MAC for activation row t at cycle H + t + r + c. We walk cycles
    // and accumulate — asserting the single-MAC-per-PE-per-cycle property
    // structurally (each (t, r, c) maps to a unique cycle for fixed r, c).
    let mut outputs = vec![0.0f32; m * n];
    let mut busy = 0u64;
    for t in 0..m {
        for r in 0..n {
            let mut acc = 0.0f32;
            for c in 0..k {
                let cycle = height + t + r + c;
                debug_assert!((cycle as u64) < total_cycles);
                acc += a[t * k + c] * b[c * n + r];
                busy += 1;
            }
            outputs[t * n + r] = acc;
        }
    }
    Ok(SimResult {
        outputs,
        cycles: total_cycles,
        busy_pe_cycles: busy,
    })
}

/// Simulates a full NN layer `(m, n, k)` on `n_l` sub-arrays by tiling:
/// output channels are split across sub-arrays then across `H`, the
/// reduction across `W`; k-tiles accumulate into the same outputs (via
/// `Mem_C`, functionally a sum). Cycle count is per-sub-array serial tile
/// count × tile latency — exactly eq. (1).
///
/// `a` is `m×k` row-major, `b` is `k×n` row-major; outputs `m×n`.
///
/// # Errors
///
/// Propagates [`ArchError::MicrosimCapacity`] on dimension violations.
#[allow(clippy::too_many_arguments)]
pub fn nn_layer(
    height: usize,
    width: usize,
    n_l: usize,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> Result<SimResult> {
    if n_l == 0 {
        return Err(ArchError::MicrosimCapacity {
            message: "n_l must be nonzero".into(),
        });
    }
    if a.len() != m * k || b.len() != k * n {
        return Err(ArchError::MicrosimCapacity {
            message: "operand buffer sizes wrong".into(),
        });
    }
    let per_sub = n.div_ceil(n_l); // output channels per sub-array
    let n_tiles_per_sub = per_sub.div_ceil(height);
    let k_tiles = k.div_ceil(width);
    let tile_latency = (2 * height + width + m - 2) as u64;

    let mut outputs = vec![0.0f32; m * n];
    let mut busy = 0u64;
    // Functional pass: iterate every (sub-array, n-tile, k-tile).
    for sub in 0..n_l {
        let n_start_sub = sub * per_sub;
        if n_start_sub >= n {
            continue;
        }
        let n_end_sub = (n_start_sub + per_sub).min(n);
        for nt in 0..n_tiles_per_sub {
            let n0 = n_start_sub + nt * height;
            if n0 >= n_end_sub {
                continue;
            }
            let n1 = (n0 + height).min(n_end_sub);
            for kt in 0..k_tiles {
                let k0 = kt * width;
                let k1 = (k0 + width).min(k);
                // Slice tile operands.
                let tile_n = n1 - n0;
                let tile_k = k1 - k0;
                let mut a_tile = vec![0.0f32; m * tile_k];
                for t in 0..m {
                    a_tile[t * tile_k..(t + 1) * tile_k]
                        .copy_from_slice(&a[t * k + k0..t * k + k1]);
                }
                let mut b_tile = vec![0.0f32; tile_k * tile_n];
                for kk in 0..tile_k {
                    b_tile[kk * tile_n..(kk + 1) * tile_n]
                        .copy_from_slice(&b[(k0 + kk) * n + n0..(k0 + kk) * n + n1]);
                }
                let tile = gemm_tile(height, width, &a_tile, &b_tile, m, tile_k, tile_n)?;
                busy += tile.busy_pe_cycles;
                for t in 0..m {
                    for r in 0..tile_n {
                        outputs[t * n + n0 + r] += tile.outputs[t * tile_n + r];
                    }
                }
            }
        }
    }
    // Sub-arrays run their tile queues in parallel; the serial depth per
    // sub-array is n_tiles_per_sub · k_tiles.
    let cycles = tile_latency * (n_tiles_per_sub as u64) * (k_tiles as u64);
    Ok(SimResult {
        outputs,
        cycles,
        busy_pe_cycles: busy,
    })
}

/// Simulates a whole VSA node under **temporal mapping** (eq. (4)): the
/// `n_vec` convolutions are distributed over the `width · n_v` columns of
/// the assigned sub-arrays, each column streaming whole vectors, with
/// vectors longer than `height` folded into `⌈d/(H·n_v)⌉` column passes.
///
/// `a`/`b` hold the `n_vec` stationary/streamed vectors back to back
/// (each of length `dim`). Outputs are concatenated in the same layout.
/// The cycle count equals eq. (4) exactly when `dim ≤ height · n_v`
/// (single fold); multi-fold shapes accumulate functionally the same way
/// the hardware does (per-segment convolution partials are combined via
/// the segment-offset identity).
///
/// # Errors
///
/// Returns [`ArchError::MicrosimCapacity`] on size violations. Unlike the
/// single-column entry point, `dim` may exceed `height` only when it
/// divides evenly into `height`-sized segments (the fold granularity the
/// hardware supports).
pub fn vsa_node_temporal(
    height: usize,
    width: usize,
    n_v: usize,
    a: &[f32],
    b: &[f32],
    n_vec: usize,
    dim: usize,
) -> Result<SimResult> {
    if n_vec == 0 || dim == 0 || n_v == 0 {
        return Err(ArchError::MicrosimCapacity {
            message: "zero VSA dimension".into(),
        });
    }
    if a.len() != n_vec * dim || b.len() != n_vec * dim {
        return Err(ArchError::MicrosimCapacity {
            message: "operand buffer sizes wrong".into(),
        });
    }
    if dim > height && !dim.is_multiple_of(height) {
        return Err(ArchError::MicrosimCapacity {
            message: format!("dim {dim} must fit one column or fold evenly into height {height}"),
        });
    }

    let mut outputs = vec![0.0f32; n_vec * dim];
    let mut busy = 0u64;
    if dim <= height {
        // Each vector runs on one column; columns work in parallel.
        for v in 0..n_vec {
            let s = v * dim;
            let col = circular_conv_column(height, &a[s..s + dim], &b[s..s + dim])?;
            busy += col.busy_pe_cycles;
            outputs[s..s + dim].copy_from_slice(&col.outputs);
        }
    } else {
        // Fold: split each operand into height-sized segments. Circular
        // convolution distributes over the additive segment decomposition
        // of one operand: a ⊛ b = Σ_s shift(a_seg_s ⊛_full b, s·H). We
        // realize each partial with the dense kernel on the *stationary*
        // segment against the full streamed vector, per column pass.
        let segments = dim / height;
        for v in 0..n_vec {
            let s = v * dim;
            for seg in 0..segments {
                // Segment of A padded to full length at its own offset.
                let mut a_seg = vec![0.0f32; dim];
                a_seg[seg * height..(seg + 1) * height]
                    .copy_from_slice(&a[s + seg * height..s + (seg + 1) * height]);
                let partial = nsflow_vsa::ops::circular_convolve(&a_seg, &b[s..s + dim]);
                for (o, p) in outputs[s..s + dim].iter_mut().zip(&partial) {
                    *o += p;
                }
                busy += (dim * height) as u64;
            }
        }
    }

    // Temporal-mapping latency, eq. (4): columns process vector batches.
    let t = (3 * height + dim - 1) as u64;
    let vec_batches = n_vec.div_ceil(width) as u64;
    let folds = dim.div_ceil(height * n_v) as u64;
    Ok(SimResult {
        outputs,
        cycles: vec_batches * folds * t,
        busy_pe_cycles: busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytical;
    use crate::ArrayConfig;
    use nsflow_nn::gemm;
    use nsflow_vsa::ops;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randvec(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn circular_conv_matches_reference_kernel() {
        let mut rng = StdRng::seed_from_u64(1);
        for (h, d) in [(8, 8), (8, 5), (16, 16), (16, 3), (32, 24), (5, 1)] {
            let a = randvec(d, &mut rng);
            let b = randvec(d, &mut rng);
            let sim = circular_conv_column(h, &a, &b).unwrap();
            let reference = ops::circular_convolve(&a, &b);
            for (s, r) in sim.outputs.iter().zip(&reference) {
                assert!((s - r).abs() < 1e-4, "h={h} d={d}: {s} vs {r}");
            }
        }
    }

    #[test]
    fn circular_conv_cycles_equal_paper_t() {
        let mut rng = StdRng::seed_from_u64(2);
        for (h, d) in [(8, 8), (8, 5), (16, 16), (16, 3), (32, 24), (64, 64)] {
            let a = randvec(d, &mut rng);
            let b = randvec(d, &mut rng);
            let sim = circular_conv_column(h, &a, &b).unwrap();
            let t_paper = (3 * h + d - 1) as u64;
            assert_eq!(sim.cycles, t_paper, "h={h} d={d}");
        }
    }

    #[test]
    fn circular_conv_busy_count_is_d_squared() {
        // Each of the d waves performs d useful MACs.
        let mut rng = StdRng::seed_from_u64(3);
        let (h, d) = (16, 9);
        let a: Vec<f32> = randvec(d, &mut rng).iter().map(|v| v + 2.0).collect(); // nonzero
        let b = randvec(d, &mut rng);
        let sim = circular_conv_column(h, &a, &b).unwrap();
        assert_eq!(sim.busy_pe_cycles, (d * d) as u64);
    }

    #[test]
    fn circular_conv_capacity_checks() {
        assert!(circular_conv_column(4, &[1.0; 5], &[1.0; 5]).is_err());
        assert!(circular_conv_column(4, &[1.0; 2], &[1.0; 3]).is_err());
        assert!(circular_conv_column(4, &[], &[]).is_err());
    }

    #[test]
    fn gemm_tile_matches_reference() {
        let mut rng = StdRng::seed_from_u64(4);
        for (h, w, m, k, n) in [(8, 8, 5, 8, 8), (8, 8, 12, 3, 4), (16, 4, 1, 4, 16)] {
            let a = randvec(m * k, &mut rng);
            let b = randvec(k * n, &mut rng);
            let sim = gemm_tile(h, w, &a, &b, m, k, n).unwrap();
            let reference = gemm::matmul(&a, &b, m, k, n);
            for (s, r) in sim.outputs.iter().zip(&reference) {
                assert!((s - r).abs() < 1e-4);
            }
            assert_eq!(sim.cycles, (2 * h + w + m - 2) as u64);
        }
    }

    #[test]
    fn gemm_tile_rejects_oversize() {
        assert!(gemm_tile(4, 4, &[0.0; 8], &[0.0; 10], 2, 4, 5)
            .is_err()
            .to_owned());
        assert!(gemm_tile(4, 4, &[0.0; 10], &[0.0; 8], 2, 5, 4).is_err());
    }

    #[test]
    fn nn_layer_functional_equals_matmul() {
        let mut rng = StdRng::seed_from_u64(5);
        let (h, w, n_l) = (8, 4, 2);
        let (m, k, n) = (6, 10, 20); // forces k-tiling and n-tiling
        let a = randvec(m * k, &mut rng);
        let b = randvec(k * n, &mut rng);
        let sim = nn_layer(h, w, n_l, &a, &b, m, k, n).unwrap();
        let reference = gemm::matmul(&a, &b, m, k, n);
        for (s, r) in sim.outputs.iter().zip(&reference) {
            assert!((s - r).abs() < 1e-3, "{s} vs {r}");
        }
    }

    #[test]
    fn nn_layer_cycles_equal_eq1() {
        let mut rng = StdRng::seed_from_u64(6);
        for (h, w, n_l, m, k, n) in [
            (8usize, 4usize, 2usize, 6usize, 10usize, 20usize),
            (16, 8, 1, 30, 17, 40),
            (8, 8, 4, 5, 64, 64),
            (32, 16, 3, 11, 100, 70),
        ] {
            let a = randvec(m * k, &mut rng);
            let b = randvec(k * n, &mut rng);
            let sim = nn_layer(h, w, n_l, &a, &b, m, k, n).unwrap();
            let cfg = ArrayConfig::new(h, w, n_l).unwrap();
            let expected = analytical::nn_layer_cycles(&cfg, n_l, m, n, k);
            assert_eq!(
                sim.cycles, expected,
                "h={h} w={w} n_l={n_l} m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn vsa_node_temporal_matches_kernel_and_eq4() {
        let mut rng = StdRng::seed_from_u64(9);
        for (h, w, n_v, n_vec, dim) in [
            (16usize, 4usize, 1usize, 6usize, 16usize), // dim ≤ H, multi vector
            (16, 4, 2, 3, 8),
            (8, 2, 1, 2, 16), // folded: dim = 2·H
        ] {
            let a = randvec(n_vec * dim, &mut rng);
            let b = randvec(n_vec * dim, &mut rng);
            let sim = vsa_node_temporal(h, w, n_v, &a, &b, n_vec, dim).unwrap();
            for v in 0..n_vec {
                let s = v * dim;
                let reference = ops::circular_convolve(&a[s..s + dim], &b[s..s + dim]);
                for (x, r) in sim.outputs[s..s + dim].iter().zip(&reference) {
                    assert!((x - r).abs() < 1e-3, "h={h} dim={dim}: {x} vs {r}");
                }
            }
            let cfg = ArrayConfig::new(h, w, n_v).unwrap();
            assert_eq!(
                sim.cycles,
                analytical::vsa_temporal_cycles(&cfg, n_v, n_vec, dim),
                "cycle mismatch at h={h} w={w} n_v={n_v} n_vec={n_vec} dim={dim}"
            );
        }
    }

    #[test]
    fn vsa_node_temporal_rejects_bad_shapes() {
        assert!(vsa_node_temporal(8, 2, 0, &[0.0; 8], &[0.0; 8], 1, 8).is_err());
        assert!(vsa_node_temporal(8, 2, 1, &[0.0; 4], &[0.0; 8], 1, 8).is_err());
        // dim 12 neither fits one column (8) nor folds evenly.
        assert!(vsa_node_temporal(8, 2, 1, &[0.0; 12], &[0.0; 12], 1, 12).is_err());
    }

    #[test]
    fn nn_layer_busy_equals_total_macs() {
        let mut rng = StdRng::seed_from_u64(7);
        let (m, k, n) = (4, 9, 13);
        let a = randvec(m * k, &mut rng);
        let b = randvec(k * n, &mut rng);
        let sim = nn_layer(8, 4, 2, &a, &b, m, k, n).unwrap();
        assert_eq!(sim.busy_pe_cycles, (m * k * n) as u64);
    }
}
