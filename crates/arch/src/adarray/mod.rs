//! The AdArray: NSFlow's adaptive systolic array (paper Sec. IV-B).
//!
//! An AdArray is `N` sub-arrays of `H×W` PEs. At runtime each sub-array is
//! **folded** into one of two roles:
//!
//! - merged with adjacent sub-arrays into an NN region running
//!   weight-stationary GEMM tiles,
//! - standing alone with each column running vector-symbolic circular
//!   convolutions via the passing-register streaming dataflow.
//!
//! [`AdArray`] tracks the current fold and utilization;
//! [`microsim`] is the register-level cycle simulator used to verify the
//! dataflow against the analytical model and the functional kernels.

pub mod microsim;

use std::fmt;

use crate::{ArchError, ArrayConfig, Result};

/// The role a sub-array currently plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubArrayRole {
    /// Part of the merged NN region.
    Nn,
    /// Running vector-symbolic column streams.
    Vsa,
    /// Powered but unassigned.
    Idle,
}

impl fmt::Display for SubArrayRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubArrayRole::Nn => f.write_str("NN"),
            SubArrayRole::Vsa => f.write_str("VSA"),
            SubArrayRole::Idle => f.write_str("idle"),
        }
    }
}

/// A folded AdArray instance.
///
/// # Examples
///
/// ```
/// use nsflow_arch::{ArrayConfig, adarray::AdArray};
///
/// let cfg = ArrayConfig::new(32, 16, 16)?;
/// let mut array = AdArray::new(cfg);
/// array.fold(14, 2)?; // the paper's NVSA default partition 14:2
/// assert_eq!(array.nn_pes(), 14 * 32 * 16);
/// # Ok::<(), nsflow_arch::ArchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdArray {
    config: ArrayConfig,
    roles: Vec<SubArrayRole>,
}

impl AdArray {
    /// Creates an AdArray with every sub-array idle.
    #[must_use]
    pub fn new(config: ArrayConfig) -> Self {
        let roles = vec![SubArrayRole::Idle; config.n_subarrays()];
        AdArray { config, roles }
    }

    /// The hardware configuration.
    #[must_use]
    pub fn config(&self) -> &ArrayConfig {
        &self.config
    }

    /// Current per-sub-array roles.
    #[must_use]
    pub fn roles(&self) -> &[SubArrayRole] {
        &self.roles
    }

    /// Folds the array: the first `n_nn` sub-arrays merge into the NN
    /// region (adjacency is required for the merged horizontal
    /// connections), the next `n_vsa` run VSA columns, the rest idle.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::SubArrayOverflow`] if `n_nn + n_vsa` exceeds
    /// the sub-array count.
    pub fn fold(&mut self, n_nn: usize, n_vsa: usize) -> Result<()> {
        let n = self.config.n_subarrays();
        if n_nn + n_vsa > n {
            return Err(ArchError::SubArrayOverflow {
                requested: n_nn + n_vsa,
                available: n,
            });
        }
        for (i, role) in self.roles.iter_mut().enumerate() {
            *role = if i < n_nn {
                SubArrayRole::Nn
            } else if i < n_nn + n_vsa {
                SubArrayRole::Vsa
            } else {
                SubArrayRole::Idle
            };
        }
        Ok(())
    }

    /// Number of sub-arrays in the NN region.
    #[must_use]
    pub fn nn_subarrays(&self) -> usize {
        self.roles
            .iter()
            .filter(|r| **r == SubArrayRole::Nn)
            .count()
    }

    /// Number of sub-arrays running VSA streams.
    #[must_use]
    pub fn vsa_subarrays(&self) -> usize {
        self.roles
            .iter()
            .filter(|r| **r == SubArrayRole::Vsa)
            .count()
    }

    /// PEs in the NN region.
    #[must_use]
    pub fn nn_pes(&self) -> usize {
        self.nn_subarrays() * self.config.height() * self.config.width()
    }

    /// PEs running VSA streams.
    #[must_use]
    pub fn vsa_pes(&self) -> usize {
        self.vsa_subarrays() * self.config.height() * self.config.width()
    }

    /// Fraction of all PEs assigned to either role.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        (self.nn_pes() + self.vsa_pes()) as f64 / self.config.total_pes() as f64
    }

    /// Compute utilization of the NN region for a GEMM of `(m, n, k)`:
    /// the fraction of PE-cycles doing useful MACs given the tiling of
    /// eq. (1). 1.0 means every PE is busy every streamed cycle.
    #[must_use]
    pub fn nn_compute_utilization(&self, m: usize, n: usize, k: usize) -> f64 {
        let region = self.nn_subarrays();
        if region == 0 || m == 0 || n == 0 || k == 0 {
            return 0.0;
        }
        let cycles = crate::analytical::nn_layer_cycles(&self.config, region, m, n, k);
        let useful = (m as u64) * (n as u64) * (k as u64);
        let pe_cycles = cycles * (self.nn_pes() as u64);
        (useful as f64 / pe_cycles as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> AdArray {
        AdArray::new(ArrayConfig::new(8, 4, 4).unwrap())
    }

    #[test]
    fn new_array_is_idle() {
        let a = array();
        assert_eq!(a.nn_subarrays(), 0);
        assert_eq!(a.vsa_subarrays(), 0);
        assert_eq!(a.utilization(), 0.0);
    }

    #[test]
    fn fold_assigns_roles_in_order() {
        let mut a = array();
        a.fold(2, 1).unwrap();
        assert_eq!(
            a.roles(),
            &[
                SubArrayRole::Nn,
                SubArrayRole::Nn,
                SubArrayRole::Vsa,
                SubArrayRole::Idle
            ]
        );
        assert_eq!(a.nn_pes(), 2 * 32);
        assert_eq!(a.vsa_pes(), 32);
        assert!((a.utilization() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn fold_rejects_oversubscription() {
        let mut a = array();
        assert!(matches!(
            a.fold(3, 2),
            Err(ArchError::SubArrayOverflow { .. })
        ));
        // Roles unchanged after failed fold.
        assert_eq!(a.nn_subarrays(), 0);
    }

    #[test]
    fn refold_replaces_roles() {
        let mut a = array();
        a.fold(4, 0).unwrap();
        assert_eq!(a.nn_subarrays(), 4);
        a.fold(1, 3).unwrap();
        assert_eq!(a.nn_subarrays(), 1);
        assert_eq!(a.vsa_subarrays(), 3);
    }

    #[test]
    fn compute_utilization_perfect_for_matched_dims() {
        // m huge, n = region·H, k = W: every PE busy nearly every cycle.
        let mut a = array();
        a.fold(4, 0).unwrap();
        let u = a.nn_compute_utilization(100_000, 4 * 8, 4);
        assert!(u > 0.95, "utilization {u}");
    }

    #[test]
    fn compute_utilization_poor_for_tiny_gemm() {
        let mut a = array();
        a.fold(4, 0).unwrap();
        let u = a.nn_compute_utilization(1, 1, 1);
        assert!(u < 0.01, "utilization {u}");
    }

    #[test]
    fn compute_utilization_zero_without_nn_region() {
        let a = array();
        assert_eq!(a.nn_compute_utilization(10, 10, 10), 0.0);
    }
}
