//! # nsflow-arch
//!
//! The NSFlow backend hardware template (paper Sec. IV): a flexible
//! neuro-symbolic architecture consisting of
//!
//! - the **AdArray** — an adaptive systolic array whose `N` sub-arrays
//!   (each `H×W` PEs) can merge to run NN GEMMs weight-stationary or run
//!   vector-symbolic circular convolutions column-wise with the
//!   passing-register streaming dataflow ([`adarray`]),
//! - a **custom SIMD unit** for element-wise ops, reductions and
//!   similarity/softmax kernels ([`simd`]),
//! - the **re-organizable on-chip memory** (`Mem_A1/A2/B/C` + URAM cache,
//!   all double-buffered) ([`memory`]),
//! - **mixed-precision compute units** (INT4/INT8/FP16/FP32) configured per
//!   domain ([`PrecisionConfig`]).
//!
//! Two complementary performance models are provided and cross-validated
//! against each other in tests:
//!
//! - [`analytical`]: the paper's closed-form runtime functions,
//!   eqs. (1)–(5),
//! - [`adarray::microsim`]: a register-level cycle simulator of the PE
//!   grid (the reproduction's stand-in for RTL verification) that also
//!   checks *functional* outputs against `nsflow-vsa`/`nsflow-nn`
//!   reference kernels.
//!
//! # Examples
//!
//! ```
//! use nsflow_arch::{ArrayConfig, analytical};
//!
//! let cfg = ArrayConfig::new(32, 16, 16)?;
//! // ResNet stem on 14 of the 16 sub-arrays:
//! let cycles = analytical::nn_layer_cycles(&cfg, 14, 6400, 64, 147);
//! assert!(cycles > 0);
//! # Ok::<(), nsflow_arch::ArchError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;

pub mod adarray;
pub mod analytical;
pub mod memory;
pub mod simd;
pub mod simd_microsim;

pub use config::{ArrayConfig, Mapping, PrecisionConfig, VsaMapping};
pub use error::ArchError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ArchError>;
