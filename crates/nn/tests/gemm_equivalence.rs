//! Equivalence properties for the blocked/parallel GEMM engine: on random
//! shapes and data — including degenerate zero dimensions and entries the
//! reference's zero-skip branch sees — `matmul_fast`/`matvec_fast` return
//! **bit-identical** output to the reference oracles at every thread
//! count. Exactness (not tolerance) is the contract: the fast kernels
//! reorder nothing, they only tile and partition.

use nsflow_nn::gemm::{matmul, matmul_fast, matvec, matvec_fast};
use nsflow_tensor::par::KernelOptions;
use proptest::prelude::*;

/// Random matrix entries on a 1/8 grid with ~11% exact zeros, so the
/// reference's `aip == 0.0` skip branch is exercised and products stay
/// exactly representable.
fn matrix(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(
        (-100i32..100).prop_map(|v| if v % 9 == 0 { 0.0 } else { v as f32 / 8.0 }),
        len,
    )
}

/// Shapes plus matching data plus a thread count, for `matmul`.
fn matmul_case() -> impl Strategy<Value = (usize, usize, usize, Vec<f32>, Vec<f32>, usize)> {
    (0usize..20, 0usize..20, 0usize..20, 1usize..6).prop_flat_map(|(m, k, n, threads)| {
        (
            Just(m),
            Just(k),
            Just(n),
            matrix(m * k),
            matrix(k * n),
            Just(threads),
        )
    })
}

/// Shapes plus matching data plus a thread count, for `matvec`.
fn matvec_case() -> impl Strategy<Value = (usize, usize, Vec<f32>, Vec<f32>, usize)> {
    (0usize..40, 0usize..40, 1usize..6).prop_flat_map(|(m, k, threads)| {
        (Just(m), Just(k), matrix(m * k), matrix(k), Just(threads))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_fast_matches_reference((m, k, n, a, b, threads) in matmul_case()) {
        let expected = matmul(&a, &b, m, k, n);
        let opts = KernelOptions::with_threads(threads);
        prop_assert_eq!(matmul_fast(&a, &b, m, k, n, &opts), expected);
    }

    #[test]
    fn matvec_fast_matches_reference((m, k, a, x, threads) in matvec_case()) {
        let expected = matvec(&a, &x, m, k);
        let opts = KernelOptions::with_threads(threads);
        prop_assert_eq!(matvec_fast(&a, &x, m, k, &opts), expected);
    }
}

/// Deterministic pseudo-random data for the large-shape cases the random
/// ranges above do not reach: sizes that cross the parallel threshold and
/// the `K_TILE` boundary.
fn lcg_data(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Grid-quantized values with ~10% exact zeros.
            let v = ((state >> 40) as i32 % 64) as f32 / 16.0;
            if (state >> 33).is_multiple_of(10) {
                0.0
            } else {
                v
            }
        })
        .collect()
}

#[test]
fn matmul_fast_exact_above_parallel_threshold_and_k_tile() {
    // 96×300×64: crosses PAR_THRESHOLD_FLOPS (2^16) and the K_TILE = 256
    // boundary, so both the tiled reduction and the threaded row split run.
    let (m, k, n) = (96usize, 300usize, 64usize);
    let a = lcg_data(m * k, 7);
    let b = lcg_data(k * n, 8);
    let expected = matmul(&a, &b, m, k, n);
    for threads in [1usize, 2, 3, 5, 16] {
        let opts = KernelOptions::with_threads(threads);
        assert_eq!(
            matmul_fast(&a, &b, m, k, n, &opts),
            expected,
            "threads={threads}"
        );
    }
    assert_eq!(
        matmul_fast(&a, &b, m, k, n, &KernelOptions::auto()),
        expected
    );
}

#[test]
fn matvec_fast_exact_above_parallel_threshold() {
    let (m, k) = (512usize, 256usize);
    let a = lcg_data(m * k, 9);
    let x = lcg_data(k, 10);
    let expected = matvec(&a, &x, m, k);
    for threads in [1usize, 2, 7, 32] {
        let opts = KernelOptions::with_threads(threads);
        assert_eq!(
            matvec_fast(&a, &x, m, k, &opts),
            expected,
            "threads={threads}"
        );
    }
}

#[test]
fn degenerate_dimensions_are_exact() {
    let opts = KernelOptions::with_threads(4);
    // m = 0: empty output.
    assert_eq!(
        matmul_fast(&[], &[1.0, 2.0], 0, 1, 2, &opts),
        Vec::<f32>::new()
    );
    // k = 0: all-zero m×n output (no accumulation happens).
    assert_eq!(matmul_fast(&[], &[], 3, 0, 2, &opts), vec![0.0; 6]);
    assert_eq!(matmul(&[], &[], 3, 0, 2), vec![0.0; 6]);
    // n = 0: empty output.
    assert_eq!(
        matmul_fast(&[1.0, 2.0], &[], 2, 1, 0, &opts),
        Vec::<f32>::new()
    );
    // matvec with m = 0 and k = 0.
    assert_eq!(matvec_fast(&[], &[1.0], 0, 1, &opts), Vec::<f32>::new());
    assert_eq!(matvec_fast(&[], &[], 2, 0, &opts), vec![0.0; 2]);
    assert_eq!(matvec(&[], &[], 2, 0), vec![0.0; 2]);
}

#[test]
fn more_threads_than_rows_is_exact() {
    let (m, k, n) = (3usize, 40usize, 40usize);
    let a = lcg_data(m * k, 11);
    let b = lcg_data(k * n, 12);
    let expected = matmul(&a, &b, m, k, n);
    assert_eq!(
        matmul_fast(&a, &b, m, k, n, &KernelOptions::with_threads(64)),
        expected
    );
}
