//! Functional executor for [`Model`]s.
//!
//! Executes each layer on real `f32` tensors: convolution via im2col +
//! the blocked [`crate::gemm::matmul_fast`] engine kernel, linear, max/
//! global-average pooling, batch norm (inference affine with unit
//! statistics) and ReLU. The executor exists to (a) validate the shape
//! algebra against real data movement and (b) drive the quantized
//! reasoning-accuracy experiments with genuine NN arithmetic.
//!
//! The engine kernels are bit-identical to the reference GEMM oracles at
//! every thread count, so [`forward`] (which runs with
//! [`KernelOptions::default`]) and [`forward_with`] produce the same
//! tensors regardless of the `threads` knob.
//!
//! Weights are owned by [`Parameters`], generated deterministically from a
//! seed so every experiment is reproducible.

use nsflow_telemetry as telemetry;
use nsflow_tensor::par::KernelOptions;
use nsflow_tensor::{Shape, Tensor};
use rand::Rng;

use crate::{gemm, LayerKind, Model, NnError, Result};

/// Per-layer weights for a model.
#[derive(Debug, Clone, PartialEq)]
pub struct Parameters {
    /// `weights[i]` holds layer `i`'s filter/weight matrix (empty for
    /// parameter-free layers).
    weights: Vec<Vec<f32>>,
    /// `biases[i]` holds layer `i`'s bias vector (empty when absent).
    biases: Vec<Vec<f32>>,
}

impl Parameters {
    /// Draws He-style random weights for every layer of `model`.
    pub fn random<R: Rng + ?Sized>(model: &Model, rng: &mut R) -> Self {
        let mut weights = Vec::with_capacity(model.layers().len());
        let mut biases = Vec::with_capacity(model.layers().len());
        for (i, layer) in model.layers().iter().enumerate() {
            match layer.kind() {
                LayerKind::Conv2d {
                    in_ch,
                    out_ch,
                    kernel,
                    ..
                } => {
                    let fan_in = in_ch * kernel * kernel;
                    let std = (2.0 / fan_in as f32).sqrt();
                    weights.push(gaussianish(out_ch * fan_in, std, rng));
                    biases.push(vec![0.0; *out_ch]);
                }
                LayerKind::Linear {
                    in_features,
                    out_features,
                } => {
                    let std = (2.0 / *in_features as f32).sqrt();
                    weights.push(gaussianish(out_features * in_features, std, rng));
                    biases.push(vec![0.0; *out_features]);
                }
                LayerKind::BatchNorm2d => {
                    let c = model.layer_input_shape(i).dims()[1];
                    weights.push(vec![1.0; c]); // scale γ
                    biases.push(vec![0.0; c]); // shift β
                }
                LayerKind::MaxPool2d { .. } | LayerKind::GlobalAvgPool | LayerKind::Relu => {
                    weights.push(Vec::new());
                    biases.push(Vec::new());
                }
            }
        }
        Parameters { weights, biases }
    }

    /// Layer `i`'s weight buffer.
    #[must_use]
    pub fn weight(&self, i: usize) -> &[f32] {
        &self.weights[i]
    }

    /// Layer `i`'s bias buffer.
    #[must_use]
    pub fn bias(&self, i: usize) -> &[f32] {
        &self.biases[i]
    }

    /// Mutable weight buffer (used by the quantization harness to apply
    /// fake quantization in place).
    pub fn weight_mut(&mut self, i: usize) -> &mut Vec<f32> {
        &mut self.weights[i]
    }

    /// Fake-quantizes every layer's weights to `dtype` (per-layer
    /// symmetric scales) — the weight side of running the network on an
    /// integer datapath.
    pub fn quantize_weights(&mut self, dtype: nsflow_tensor::DType) {
        use nsflow_tensor::quant;
        for w in &mut self.weights {
            if w.is_empty() {
                continue;
            }
            if let Ok(q) = quant::quantize_slice_to(w, dtype) {
                *w = q;
            }
        }
    }
}

/// Sum of twelve uniforms, shifted — a cheap approximately-normal draw
/// that keeps `rand` the only dependency.
fn gaussianish<R: Rng + ?Sized>(n: usize, std: f32, rng: &mut R) -> Vec<f32> {
    (0..n)
        .map(|_| {
            let s: f32 = (0..12).map(|_| rng.gen::<f32>()).sum::<f32>() - 6.0;
            s * std
        })
        .collect()
}

/// Runs a full forward pass of `model` with `params` on `input`.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] if `input` differs from the model's
/// declared input shape, and propagates per-layer shape errors.
pub fn forward(model: &Model, params: &Parameters, input: &Tensor) -> Result<Tensor> {
    forward_with(model, params, input, &KernelOptions::default())
}

/// Runs a full forward pass with an explicit kernel-engine configuration
/// (thread count). The result is independent of `options.threads`.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] if `input` differs from the model's
/// declared input shape, and propagates per-layer shape errors.
pub fn forward_with(
    model: &Model,
    params: &Parameters,
    input: &Tensor,
    options: &KernelOptions,
) -> Result<Tensor> {
    let _span = telemetry::span!("nn.forward");
    if input.shape() != model.input_shape() {
        return Err(NnError::ShapeMismatch {
            layer: "<input>".into(),
            expected: model.input_shape().to_string(),
            actual: input.shape().to_string(),
        });
    }
    let mut x = input.clone();
    for (i, layer) in model.layers().iter().enumerate() {
        telemetry::counter!("nn.layers_executed").incr();
        x = forward_layer(
            layer.kind(),
            &x,
            params.weight(i),
            params.bias(i),
            layer,
            options,
        )?;
    }
    Ok(x)
}

fn forward_layer(
    kind: &LayerKind,
    x: &Tensor,
    w: &[f32],
    b: &[f32],
    layer: &crate::LayerSpec,
    options: &KernelOptions,
) -> Result<Tensor> {
    let out_shape = layer.output_shape(x.shape())?;
    match kind {
        LayerKind::Conv2d {
            in_ch,
            out_ch,
            kernel,
            stride,
            padding,
        } => conv2d(
            x, w, b, *in_ch, *out_ch, *kernel, *stride, *padding, &out_shape, options,
        ),
        LayerKind::Linear {
            in_features,
            out_features,
        } => {
            let batch = out_shape.dims()[0];
            let mut out = Vec::with_capacity(batch * out_features);
            for bi in 0..batch {
                let row = &x.data()[bi * in_features..(bi + 1) * in_features];
                let y = gemm::matvec_fast(w, row, *out_features, *in_features, options);
                out.extend(y.iter().zip(b).map(|(v, bias)| v + bias));
            }
            Ok(Tensor::from_vec(out_shape, out).expect("volume matches by construction"))
        }
        LayerKind::MaxPool2d { kernel } => Ok(maxpool(x, *kernel, &out_shape)),
        LayerKind::GlobalAvgPool => Ok(global_avg_pool(x, &out_shape)),
        LayerKind::BatchNorm2d => Ok(batchnorm(x, w, b)),
        LayerKind::Relu => Ok(x.map(|v| v.max(0.0))),
    }
}

#[allow(clippy::too_many_arguments)]
fn conv2d(
    x: &Tensor,
    w: &[f32],
    b: &[f32],
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    out_shape: &Shape,
    options: &KernelOptions,
) -> Result<Tensor> {
    let d = x.shape().dims();
    let (batch, h, width) = (d[0], d[2], d[3]);
    let od = out_shape.dims();
    let (oh, ow) = (od[2], od[3]);
    let k2 = kernel * kernel;
    let patch_len = in_ch * k2;

    let mut out = vec![0.0f32; out_shape.volume()];
    for bi in 0..batch {
        // im2col: rows = output pixels, cols = in_ch·k·k.
        let mut cols = vec![0.0f32; oh * ow * patch_len];
        for oy in 0..oh {
            for ox in 0..ow {
                let row = oy * ow + ox;
                for c in 0..in_ch {
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = (oy * stride + ky) as isize - padding as isize;
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            let v =
                                if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < width
                                {
                                    x.data()
                                        [((bi * in_ch + c) * h + iy as usize) * width + ix as usize]
                                } else {
                                    0.0
                                };
                            cols[row * patch_len + (c * k2 + ky * kernel + kx)] = v;
                        }
                    }
                }
            }
        }
        // GEMM: (oh·ow × patch) · (patch × out_ch). Weights are stored
        // out_ch-major, so multiply cols · wᵀ via matmul with B laid out
        // (patch × out_ch).
        let mut wt = vec![0.0f32; patch_len * out_ch];
        for oc in 0..out_ch {
            for p in 0..patch_len {
                wt[p * out_ch + oc] = w[oc * patch_len + p];
            }
        }
        let y = gemm::matmul_fast(&cols, &wt, oh * ow, patch_len, out_ch, options);
        // Scatter back to NCHW, adding bias.
        for oc in 0..out_ch {
            for pix in 0..oh * ow {
                out[((bi * out_ch + oc) * oh * ow) + pix] = y[pix * out_ch + oc] + b[oc];
            }
        }
    }
    Ok(Tensor::from_vec(out_shape.clone(), out).expect("volume matches by construction"))
}

fn maxpool(x: &Tensor, kernel: usize, out_shape: &Shape) -> Tensor {
    let d = x.shape().dims();
    let (batch, ch, h, w) = (d[0], d[1], d[2], d[3]);
    let od = out_shape.dims();
    let (oh, ow) = (od[2], od[3]);
    let mut out = vec![f32::NEG_INFINITY; out_shape.volume()];
    for bi in 0..batch {
        for c in 0..ch {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut m = f32::NEG_INFINITY;
                    for ky in 0..kernel {
                        for kx in 0..kernel {
                            let iy = oy * kernel + ky;
                            let ix = ox * kernel + kx;
                            if iy < h && ix < w {
                                m = m.max(x.data()[((bi * ch + c) * h + iy) * w + ix]);
                            }
                        }
                    }
                    out[((bi * ch + c) * oh + oy) * ow + ox] = m;
                }
            }
        }
    }
    Tensor::from_vec(out_shape.clone(), out).expect("volume matches by construction")
}

fn global_avg_pool(x: &Tensor, out_shape: &Shape) -> Tensor {
    let d = x.shape().dims();
    let (batch, ch, h, w) = (d[0], d[1], d[2], d[3]);
    let mut out = vec![0.0f32; batch * ch];
    let denom = (h * w) as f32;
    for bi in 0..batch {
        for c in 0..ch {
            let start = (bi * ch + c) * h * w;
            out[bi * ch + c] = x.data()[start..start + h * w].iter().sum::<f32>() / denom;
        }
    }
    Tensor::from_vec(out_shape.clone(), out).expect("volume matches by construction")
}

fn batchnorm(x: &Tensor, gamma: &[f32], beta: &[f32]) -> Tensor {
    // Inference-mode affine with unit running statistics: y = γ·x + β.
    let d = x.shape().dims();
    let (batch, ch, h, w) = (d[0], d[1], d[2], d[3]);
    let mut out = x.data().to_vec();
    for bi in 0..batch {
        for c in 0..ch {
            let start = (bi * ch + c) * h * w;
            for v in &mut out[start..start + h * w] {
                *v = gamma[c] * *v + beta[c];
            }
        }
    }
    Tensor::from_vec(x.shape().clone(), out).expect("same shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{models, LayerSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn forward_checks_input_shape() {
        let m = models::small_cnn(16, 1, 8);
        let p = Parameters::random(&m, &mut rng());
        let bad = Tensor::zeros(Shape::new(vec![1, 2, 16, 16]));
        assert!(forward(&m, &p, &bad).is_err());
    }

    #[test]
    fn forward_produces_declared_output_shape() {
        let m = models::small_cnn(16, 1, 8);
        let p = Parameters::random(&m, &mut rng());
        let x = Tensor::full(Shape::new(vec![1, 1, 16, 16]), 0.5);
        let y = forward(&m, &p, &x).unwrap();
        assert_eq!(y.shape(), m.output_shape());
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn conv_identity_kernel_passes_through() {
        // One 1×1 conv with weight 1, bias 0 == identity.
        let m = Model::new(
            "id",
            Shape::new(vec![1, 1, 3, 3]),
            vec![LayerSpec::new(
                "c",
                LayerKind::Conv2d {
                    in_ch: 1,
                    out_ch: 1,
                    kernel: 1,
                    stride: 1,
                    padding: 0,
                },
            )],
        )
        .unwrap();
        let mut p = Parameters::random(&m, &mut rng());
        p.weight_mut(0).copy_from_slice(&[1.0]);
        let x = Tensor::from_vec(
            Shape::new(vec![1, 1, 3, 3]),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
        )
        .unwrap();
        let y = forward(&m, &p, &x).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_3x3_sum_kernel_counts_neighbors() {
        // All-ones 3×3 kernel with padding 1 on an all-ones input: interior
        // pixels see 9 neighbours, corners 4, edges 6.
        let m = Model::new(
            "sum",
            Shape::new(vec![1, 1, 3, 3]),
            vec![LayerSpec::new(
                "c",
                LayerKind::Conv2d {
                    in_ch: 1,
                    out_ch: 1,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                },
            )],
        )
        .unwrap();
        let mut p = Parameters::random(&m, &mut rng());
        p.weight_mut(0).iter_mut().for_each(|w| *w = 1.0);
        let x = Tensor::full(Shape::new(vec![1, 1, 3, 3]), 1.0);
        let y = forward(&m, &p, &x).unwrap();
        assert_eq!(y.data(), &[4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0]);
    }

    #[test]
    fn relu_clamps_negative() {
        let m = Model::new(
            "r",
            Shape::new(vec![1, 1, 1, 2]),
            vec![LayerSpec::new("relu", LayerKind::Relu)],
        )
        .unwrap();
        let p = Parameters::random(&m, &mut rng());
        let x = Tensor::from_vec(Shape::new(vec![1, 1, 1, 2]), vec![-1.0, 2.0]).unwrap();
        assert_eq!(forward(&m, &p, &x).unwrap().data(), &[0.0, 2.0]);
    }

    #[test]
    fn maxpool_takes_window_max() {
        let m = Model::new(
            "p",
            Shape::new(vec![1, 1, 2, 2]),
            vec![LayerSpec::new("mp", LayerKind::MaxPool2d { kernel: 2 })],
        )
        .unwrap();
        let p = Parameters::random(&m, &mut rng());
        let x = Tensor::from_vec(Shape::new(vec![1, 1, 2, 2]), vec![1.0, 7.0, 3.0, 5.0]).unwrap();
        assert_eq!(forward(&m, &p, &x).unwrap().data(), &[7.0]);
    }

    #[test]
    fn global_avg_pool_averages() {
        let m = Model::new(
            "g",
            Shape::new(vec![1, 2, 2, 2]),
            vec![LayerSpec::new("gap", LayerKind::GlobalAvgPool)],
        )
        .unwrap();
        let p = Parameters::random(&m, &mut rng());
        let x = Tensor::from_vec(
            Shape::new(vec![1, 2, 2, 2]),
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
        )
        .unwrap();
        assert_eq!(forward(&m, &p, &x).unwrap().data(), &[2.5, 10.0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let m = models::small_cnn(16, 1, 8);
        let p1 = Parameters::random(&m, &mut StdRng::seed_from_u64(5));
        let p2 = Parameters::random(&m, &mut StdRng::seed_from_u64(5));
        assert_eq!(p1, p2);
    }

    #[test]
    fn quantized_weights_degrade_output_monotonically() {
        use nsflow_tensor::DType;
        let m = models::small_cnn(16, 1, 8);
        let reference = Parameters::random(&m, &mut StdRng::seed_from_u64(3));
        let x = Tensor::full(Shape::new(vec![1, 1, 16, 16]), 0.3);
        let y_ref = forward(&m, &reference, &x).unwrap();

        let mut err = Vec::new();
        for dtype in [DType::Fp16, DType::Int8, DType::Int4] {
            let mut q = reference.clone();
            q.quantize_weights(dtype);
            let y = forward(&m, &q, &x).unwrap();
            let e: f32 = y
                .data()
                .iter()
                .zip(y_ref.data())
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / y.data().len() as f32;
            err.push(e);
        }
        assert!(
            err[0] < err[1],
            "FP16 error {} !< INT8 error {}",
            err[0],
            err[1]
        );
        assert!(
            err[1] < err[2],
            "INT8 error {} !< INT4 error {}",
            err[1],
            err[2]
        );
        // INT8 stays close to the reference; INT4 visibly drifts.
        assert!(err[1] < 0.05, "INT8 error too large: {}", err[1]);
        assert!(err[2] > err[1] * 2.0, "INT4 should be clearly coarser");
    }

    #[test]
    fn stride_two_halves_resolution_functionally() {
        let m = Model::new(
            "s2",
            Shape::new(vec![1, 1, 8, 8]),
            vec![LayerSpec::new(
                "c",
                LayerKind::Conv2d {
                    in_ch: 1,
                    out_ch: 2,
                    kernel: 3,
                    stride: 2,
                    padding: 1,
                },
            )],
        )
        .unwrap();
        let p = Parameters::random(&m, &mut rng());
        let x = Tensor::full(Shape::new(vec![1, 1, 8, 8]), 1.0);
        let y = forward(&m, &p, &x).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 4, 4]);
    }
}
