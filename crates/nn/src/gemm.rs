//! Dense GEMM reference kernel.
//!
//! This is the arithmetic the AdArray performs in NN mode; the functional
//! executor lowers convolutions onto it via im2col, and the architecture
//! tests cross-check the systolic microsimulator's outputs against it.

/// `C = A·B` for row-major `A (m×k)`, `B (k×n)`, producing row-major
/// `C (m×n)`.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
#[must_use]
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += aip * bv;
            }
        }
    }
    c
}

/// `y = A·x` for row-major `A (m×k)` and vector `x (k)`.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
#[must_use]
pub fn matvec(a: &[f32], x: &[f32], m: usize, k: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(x.len(), k, "x must have length k");
    (0..m)
        .map(|i| {
            a[i * k..(i + 1) * k]
                .iter()
                .zip(x)
                .map(|(av, xv)| av * xv)
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        assert_eq!(matmul(&a, &b, 2, 2, 2), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_preserves() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [9.0, 8.0, 7.0, 6.0];
        assert_eq!(matmul(&a, &b, 2, 2, 2), b.to_vec());
    }

    #[test]
    fn rectangular_dims() {
        // (1×3)·(3×2)
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        assert_eq!(matmul(&a, &b, 1, 3, 2), vec![14.0, 32.0]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [7.0, 8.0, 9.0];
        assert_eq!(matvec(&a, &x, 2, 3), matmul(&a, &x, 2, 3, 1));
    }

    #[test]
    #[should_panic(expected = "A must be m×k")]
    fn dimension_checks() {
        let _ = matmul(&[1.0], &[1.0], 2, 2, 2);
    }
}
