//! Dense GEMM kernels: the reference oracles and the blocked engine.
//!
//! [`matmul`]/[`matvec`] are the reference kernels — the arithmetic the
//! AdArray performs in NN mode; the functional executor lowers
//! convolutions onto GEMM via im2col, and the architecture tests
//! cross-check the systolic microsimulator's outputs against them. They
//! are kept verbatim as the cross-check oracles for the fast path.
//!
//! [`matmul_fast`]/[`matvec_fast`] are the engine kernels: cache-tiled
//! over the reduction dimension (one `K_TILE × n` panel of `B` stays hot
//! across a whole row block of `A`) and thread-parallel over contiguous
//! row blocks of `C` via [`nsflow_tensor::par`]. Each output element is
//! owned by exactly one worker and accumulated in the same `p = 0..k`
//! order as the reference, so the fast kernels are **bit-identical** to
//! the oracles at every thread count — the property the proptests in
//! `crates/nn/tests/gemm_equivalence.rs` pin down.

use nsflow_telemetry as telemetry;
use nsflow_tensor::par::KernelOptions;

/// Reduction-dimension tile of the blocked kernel: `K_TILE` rows of `B`
/// (a `K_TILE × n` panel) are streamed against a block of `A` rows before
/// moving on, which keeps the panel in cache across the row block.
/// Tiling the reduction loop does not change the per-element accumulation
/// order — tiles are visited in ascending `p` order and partial sums land
/// directly in `C` — so blocking preserves bit-exactness.
const K_TILE: usize = 256;

/// Below this many multiply-accumulates the thread-spawn overhead
/// outweighs any speedup; the fast kernels short-circuit to one worker.
const PAR_THRESHOLD_FLOPS: usize = 1 << 16;

/// `C = A·B` for row-major `A (m×k)`, `B (k×n)`, producing row-major
/// `C (m×n)`.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
#[must_use]
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    telemetry::counter!("nn.gemm_reference_calls").incr();
    telemetry::counter!("nn.flops_reference").add(2 * (m as u64) * (k as u64) * (n as u64));
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += aip * bv;
            }
        }
    }
    c
}

/// `y = A·x` for row-major `A (m×k)` and vector `x (k)`.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
#[must_use]
pub fn matvec(a: &[f32], x: &[f32], m: usize, k: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(x.len(), k, "x must have length k");
    telemetry::counter!("nn.gemm_reference_calls").incr();
    telemetry::counter!("nn.flops_reference").add(2 * (m as u64) * (k as u64));
    (0..m)
        .map(|i| {
            a[i * k..(i + 1) * k]
                .iter()
                .zip(x)
                .map(|(av, xv)| av * xv)
                .sum()
        })
        .collect()
}

/// Blocked, thread-parallel `C = A·B` — bit-identical to [`matmul`].
///
/// Workers own contiguous row blocks of `C`; within a block the reduction
/// dimension is tiled by `K_TILE` so the active `B` panel stays cached.
/// Every `C[i][j]` receives its `a[i][p]·b[p][j]` contributions in the
/// same ascending-`p` order as the reference (including the reference's
/// skip of zero `a` entries), so the result does not depend on
/// `options.threads`.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
#[must_use]
pub fn matmul_fast(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    options: &KernelOptions,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(b.len(), k * n, "B must be k×n");
    telemetry::counter!("nn.gemm_fast_calls").incr();
    telemetry::counter!("nn.flops_fast").add(2 * (m as u64) * (k as u64) * (n as u64));
    let mut c = vec![0.0f32; m * n];
    if m == 0 || n == 0 {
        return c;
    }
    let threads = if m * k * n < PAR_THRESHOLD_FLOPS {
        1
    } else {
        options.resolve()
    };
    // Split C into disjoint contiguous row blocks up front; each worker
    // receives exclusive ownership of its block, so no synchronization
    // (and no unsafe) is needed.
    let chunk_rows = m.div_ceil(threads.clamp(1, m));
    let worker = |row0: usize, c_block: &mut [f32]| {
        let rows = c_block.len() / n;
        for p0 in (0..k).step_by(K_TILE) {
            let p1 = (p0 + K_TILE).min(k);
            for i in 0..rows {
                let ai = (row0 + i) * k;
                let c_row = &mut c_block[i * n..(i + 1) * n];
                for p in p0..p1 {
                    let aip = a[ai + p];
                    if aip == 0.0 {
                        continue;
                    }
                    let b_row = &b[p * n..(p + 1) * n];
                    for (cv, bv) in c_row.iter_mut().zip(b_row) {
                        *cv += aip * bv;
                    }
                }
            }
        }
    };
    if threads <= 1 || chunk_rows >= m {
        worker(0, &mut c);
    } else {
        let worker = &worker;
        std::thread::scope(|s| {
            for (bi, c_block) in c.chunks_mut(chunk_rows * n).enumerate() {
                s.spawn(move || worker(bi * chunk_rows, c_block));
            }
        });
    }
    c
}

/// Thread-parallel `y = A·x` — bit-identical to [`matvec`].
///
/// Rows are distributed over workers in contiguous blocks; each row's dot
/// product folds in the same left-to-right order as the reference.
///
/// # Panics
///
/// Panics if slice lengths disagree with the given dimensions.
#[must_use]
pub fn matvec_fast(a: &[f32], x: &[f32], m: usize, k: usize, options: &KernelOptions) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A must be m×k");
    assert_eq!(x.len(), k, "x must have length k");
    let threads = if m * k < PAR_THRESHOLD_FLOPS {
        1
    } else {
        options.resolve()
    };
    if threads <= 1 {
        // Small problem: the reference kernel runs (and is counted under
        // the `nn.*_reference` lanes — those record what executed).
        return matvec(a, x, m, k);
    }
    telemetry::counter!("nn.gemm_fast_calls").incr();
    telemetry::counter!("nn.flops_fast").add(2 * (m as u64) * (k as u64));
    let mut y = vec![0.0f32; m];
    let out = &mut y[..];
    let chunk = m.div_ceil(threads);
    std::thread::scope(|s| {
        for (bi, y_block) in out.chunks_mut(chunk).enumerate() {
            s.spawn(move || {
                let row0 = bi * chunk;
                for (i, slot) in y_block.iter_mut().enumerate() {
                    let row = &a[(row0 + i) * k..(row0 + i + 1) * k];
                    *slot = row.iter().zip(x).map(|(av, xv)| av * xv).sum();
                }
            });
        }
    });
    y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_by_two() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        assert_eq!(matmul(&a, &b, 2, 2, 2), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_preserves() {
        let a = [1.0, 0.0, 0.0, 1.0];
        let b = [9.0, 8.0, 7.0, 6.0];
        assert_eq!(matmul(&a, &b, 2, 2, 2), b.to_vec());
    }

    #[test]
    fn rectangular_dims() {
        // (1×3)·(3×2)
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        assert_eq!(matmul(&a, &b, 1, 3, 2), vec![14.0, 32.0]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [7.0, 8.0, 9.0];
        assert_eq!(matvec(&a, &x, 2, 3), matmul(&a, &x, 2, 3, 1));
    }

    #[test]
    #[should_panic(expected = "A must be m×k")]
    fn dimension_checks() {
        let _ = matmul(&[1.0], &[1.0], 2, 2, 2);
    }
}
