use std::fmt;

use nsflow_tensor::{DType, Shape};

use crate::{NnError, Result};

/// GEMM dimensions of a layer as mapped onto a systolic array.
///
/// Convolutions are lowered by im2col: `m` is the number of output pixels,
/// `k` the reduction length (`in_ch · k_h · k_w`) and `n` the number of
/// filters. These are the `d₁, d₂, d₃` ("layer dimensions m, n, k") in the
/// paper's AdArray runtime function, eq. (1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmDims {
    /// Output rows (spatial positions × batch).
    pub m: usize,
    /// Output columns (filters / output features).
    pub n: usize,
    /// Reduction length.
    pub k: usize,
}

impl GemmDims {
    /// Multiply–accumulate count of the GEMM.
    #[must_use]
    pub const fn macs(&self) -> u64 {
        (self.m as u64) * (self.n as u64) * (self.k as u64)
    }
}

impl fmt::Display for GemmDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GEMM[m={}, n={}, k={}]", self.m, self.n, self.k)
    }
}

/// The kind and hyper-parameters of one layer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum LayerKind {
    /// 2-D convolution over NCHW input.
    Conv2d {
        /// Input channels.
        in_ch: usize,
        /// Output channels (filter count).
        out_ch: usize,
        /// Square kernel side.
        kernel: usize,
        /// Stride (same both axes).
        stride: usize,
        /// Zero padding (same both axes).
        padding: usize,
    },
    /// Fully connected layer.
    Linear {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
    },
    /// Max pooling with square window.
    MaxPool2d {
        /// Window side (also used as stride).
        kernel: usize,
    },
    /// Global average pooling to 1×1.
    GlobalAvgPool,
    /// Batch normalization (shape preserving).
    BatchNorm2d,
    /// ReLU activation (shape preserving).
    Relu,
}

/// A named layer with derived shape/cost metadata.
///
/// # Examples
///
/// ```
/// use nsflow_nn::{LayerSpec, LayerKind};
/// use nsflow_tensor::Shape;
///
/// let conv = LayerSpec::new(
///     "conv1",
///     LayerKind::Conv2d { in_ch: 3, out_ch: 64, kernel: 7, stride: 2, padding: 3 },
/// );
/// let out = conv.output_shape(&Shape::new(vec![1, 3, 160, 160]))?;
/// assert_eq!(out.dims(), &[1, 64, 80, 80]);
/// # Ok::<(), nsflow_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerSpec {
    name: String,
    kind: LayerKind,
}

impl LayerSpec {
    /// Creates a named layer.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        LayerSpec {
            name: name.into(),
            kind,
        }
    }

    /// The layer's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer's kind and hyper-parameters.
    #[must_use]
    pub fn kind(&self) -> &LayerKind {
        &self.kind
    }

    /// Output shape for a given NCHW (conv/pool) or `[batch, features]`
    /// (linear) input shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when the input rank or channel
    /// count is wrong, and [`NnError::InvalidLayer`] when hyper-parameters
    /// cannot produce a positive output size.
    pub fn output_shape(&self, input: &Shape) -> Result<Shape> {
        match &self.kind {
            LayerKind::Conv2d {
                in_ch,
                out_ch,
                kernel,
                stride,
                padding,
            } => {
                let (b, c, h, w) = self.expect_nchw(input)?;
                if c != *in_ch {
                    return Err(self.shape_err(&format!("[N, {in_ch}, H, W]"), input));
                }
                let oh = conv_out(h, *kernel, *stride, *padding)
                    .ok_or_else(|| self.invalid("kernel exceeds padded input height"))?;
                let ow = conv_out(w, *kernel, *stride, *padding)
                    .ok_or_else(|| self.invalid("kernel exceeds padded input width"))?;
                if *out_ch == 0 {
                    return Err(self.invalid("zero output channels"));
                }
                Ok(Shape::new(vec![b, *out_ch, oh, ow]))
            }
            LayerKind::Linear {
                in_features,
                out_features,
            } => {
                let dims = input.dims();
                let feat: usize = dims.iter().skip(1).product();
                if dims.is_empty() || feat != *in_features {
                    return Err(self.shape_err(&format!("[N, {in_features}]"), input));
                }
                Ok(Shape::new(vec![dims[0], *out_features]))
            }
            LayerKind::MaxPool2d { kernel } => {
                let (b, c, h, w) = self.expect_nchw(input)?;
                if *kernel == 0 || h < *kernel || w < *kernel {
                    return Err(self.invalid("pool window exceeds input"));
                }
                Ok(Shape::new(vec![b, c, h / kernel, w / kernel]))
            }
            LayerKind::GlobalAvgPool => {
                let (b, c, _, _) = self.expect_nchw(input)?;
                Ok(Shape::new(vec![b, c]))
            }
            LayerKind::BatchNorm2d | LayerKind::Relu => Ok(input.clone()),
        }
    }

    /// GEMM dimensions when this layer maps onto the systolic array;
    /// `None` for layers executed on the SIMD unit (pool/bn/relu).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from [`Self::output_shape`].
    pub fn gemm_dims(&self, input: &Shape) -> Result<Option<GemmDims>> {
        match &self.kind {
            LayerKind::Conv2d {
                in_ch,
                out_ch,
                kernel,
                ..
            } => {
                let out = self.output_shape(input)?;
                let d = out.dims();
                let (b, oh, ow) = (d[0], d[2], d[3]);
                Ok(Some(GemmDims {
                    m: b * oh * ow,
                    n: *out_ch,
                    k: in_ch * kernel * kernel,
                }))
            }
            LayerKind::Linear {
                in_features,
                out_features,
            } => {
                let out = self.output_shape(input)?;
                Ok(Some(GemmDims {
                    m: out.dims()[0],
                    n: *out_features,
                    k: *in_features,
                }))
            }
            LayerKind::MaxPool2d { .. }
            | LayerKind::GlobalAvgPool
            | LayerKind::BatchNorm2d
            | LayerKind::Relu => Ok(None),
        }
    }

    /// Trainable parameter count (weights + biases; BN has 2 per channel,
    /// which requires the input shape, hence the argument).
    ///
    /// # Errors
    ///
    /// Propagates shape errors for layers that need the input shape.
    pub fn param_count(&self, input: &Shape) -> Result<u64> {
        Ok(match &self.kind {
            LayerKind::Conv2d {
                in_ch,
                out_ch,
                kernel,
                ..
            } => (*out_ch as u64) * (*in_ch as u64) * (*kernel as u64).pow(2) + *out_ch as u64,
            LayerKind::Linear {
                in_features,
                out_features,
            } => (*in_features as u64) * (*out_features as u64) + *out_features as u64,
            LayerKind::BatchNorm2d => {
                let (_, c, _, _) = self.expect_nchw(input)?;
                2 * c as u64
            }
            LayerKind::MaxPool2d { .. } | LayerKind::GlobalAvgPool | LayerKind::Relu => 0,
        })
    }

    /// FLOP count (2 × MACs for GEMM layers; element counts for the rest).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn flops(&self, input: &Shape) -> Result<u64> {
        if let Some(g) = self.gemm_dims(input)? {
            return Ok(2 * g.macs());
        }
        let out = self.output_shape(input)?;
        Ok(match &self.kind {
            LayerKind::MaxPool2d { kernel } => (out.volume() as u64) * (*kernel as u64).pow(2),
            LayerKind::GlobalAvgPool => input.volume() as u64,
            LayerKind::BatchNorm2d => 2 * out.volume() as u64,
            LayerKind::Relu => out.volume() as u64,
            _ => unreachable!("GEMM layers handled above"),
        })
    }

    /// Bytes of weights at precision `dtype` (activations excluded).
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn weight_bytes(&self, input: &Shape, dtype: DType) -> Result<usize> {
        Ok(dtype.storage_bytes(self.param_count(input)? as usize))
    }

    fn expect_nchw(&self, input: &Shape) -> Result<(usize, usize, usize, usize)> {
        let d = input.dims();
        if d.len() != 4 {
            return Err(self.shape_err("[N, C, H, W]", input));
        }
        Ok((d[0], d[1], d[2], d[3]))
    }

    fn shape_err(&self, expected: &str, actual: &Shape) -> NnError {
        NnError::ShapeMismatch {
            layer: self.name.clone(),
            expected: expected.to_string(),
            actual: actual.to_string(),
        }
    }

    fn invalid(&self, msg: &str) -> NnError {
        NnError::InvalidLayer(format!("{}: {msg}", self.name))
    }
}

fn conv_out(size: usize, kernel: usize, stride: usize, padding: usize) -> Option<usize> {
    let padded = size + 2 * padding;
    if kernel == 0 || stride == 0 || padded < kernel {
        return None;
    }
    Some((padded - kernel) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(in_ch: usize, out_ch: usize, k: usize, s: usize, p: usize) -> LayerSpec {
        LayerSpec::new(
            "c",
            LayerKind::Conv2d {
                in_ch,
                out_ch,
                kernel: k,
                stride: s,
                padding: p,
            },
        )
    }

    #[test]
    fn conv_output_shape_resnet_stem() {
        let stem = conv(3, 64, 7, 2, 3);
        let out = stem
            .output_shape(&Shape::new(vec![1, 3, 224, 224]))
            .unwrap();
        assert_eq!(out.dims(), &[1, 64, 112, 112]);
    }

    #[test]
    fn conv_same_padding_preserves_hw() {
        let c = conv(64, 64, 3, 1, 1);
        let out = c.output_shape(&Shape::new(vec![2, 64, 40, 40])).unwrap();
        assert_eq!(out.dims(), &[2, 64, 40, 40]);
    }

    #[test]
    fn conv_rejects_wrong_channels_and_rank() {
        let c = conv(3, 8, 3, 1, 1);
        assert!(c.output_shape(&Shape::new(vec![1, 4, 8, 8])).is_err());
        assert!(c.output_shape(&Shape::new(vec![3, 8, 8])).is_err());
    }

    #[test]
    fn conv_rejects_kernel_larger_than_input() {
        let c = conv(1, 1, 9, 1, 0);
        assert!(matches!(
            c.output_shape(&Shape::new(vec![1, 1, 4, 4])),
            Err(NnError::InvalidLayer(_))
        ));
    }

    #[test]
    fn linear_flattens_trailing_dims() {
        let l = LayerSpec::new(
            "fc",
            LayerKind::Linear {
                in_features: 512,
                out_features: 10,
            },
        );
        let out = l.output_shape(&Shape::new(vec![4, 512])).unwrap();
        assert_eq!(out.dims(), &[4, 10]);
        let out2 = l.output_shape(&Shape::new(vec![4, 8, 8, 8])).unwrap();
        assert_eq!(out2.dims(), &[4, 10]);
        assert!(l.output_shape(&Shape::new(vec![4, 100])).is_err());
    }

    #[test]
    fn pooling_shapes() {
        let p = LayerSpec::new("mp", LayerKind::MaxPool2d { kernel: 2 });
        let out = p.output_shape(&Shape::new(vec![1, 8, 16, 16])).unwrap();
        assert_eq!(out.dims(), &[1, 8, 8, 8]);
        let g = LayerSpec::new("gap", LayerKind::GlobalAvgPool);
        assert_eq!(
            g.output_shape(&Shape::new(vec![1, 512, 5, 5]))
                .unwrap()
                .dims(),
            &[1, 512]
        );
    }

    #[test]
    fn gemm_dims_for_conv() {
        let c = conv(3, 64, 7, 2, 3);
        let g = c
            .gemm_dims(&Shape::new(vec![1, 3, 160, 160]))
            .unwrap()
            .unwrap();
        assert_eq!(
            g,
            GemmDims {
                m: 80 * 80,
                n: 64,
                k: 3 * 49
            }
        );
        assert_eq!(g.macs(), (80 * 80) as u64 * 64 * 147);
    }

    #[test]
    fn gemm_dims_none_for_simd_layers() {
        let r = LayerSpec::new("relu", LayerKind::Relu);
        assert_eq!(r.gemm_dims(&Shape::new(vec![1, 1, 2, 2])).unwrap(), None);
    }

    #[test]
    fn param_counts() {
        let c = conv(3, 64, 7, 2, 3);
        let p = c.param_count(&Shape::new(vec![1, 3, 160, 160])).unwrap();
        assert_eq!(p, 64 * 3 * 49 + 64);
        let l = LayerSpec::new(
            "fc",
            LayerKind::Linear {
                in_features: 512,
                out_features: 10,
            },
        );
        assert_eq!(l.param_count(&Shape::new(vec![1, 512])).unwrap(), 5130);
        let bn = LayerSpec::new("bn", LayerKind::BatchNorm2d);
        assert_eq!(bn.param_count(&Shape::new(vec![1, 64, 8, 8])).unwrap(), 128);
    }

    #[test]
    fn flops_are_twice_macs_for_gemm_layers() {
        let c = conv(16, 32, 3, 1, 1);
        let input = Shape::new(vec![1, 16, 10, 10]);
        let g = c.gemm_dims(&input).unwrap().unwrap();
        assert_eq!(c.flops(&input).unwrap(), 2 * g.macs());
    }

    #[test]
    fn weight_bytes_respect_precision() {
        let c = conv(3, 8, 3, 1, 1);
        let input = Shape::new(vec![1, 3, 8, 8]);
        let fp32 = c.weight_bytes(&input, DType::Fp32).unwrap();
        let int8 = c.weight_bytes(&input, DType::Int8).unwrap();
        assert_eq!(fp32, 4 * int8);
    }
}
