//! # nsflow-nn
//!
//! Neural-network substrate for the NSFlow reproduction.
//!
//! Every workload the paper evaluates pairs a CNN front-end (ResNet-18 for
//! NVSA's perception, smaller backbones for MIMONet/LVRF/PrAE) with a
//! vector-symbolic back-end. This crate provides:
//!
//! - [`LayerSpec`]: shape-level layer descriptions with output-shape,
//!   parameter, FLOP and **GEMM-dimension** derivation — the `m, n, k`
//!   triples the paper's analytical runtime model (eq. (1)) consumes,
//! - [`Model`]: sequential layer graphs plus ready-made builders
//!   ([`models::resnet18`], [`models::small_cnn`], …),
//! - [`exec`]: a functional executor (im2col + GEMM convolution, linear,
//!   pooling, batch-norm, ReLU) used to validate the shape algebra and to
//!   drive quantized-accuracy experiments end to end.
//!
//! # Examples
//!
//! ```
//! use nsflow_nn::models;
//! let m = models::resnet18(160, 3);
//! assert!(m.total_flops() > 1_000_000_000); // multi-GFLOP backbone
//! assert_eq!(m.output_shape().dims().last(), Some(&512));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod layer;
mod model;

pub mod exec;
pub mod gemm;
pub mod models;

pub use error::NnError;
pub use layer::{GemmDims, LayerKind, LayerSpec};
pub use model::Model;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
