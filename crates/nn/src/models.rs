//! Ready-made CNN backbones used by the paper's workloads.
//!
//! The builders return *sequentialized* layer graphs: residual skip
//! connections are folded into the main chain (their element-wise adds are
//! accounted as SIMD-unit work by the trace extractor, matching where they
//! execute on the NSFlow backend). Shape and arithmetic-cost totals match
//! the canonical architectures.

use nsflow_tensor::Shape;

use crate::{LayerKind, LayerSpec, Model};

fn conv(name: String, in_ch: usize, out_ch: usize, k: usize, s: usize, p: usize) -> LayerSpec {
    LayerSpec::new(
        name,
        LayerKind::Conv2d {
            in_ch,
            out_ch,
            kernel: k,
            stride: s,
            padding: p,
        },
    )
}

fn bn(name: String) -> LayerSpec {
    LayerSpec::new(name, LayerKind::BatchNorm2d)
}

fn relu(name: String) -> LayerSpec {
    LayerSpec::new(name, LayerKind::Relu)
}

/// ResNet-18 backbone (conv stem + 8 basic blocks + global average pool),
/// the perception front-end of NVSA (the paper's Listing 1 trace shows its
/// 160×160 activations).
///
/// `input_hw` is the square input resolution, `in_ch` the image channels.
/// The classifier head is omitted — the workloads replace it with their
/// own projection into VSA space.
///
/// # Panics
///
/// Panics if `input_hw < 32` (the stem and four stride-2 stages need it).
#[must_use]
pub fn resnet18(input_hw: usize, in_ch: usize) -> Model {
    assert!(input_hw >= 32, "resnet18 needs input_hw >= 32");
    let mut layers = vec![
        conv("conv1".into(), in_ch, 64, 7, 2, 3),
        bn("bn1".into()),
        relu("relu1".into()),
        LayerSpec::new("maxpool", LayerKind::MaxPool2d { kernel: 2 }),
    ];

    let stages: [(usize, usize, usize); 4] =
        [(64, 64, 1), (64, 128, 2), (128, 256, 2), (256, 512, 2)];
    for (stage, &(in_c, out_c, first_stride)) in stages.iter().enumerate() {
        for block in 0..2 {
            let (bin, stride) = if block == 0 {
                (in_c, first_stride)
            } else {
                (out_c, 1)
            };
            let base = format!("layer{}_{block}", stage + 1);
            layers.push(conv(format!("{base}_conv1"), bin, out_c, 3, stride, 1));
            layers.push(bn(format!("{base}_bn1")));
            layers.push(relu(format!("{base}_relu1")));
            layers.push(conv(format!("{base}_conv2"), out_c, out_c, 3, 1, 1));
            layers.push(bn(format!("{base}_bn2")));
            layers.push(relu(format!("{base}_relu2")));
            if block == 0 && (stride != 1 || bin != out_c) {
                // Projection shortcut, sequentialized after the block.
                layers.push(conv(format!("{base}_downsample"), out_c, out_c, 1, 1, 0));
            }
        }
    }
    layers.push(LayerSpec::new("avgpool", LayerKind::GlobalAvgPool));
    Model::new(
        "resnet18",
        Shape::new(vec![1, in_ch, input_hw, input_hw]),
        layers,
    )
    .expect("resnet18 shape chain is internally consistent")
}

/// A compact 4-conv CNN used as the perception front-end in the smaller
/// workloads (PrAE-style) and in functional tests.
///
/// # Panics
///
/// Panics if `input_hw < 16`.
#[must_use]
pub fn small_cnn(input_hw: usize, in_ch: usize, embedding: usize) -> Model {
    assert!(input_hw >= 16, "small_cnn needs input_hw >= 16");
    let layers = vec![
        conv("conv1".into(), in_ch, 32, 3, 2, 1),
        relu("relu1".into()),
        conv("conv2".into(), 32, 32, 3, 2, 1),
        relu("relu2".into()),
        conv("conv3".into(), 32, 64, 3, 2, 1),
        relu("relu3".into()),
        conv("conv4".into(), 64, 64, 3, 2, 1),
        relu("relu4".into()),
        LayerSpec::new("gap".to_string(), LayerKind::GlobalAvgPool),
        LayerSpec::new(
            "proj".to_string(),
            LayerKind::Linear {
                in_features: 64,
                out_features: embedding,
            },
        ),
    ];
    Model::new(
        "small_cnn",
        Shape::new(vec![1, in_ch, input_hw, input_hw]),
        layers,
    )
    .expect("small_cnn shape chain is internally consistent")
}

/// MIMONet-style backbone: a mid-size CNN that processes several
/// superposed inputs at once (computation-in-superposition), so its batch
/// dimension carries `superposition` bound channels.
///
/// # Panics
///
/// Panics if `input_hw < 32` or `superposition == 0`.
#[must_use]
pub fn mimonet_backbone(input_hw: usize, superposition: usize) -> Model {
    assert!(input_hw >= 32, "mimonet_backbone needs input_hw >= 32");
    assert!(superposition > 0, "superposition must be nonzero");
    let layers = vec![
        conv("conv1".into(), 3, 64, 5, 2, 2),
        bn("bn1".into()),
        relu("relu1".into()),
        conv("conv2".into(), 64, 128, 3, 2, 1),
        bn("bn2".into()),
        relu("relu2".into()),
        conv("conv3".into(), 128, 256, 3, 2, 1),
        bn("bn3".into()),
        relu("relu3".into()),
        conv("conv4".into(), 256, 256, 3, 1, 1),
        relu("relu4".into()),
        LayerSpec::new("gap".to_string(), LayerKind::GlobalAvgPool),
        LayerSpec::new(
            "proj".to_string(),
            LayerKind::Linear {
                in_features: 256,
                out_features: 512,
            },
        ),
    ];
    Model::new(
        "mimonet_backbone",
        Shape::new(vec![superposition, 3, input_hw, input_hw]),
        layers,
    )
    .expect("mimonet shape chain is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;

    #[test]
    fn resnet18_output_is_512_features() {
        let m = resnet18(160, 3);
        assert_eq!(m.output_shape().dims(), &[1, 512]);
    }

    #[test]
    fn resnet18_param_count_in_expected_range() {
        // Canonical ResNet-18 has ~11.2M params (conv + fc); ours omits the
        // fc head and folds shortcuts, so expect 10M–13M.
        let m = resnet18(224, 3);
        let p = m.total_params();
        assert!((10_000_000..13_000_000).contains(&p), "params = {p}");
    }

    #[test]
    fn resnet18_flops_scale_with_resolution() {
        let small = resnet18(96, 3).total_flops();
        let large = resnet18(192, 3).total_flops();
        let ratio = large as f64 / small as f64;
        assert!(
            (3.0..5.0).contains(&ratio),
            "4x pixels ≈ 4x FLOPs, got {ratio}"
        );
    }

    #[test]
    fn resnet18_weight_bytes_at_fp32_around_45mb() {
        let m = resnet18(160, 3);
        let mb = m.total_weight_bytes(DType::Fp32) as f64 / (1024.0 * 1024.0);
        assert!((38.0..52.0).contains(&mb), "weights {mb} MB");
    }

    #[test]
    fn small_cnn_projects_to_embedding() {
        let m = small_cnn(32, 1, 256);
        assert_eq!(m.output_shape().dims(), &[1, 256]);
    }

    #[test]
    fn mimonet_batch_carries_superposition() {
        let m = mimonet_backbone(64, 4);
        assert_eq!(m.output_shape().dims(), &[4, 512]);
        assert_eq!(m.input_shape().dims()[0], 4);
    }

    #[test]
    #[should_panic(expected = "resnet18 needs input_hw >= 32")]
    fn resnet18_rejects_tiny_input() {
        let _ = resnet18(16, 3);
    }
}
