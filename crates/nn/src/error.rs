use std::fmt;

/// Error type for neural-network shape algebra and execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A layer received an input whose shape it cannot consume.
    ShapeMismatch {
        /// Name of the layer reporting the mismatch.
        layer: String,
        /// Expected input shape rendered as text.
        expected: String,
        /// Received input shape rendered as text.
        actual: String,
    },
    /// Layer hyper-parameters are internally inconsistent (e.g. kernel
    /// larger than padded input, zero channels).
    InvalidLayer(String),
    /// A model was built with no layers.
    EmptyModel,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch {
                layer,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "layer {layer} expected input shape {expected}, got {actual}"
                )
            }
            NnError::InvalidLayer(msg) => write!(f, "invalid layer: {msg}"),
            NnError::EmptyModel => write!(f, "model must contain at least one layer"),
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }

    #[test]
    fn display_nonempty() {
        assert!(!NnError::EmptyModel.to_string().is_empty());
        assert!(!NnError::InvalidLayer("zero channels".into())
            .to_string()
            .is_empty());
    }
}
