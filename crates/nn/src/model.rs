use nsflow_tensor::{DType, Shape};

use crate::{GemmDims, LayerSpec, NnError, Result};

/// A sequential layer graph with a fixed input shape.
///
/// The model is shape-checked at construction: every layer must accept its
/// predecessor's output. All per-layer metadata (GEMM dims, FLOPs, weight
/// bytes) is derived once and cached, because the frontend trace extractor
/// queries it repeatedly while building the dataflow graph.
///
/// # Examples
///
/// ```
/// use nsflow_nn::{Model, LayerSpec, LayerKind};
/// use nsflow_tensor::Shape;
///
/// let m = Model::new(
///     "tiny",
///     Shape::new(vec![1, 3, 8, 8]),
///     vec![
///         LayerSpec::new("conv", LayerKind::Conv2d { in_ch: 3, out_ch: 4, kernel: 3, stride: 1, padding: 1 }),
///         LayerSpec::new("relu", LayerKind::Relu),
///     ],
/// )?;
/// assert_eq!(m.output_shape().dims(), &[1, 4, 8, 8]);
/// # Ok::<(), nsflow_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    name: String,
    input_shape: Shape,
    layers: Vec<LayerSpec>,
    /// `layer_shapes[i]` is the *input* shape of layer `i`;
    /// `layer_shapes[len]` is the model output shape.
    layer_shapes: Vec<Shape>,
}

impl Model {
    /// Builds and shape-checks a sequential model.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyModel`] for an empty layer list and
    /// propagates the first shape error encountered while threading the
    /// input shape through the layers.
    pub fn new(
        name: impl Into<String>,
        input_shape: Shape,
        layers: Vec<LayerSpec>,
    ) -> Result<Self> {
        if layers.is_empty() {
            return Err(NnError::EmptyModel);
        }
        let mut layer_shapes = Vec::with_capacity(layers.len() + 1);
        let mut cur = input_shape.clone();
        for layer in &layers {
            layer_shapes.push(cur.clone());
            cur = layer.output_shape(&cur)?;
        }
        layer_shapes.push(cur);
        Ok(Model {
            name: name.into(),
            input_shape,
            layers,
            layer_shapes,
        })
    }

    /// The model's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared input shape.
    #[must_use]
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// Output shape after the final layer.
    #[must_use]
    pub fn output_shape(&self) -> &Shape {
        self.layer_shapes.last().expect("non-empty by construction")
    }

    /// The layers in execution order.
    #[must_use]
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Input shape of layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= layers().len()`.
    #[must_use]
    pub fn layer_input_shape(&self, i: usize) -> &Shape {
        assert!(i < self.layers.len(), "layer index {i} out of range");
        &self.layer_shapes[i]
    }

    /// GEMM dimensions per layer (in order); `None` entries are SIMD-unit
    /// layers.
    #[must_use]
    pub fn gemm_dims(&self) -> Vec<Option<GemmDims>> {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                l.gemm_dims(&self.layer_shapes[i])
                    .expect("shapes validated at construction")
            })
            .collect()
    }

    /// Total FLOPs of one forward pass.
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| l.flops(&self.layer_shapes[i]).expect("shapes validated"))
            .sum()
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn total_params(&self) -> u64 {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                l.param_count(&self.layer_shapes[i])
                    .expect("shapes validated")
            })
            .sum()
    }

    /// Total weight bytes at the given precision.
    #[must_use]
    pub fn total_weight_bytes(&self, dtype: DType) -> usize {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                l.weight_bytes(&self.layer_shapes[i], dtype)
                    .expect("shapes validated")
            })
            .sum()
    }

    /// Largest single-layer weight footprint at the given precision — the
    /// quantity the paper's memory planner uses for `Mem_A1`
    /// (`max(filter size in R_l)`, Sec. V-C).
    #[must_use]
    pub fn max_layer_weight_bytes(&self, dtype: DType) -> usize {
        self.layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                l.weight_bytes(&self.layer_shapes[i], dtype)
                    .expect("shapes validated")
            })
            .max()
            .unwrap_or(0)
    }

    /// Largest activation (layer input or output) element count.
    #[must_use]
    pub fn max_activation_elems(&self) -> usize {
        self.layer_shapes
            .iter()
            .map(Shape::volume)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerKind;

    fn tiny() -> Model {
        Model::new(
            "tiny",
            Shape::new(vec![1, 3, 8, 8]),
            vec![
                LayerSpec::new(
                    "conv1",
                    LayerKind::Conv2d {
                        in_ch: 3,
                        out_ch: 4,
                        kernel: 3,
                        stride: 1,
                        padding: 1,
                    },
                ),
                LayerSpec::new("relu1", LayerKind::Relu),
                LayerSpec::new("pool", LayerKind::MaxPool2d { kernel: 2 }),
                LayerSpec::new(
                    "fc",
                    LayerKind::Linear {
                        in_features: 64,
                        out_features: 10,
                    },
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn empty_model_rejected() {
        assert_eq!(
            Model::new("e", Shape::new(vec![1]), vec![]).unwrap_err(),
            NnError::EmptyModel
        );
    }

    #[test]
    fn shapes_thread_through() {
        let m = tiny();
        assert_eq!(m.layer_input_shape(0).dims(), &[1, 3, 8, 8]);
        assert_eq!(m.layer_input_shape(3).dims(), &[1, 4, 4, 4]);
        assert_eq!(m.output_shape().dims(), &[1, 10]);
    }

    #[test]
    fn construction_fails_on_incompatible_chain() {
        let bad = Model::new(
            "bad",
            Shape::new(vec![1, 3, 8, 8]),
            vec![LayerSpec::new(
                "fc",
                LayerKind::Linear {
                    in_features: 999,
                    out_features: 1,
                },
            )],
        );
        assert!(bad.is_err());
    }

    #[test]
    fn gemm_dims_align_with_layers() {
        let m = tiny();
        let dims = m.gemm_dims();
        assert_eq!(dims.len(), 4);
        assert!(dims[0].is_some());
        assert!(dims[1].is_none());
        assert!(dims[2].is_none());
        assert_eq!(dims[3].unwrap(), GemmDims { m: 1, n: 10, k: 64 });
    }

    #[test]
    fn totals_are_sums() {
        let m = tiny();
        assert_eq!(m.total_params(), (4 * 3 * 9 + 4) + (64 * 10 + 10));
        assert!(m.total_flops() > 0);
        assert_eq!(
            m.total_weight_bytes(DType::Fp32),
            4 * m.total_params() as usize
        );
    }

    #[test]
    fn max_layer_weight_is_max_not_sum() {
        let m = tiny();
        let per_layer_max = m.max_layer_weight_bytes(DType::Fp32);
        assert!(per_layer_max < m.total_weight_bytes(DType::Fp32));
        assert_eq!(per_layer_max, 4 * (64 * 10 + 10));
    }

    #[test]
    fn max_activation_covers_input() {
        let m = tiny();
        assert_eq!(m.max_activation_elems(), 4 * 8 * 8); // conv1 output
    }
}
