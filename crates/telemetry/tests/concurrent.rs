//! Counters are lossless under concurrent increments from the shared
//! `nsflow_core::par` thread pool (dev-dependency cycle: core is built
//! without its `telemetry` feature here, which is fine — the counters
//! under test live in this crate).

use nsflow_core::par::parallel_map;
use nsflow_telemetry as telemetry;

#[test]
fn concurrent_increments_are_lossless() {
    const ITEMS: usize = 64;
    const PER_ITEM: u64 = 1_000;
    let counter = telemetry::global().counter("concurrent_test.hits");
    let before = counter.get();

    let items: Vec<u64> = (0..ITEMS as u64).collect();
    for threads in [1, 2, 4, 8] {
        let out = parallel_map(&items, threads, |&i| {
            for _ in 0..PER_ITEM {
                telemetry::counter!("concurrent_test.hits").incr();
            }
            i
        });
        assert_eq!(out, items, "pool must preserve order at t={threads}");
    }

    let expected = 4 * ITEMS as u64 * PER_ITEM;
    if telemetry::enabled() {
        assert_eq!(counter.get() - before, expected);
    } else {
        assert_eq!(counter.get(), 0);
    }
}

#[test]
fn concurrent_histogram_recording_is_lossless() {
    let histogram = telemetry::global().histogram("concurrent_test.samples");
    let items: Vec<u64> = (0..4096).collect();
    let before = histogram.count();
    parallel_map(&items, 8, |&v| histogram.record(v));
    if telemetry::enabled() {
        assert_eq!(histogram.count() - before, items.len() as u64);
        let snap = telemetry::TelemetrySnapshot::capture();
        let h = snap.histograms.get("concurrent_test.samples").unwrap();
        assert_eq!(h.buckets.iter().map(|(_, n)| n).sum::<u64>(), h.count);
        assert_eq!(h.max, 4095);
    }
}
