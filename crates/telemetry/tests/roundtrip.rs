//! Property test: `TelemetrySnapshot` survives a serde JSON round-trip
//! unchanged, and the serde rendering matches the native writer.

use nsflow_telemetry::{
    ser::to_json_string, HistogramSnapshot, JsonValue, SpanSnapshot, TelemetrySnapshot, BUCKETS,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Alphabet for metric names; exercises JSON escaping (quote,
/// backslash, control char) and non-ASCII, not just identifiers.
const NAME_CHARS: [char; 10] = ['a', 'z', '.', '_', '0', '"', '\\', '\n', '\t', '\u{1f600}'];

fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0..NAME_CHARS.len(), 1..12)
        .prop_map(|picks| picks.into_iter().map(|i| NAME_CHARS[i]).collect())
}

/// Full-range u64 including an explicit shot at `u64::MAX`.
fn arb_u64() -> impl Strategy<Value = u64> {
    (0..u64::MAX, 0..16u32).prop_map(|(v, pick)| if pick == 0 { u64::MAX } else { v })
}

fn arb_i64() -> impl Strategy<Value = i64> {
    (i64::MIN..i64::MAX, 0..16u32).prop_map(|(v, pick)| if pick == 0 { i64::MAX } else { v })
}

fn arb_histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        arb_u64(),
        arb_u64(),
        arb_u64(),
        arb_u64(),
        proptest::collection::vec((0..BUCKETS, arb_u64()), 0..6),
    )
        .prop_map(|(count, sum, min, max, pairs)| {
            let dedup: BTreeMap<u8, u64> = pairs.into_iter().map(|(i, n)| (i as u8, n)).collect();
            HistogramSnapshot {
                count,
                sum,
                min,
                max,
                buckets: dedup.into_iter().collect(),
            }
        })
}

fn arb_span() -> impl Strategy<Value = SpanSnapshot> {
    (arb_u64(), arb_u64(), arb_u64()).prop_map(|(count, total_ns, max_ns)| SpanSnapshot {
        count,
        total_ns,
        max_ns,
    })
}

fn arb_snapshot() -> impl Strategy<Value = TelemetrySnapshot> {
    (
        proptest::collection::vec((arb_name(), arb_u64()), 0..8),
        proptest::collection::vec((arb_name(), arb_i64()), 0..8),
        proptest::collection::vec((arb_name(), arb_histogram()), 0..4),
        proptest::collection::vec((arb_name(), arb_span()), 0..4),
    )
        .prop_map(|(counters, gauges, histograms, spans)| TelemetrySnapshot {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: histograms.into_iter().collect(),
            spans: spans.into_iter().collect(),
        })
}

proptest! {
    #[test]
    fn snapshot_round_trips_through_serde_json(snapshot in arb_snapshot()) {
        let via_serde = to_json_string(&snapshot).unwrap();
        // serde rendering is byte-identical to the native compact writer…
        prop_assert_eq!(&via_serde, &snapshot.to_json_compact());
        // …and decodes back to the identical snapshot, from both writers.
        prop_assert_eq!(&TelemetrySnapshot::from_json(&via_serde).unwrap(), &snapshot);
        prop_assert_eq!(&TelemetrySnapshot::from_json(&snapshot.to_json()).unwrap(), &snapshot);
    }

    #[test]
    fn json_documents_round_trip_through_parser(snapshot in arb_snapshot()) {
        let value = snapshot.to_json_value();
        prop_assert_eq!(&JsonValue::parse(&value.render_compact()).unwrap(), &value);
        prop_assert_eq!(&JsonValue::parse(&value.render_pretty()).unwrap(), &value);
    }
}
