//! `nsflow-telemetry`: zero-extra-dependency observability for the
//! NSFlow workspace (std + `serde` only).
//!
//! The crate provides:
//!
//! - a thread-safe, process-global metrics [`Registry`] of monotonic
//!   [`Counter`]s, [`Gauge`]s and log2-bucketed [`Histogram`]s, all
//!   recorded with relaxed atomics so instrumentation is cheap enough
//!   for hot kernels;
//! - hierarchical RAII [`SpanGuard`] timers that nest per thread and
//!   aggregate under dotted paths (`dse.explore.phase1`);
//! - a deterministic [`TelemetrySnapshot`] that serializes to stable
//!   JSON — same state, same bytes — so snapshots embedded in
//!   `BENCH_*.json` diff cleanly and can be compared by the CI
//!   regression gate;
//! - a dependency-free JSON document model ([`JsonValue`]) plus a
//!   compact serde [`Serializer`](ser::JsonSerializer) used for the
//!   serde round-trip of snapshots.
//!
//! # Recording
//!
//! ```
//! use nsflow_telemetry as telemetry;
//!
//! fn hot_loop() {
//!     let _span = telemetry::span!("docs.hot_loop");
//!     for i in 0..32u64 {
//!         telemetry::counter!("docs.iterations").incr();
//!         telemetry::histogram!("docs.values").record(i);
//!     }
//!     telemetry::gauge!("docs.threads").set(4);
//! }
//!
//! hot_loop();
//! let snapshot = telemetry::TelemetrySnapshot::capture();
//! if telemetry::enabled() {
//!     assert_eq!(snapshot.counter("docs.iterations"), 32);
//! }
//! ```
//!
//! # Feature gating
//!
//! The `telemetry` cargo feature (default-on) gates all recording.
//! When disabled, counters/gauges/histograms/spans are zero-sized
//! no-ops, [`TelemetrySnapshot::capture`] returns an empty snapshot,
//! and the macros still compile — callers never need `cfg` guards.
//! The snapshot/JSON types themselves stay fully functional either
//! way, so tooling (e.g. the bench gate) can parse snapshots produced
//! by an instrumented binary even if it was itself built without the
//! feature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod registry;
pub mod ser;
mod snapshot;
mod span;

pub use json::{JsonError, JsonValue};
pub use registry::{
    bucket_index, bucket_lower_bound, global, Counter, Gauge, Histogram, Registry, SpanStat,
    BUCKETS,
};
pub use snapshot::{HistogramSnapshot, SpanSnapshot, TelemetrySnapshot};
pub use span::SpanGuard;

/// Whether this build records telemetry (the `telemetry` feature).
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// Reset every metric in the global registry to zero.
///
/// Metric names stay registered; cached handles stay valid. Bench
/// binaries call this before a measured run so the embedded snapshot
/// covers exactly that run.
pub fn reset() {
    global().reset();
}

/// Global counter handle by name, cached per call site.
///
/// Expands to a `&'static Counter`; the name lookup happens once per
/// call site (a `OnceLock`'d pointer), so hot loops only pay one
/// relaxed atomic add per increment.
#[cfg(feature = "telemetry")]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __NSFLOW_TELEMETRY_SITE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *__NSFLOW_TELEMETRY_SITE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Global counter handle by name (no-op: `telemetry` feature is off).
#[cfg(not(feature = "telemetry"))]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        let _ = $name;
        $crate::Counter::noop()
    }};
}

/// Global gauge handle by name, cached per call site.
#[cfg(feature = "telemetry")]
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __NSFLOW_TELEMETRY_SITE: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *__NSFLOW_TELEMETRY_SITE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Global gauge handle by name (no-op: `telemetry` feature is off).
#[cfg(not(feature = "telemetry"))]
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        let _ = $name;
        $crate::Gauge::noop()
    }};
}

/// Global histogram handle by name, cached per call site.
#[cfg(feature = "telemetry")]
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __NSFLOW_TELEMETRY_SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__NSFLOW_TELEMETRY_SITE.get_or_init(|| $crate::global().histogram($name))
    }};
}

/// Global histogram handle by name (no-op: `telemetry` feature is off).
#[cfg(not(feature = "telemetry"))]
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        let _ = $name;
        $crate::Histogram::noop()
    }};
}

/// Open a hierarchical RAII span timer.
///
/// Bind the result (`let _span = span!("dse.phase1");`) — the timing
/// is recorded when the guard drops. Spans opened while another span
/// guard is live on the same thread aggregate under the joined dotted
/// path.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use crate as telemetry;

    #[test]
    fn macros_record_into_the_global_registry() {
        telemetry::counter!("lib_test.count").add(2);
        telemetry::counter!("lib_test.count").incr();
        telemetry::gauge!("lib_test.gauge").set(7);
        telemetry::histogram!("lib_test.hist").record(100);
        {
            let _span = telemetry::span!("lib_test.span");
        }
        let snapshot = telemetry::TelemetrySnapshot::capture();
        if telemetry::enabled() {
            assert!(snapshot.counter("lib_test.count") >= 3);
            assert_eq!(snapshot.gauges.get("lib_test.gauge"), Some(&7));
            assert!(snapshot.histograms.get("lib_test.hist").unwrap().count >= 1);
            assert!(snapshot.spans.get("lib_test.span").unwrap().count >= 1);
        } else {
            assert!(snapshot.is_empty());
        }
    }
}
