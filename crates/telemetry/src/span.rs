//! Hierarchical RAII span timers.
//!
//! A [`SpanGuard`] measures the wall time between its creation and
//! drop and folds the result into the global registry under the span's
//! *path*. Guards nest: entering `"phase1"` while a `"dse.explore"`
//! guard is live on the same thread aggregates under
//! `"dse.explore.phase1"`. The nesting path is thread-local, and the
//! guard is `!Send` so it cannot close on a different thread than it
//! opened on.
//!
//! With the `telemetry` feature disabled, [`SpanGuard`] is a zero-sized
//! no-op.

#[cfg(feature = "telemetry")]
pub use enabled::SpanGuard;

#[cfg(not(feature = "telemetry"))]
pub use disabled::SpanGuard;

#[cfg(feature = "telemetry")]
mod enabled {
    use std::cell::RefCell;
    use std::marker::PhantomData;
    use std::time::Instant;

    thread_local! {
        static PATH: RefCell<String> = const { RefCell::new(String::new()) };
    }

    /// RAII guard timing one span; see the module docs.
    #[derive(Debug)]
    #[must_use = "a span guard records its timing when dropped"]
    pub struct SpanGuard {
        prev_len: usize,
        start: Instant,
        // Keep the guard on the thread whose path stack it extended.
        _not_send: PhantomData<*const ()>,
    }

    impl SpanGuard {
        /// Open a span named `name`, nested under any live span on this
        /// thread. Dotted names (`"dse.phase1"`) are the convention.
        pub fn enter(name: &str) -> Self {
            let prev_len = PATH.with(|path| {
                let mut path = path.borrow_mut();
                let prev_len = path.len();
                if prev_len > 0 {
                    path.push('.');
                }
                path.push_str(name);
                prev_len
            });
            Self {
                prev_len,
                start: Instant::now(),
                _not_send: PhantomData,
            }
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let elapsed_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            PATH.with(|path| {
                let mut path = path.borrow_mut();
                crate::global().span_stat(&path).record(elapsed_ns);
                path.truncate(self.prev_len);
            });
        }
    }
}

#[cfg(not(feature = "telemetry"))]
mod disabled {
    /// No-op span guard (the `telemetry` feature is disabled).
    #[derive(Debug)]
    #[must_use = "a span guard records its timing when dropped"]
    pub struct SpanGuard;

    impl SpanGuard {
        /// No-op.
        pub fn enter(_name: &str) -> Self {
            Self
        }
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::SpanGuard;

    #[test]
    fn spans_nest_into_dotted_paths() {
        {
            let _outer = SpanGuard::enter("test_span.outer");
            {
                let _inner = SpanGuard::enter("inner");
            }
            {
                let _inner = SpanGuard::enter("inner");
            }
        }
        let snap = crate::global().snapshot();
        let outer = snap.spans.get("test_span.outer").expect("outer span");
        assert!(outer.count >= 1);
        let inner = snap
            .spans
            .get("test_span.outer.inner")
            .expect("nested span path");
        assert!(inner.count >= 2);
        assert!(outer.total_ns >= inner.max_ns);
    }
}
