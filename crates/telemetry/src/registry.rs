//! Thread-safe metrics registry: counters, gauges, log-bucketed
//! histograms and span aggregates.
//!
//! All recording primitives use relaxed atomics — recording is cheap
//! enough for hot loops and never synchronizes with other memory.
//! Handles returned by the registry are `&'static`: metric cells are
//! leaked on first registration so call sites can cache the pointer
//! (see the [`counter!`](crate::counter) macro) and skip the name
//! lookup on every subsequent hit.
//!
//! With the `telemetry` cargo feature disabled, every type in this
//! module is a zero-sized stand-in whose methods compile to nothing.

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `2^63` (values `v` land in bucket `64 - v.leading_zeros()`).
pub const BUCKETS: usize = 65;

/// Map a recorded value to its histogram bucket index.
///
/// Bucket `0` holds exactly the value `0`; bucket `i > 0` holds values
/// in `[2^(i-1), 2^i)`; `u64::MAX` lands in bucket `64`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    64 - value.leading_zeros() as usize
}

/// Inclusive lower bound of a bucket produced by [`bucket_index`].
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

#[cfg(feature = "telemetry")]
pub use enabled::{Counter, Gauge, Histogram, Registry, SpanStat};

#[cfg(not(feature = "telemetry"))]
pub use disabled::{Counter, Gauge, Histogram, Registry, SpanStat};

/// The process-wide registry used by the recording macros.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

#[cfg(feature = "telemetry")]
mod enabled {
    use super::{bucket_index, BUCKETS};
    use crate::snapshot::{HistogramSnapshot, SpanSnapshot, TelemetrySnapshot};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
    use std::sync::RwLock;

    /// Monotonically increasing event counter.
    #[derive(Debug, Default)]
    pub struct Counter {
        value: AtomicU64,
    }

    impl Counter {
        /// New counter at zero.
        pub const fn new() -> Self {
            Self {
                value: AtomicU64::new(0),
            }
        }

        /// Add `n` to the counter.
        #[inline]
        pub fn add(&self, n: u64) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }

        /// Add one to the counter.
        #[inline]
        pub fn incr(&self) {
            self.add(1);
        }

        /// Current value.
        pub fn get(&self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }

        /// Detached no-op cell used by the feature-off macro expansion.
        pub fn noop() -> &'static Counter {
            static NOOP: Counter = Counter::new();
            &NOOP
        }

        fn reset(&self) {
            self.value.store(0, Ordering::Relaxed);
        }
    }

    /// Last-write-wins signed level (thread counts, queue depths, ...).
    #[derive(Debug, Default)]
    pub struct Gauge {
        value: AtomicI64,
    }

    impl Gauge {
        /// New gauge at zero.
        pub const fn new() -> Self {
            Self {
                value: AtomicI64::new(0),
            }
        }

        /// Overwrite the level.
        #[inline]
        pub fn set(&self, v: i64) {
            self.value.store(v, Ordering::Relaxed);
        }

        /// Shift the level by `delta`.
        #[inline]
        pub fn add(&self, delta: i64) {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }

        /// Current level.
        pub fn get(&self) -> i64 {
            self.value.load(Ordering::Relaxed)
        }

        /// Detached no-op cell used by the feature-off macro expansion.
        pub fn noop() -> &'static Gauge {
            static NOOP: Gauge = Gauge::new();
            &NOOP
        }

        fn reset(&self) {
            self.value.store(0, Ordering::Relaxed);
        }
    }

    /// Log2-bucketed histogram of `u64` samples.
    ///
    /// `sum` wraps on overflow (relaxed `fetch_add`); with nanosecond
    /// samples that takes centuries of recorded time.
    #[derive(Debug)]
    pub struct Histogram {
        count: AtomicU64,
        sum: AtomicU64,
        min: AtomicU64,
        max: AtomicU64,
        buckets: [AtomicU64; BUCKETS],
    }

    impl Histogram {
        /// New empty histogram.
        pub const fn new() -> Self {
            Self {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
                buckets: [const { AtomicU64::new(0) }; BUCKETS],
            }
        }

        /// Record one sample.
        #[inline]
        pub fn record(&self, value: u64) {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(value, Ordering::Relaxed);
            self.min.fetch_min(value, Ordering::Relaxed);
            self.max.fetch_max(value, Ordering::Relaxed);
            self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        }

        /// Number of recorded samples.
        pub fn count(&self) -> u64 {
            self.count.load(Ordering::Relaxed)
        }

        /// Detached no-op cell used by the feature-off macro expansion.
        pub fn noop() -> &'static Histogram {
            static NOOP: Histogram = Histogram::new();
            &NOOP
        }

        fn reset(&self) {
            self.count.store(0, Ordering::Relaxed);
            self.sum.store(0, Ordering::Relaxed);
            self.min.store(u64::MAX, Ordering::Relaxed);
            self.max.store(0, Ordering::Relaxed);
            for bucket in &self.buckets {
                bucket.store(0, Ordering::Relaxed);
            }
        }

        pub(crate) fn snapshot(&self) -> HistogramSnapshot {
            let count = self.count.load(Ordering::Relaxed);
            let min = self.min.load(Ordering::Relaxed);
            HistogramSnapshot {
                count,
                sum: self.sum.load(Ordering::Relaxed),
                min: if count == 0 { 0 } else { min },
                max: self.max.load(Ordering::Relaxed),
                buckets: self
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then_some((i as u8, n))
                    })
                    .collect(),
            }
        }
    }

    impl Default for Histogram {
        fn default() -> Self {
            Self::new()
        }
    }

    /// Aggregated timing for one span name.
    #[derive(Debug, Default)]
    pub struct SpanStat {
        count: AtomicU64,
        total_ns: AtomicU64,
        max_ns: AtomicU64,
    }

    impl SpanStat {
        /// New empty aggregate.
        pub const fn new() -> Self {
            Self {
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
            }
        }

        /// Fold one completed span of `elapsed_ns` into the aggregate.
        #[inline]
        pub fn record(&self, elapsed_ns: u64) {
            self.count.fetch_add(1, Ordering::Relaxed);
            self.total_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
            self.max_ns.fetch_max(elapsed_ns, Ordering::Relaxed);
        }

        /// Number of completed spans.
        pub fn count(&self) -> u64 {
            self.count.load(Ordering::Relaxed)
        }

        fn reset(&self) {
            self.count.store(0, Ordering::Relaxed);
            self.total_ns.store(0, Ordering::Relaxed);
            self.max_ns.store(0, Ordering::Relaxed);
        }

        pub(crate) fn snapshot(&self) -> SpanSnapshot {
            SpanSnapshot {
                count: self.count.load(Ordering::Relaxed),
                total_ns: self.total_ns.load(Ordering::Relaxed),
                max_ns: self.max_ns.load(Ordering::Relaxed),
            }
        }
    }

    /// Named collection of metrics.
    ///
    /// Metric cells are leaked on first registration so lookups hand out
    /// `&'static` handles; a registry therefore never frees its cells
    /// (bounded by the number of distinct metric names, which is small
    /// and fixed per binary).
    #[derive(Debug)]
    pub struct Registry {
        counters: RwLock<BTreeMap<String, &'static Counter>>,
        gauges: RwLock<BTreeMap<String, &'static Gauge>>,
        histograms: RwLock<BTreeMap<String, &'static Histogram>>,
        spans: RwLock<BTreeMap<String, &'static SpanStat>>,
    }

    fn lookup<T: 'static>(
        map: &RwLock<BTreeMap<String, &'static T>>,
        name: &str,
        make: impl FnOnce() -> T,
    ) -> &'static T {
        if let Some(&existing) = map.read().expect("telemetry lock").get(name) {
            return existing;
        }
        let mut guard = map.write().expect("telemetry lock");
        guard
            .entry(name.to_string())
            .or_insert_with(|| Box::leak(Box::new(make())))
    }

    impl Registry {
        /// New empty registry.
        pub const fn new() -> Self {
            Self {
                counters: RwLock::new(BTreeMap::new()),
                gauges: RwLock::new(BTreeMap::new()),
                histograms: RwLock::new(BTreeMap::new()),
                spans: RwLock::new(BTreeMap::new()),
            }
        }

        /// Counter handle for `name`, registering it on first use.
        pub fn counter(&self, name: &str) -> &'static Counter {
            lookup(&self.counters, name, Counter::new)
        }

        /// Gauge handle for `name`, registering it on first use.
        pub fn gauge(&self, name: &str) -> &'static Gauge {
            lookup(&self.gauges, name, Gauge::new)
        }

        /// Histogram handle for `name`, registering it on first use.
        pub fn histogram(&self, name: &str) -> &'static Histogram {
            lookup(&self.histograms, name, Histogram::new)
        }

        /// Span aggregate handle for `name`, registering it on first use.
        pub fn span_stat(&self, name: &str) -> &'static SpanStat {
            lookup(&self.spans, name, SpanStat::new)
        }

        /// Zero every registered metric (names stay registered).
        pub fn reset(&self) {
            for counter in self.counters.read().expect("telemetry lock").values() {
                counter.reset();
            }
            for gauge in self.gauges.read().expect("telemetry lock").values() {
                gauge.reset();
            }
            for histogram in self.histograms.read().expect("telemetry lock").values() {
                histogram.reset();
            }
            for span in self.spans.read().expect("telemetry lock").values() {
                span.reset();
            }
        }

        /// Consistent point-in-time copy of every registered metric,
        /// deterministically ordered by name.
        pub fn snapshot(&self) -> TelemetrySnapshot {
            TelemetrySnapshot {
                counters: self
                    .counters
                    .read()
                    .expect("telemetry lock")
                    .iter()
                    .map(|(name, c)| (name.clone(), c.get()))
                    .collect(),
                gauges: self
                    .gauges
                    .read()
                    .expect("telemetry lock")
                    .iter()
                    .map(|(name, g)| (name.clone(), g.get()))
                    .collect(),
                histograms: self
                    .histograms
                    .read()
                    .expect("telemetry lock")
                    .iter()
                    .map(|(name, h)| (name.clone(), h.snapshot()))
                    .collect(),
                spans: self
                    .spans
                    .read()
                    .expect("telemetry lock")
                    .iter()
                    .map(|(name, s)| (name.clone(), s.snapshot()))
                    .collect(),
            }
        }
    }

    impl Default for Registry {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(not(feature = "telemetry"))]
mod disabled {
    use crate::snapshot::TelemetrySnapshot;

    /// No-op counter (the `telemetry` feature is disabled).
    #[derive(Debug, Default)]
    pub struct Counter;

    impl Counter {
        /// New counter at zero.
        pub const fn new() -> Self {
            Self
        }

        /// No-op.
        #[inline]
        pub fn add(&self, _n: u64) {}

        /// No-op.
        #[inline]
        pub fn incr(&self) {}

        /// Always zero.
        pub fn get(&self) -> u64 {
            0
        }

        /// Shared no-op cell.
        pub fn noop() -> &'static Counter {
            static NOOP: Counter = Counter::new();
            &NOOP
        }
    }

    /// No-op gauge (the `telemetry` feature is disabled).
    #[derive(Debug, Default)]
    pub struct Gauge;

    impl Gauge {
        /// New gauge at zero.
        pub const fn new() -> Self {
            Self
        }

        /// No-op.
        #[inline]
        pub fn set(&self, _v: i64) {}

        /// No-op.
        #[inline]
        pub fn add(&self, _delta: i64) {}

        /// Always zero.
        pub fn get(&self) -> i64 {
            0
        }

        /// Shared no-op cell.
        pub fn noop() -> &'static Gauge {
            static NOOP: Gauge = Gauge::new();
            &NOOP
        }
    }

    /// No-op histogram (the `telemetry` feature is disabled).
    #[derive(Debug, Default)]
    pub struct Histogram;

    impl Histogram {
        /// New empty histogram.
        pub const fn new() -> Self {
            Self
        }

        /// No-op.
        #[inline]
        pub fn record(&self, _value: u64) {}

        /// Always zero.
        pub fn count(&self) -> u64 {
            0
        }

        /// Shared no-op cell.
        pub fn noop() -> &'static Histogram {
            static NOOP: Histogram = Histogram::new();
            &NOOP
        }
    }

    /// No-op span aggregate (the `telemetry` feature is disabled).
    #[derive(Debug, Default)]
    pub struct SpanStat;

    impl SpanStat {
        /// New empty aggregate.
        pub const fn new() -> Self {
            Self
        }

        /// No-op.
        #[inline]
        pub fn record(&self, _elapsed_ns: u64) {}

        /// Always zero.
        pub fn count(&self) -> u64 {
            0
        }
    }

    /// No-op registry (the `telemetry` feature is disabled).
    #[derive(Debug, Default)]
    pub struct Registry;

    impl Registry {
        /// New empty registry.
        pub const fn new() -> Self {
            Self
        }

        /// Shared no-op counter.
        pub fn counter(&self, _name: &str) -> &'static Counter {
            Counter::noop()
        }

        /// Shared no-op gauge.
        pub fn gauge(&self, _name: &str) -> &'static Gauge {
            Gauge::noop()
        }

        /// Shared no-op histogram.
        pub fn histogram(&self, _name: &str) -> &'static Histogram {
            Histogram::noop()
        }

        /// Shared no-op span aggregate.
        pub fn span_stat(&self, _name: &str) -> &'static SpanStat {
            static NOOP: SpanStat = SpanStat::new();
            &NOOP
        }

        /// No-op.
        pub fn reset(&self) {}

        /// Always empty.
        pub fn snapshot(&self) -> TelemetrySnapshot {
            TelemetrySnapshot::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index((1 << 63) - 1), 63);
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        assert_eq!(bucket_lower_bound(0), 0);
        assert_eq!(bucket_lower_bound(1), 1);
        assert_eq!(bucket_lower_bound(64), 1 << 63);
        for i in 1..BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(lo - 1), i - 1);
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn histogram_records_edges() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.sum, 1u64.wrapping_add(u64::MAX)); // sum wraps on overflow.
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (64, 1)]);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn empty_histogram_snapshot_has_zero_min() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert!(snap.buckets.is_empty());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn registry_registers_resets_and_snapshots() {
        let registry = Registry::new();
        registry.counter("a.hits").add(3);
        registry.counter("a.hits").incr();
        registry.gauge("a.level").set(-2);
        registry.histogram("a.lat").record(5);
        registry.span_stat("a.span").record(1_000);

        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("a.hits"), Some(&4));
        assert_eq!(snap.gauges.get("a.level"), Some(&-2));
        assert_eq!(snap.histograms.get("a.lat").unwrap().count, 1);
        assert_eq!(snap.spans.get("a.span").unwrap().total_ns, 1_000);

        registry.reset();
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("a.hits"), Some(&0));
        assert_eq!(snap.gauges.get("a.level"), Some(&0));
        assert_eq!(snap.histograms.get("a.lat").unwrap().count, 0);
        assert_eq!(snap.spans.get("a.span").unwrap().count, 0);
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_registry_is_inert() {
        let registry = Registry::new();
        registry.counter("a.hits").add(3);
        registry.histogram("a.lat").record(5);
        assert_eq!(registry.counter("a.hits").get(), 0);
        assert!(registry.snapshot().counters.is_empty());
    }
}
