//! Point-in-time, deterministically ordered copies of the registry.

use crate::json::{JsonError, JsonValue};
use std::collections::BTreeMap;

/// Copy of one histogram's state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (wraps on overflow).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Non-empty log2 buckets as `(bucket_index, sample_count)` pairs,
    /// sorted by index; see [`crate::bucket_index`].
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Copy of one span aggregate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Number of completed spans.
    pub count: u64,
    /// Total time across all spans, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

/// Deterministic snapshot of every registered metric.
///
/// All maps are `BTreeMap`s keyed by metric name, so iteration — and
/// therefore every JSON rendering — is stable across runs and diffs
/// cleanly in CI.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span aggregates by dotted path.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl TelemetrySnapshot {
    /// Snapshot the global registry.
    pub fn capture() -> Self {
        crate::global().snapshot()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Convert to a JSON document model.
    pub fn to_json_value(&self) -> JsonValue {
        let counters = self
            .counters
            .iter()
            .map(|(name, value)| (name.clone(), JsonValue::UInt(*value)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(name, value)| {
                let json = if *value >= 0 {
                    JsonValue::UInt(*value as u64)
                } else {
                    JsonValue::Int(*value)
                };
                (name.clone(), json)
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(name, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|(index, count)| {
                        JsonValue::Array(vec![
                            JsonValue::UInt(u64::from(*index)),
                            JsonValue::UInt(*count),
                        ])
                    })
                    .collect();
                let obj = JsonValue::Object(vec![
                    ("count".to_string(), JsonValue::UInt(h.count)),
                    ("sum".to_string(), JsonValue::UInt(h.sum)),
                    ("min".to_string(), JsonValue::UInt(h.min)),
                    ("max".to_string(), JsonValue::UInt(h.max)),
                    ("buckets".to_string(), JsonValue::Array(buckets)),
                ]);
                (name.clone(), obj)
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(name, s)| {
                let obj = JsonValue::Object(vec![
                    ("count".to_string(), JsonValue::UInt(s.count)),
                    ("total_ns".to_string(), JsonValue::UInt(s.total_ns)),
                    ("max_ns".to_string(), JsonValue::UInt(s.max_ns)),
                ]);
                (name.clone(), obj)
            })
            .collect();
        JsonValue::Object(vec![
            ("counters".to_string(), JsonValue::Object(counters)),
            ("gauges".to_string(), JsonValue::Object(gauges)),
            ("histograms".to_string(), JsonValue::Object(histograms)),
            ("spans".to_string(), JsonValue::Object(spans)),
        ])
    }

    /// Render as pretty-printed deterministic JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render_pretty()
    }

    /// Render as compact deterministic JSON.
    pub fn to_json_compact(&self) -> String {
        self.to_json_value().render_compact()
    }

    /// Parse a snapshot back from JSON text.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        Self::from_json_value(&JsonValue::parse(text)?)
    }

    /// Decode a snapshot from a parsed JSON document.
    ///
    /// The four sections are each optional (missing means empty);
    /// values of the wrong type are an error.
    pub fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        if value.as_object().is_none() {
            return Err(JsonError::new("snapshot must be a JSON object"));
        }
        let mut snapshot = TelemetrySnapshot::default();
        if let Some(counters) = value.get("counters") {
            for (name, v) in expect_object(counters, "counters")? {
                let v = v.as_u64().ok_or_else(|| bad_field("counter", name))?;
                snapshot.counters.insert(name.clone(), v);
            }
        }
        if let Some(gauges) = value.get("gauges") {
            for (name, v) in expect_object(gauges, "gauges")? {
                let v = v.as_i64().ok_or_else(|| bad_field("gauge", name))?;
                snapshot.gauges.insert(name.clone(), v);
            }
        }
        if let Some(histograms) = value.get("histograms") {
            for (name, v) in expect_object(histograms, "histograms")? {
                snapshot
                    .histograms
                    .insert(name.clone(), decode_histogram(name, v)?);
            }
        }
        if let Some(spans) = value.get("spans") {
            for (name, v) in expect_object(spans, "spans")? {
                let span = SpanSnapshot {
                    count: field_u64(v, "count").ok_or_else(|| bad_field("span", name))?,
                    total_ns: field_u64(v, "total_ns").ok_or_else(|| bad_field("span", name))?,
                    max_ns: field_u64(v, "max_ns").ok_or_else(|| bad_field("span", name))?,
                };
                snapshot.spans.insert(name.clone(), span);
            }
        }
        Ok(snapshot)
    }
}

fn expect_object<'a>(
    value: &'a JsonValue,
    section: &str,
) -> Result<&'a [(String, JsonValue)], JsonError> {
    value
        .as_object()
        .ok_or_else(|| JsonError::new(format!("snapshot section '{section}' must be an object")))
}

fn bad_field(kind: &str, name: &str) -> JsonError {
    JsonError::new(format!("malformed {kind} entry '{name}'"))
}

fn field_u64(value: &JsonValue, key: &str) -> Option<u64> {
    value.get(key).and_then(JsonValue::as_u64)
}

fn decode_histogram(name: &str, value: &JsonValue) -> Result<HistogramSnapshot, JsonError> {
    let mut buckets = Vec::new();
    for pair in value
        .get("buckets")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| bad_field("histogram", name))?
    {
        let pair = pair
            .as_array()
            .ok_or_else(|| bad_field("histogram", name))?;
        if pair.len() != 2 {
            return Err(bad_field("histogram", name));
        }
        let index = pair[0]
            .as_u64()
            .and_then(|i| u8::try_from(i).ok())
            .ok_or_else(|| bad_field("histogram", name))?;
        let count = pair[1]
            .as_u64()
            .ok_or_else(|| bad_field("histogram", name))?;
        buckets.push((index, count));
    }
    Ok(HistogramSnapshot {
        count: field_u64(value, "count").ok_or_else(|| bad_field("histogram", name))?,
        sum: field_u64(value, "sum").ok_or_else(|| bad_field("histogram", name))?,
        min: field_u64(value, "min").ok_or_else(|| bad_field("histogram", name))?,
        max: field_u64(value, "max").ok_or_else(|| bad_field("histogram", name))?,
        buckets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySnapshot {
        let mut snapshot = TelemetrySnapshot::default();
        snapshot.counters.insert("dse.cache_hits".to_string(), 42);
        snapshot
            .counters
            .insert("vsa.fft_forward".to_string(), u64::MAX);
        snapshot.gauges.insert("dse.threads".to_string(), -8);
        snapshot.histograms.insert(
            "dse.chunk".to_string(),
            HistogramSnapshot {
                count: 3,
                sum: 12,
                min: 1,
                max: 9,
                buckets: vec![(1, 1), (2, 1), (4, 1)],
            },
        );
        snapshot.spans.insert(
            "dse.explore.phase1".to_string(),
            SpanSnapshot {
                count: 2,
                total_ns: 5_000,
                max_ns: 4_000,
            },
        );
        snapshot
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let snapshot = sample();
        assert_eq!(
            TelemetrySnapshot::from_json(&snapshot.to_json()).unwrap(),
            snapshot
        );
        assert_eq!(
            TelemetrySnapshot::from_json(&snapshot.to_json_compact()).unwrap(),
            snapshot
        );
    }

    #[test]
    fn json_output_is_deterministic() {
        let snapshot = sample();
        assert_eq!(snapshot.to_json(), snapshot.to_json(), "stable bytes");
        // Sections appear in fixed order, metric names sorted.
        let compact = snapshot.to_json_compact();
        let counters_at = compact.find("\"counters\"").unwrap();
        let gauges_at = compact.find("\"gauges\"").unwrap();
        let histograms_at = compact.find("\"histograms\"").unwrap();
        let spans_at = compact.find("\"spans\"").unwrap();
        assert!(counters_at < gauges_at && gauges_at < histograms_at && histograms_at < spans_at);
        assert!(compact.find("dse.cache_hits").unwrap() < compact.find("vsa.fft_forward").unwrap());
    }

    #[test]
    fn empty_sections_are_optional_on_decode() {
        let decoded = TelemetrySnapshot::from_json("{}").unwrap();
        assert!(decoded.is_empty());
        assert!(TelemetrySnapshot::from_json("[]").is_err());
        assert!(TelemetrySnapshot::from_json(r#"{"counters":{"x":-1}}"#).is_err());
        assert!(TelemetrySnapshot::from_json(r#"{"counters":3}"#).is_err());
    }

    #[test]
    fn counter_lookup_defaults_to_zero() {
        let snapshot = sample();
        assert_eq!(snapshot.counter("dse.cache_hits"), 42);
        assert_eq!(snapshot.counter("missing"), 0);
    }
}
