//! Minimal deterministic JSON document model with a parser and writers.
//!
//! This module exists so telemetry snapshots (and the bench regression
//! gate built on top of them) can be produced and consumed without any
//! external JSON dependency. The writers are deterministic: the same
//! [`JsonValue`] always renders to the same bytes, so snapshots diff
//! cleanly in CI.

use std::fmt;

/// Error produced while parsing or decoding JSON documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
}

impl JsonError {
    /// Build an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Human-readable description of the failure.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON document.
///
/// Numbers are kept in three lossless lanes: [`JsonValue::UInt`] for
/// non-negative integers (full `u64` range, required for histogram
/// `u64::MAX` sentinels), [`JsonValue::Int`] for negative integers and
/// [`JsonValue::Float`] for everything with a fractional or exponent
/// part. Object keys preserve insertion/document order, so values built
/// from sorted maps render deterministically.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array of values.
    Array(Vec<JsonValue>),
    /// Object as key/value pairs in insertion order.
    Object(Vec<(String, JsonValue)>),
}

/// Maximum rendered width for an array to stay on one line in pretty
/// output (keeps histogram bucket pair-lists compact).
const INLINE_ARRAY_WIDTH: usize = 72;

impl JsonValue {
    /// Parse a JSON document from text.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Look up a key in an object (first match wins).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Borrow as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow object entries in document order.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Interpret as `u64` (integers only; negatives are rejected).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Interpret as `i64` (integers only; out-of-range `u64` rejected).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            JsonValue::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Interpret as `f64` (coerces any numeric lane).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Render without any whitespace.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Append the compact rendering to `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => {
                out.push_str(&v.to_string());
            }
            JsonValue::Int(v) => {
                out.push_str(&v.to_string());
            }
            JsonValue::Float(v) => write_float(out, *v),
            JsonValue::Str(s) => escape_into(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Append the pretty rendering to `out`.
    ///
    /// The first line is not indented (the caller chooses its position);
    /// continuation lines are indented `level + 1` steps of two spaces,
    /// so a value can be embedded inside hand-written JSON at any depth.
    pub fn write_pretty(&self, out: &mut String, level: usize) {
        match self {
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                let compact = self.render_compact();
                if compact.len() <= INLINE_ARRAY_WIDTH
                    && !items.iter().any(|v| matches!(v, JsonValue::Object(_)))
                {
                    out.push_str(&compact);
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, level + 1);
                    item.write_pretty(out, level + 1);
                }
                out.push('\n');
                push_indent(out, level);
                out.push(']');
            }
            JsonValue::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, level + 1);
                    escape_into(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, level + 1);
                }
                out.push('\n');
                push_indent(out, level);
                out.push('}');
            }
            _ => self.write_compact(out),
        }
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Inf; snapshots never produce them.
        out.push_str("null");
        return;
    }
    let rendered = if v.fract() == 0.0 && v.abs() < 1e15 {
        // Force a decimal point so the value re-parses into the float
        // lane instead of collapsing into an integer.
        format!("{v:.1}")
    } else {
        format!("{v}")
    };
    out.push_str(&rendered);
}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", expected as char)))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.error("unexpected character")),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.pos += 1;
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if !saw_digit {
            return Err(self.error("malformed number"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("malformed number"))?;
        if is_float {
            return text
                .parse::<f64>()
                .map(JsonValue::Float)
                .map_err(|_| self.error("malformed number"));
        }
        if let Some(stripped) = text.strip_prefix('-') {
            // "-0" is a plain zero; anything else negative rides the i64 lane.
            if let Ok(v) = text.parse::<i64>() {
                return Ok(if v == 0 {
                    JsonValue::UInt(0)
                } else {
                    JsonValue::Int(v)
                });
            }
            let _ = stripped;
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(v));
        }
        // Integer overflow: fall back to the float lane.
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.error("malformed number"))
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{0008}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{000c}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let c = if (0xd800..=0xdbff).contains(&unit) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xdc00..=0xdfff).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid surrogate pair"))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.error("invalid escape code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar from the source text.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("malformed \\u escape"))?;
        let value =
            u32::from_str_radix(text, 16).map_err(|_| self.error("malformed \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" 42 ").unwrap(), JsonValue::UInt(42));
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(JsonValue::parse("-0").unwrap(), JsonValue::UInt(0));
        assert_eq!(JsonValue::parse("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(
            JsonValue::parse("18446744073709551615").unwrap(),
            JsonValue::UInt(u64::MAX)
        );
    }

    #[test]
    fn parses_strings_with_escapes() {
        let v = JsonValue::parse(r#""a\nb\t\"\\\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v, JsonValue::Str("a\nb\t\"\\A\u{1f600}".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"abc").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn compact_round_trip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":-3,"e":1.25,"f":true}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.render_compact(), text);
        assert_eq!(JsonValue::parse(&v.render_compact()).unwrap(), v);
        assert_eq!(JsonValue::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn float_rendering_survives_round_trip() {
        for v in [0.5, -2.25, 3.0, 1e300, 6.02e23, -0.125] {
            let rendered = JsonValue::Float(v).render_compact();
            match JsonValue::parse(&rendered).unwrap() {
                JsonValue::Float(back) => assert_eq!(back, v, "{rendered}"),
                other => panic!("expected float from {rendered}, got {other:?}"),
            }
        }
    }

    #[test]
    fn accessors() {
        let v = JsonValue::parse(r#"{"k":7,"neg":-1,"s":"hi","arr":[1]}"#).unwrap();
        assert_eq!(v.get("k").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("neg").and_then(JsonValue::as_u64), None);
        assert_eq!(v.get("neg").and_then(JsonValue::as_i64), Some(-1));
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("hi"));
        assert_eq!(
            v.get("arr").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("k").and_then(JsonValue::as_f64), Some(7.0));
    }

    #[test]
    fn pretty_inlines_small_arrays() {
        let v = JsonValue::parse(r#"{"buckets":[[1,5],[3,2]]}"#).unwrap();
        let pretty = v.render_pretty();
        assert!(pretty.contains("\"buckets\": [[1,5],[3,2]]"), "{pretty}");
    }
}
