//! `serde` integration: manual `Serialize` impls for the snapshot
//! types plus a compact JSON [`serde::Serializer`] so snapshots can be
//! serialized through serde without pulling in `serde_json`.
//!
//! The serde rendering of a [`TelemetrySnapshot`] is byte-identical to
//! [`TelemetrySnapshot::to_json_compact`], which is what makes the
//! round-trip property (`serde` → [`JsonValue::parse`] →
//! [`TelemetrySnapshot::from_json_value`]) exact.

use crate::json::{escape_into, JsonValue};
use crate::snapshot::{HistogramSnapshot, SpanSnapshot, TelemetrySnapshot};
use serde::ser::{
    Error as _, Serialize, SerializeMap, SerializeSeq, SerializeStruct, SerializeStructVariant,
    SerializeTuple, SerializeTupleStruct, SerializeTupleVariant, Serializer,
};
use std::fmt;

/// Error produced by [`JsonSerializer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerError {
    message: String,
}

impl SerError {
    /// Human-readable description of the failure.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for SerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serialize error: {}", self.message)
    }
}

impl std::error::Error for SerError {}

impl serde::ser::Error for SerError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Self {
            message: msg.to_string(),
        }
    }
}

/// Serialize any `serde::Serialize` value to compact JSON text.
pub fn to_json_string<T>(value: &T) -> Result<String, SerError>
where
    T: ?Sized + Serialize,
{
    let mut out = String::new();
    value.serialize(JsonSerializer { out: &mut out })?;
    Ok(out)
}

/// Compact JSON `serde::Serializer` writing into a `String`.
///
/// Map keys must serialize to JSON scalars; non-string scalar keys are
/// quoted (JSON object keys are always strings).
#[derive(Debug)]
pub struct JsonSerializer<'a> {
    out: &'a mut String,
}

/// In-progress JSON array.
#[derive(Debug)]
pub struct JsonSeqSerializer<'a> {
    out: &'a mut String,
    first: bool,
    /// Closing text appended by `end` (`]` or `]}` for variants).
    close: &'static str,
}

/// In-progress JSON object.
#[derive(Debug)]
pub struct JsonMapSerializer<'a> {
    out: &'a mut String,
    first: bool,
    /// Closing text appended by `end` (`}` or `}}` for variants).
    close: &'static str,
}

impl JsonSeqSerializer<'_> {
    fn element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), SerError> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        value.serialize(JsonSerializer { out: self.out })
    }

    fn finish(self) -> Result<(), SerError> {
        self.out.push_str(self.close);
        Ok(())
    }
}

impl JsonMapSerializer<'_> {
    fn key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), SerError> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        let mut rendered = String::new();
        key.serialize(JsonSerializer { out: &mut rendered })?;
        if rendered.starts_with('"') {
            self.out.push_str(&rendered);
        } else if rendered.starts_with(['{', '[']) {
            return Err(SerError::custom("JSON object keys must be scalars"));
        } else {
            // Numeric/bool key: quote it.
            self.out.push('"');
            self.out.push_str(&rendered);
            self.out.push('"');
        }
        self.out.push(':');
        Ok(())
    }

    fn value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), SerError> {
        value.serialize(JsonSerializer { out: self.out })
    }

    fn static_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), SerError> {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        escape_into(self.out, key);
        self.out.push(':');
        value.serialize(JsonSerializer { out: self.out })
    }

    fn finish(self) -> Result<(), SerError> {
        self.out.push_str(self.close);
        Ok(())
    }
}

impl<'a> Serializer for JsonSerializer<'a> {
    type Ok = ();
    type Error = SerError;
    type SerializeSeq = JsonSeqSerializer<'a>;
    type SerializeTuple = JsonSeqSerializer<'a>;
    type SerializeTupleStruct = JsonSeqSerializer<'a>;
    type SerializeTupleVariant = JsonSeqSerializer<'a>;
    type SerializeMap = JsonMapSerializer<'a>;
    type SerializeStruct = JsonMapSerializer<'a>;
    type SerializeStructVariant = JsonMapSerializer<'a>;

    fn serialize_bool(self, v: bool) -> Result<(), SerError> {
        self.out.push_str(if v { "true" } else { "false" });
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), SerError> {
        self.serialize_i64(i64::from(v))
    }

    fn serialize_i16(self, v: i16) -> Result<(), SerError> {
        self.serialize_i64(i64::from(v))
    }

    fn serialize_i32(self, v: i32) -> Result<(), SerError> {
        self.serialize_i64(i64::from(v))
    }

    fn serialize_i64(self, v: i64) -> Result<(), SerError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_u8(self, v: u8) -> Result<(), SerError> {
        self.serialize_u64(u64::from(v))
    }

    fn serialize_u16(self, v: u16) -> Result<(), SerError> {
        self.serialize_u64(u64::from(v))
    }

    fn serialize_u32(self, v: u32) -> Result<(), SerError> {
        self.serialize_u64(u64::from(v))
    }

    fn serialize_u64(self, v: u64) -> Result<(), SerError> {
        self.out.push_str(&v.to_string());
        Ok(())
    }

    fn serialize_f32(self, v: f32) -> Result<(), SerError> {
        self.serialize_f64(f64::from(v))
    }

    fn serialize_f64(self, v: f64) -> Result<(), SerError> {
        JsonValue::Float(v).write_compact(self.out);
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), SerError> {
        escape_into(self.out, v.encode_utf8(&mut [0u8; 4]));
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), SerError> {
        escape_into(self.out, v);
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), SerError> {
        let mut seq = self.serialize_seq(Some(v.len()))?;
        for byte in v {
            SerializeSeq::serialize_element(&mut seq, byte)?;
        }
        SerializeSeq::end(seq)
    }

    fn serialize_none(self) -> Result<(), SerError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_some<T: ?Sized + Serialize>(self, value: &T) -> Result<(), SerError> {
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), SerError> {
        self.out.push_str("null");
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), SerError> {
        self.serialize_unit()
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<(), SerError> {
        self.serialize_str(variant)
    }

    fn serialize_newtype_struct<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), SerError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: ?Sized + Serialize>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<(), SerError> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push(':');
        value.serialize(JsonSerializer { out: self.out })?;
        self.out.push('}');
        Ok(())
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<JsonSeqSerializer<'a>, SerError> {
        self.out.push('[');
        Ok(JsonSeqSerializer {
            out: self.out,
            first: true,
            close: "]",
        })
    }

    fn serialize_tuple(self, len: usize) -> Result<JsonSeqSerializer<'a>, SerError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<JsonSeqSerializer<'a>, SerError> {
        self.serialize_seq(Some(len))
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<JsonSeqSerializer<'a>, SerError> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":[");
        Ok(JsonSeqSerializer {
            out: self.out,
            first: true,
            close: "]}",
        })
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<JsonMapSerializer<'a>, SerError> {
        self.out.push('{');
        Ok(JsonMapSerializer {
            out: self.out,
            first: true,
            close: "}",
        })
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<JsonMapSerializer<'a>, SerError> {
        self.serialize_map(Some(len))
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        _len: usize,
    ) -> Result<JsonMapSerializer<'a>, SerError> {
        self.out.push('{');
        escape_into(self.out, variant);
        self.out.push_str(":{");
        Ok(JsonMapSerializer {
            out: self.out,
            first: true,
            close: "}}",
        })
    }
}

impl SerializeSeq for JsonSeqSerializer<'_> {
    type Ok = ();
    type Error = SerError;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), SerError> {
        self.element(value)
    }

    fn end(self) -> Result<(), SerError> {
        self.finish()
    }
}

impl SerializeTuple for JsonSeqSerializer<'_> {
    type Ok = ();
    type Error = SerError;

    fn serialize_element<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), SerError> {
        self.element(value)
    }

    fn end(self) -> Result<(), SerError> {
        self.finish()
    }
}

impl SerializeTupleStruct for JsonSeqSerializer<'_> {
    type Ok = ();
    type Error = SerError;

    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), SerError> {
        self.element(value)
    }

    fn end(self) -> Result<(), SerError> {
        self.finish()
    }
}

impl SerializeTupleVariant for JsonSeqSerializer<'_> {
    type Ok = ();
    type Error = SerError;

    fn serialize_field<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), SerError> {
        self.element(value)
    }

    fn end(self) -> Result<(), SerError> {
        self.finish()
    }
}

impl SerializeMap for JsonMapSerializer<'_> {
    type Ok = ();
    type Error = SerError;

    fn serialize_key<T: ?Sized + Serialize>(&mut self, key: &T) -> Result<(), SerError> {
        self.key(key)
    }

    fn serialize_value<T: ?Sized + Serialize>(&mut self, value: &T) -> Result<(), SerError> {
        self.value(value)
    }

    fn end(self) -> Result<(), SerError> {
        self.finish()
    }
}

impl SerializeStruct for JsonMapSerializer<'_> {
    type Ok = ();
    type Error = SerError;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), SerError> {
        self.static_field(key, value)
    }

    fn end(self) -> Result<(), SerError> {
        self.finish()
    }
}

impl SerializeStructVariant for JsonMapSerializer<'_> {
    type Ok = ();
    type Error = SerError;

    fn serialize_field<T: ?Sized + Serialize>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), SerError> {
        self.static_field(key, value)
    }

    fn end(self) -> Result<(), SerError> {
        self.finish()
    }
}

impl Serialize for HistogramSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut state = serializer.serialize_struct("HistogramSnapshot", 5)?;
        state.serialize_field("count", &self.count)?;
        state.serialize_field("sum", &self.sum)?;
        state.serialize_field("min", &self.min)?;
        state.serialize_field("max", &self.max)?;
        state.serialize_field("buckets", &self.buckets)?;
        state.end()
    }
}

impl Serialize for SpanSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut state = serializer.serialize_struct("SpanSnapshot", 3)?;
        state.serialize_field("count", &self.count)?;
        state.serialize_field("total_ns", &self.total_ns)?;
        state.serialize_field("max_ns", &self.max_ns)?;
        state.end()
    }
}

impl Serialize for TelemetrySnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut state = serializer.serialize_struct("TelemetrySnapshot", 4)?;
        state.serialize_field("counters", &self.counters)?;
        state.serialize_field("gauges", &self.gauges)?;
        state.serialize_field("histograms", &self.histograms)?;
        state.serialize_field("spans", &self.spans)?;
        state.end()
    }
}

impl Serialize for JsonValue {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            JsonValue::Null => serializer.serialize_unit(),
            JsonValue::Bool(b) => serializer.serialize_bool(*b),
            JsonValue::UInt(v) => serializer.serialize_u64(*v),
            JsonValue::Int(v) => serializer.serialize_i64(*v),
            JsonValue::Float(v) => serializer.serialize_f64(*v),
            JsonValue::Str(s) => serializer.serialize_str(s),
            JsonValue::Array(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            JsonValue::Object(entries) => {
                let mut map = serializer.serialize_map(Some(entries.len()))?;
                for (key, value) in entries {
                    map.serialize_entry(key, value)?;
                }
                map.end()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::TelemetrySnapshot;

    #[test]
    fn serde_output_matches_native_compact_rendering() {
        let mut snapshot = TelemetrySnapshot::default();
        snapshot.counters.insert("a".to_string(), 1);
        snapshot.counters.insert("b".to_string(), u64::MAX);
        snapshot.gauges.insert("g".to_string(), -4);
        snapshot.histograms.insert(
            "h".to_string(),
            HistogramSnapshot {
                count: 1,
                sum: 3,
                min: 3,
                max: 3,
                buckets: vec![(2, 1)],
            },
        );
        snapshot.spans.insert(
            "s.x".to_string(),
            SpanSnapshot {
                count: 1,
                total_ns: 9,
                max_ns: 9,
            },
        );
        let via_serde = to_json_string(&snapshot).unwrap();
        assert_eq!(via_serde, snapshot.to_json_compact());
        assert_eq!(TelemetrySnapshot::from_json(&via_serde).unwrap(), snapshot);
    }

    #[test]
    fn serializer_handles_scalars_and_strings() {
        assert_eq!(to_json_string(&true).unwrap(), "true");
        assert_eq!(to_json_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_json_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_json_string("a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(to_json_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(to_json_string(&vec![1u8, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_json_string(&(1u8, "x")).unwrap(), r#"[1,"x"]"#);
    }

    #[test]
    fn json_value_serializes_through_serde_identically() {
        let text = r#"{"a":[1,-2,2.5,null,true],"b":{"c":"d"}}"#;
        let value = JsonValue::parse(text).unwrap();
        assert_eq!(to_json_string(&value).unwrap(), text);
    }
}
