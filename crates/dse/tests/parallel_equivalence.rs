//! Equivalence properties for the DSE evaluation engine: on random small
//! graphs and option sets, the memoized + threaded search paths return
//! exactly the same `(config, mapping, t_loop, points)` as the serial
//! trace-walking references, and the two-phase `explore` never falls
//! behind the exhaustive-uniform optimum.

use nsflow_dse::{
    exhaustive::{exhaustive_uniform, exhaustive_uniform_reference},
    explore, phase1, phase1_reference, DseOptions,
};
use nsflow_graph::DataflowGraph;
use nsflow_tensor::DType;
use nsflow_trace::{Domain, OpKind, TraceBuilder};
use proptest::prelude::*;

/// Builds a linear mixed NN→VSA chain from generated dimensions. An empty
/// spec falls back to a single GEMM so the trace is never empty.
fn build_graph(
    nn: &[(usize, usize, usize)],
    vsa: &[(usize, usize)],
    loops: usize,
) -> DataflowGraph {
    let mut b = TraceBuilder::new("prop");
    let mut prev = None;
    for (i, &(m, n, k)) in nn.iter().enumerate() {
        let inputs: Vec<_> = prev.into_iter().collect();
        prev = Some(b.push(
            format!("conv{i}"),
            OpKind::Gemm { m, n, k },
            Domain::Neural,
            DType::Int8,
            &inputs,
        ));
    }
    for (j, &(n_vec, dim)) in vsa.iter().enumerate() {
        let inputs: Vec<_> = prev.into_iter().collect();
        prev = Some(b.push(
            format!("bind{j}"),
            OpKind::VsaConv { n_vec, dim },
            Domain::Symbolic,
            DType::Int4,
            &inputs,
        ));
    }
    if prev.is_none() {
        b.push(
            "fallback",
            OpKind::Gemm {
                m: 64,
                n: 16,
                k: 16,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
    }
    DataflowGraph::from_trace(b.finish(loops).unwrap())
}

fn nn_spec() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec((16usize..600, 8usize..160, 8usize..320), 0..4)
}

fn vsa_spec() -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((1usize..48, 32usize..1200), 0..4)
}

/// Candidate dimension lists with deliberate duplicates and arbitrary
/// order — the normalization invariant must absorb both.
fn dim_list() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec((1usize..=5).prop_map(|e| 1usize << e), 1..5)
}

fn options() -> impl Strategy<Value = DseOptions> {
    (dim_list(), dim_list(), 8usize..=11, 2usize..=8).prop_map(
        |(heights, widths, pe_exp, max_subarrays)| DseOptions {
            max_pes: 1 << pe_exp,
            heights,
            widths,
            // Loose bounds: no aspect pruning, so Phase I covers every
            // (H, W) pair and stays comparable to the unpruned exhaustive
            // sweep.
            aspect_bounds: (1e-4, 1e4),
            max_subarrays,
            ..DseOptions::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn phase1_parallel_equals_serial_reference(
        nn in nn_spec(),
        vsa in vsa_spec(),
        loops in 1usize..=4,
        opts in options(),
        threads in 2usize..=6,
    ) {
        let g = build_graph(&nn, &vsa, loops);
        let fast = phase1(&g, &DseOptions { threads: Some(threads), ..opts.clone() });
        let slow = phase1_reference(&g, &DseOptions { threads: Some(1), ..opts });
        prop_assert_eq!(fast.config, slow.config);
        prop_assert_eq!(fast.mapping, slow.mapping);
        prop_assert_eq!(fast.timing.t_loop, slow.timing.t_loop);
        prop_assert_eq!(fast.points_evaluated, slow.points_evaluated);
    }

    #[test]
    fn exhaustive_parallel_equals_serial_reference(
        nn in nn_spec(),
        vsa in vsa_spec(),
        loops in 1usize..=4,
        opts in options(),
        threads in 2usize..=6,
    ) {
        let g = build_graph(&nn, &vsa, loops);
        let fast = exhaustive_uniform(&g, &DseOptions { threads: Some(threads), ..opts.clone() });
        let slow = exhaustive_uniform_reference(&g, &DseOptions { threads: Some(1), ..opts });
        prop_assert_eq!(fast.config, slow.config);
        prop_assert_eq!(fast.mapping, slow.mapping);
        prop_assert_eq!(fast.t_loop, slow.t_loop);
        prop_assert_eq!(fast.points, slow.points);
    }

    #[test]
    fn explore_stays_at_or_below_exhaustive_uniform_optimum(
        nn in nn_spec(),
        vsa in vsa_spec(),
        loops in 1usize..=4,
        opts in options(),
    ) {
        let g = build_graph(&nn, &vsa, loops);
        let ex = exhaustive_uniform(&g, &opts);
        let two_phase = explore(&g, &opts);
        prop_assert!(
            two_phase.timing.t_loop <= ex.t_loop,
            "two-phase {} worse than exhaustive uniform {}",
            two_phase.timing.t_loop,
            ex.t_loop
        );
    }

    #[test]
    fn thread_count_never_changes_the_explore_result(
        nn in nn_spec(),
        vsa in vsa_spec(),
        opts in options(),
    ) {
        let g = build_graph(&nn, &vsa, 2);
        let serial = explore(&g, &DseOptions { threads: Some(1), ..opts.clone() });
        let par = explore(&g, &DseOptions { threads: Some(5), ..opts });
        prop_assert_eq!(serial.config, par.config);
        prop_assert_eq!(serial.mapping, par.mapping);
        prop_assert_eq!(serial.timing, par.timing);
        prop_assert_eq!(serial.phase1_points, par.phase1_points);
        prop_assert_eq!(serial.phase2_sweeps, par.phase2_sweeps);
    }
}
