//! Exhaustive reference search over small design spaces.
//!
//! The two-phase DSE exists because the full cross-coupled space is
//! intractable (Tab. II). On *small* spaces, however, it can be enumerated
//! outright — which gives a ground-truth optimum to validate the two-phase
//! heuristic against. `tests` in this module (and the optimality property
//! test in the workspace `tests/`) assert that the two-phase result stays
//! within a small factor of the exhaustive optimum.

use nsflow_arch::{analytical, ArrayConfig, Mapping};
use nsflow_graph::DataflowGraph;

use crate::DseOptions;

/// Outcome of an exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveResult {
    /// The optimal configuration found.
    pub config: ArrayConfig,
    /// The optimal mapping found (uniform or sequential — see
    /// [`exhaustive_uniform`] for the searched family).
    pub mapping: Mapping,
    /// Loop time at the optimum.
    pub t_loop: u64,
    /// Number of design points evaluated.
    pub points: usize,
}

/// Exhaustively enumerates every `(H, W, N, N̄_l)` point (uniform static
/// mappings plus sequential mode) **without** aspect-ratio pruning — the
/// full Phase-I-shaped space. This is the reference for validating the
/// pruned search: if pruning were hurting, the pruned result would fall
/// behind this optimum.
///
/// # Panics
///
/// Panics if no candidate configuration fits the PE budget.
#[must_use]
pub fn exhaustive_uniform(graph: &DataflowGraph, options: &DseOptions) -> ExhaustiveResult {
    let trace = graph.trace();
    let nn = trace.nn_nodes().len();
    let vsa = trace.vsa_nodes().len();

    let mut best: Option<ExhaustiveResult> = None;
    let mut points = 0usize;
    for &h in &options.heights {
        for &w in &options.widths {
            if h * w > options.max_pes {
                continue;
            }
            let n_max = (options.max_pes / (h * w)).min(options.max_subarrays);
            // Every sub-array count, not just the maximal one.
            for n in 1..=n_max {
                let cfg = ArrayConfig::new(h, w, n).expect("nonzero dims");
                let mut consider = |mapping: Mapping| {
                    let t =
                        analytical::loop_timing(graph, &cfg, &mapping, options.simd_lanes).t_loop;
                    points += 1;
                    if best.as_ref().is_none_or(|b| t < b.t_loop) {
                        best = Some(ExhaustiveResult {
                            config: cfg,
                            mapping,
                            t_loop: t,
                            points: 0,
                        });
                    }
                };
                if nn > 0 && vsa > 0 && n >= 2 {
                    for nl in 1..n {
                        consider(Mapping::uniform(nn, vsa, nl, n - nl));
                    }
                }
                consider(Mapping::sequential(nn, vsa, n));
            }
        }
    }
    let mut result = best.expect("at least one configuration must fit");
    result.points = points;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, phase1};
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, OpKind, TraceBuilder};

    fn graph(loops: usize) -> DataflowGraph {
        let mut b = TraceBuilder::new("g");
        let c1 = b.push(
            "conv1",
            OpKind::Gemm { m: 2048, n: 96, k: 288 },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let c2 = b.push(
            "conv2",
            OpKind::Gemm { m: 512, n: 192, k: 864 },
            Domain::Neural,
            DType::Int8,
            &[c1],
        );
        let _v = b.push(
            "bind",
            OpKind::VsaConv { n_vec: 48, dim: 1024 },
            Domain::Symbolic,
            DType::Int4,
            &[c2],
        );
        DataflowGraph::from_trace(b.finish(loops).unwrap())
    }

    fn small_opts() -> DseOptions {
        DseOptions {
            max_pes: 2048,
            heights: vec![4, 8, 16, 32],
            widths: vec![4, 8, 16, 32],
            max_subarrays: 8,
            ..DseOptions::default()
        }
    }

    #[test]
    fn exhaustive_covers_more_points_than_phase1() {
        let g = graph(4);
        let opts = small_opts();
        let ex = exhaustive_uniform(&g, &opts);
        let p1 = phase1(&g, &opts);
        assert!(ex.points > p1.points_evaluated, "{} !> {}", ex.points, p1.points_evaluated);
    }

    #[test]
    fn phase1_matches_exhaustive_at_maximal_n() {
        // Phase I fixes N to the maximal count per (H, W); the exhaustive
        // search additionally sweeps smaller N. More sub-arrays never hurt
        // the analytical model, so both should land on the same optimum.
        let g = graph(4);
        let opts = small_opts();
        let ex = exhaustive_uniform(&g, &opts);
        let p1 = phase1(&g, &opts);
        assert_eq!(p1.timing.t_loop, ex.t_loop, "phase 1 missed the uniform optimum");
    }

    #[test]
    fn two_phase_result_is_at_least_uniform_optimal() {
        let g = graph(4);
        let opts = small_opts();
        let ex = exhaustive_uniform(&g, &opts);
        let r = explore(&g, &opts);
        assert!(
            r.timing.t_loop <= ex.t_loop,
            "two-phase {} worse than exhaustive uniform {}",
            r.timing.t_loop,
            ex.t_loop
        );
    }

    #[test]
    fn aspect_pruning_does_not_lose_the_optimum_here() {
        // The pruned Phase-I search (1/4 ≤ H/W ≤ 16) finds the same
        // optimum as the unpruned exhaustive sweep on this workload —
        // evidence the pruning bound is safe where it matters.
        let g = graph(4);
        let opts = small_opts();
        let ex = exhaustive_uniform(&g, &opts);
        let pruned = phase1(&g, &DseOptions { aspect_bounds: (0.25, 16.0), ..opts });
        assert_eq!(pruned.timing.t_loop, ex.t_loop);
    }
}
