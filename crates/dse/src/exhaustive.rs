//! Exhaustive reference search over small design spaces.
//!
//! The two-phase DSE exists because the full cross-coupled space is
//! intractable (Tab. II). On *small* spaces, however, it can be enumerated
//! outright — which gives a ground-truth optimum to validate the two-phase
//! heuristic against. `tests` in this module (and the optimality property
//! test in the workspace `tests/`) assert that the two-phase result stays
//! within a small factor of the exhaustive optimum.
//!
//! Like Phase I, the search comes in two bit-identical flavours:
//! [`exhaustive_uniform`] (memoized cycle tables + threaded `(H, W)`
//! sweep) and [`exhaustive_uniform_reference`] (the serial trace-walking
//! implementation, kept as the equivalence/speedup baseline).

use std::time::Instant;

use nsflow_arch::{analytical, ArrayConfig, Mapping};
use nsflow_graph::DataflowGraph;

use crate::eval::{
    parallel_map, record_chunk_utilization, record_sweep_stats, EvalEngine, SweepStats,
};
use crate::phase1::{reduce_outcomes, Candidate, PairOutcome};
use crate::DseOptions;
use nsflow_telemetry as telemetry;

/// Outcome of an exhaustive search.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveResult {
    /// The optimal configuration found.
    pub config: ArrayConfig,
    /// The optimal mapping found (uniform or sequential — see
    /// [`exhaustive_uniform`] for the searched family).
    pub mapping: Mapping,
    /// Loop time at the optimum.
    pub t_loop: u64,
    /// Number of design points evaluated.
    pub points: usize,
    /// Evaluation counters (memoization hits, tables built, wall time).
    pub stats: SweepStats,
}

/// Exhaustively enumerates every `(H, W, N, N̄_l)` point (uniform static
/// mappings plus sequential mode) **without** aspect-ratio pruning — the
/// full Phase-I-shaped space. This is the reference for validating the
/// pruned search: if pruning were hurting, the pruned result would fall
/// behind this optimum.
///
/// One cycle table per `(H, W)` geometry serves **every** sub-array count
/// `N ∈ [1, N_max]` of that pair (per-node cycles are independent of `N`),
/// so the sequential-mode point at each `N` and every `N̄_l` split are
/// plain table lookups; candidate mappings are only materialized for the
/// final winner, never per point. The `(H, W)` pairs sweep on
/// [`DseOptions::threads`] workers with deterministic reduction — results
/// are bit-identical to [`exhaustive_uniform_reference`].
///
/// # Panics
///
/// Panics if no candidate configuration fits the PE budget.
#[must_use]
pub fn exhaustive_uniform(graph: &DataflowGraph, options: &DseOptions) -> ExhaustiveResult {
    let _span = telemetry::span!("dse.exhaustive");
    let start = Instant::now();
    let trace = graph.trace();
    let nn = trace.nn_nodes().len();
    let vsa = trace.vsa_nodes().len();
    let engine = EvalEngine::new(graph, options.simd_lanes);
    let pairs = unpruned_pairs(options);
    let threads = options.effective_threads();
    record_chunk_utilization(pairs.len(), threads);

    let outcomes = parallel_map(&pairs, threads, |&(h, w, n_max)| {
        let table = engine.build_table(h, w, n_max);
        let mut best: Option<Candidate> = None;
        let mut points = 0usize;
        // Every sub-array count, not just the maximal one.
        for n in 1..=n_max {
            if nn > 0 && vsa > 0 && n >= 2 {
                for nl in 1..n {
                    let t = table.uniform_timing(nl, n - nl).t_loop;
                    points += 1;
                    if best.is_none_or(|b| t < b.t_loop) {
                        best = Some(Candidate {
                            t_loop: t,
                            h,
                            w,
                            n,
                            split: Some(nl),
                        });
                    }
                }
            }
            let t = table.sequential_timing(n).t_loop;
            points += 1;
            if best.is_none_or(|b| t < b.t_loop) {
                best = Some(Candidate {
                    t_loop: t,
                    h,
                    w,
                    n,
                    split: None,
                });
            }
        }
        PairOutcome { best, points }
    });

    let (best, points, mut stats) = reduce_outcomes(&outcomes);
    stats.threads = threads;
    stats.wall = start.elapsed();
    record_sweep_stats(&stats);
    let c = best.expect("at least one configuration must fit");
    let config = ArrayConfig::new(c.h, c.w, c.n).expect("nonzero dims");
    let mapping = match c.split {
        Some(nl) => Mapping::uniform(nn, vsa, nl, c.n - nl),
        None => Mapping::sequential(nn, vsa, c.n),
    };
    debug_assert_eq!(
        analytical::loop_timing(graph, &config, &mapping, options.simd_lanes).t_loop,
        c.t_loop,
        "cycle table diverged from loop_timing"
    );
    ExhaustiveResult {
        config,
        mapping,
        t_loop: c.t_loop,
        points,
        stats,
    }
}

/// The serial reference implementation: identical candidate order and
/// tie-breaking, but every point builds a mapping and re-walks the trace
/// through [`analytical::loop_timing`]. This is the seed implementation,
/// kept verbatim as the proptest ground truth and the `dse_throughput`
/// speedup baseline.
///
/// # Panics
///
/// Panics if no candidate configuration fits the PE budget.
#[must_use]
pub fn exhaustive_uniform_reference(
    graph: &DataflowGraph,
    options: &DseOptions,
) -> ExhaustiveResult {
    let _span = telemetry::span!("dse.exhaustive_reference");
    let start = Instant::now();
    let trace = graph.trace();
    let nn = trace.nn_nodes().len();
    let vsa = trace.vsa_nodes().len();

    let mut best: Option<ExhaustiveResult> = None;
    let mut points = 0usize;
    for (h, w, n_max) in unpruned_pairs(options) {
        for n in 1..=n_max {
            let cfg = ArrayConfig::new(h, w, n).expect("nonzero dims");
            let mut consider = |mapping: Mapping| {
                let t = analytical::loop_timing(graph, &cfg, &mapping, options.simd_lanes).t_loop;
                points += 1;
                if best.as_ref().is_none_or(|b| t < b.t_loop) {
                    best = Some(ExhaustiveResult {
                        config: cfg,
                        mapping,
                        t_loop: t,
                        points: 0,
                        stats: SweepStats::default(),
                    });
                }
            };
            if nn > 0 && vsa > 0 && n >= 2 {
                for nl in 1..n {
                    consider(Mapping::uniform(nn, vsa, nl, n - nl));
                }
            }
            consider(Mapping::sequential(nn, vsa, n));
        }
    }
    let mut result = best.expect("at least one configuration must fit");
    result.points = points;
    result.stats = SweepStats {
        points_evaluated: points,
        threads: 1,
        wall: start.elapsed(),
        ..SweepStats::default()
    };
    record_sweep_stats(&result.stats);
    result
}

/// Enumerates `(H, W, N_max)` without aspect pruning, in sweep order.
fn unpruned_pairs(options: &DseOptions) -> Vec<(usize, usize, usize)> {
    let (heights, widths) = options.normalized_dims();
    let mut pairs = Vec::with_capacity(heights.len() * widths.len());
    for &h in &heights {
        for &w in &widths {
            if h * w > options.max_pes {
                continue;
            }
            let n_max = (options.max_pes / (h * w)).min(options.max_subarrays);
            if n_max == 0 {
                continue;
            }
            pairs.push((h, w, n_max));
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, phase1};
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, OpKind, TraceBuilder};

    fn graph(loops: usize) -> DataflowGraph {
        let mut b = TraceBuilder::new("g");
        let c1 = b.push(
            "conv1",
            OpKind::Gemm {
                m: 2048,
                n: 96,
                k: 288,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let c2 = b.push(
            "conv2",
            OpKind::Gemm {
                m: 512,
                n: 192,
                k: 864,
            },
            Domain::Neural,
            DType::Int8,
            &[c1],
        );
        let _v = b.push(
            "bind",
            OpKind::VsaConv {
                n_vec: 48,
                dim: 1024,
            },
            Domain::Symbolic,
            DType::Int4,
            &[c2],
        );
        DataflowGraph::from_trace(b.finish(loops).unwrap())
    }

    fn small_opts() -> DseOptions {
        DseOptions {
            max_pes: 2048,
            heights: vec![4, 8, 16, 32],
            widths: vec![4, 8, 16, 32],
            max_subarrays: 8,
            ..DseOptions::default()
        }
    }

    #[test]
    fn exhaustive_covers_more_points_than_phase1() {
        let g = graph(4);
        let opts = small_opts();
        let ex = exhaustive_uniform(&g, &opts);
        let p1 = phase1(&g, &opts);
        assert!(
            ex.points > p1.points_evaluated,
            "{} !> {}",
            ex.points,
            p1.points_evaluated
        );
    }

    #[test]
    fn phase1_matches_exhaustive_at_maximal_n() {
        // Phase I fixes N to the maximal count per (H, W); the exhaustive
        // search additionally sweeps smaller N. More sub-arrays never hurt
        // the analytical model, so both should land on the same optimum.
        let g = graph(4);
        let opts = small_opts();
        let ex = exhaustive_uniform(&g, &opts);
        let p1 = phase1(&g, &opts);
        assert_eq!(
            p1.timing.t_loop, ex.t_loop,
            "phase 1 missed the uniform optimum"
        );
    }

    #[test]
    fn two_phase_result_is_at_least_uniform_optimal() {
        let g = graph(4);
        let opts = small_opts();
        let ex = exhaustive_uniform(&g, &opts);
        let r = explore(&g, &opts);
        assert!(
            r.timing.t_loop <= ex.t_loop,
            "two-phase {} worse than exhaustive uniform {}",
            r.timing.t_loop,
            ex.t_loop
        );
    }

    #[test]
    fn aspect_pruning_does_not_lose_the_optimum_here() {
        // The pruned Phase-I search (1/4 ≤ H/W ≤ 16) finds the same
        // optimum as the unpruned exhaustive sweep on this workload —
        // evidence the pruning bound is safe where it matters.
        let g = graph(4);
        let opts = small_opts();
        let ex = exhaustive_uniform(&g, &opts);
        let pruned = phase1(
            &g,
            &DseOptions {
                aspect_bounds: (0.25, 16.0),
                ..opts
            },
        );
        assert_eq!(pruned.timing.t_loop, ex.t_loop);
    }

    #[test]
    fn engine_path_matches_reference_bit_for_bit() {
        let g = graph(4);
        for threads in [Some(1), Some(3), None] {
            let opts = DseOptions {
                threads,
                ..small_opts()
            };
            let fast = exhaustive_uniform(&g, &opts);
            let slow = exhaustive_uniform_reference(&g, &opts);
            assert_eq!(fast.config, slow.config);
            assert_eq!(fast.mapping, slow.mapping);
            assert_eq!(fast.t_loop, slow.t_loop);
            assert_eq!(fast.points, slow.points);
        }
    }

    #[test]
    fn one_table_per_geometry() {
        let g = graph(4);
        let opts = small_opts();
        let ex = exhaustive_uniform(&g, &opts);
        // 4×4 candidate (H, W) pairs all fit max_pes = 2048 → 16 tables,
        // regardless of how many (N, N̄_l) points each pair expands to.
        assert_eq!(ex.stats.tables_built, 16);
        assert_eq!(ex.stats.cache_hits, ex.points - ex.stats.tables_built);
        assert!(ex.stats.points_evaluated == ex.points);
    }
}
