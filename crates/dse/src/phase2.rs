//! Phase II of Algorithm 1: per-node mapping refinement.
//!
//! Starting from the Phase-I static partition, each sweep proposes one
//! move per NN layer: for layer `i` it locates the VSA nodes `j′..j″`
//! that execute concurrently with it (the layer's *span* in the dataflow
//! graph), then shifts one sub-array between the layer and its span
//! toward whichever side is the sweep-start bottleneck. All of a sweep's
//! candidates are evaluated against the same snapshot (steepest-descent /
//! Jacobi form), which makes them independent: the engine scores them in
//! parallel through per-node cycle-table lookups, and the best strictly
//! improving candidate (lowest loop time, ties to the lowest layer index)
//! is applied before the next sweep. Evaluation order never affects the
//! outcome, so threaded and serial runs are bit-identical. Search
//! granularity is one NN layer (VSA kernels being smaller and more
//! malleable, per the paper).

use std::time::Instant;

use nsflow_arch::{ArrayConfig, Mapping};
use nsflow_graph::DataflowGraph;

use crate::eval::{parallel_map, record_sweep_stats, EvalEngine, SweepStats};
use crate::DseOptions;
use nsflow_telemetry as telemetry;

/// The VSA nodes overlapping NN layer `layer_idx` in depth order: those
/// whose dependency depth lies in `[depth(layer i), depth(layer i+1))`
/// (until the end of the loop for the last layer). Returns indices into
/// the trace's `vsa_nodes()` list.
#[must_use]
pub fn vsa_span_of_layer(graph: &DataflowGraph, layer_idx: usize) -> Vec<usize> {
    let trace = graph.trace();
    let nn = trace.nn_nodes();
    let vsa = trace.vsa_nodes();
    if nn.is_empty() || vsa.is_empty() || layer_idx >= nn.len() {
        return Vec::new();
    }
    let start_depth = graph.depth(nn[layer_idx]);
    let end_depth = nn.get(layer_idx + 1).map(|id| graph.depth(*id));
    let in_span: Vec<usize> = vsa
        .iter()
        .enumerate()
        .filter(|(_, id)| {
            let d = graph.depth(**id);
            d >= start_depth && end_depth.is_none_or(|e| d < e)
        })
        .map(|(j, _)| j)
        .collect();
    if in_span.is_empty() {
        // No VSA node shares the layer's window; balance against the whole
        // VSA set instead (they still contend for sub-arrays across the
        // pipelined loop).
        (0..vsa.len()).collect()
    } else {
        in_span
    }
}

/// Phase-II outcome with evaluation counters.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase2Outcome {
    /// The refined mapping (the start mapping when nothing improved).
    pub mapping: Mapping,
    /// Sweeps actually executed.
    pub sweeps: usize,
    /// Evaluation counters for the refinement.
    pub stats: SweepStats,
}

/// Runs Phase II, returning the refined mapping and the number of sweeps
/// executed. Sequential Phase-I results are returned unchanged — there is
/// no partition to refine.
#[must_use]
pub fn phase2(
    graph: &DataflowGraph,
    config: &ArrayConfig,
    start: &Mapping,
    options: &DseOptions,
) -> (Mapping, usize) {
    let out = phase2_with_stats(graph, config, start, options);
    (out.mapping, out.sweeps)
}

/// [`phase2`] with the evaluation counters exposed (what [`crate::explore`]
/// threads into [`crate::DseResult`]).
#[must_use]
pub fn phase2_with_stats(
    graph: &DataflowGraph,
    config: &ArrayConfig,
    start: &Mapping,
    options: &DseOptions,
) -> Phase2Outcome {
    let _span = telemetry::span!("dse.phase2");
    if !start.parallel || start.n_l.is_empty() || start.n_v.is_empty() {
        return Phase2Outcome {
            mapping: start.clone(),
            sweeps: 0,
            stats: SweepStats::default(),
        };
    }
    let began = Instant::now();
    let trace = graph.trace();
    let vsa_count = trace.vsa_nodes().len();
    let nn_count = start.n_l.len();
    let n = config.n_subarrays();
    let threads = options.effective_threads();

    // One table serves the whole refinement; spans never change across
    // sweeps, so hoist them too.
    let engine = EvalEngine::new(graph, options.simd_lanes);
    let table = engine.build_table(config.height(), config.width(), n);
    let spans: Vec<Vec<usize>> = (0..nn_count)
        .map(|layer| vsa_span_of_layer(graph, layer))
        .collect();

    let mut stats = SweepStats {
        tables_built: 1,
        threads,
        ..SweepStats::default()
    };
    let mut current = start.clone();
    let mut best_time = table.mapping_timing(&current).t_loop;
    stats.points_evaluated += 1;
    let mut sweeps = 0usize;

    for _ in 0..options.iter_max {
        sweeps += 1;
        let snapshot = table.mapping_timing(&current);
        stats.points_evaluated += 1;
        stats.cache_hits += 1;

        // Propose one move per layer against the sweep-start snapshot.
        let candidates: Vec<Mapping> = (0..nn_count)
            .filter_map(|layer| {
                let span = &spans[layer];
                if span.is_empty() {
                    return None;
                }
                let mut candidate = current.clone();
                if snapshot.t_nn >= snapshot.t_vsa {
                    // NN is the bottleneck: take one sub-array from each
                    // span node that can spare it and give it to this layer.
                    if span.iter().all(|&j| candidate.n_v[j] > 1)
                        && layer_headroom(&candidate, layer, span, n)
                    {
                        candidate.n_l[layer] += 1;
                        for &j in span {
                            candidate.n_v[j] -= 1;
                        }
                    } else {
                        return None;
                    }
                } else {
                    // VSA is the bottleneck: donate one sub-array from the
                    // layer.
                    if candidate.n_l[layer] > 1
                        && span
                            .iter()
                            .all(|&j| candidate.n_v[j] + candidate.n_l[layer] - 1 <= n)
                    {
                        candidate.n_l[layer] -= 1;
                        for &j in span {
                            candidate.n_v[j] += 1;
                        }
                    } else {
                        return None;
                    }
                }
                if candidate.validate(config, nn_count, vsa_count).is_err() {
                    return None;
                }
                Some(candidate)
            })
            .collect();
        if candidates.is_empty() {
            break;
        }

        // Score every candidate against the same snapshot — independent
        // work, safe to fan out; input-order results keep the argmin
        // deterministic.
        let times = parallel_map(&candidates, threads, |m| table.mapping_timing(m).t_loop);
        stats.points_evaluated += times.len();
        stats.cache_hits += times.len();

        // First strict minimum wins (lowest layer index on ties).
        let mut winner: Option<usize> = None;
        for (idx, &t) in times.iter().enumerate() {
            if t < best_time && winner.is_none_or(|w| t < times[w]) {
                winner = Some(idx);
            }
        }
        match winner {
            Some(idx) => {
                best_time = times[idx];
                current = candidates[idx].clone();
            }
            None => break,
        }
    }
    stats.wall = began.elapsed();
    record_sweep_stats(&stats);
    Phase2Outcome {
        mapping: current,
        sweeps,
        stats,
    }
}

/// Whether giving layer `layer` one more sub-array keeps every concurrent
/// pair within the array.
fn layer_headroom(mapping: &Mapping, layer: usize, span: &[usize], n: usize) -> bool {
    let new_l = mapping.n_l[layer] + 1;
    span.iter()
        .all(|&j| new_l + mapping.n_v[j].saturating_sub(1) <= n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_arch::analytical;
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, OpKind, TraceBuilder};

    /// Two NN layers of very different weight and a VSA tail: the uniform
    /// split is suboptimal, so Phase II has something to gain.
    fn lopsided_graph() -> DataflowGraph {
        let mut b = TraceBuilder::new("lopsided");
        let c1 = b.push(
            "conv_heavy",
            OpKind::Gemm {
                m: 4096,
                n: 512,
                k: 512,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let v1 = b.push(
            "bind_light",
            OpKind::VsaConv { n_vec: 4, dim: 256 },
            Domain::Symbolic,
            DType::Int4,
            &[c1],
        );
        let c2 = b.push(
            "conv_light",
            OpKind::Gemm {
                m: 64,
                n: 32,
                k: 32,
            },
            Domain::Neural,
            DType::Int8,
            &[v1],
        );
        let _v2 = b.push(
            "bind_heavy",
            OpKind::VsaConv {
                n_vec: 128,
                dim: 2048,
            },
            Domain::Symbolic,
            DType::Int4,
            &[c2],
        );
        DataflowGraph::from_trace(b.finish(4).unwrap())
    }

    #[test]
    fn span_partitions_vsa_nodes_by_depth() {
        let g = lopsided_graph();
        // Layer 0 (conv_heavy, depth 0) spans bind_light (depth 1);
        // layer 1 (conv_light, depth 2) spans bind_heavy (depth 3).
        assert_eq!(vsa_span_of_layer(&g, 0), vec![0]);
        assert_eq!(vsa_span_of_layer(&g, 1), vec![1]);
        assert!(vsa_span_of_layer(&g, 9).is_empty());
    }

    #[test]
    fn phase2_improves_or_preserves_uniform_start() {
        let g = lopsided_graph();
        let cfg = ArrayConfig::new(16, 16, 8).unwrap();
        let opts = DseOptions::default();
        let start = Mapping::uniform(2, 2, 4, 4);
        let start_time = analytical::loop_timing(&g, &cfg, &start, opts.simd_lanes).t_loop;
        let (refined, sweeps) = phase2(&g, &cfg, &start, &opts);
        let refined_time = analytical::loop_timing(&g, &cfg, &refined, opts.simd_lanes).t_loop;
        assert!(refined_time <= start_time, "{refined_time} > {start_time}");
        assert!(sweeps >= 1);
        refined.validate(&cfg, 2, 2).unwrap();
    }

    #[test]
    fn phase2_gains_on_lopsided_workload() {
        let g = lopsided_graph();
        let cfg = ArrayConfig::new(16, 16, 8).unwrap();
        let opts = DseOptions::default();
        let start = Mapping::uniform(2, 2, 4, 4);
        let start_time = analytical::loop_timing(&g, &cfg, &start, opts.simd_lanes).t_loop;
        let (refined, _) = phase2(&g, &cfg, &start, &opts);
        let refined_time = analytical::loop_timing(&g, &cfg, &refined, opts.simd_lanes).t_loop;
        assert!(
            refined_time < start_time,
            "expected strict improvement on a lopsided workload"
        );
    }

    #[test]
    fn sequential_start_is_returned_unchanged() {
        let g = lopsided_graph();
        let cfg = ArrayConfig::new(16, 16, 8).unwrap();
        let start = Mapping::sequential(2, 2, 8);
        let (out, sweeps) = phase2(&g, &cfg, &start, &DseOptions::default());
        assert_eq!(out, start);
        assert_eq!(sweeps, 0);
    }

    #[test]
    fn refined_mapping_entries_stay_positive() {
        let g = lopsided_graph();
        let cfg = ArrayConfig::new(8, 8, 4).unwrap();
        let start = Mapping::uniform(2, 2, 2, 2);
        let (out, _) = phase2(&g, &cfg, &start, &DseOptions::default());
        assert!(out.n_l.iter().all(|&x| x >= 1));
        assert!(out.n_v.iter().all(|&x| x >= 1));
    }

    #[test]
    fn threaded_and_serial_refinement_agree() {
        let g = lopsided_graph();
        let cfg = ArrayConfig::new(16, 16, 8).unwrap();
        let start = Mapping::uniform(2, 2, 4, 4);
        let serial = phase2(
            &g,
            &cfg,
            &start,
            &DseOptions {
                threads: Some(1),
                ..DseOptions::default()
            },
        );
        for threads in [Some(2), Some(7), None] {
            let par = phase2(
                &g,
                &cfg,
                &start,
                &DseOptions {
                    threads,
                    ..DseOptions::default()
                },
            );
            assert_eq!(par, serial, "threads={threads:?}");
        }
    }

    #[test]
    fn refinement_never_regresses_under_table_scoring() {
        let g = lopsided_graph();
        let cfg = ArrayConfig::new(16, 16, 8).unwrap();
        let opts = DseOptions::default();
        let start = Mapping::uniform(2, 2, 4, 4);
        let out = phase2_with_stats(&g, &cfg, &start, &opts);
        assert_eq!(out.stats.tables_built, 1);
        assert!(out.stats.points_evaluated > 0);
        let start_t = analytical::loop_timing(&g, &cfg, &start, opts.simd_lanes).t_loop;
        let out_t = analytical::loop_timing(&g, &cfg, &out.mapping, opts.simd_lanes).t_loop;
        assert!(out_t <= start_t);
    }
}
