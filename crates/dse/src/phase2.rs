//! Phase II of Algorithm 1: per-node mapping refinement.
//!
//! Starting from the Phase-I static partition, each sweep walks the NN
//! layers in order. For layer `i` it locates the VSA nodes `j′..j″` that
//! execute concurrently with it (the layer's *span* in the dataflow
//! graph), then shifts one sub-array between the layer and its span
//! toward whichever side is currently the bottleneck. The best mapping
//! seen across all sweeps is returned; search granularity is one NN layer
//! (VSA kernels being smaller and more malleable, per the paper).

use nsflow_arch::{analytical, ArrayConfig, Mapping};
use nsflow_graph::DataflowGraph;

use crate::DseOptions;

/// The VSA nodes overlapping NN layer `layer_idx` in depth order: those
/// whose dependency depth lies in `[depth(layer i), depth(layer i+1))`
/// (until the end of the loop for the last layer). Returns indices into
/// the trace's `vsa_nodes()` list.
#[must_use]
pub fn vsa_span_of_layer(graph: &DataflowGraph, layer_idx: usize) -> Vec<usize> {
    let trace = graph.trace();
    let nn = trace.nn_nodes();
    let vsa = trace.vsa_nodes();
    if nn.is_empty() || vsa.is_empty() || layer_idx >= nn.len() {
        return Vec::new();
    }
    let start_depth = graph.depth(nn[layer_idx]);
    let end_depth = nn.get(layer_idx + 1).map(|id| graph.depth(*id));
    let in_span: Vec<usize> = vsa
        .iter()
        .enumerate()
        .filter(|(_, id)| {
            let d = graph.depth(**id);
            d >= start_depth && end_depth.is_none_or(|e| d < e)
        })
        .map(|(j, _)| j)
        .collect();
    if in_span.is_empty() {
        // No VSA node shares the layer's window; balance against the whole
        // VSA set instead (they still contend for sub-arrays across the
        // pipelined loop).
        (0..vsa.len()).collect()
    } else {
        in_span
    }
}

/// Runs Phase II, returning the refined mapping and the number of sweeps
/// executed. Sequential Phase-I results are returned unchanged — there is
/// no partition to refine.
#[must_use]
pub fn phase2(
    graph: &DataflowGraph,
    config: &ArrayConfig,
    start: &Mapping,
    options: &DseOptions,
) -> (Mapping, usize) {
    if !start.parallel || start.n_l.is_empty() || start.n_v.is_empty() {
        return (start.clone(), 0);
    }
    let trace = graph.trace();
    let vsa_nodes = trace.vsa_nodes();
    let n = config.n_subarrays();

    let mut current = start.clone();
    let mut best = start.clone();
    let mut best_time =
        analytical::loop_timing(graph, config, &best, options.simd_lanes).t_loop;
    let mut sweeps = 0usize;

    for _ in 0..options.iter_max {
        sweeps += 1;
        let mut changed = false;
        for layer in 0..current.n_l.len() {
            let span = vsa_span_of_layer(graph, layer);
            if span.is_empty() {
                continue;
            }
            let timing = analytical::loop_timing(graph, config, &current, options.simd_lanes);
            // Shift one sub-array toward the bottleneck partition.
            let mut candidate = current.clone();
            if timing.t_nn >= timing.t_vsa {
                // NN is the bottleneck: take one sub-array from each span
                // node that can spare it and give it to this layer.
                if span.iter().all(|&j| candidate.n_v[j] > 1)
                    && layer_headroom(&candidate, layer, &span, n)
                {
                    candidate.n_l[layer] += 1;
                    for &j in &span {
                        candidate.n_v[j] -= 1;
                    }
                } else {
                    continue;
                }
            } else {
                // VSA is the bottleneck: donate one sub-array from the layer.
                if candidate.n_l[layer] > 1
                    && span.iter().all(|&j| candidate.n_v[j] + candidate.n_l[layer] - 1 <= n)
                {
                    candidate.n_l[layer] -= 1;
                    for &j in &span {
                        candidate.n_v[j] += 1;
                    }
                } else {
                    continue;
                }
            }
            if candidate
                .validate(config, current.n_l.len(), vsa_nodes.len())
                .is_err()
            {
                continue;
            }
            let cand_time =
                analytical::loop_timing(graph, config, &candidate, options.simd_lanes).t_loop;
            if cand_time < best_time {
                best_time = cand_time;
                best = candidate.clone();
                current = candidate;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (best, sweeps)
}

/// Whether giving layer `layer` one more sub-array keeps every concurrent
/// pair within the array.
fn layer_headroom(mapping: &Mapping, layer: usize, span: &[usize], n: usize) -> bool {
    let new_l = mapping.n_l[layer] + 1;
    span.iter().all(|&j| new_l + mapping.n_v[j].saturating_sub(1) <= n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, OpKind, TraceBuilder};

    /// Two NN layers of very different weight and a VSA tail: the uniform
    /// split is suboptimal, so Phase II has something to gain.
    fn lopsided_graph() -> DataflowGraph {
        let mut b = TraceBuilder::new("lopsided");
        let c1 = b.push(
            "conv_heavy",
            OpKind::Gemm { m: 4096, n: 512, k: 512 },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let v1 = b.push(
            "bind_light",
            OpKind::VsaConv { n_vec: 4, dim: 256 },
            Domain::Symbolic,
            DType::Int4,
            &[c1],
        );
        let c2 = b.push(
            "conv_light",
            OpKind::Gemm { m: 64, n: 32, k: 32 },
            Domain::Neural,
            DType::Int8,
            &[v1],
        );
        let _v2 = b.push(
            "bind_heavy",
            OpKind::VsaConv { n_vec: 128, dim: 2048 },
            Domain::Symbolic,
            DType::Int4,
            &[c2],
        );
        DataflowGraph::from_trace(b.finish(4).unwrap())
    }

    #[test]
    fn span_partitions_vsa_nodes_by_depth() {
        let g = lopsided_graph();
        // Layer 0 (conv_heavy, depth 0) spans bind_light (depth 1);
        // layer 1 (conv_light, depth 2) spans bind_heavy (depth 3).
        assert_eq!(vsa_span_of_layer(&g, 0), vec![0]);
        assert_eq!(vsa_span_of_layer(&g, 1), vec![1]);
        assert!(vsa_span_of_layer(&g, 9).is_empty());
    }

    #[test]
    fn phase2_improves_or_preserves_uniform_start() {
        let g = lopsided_graph();
        let cfg = ArrayConfig::new(16, 16, 8).unwrap();
        let opts = DseOptions::default();
        let start = Mapping::uniform(2, 2, 4, 4);
        let start_time = analytical::loop_timing(&g, &cfg, &start, opts.simd_lanes).t_loop;
        let (refined, sweeps) = phase2(&g, &cfg, &start, &opts);
        let refined_time = analytical::loop_timing(&g, &cfg, &refined, opts.simd_lanes).t_loop;
        assert!(refined_time <= start_time, "{refined_time} > {start_time}");
        assert!(sweeps >= 1);
        refined.validate(&cfg, 2, 2).unwrap();
    }

    #[test]
    fn phase2_gains_on_lopsided_workload() {
        let g = lopsided_graph();
        let cfg = ArrayConfig::new(16, 16, 8).unwrap();
        let opts = DseOptions::default();
        let start = Mapping::uniform(2, 2, 4, 4);
        let start_time = analytical::loop_timing(&g, &cfg, &start, opts.simd_lanes).t_loop;
        let (refined, _) = phase2(&g, &cfg, &start, &opts);
        let refined_time = analytical::loop_timing(&g, &cfg, &refined, opts.simd_lanes).t_loop;
        assert!(
            refined_time < start_time,
            "expected strict improvement on a lopsided workload"
        );
    }

    #[test]
    fn sequential_start_is_returned_unchanged() {
        let g = lopsided_graph();
        let cfg = ArrayConfig::new(16, 16, 8).unwrap();
        let start = Mapping::sequential(2, 2, 8);
        let (out, sweeps) = phase2(&g, &cfg, &start, &DseOptions::default());
        assert_eq!(out, start);
        assert_eq!(sweeps, 0);
    }

    #[test]
    fn refined_mapping_entries_stay_positive() {
        let g = lopsided_graph();
        let cfg = ArrayConfig::new(8, 8, 4).unwrap();
        let start = Mapping::uniform(2, 2, 2, 2);
        let (out, _) = phase2(&g, &cfg, &start, &DseOptions::default());
        assert!(out.n_l.iter().all(|&x| x >= 1));
        assert!(out.n_v.iter().all(|&x| x >= 1));
    }
}
