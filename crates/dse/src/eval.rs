//! The shared DSE evaluation engine: memoized per-node cycle tables and a
//! deterministic parallel sweep runner.
//!
//! # Why this exists
//!
//! Every design point the DSE visits needs a [`LoopTiming`]. The direct
//! route — [`analytical::loop_timing`] — re-walks the whole dataflow
//! trace per point: eq. (1) per NN node, eqs. (3)+(4) per VSA node, and a
//! full op-list scan for the SIMD term. But per-node cycles depend only on
//! the sub-array geometry `(H, W)` and the node's *assigned* count — never
//! on the total sub-array count `N` or on the other nodes' assignments —
//! and the SIMD term depends on nothing but the trace. So the engine:
//!
//! 1. computes `t_simd` **once** per sweep ([`EvalEngine::t_simd`]),
//! 2. builds, per `(H, W)`, a [`CycleTable`] of node cycles for every
//!    assignment `1..=a_max` — one trace walk amortized over the entire
//!    `(N, N̄_l)` sweep of that geometry,
//! 3. answers uniform-split and sequential-mode timings in O(1) via
//!    per-assignment totals, and arbitrary per-node mappings in O(nodes)
//!    table lookups ([`CycleTable::mapping_timing`]).
//!
//! # Determinism
//!
//! [`parallel_map`] (now the shared `nsflow_tensor::par::parallel_map`,
//! re-exported here) splits the work list into contiguous chunks, one
//! worker thread per chunk, and returns results **in input order** —
//! reductions that scan the output with strict-`<` "first minimum wins"
//! tie-breaking therefore produce bit-identical results to a serial scan,
//! regardless of thread count. The equivalence proptests in
//! `crates/dse/tests/parallel_equivalence.rs` pin this down against the
//! serial reference implementations.

use std::time::Duration;

pub(crate) use nsflow_tensor::par::parallel_map;

use nsflow_telemetry as telemetry;

use nsflow_arch::analytical::LoopTiming;
use nsflow_arch::{analytical, ArrayConfig, Mapping};
use nsflow_graph::DataflowGraph;

/// Observability counters for one sweep, threaded through every search
/// result so memoization and parallel speedups are measurable rather than
/// assumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Design points whose timing was evaluated.
    pub points_evaluated: usize,
    /// Point evaluations answered from an already-built cycle table
    /// (the first evaluation after each table build is the miss).
    pub cache_hits: usize,
    /// Cycle tables constructed (one per `(H, W)` geometry visited).
    pub tables_built: usize,
    /// Worker threads the sweep ran on (1 = serial).
    pub threads: usize,
    /// Wall-clock time of the sweep.
    pub wall: Duration,
}

impl SweepStats {
    /// Merges counters from a sub-sweep (wall times add; thread counts
    /// take the max — sub-sweeps run within the same budget).
    pub fn absorb(&mut self, other: &SweepStats) {
        self.points_evaluated += other.points_evaluated;
        self.cache_hits += other.cache_hits;
        self.tables_built += other.tables_built;
        self.threads = self.threads.max(other.threads);
        self.wall += other.wall;
    }

    /// Evaluation throughput in points per second (0 when the wall clock
    /// is too coarse to measure).
    #[must_use]
    pub fn points_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.points_evaluated as f64 / secs
        } else {
            0.0
        }
    }
}

/// Publishes a finished sweep's [`SweepStats`] into the global telemetry
/// registry (counters `dse.points_evaluated` / `dse.cache_hits`, gauge
/// `dse.threads`, histogram `dse.sweep_wall_us`). Tables built are
/// counted directly in [`EvalEngine::build_table`] so ad-hoc engine use
/// is visible too. No-op when the `telemetry` feature is disabled.
pub fn record_sweep_stats(stats: &SweepStats) {
    telemetry::counter!("dse.points_evaluated").add(stats.points_evaluated as u64);
    telemetry::counter!("dse.cache_hits").add(stats.cache_hits as u64);
    telemetry::gauge!("dse.threads").set(stats.threads as i64);
    telemetry::histogram!("dse.sweep_wall_us")
        .record(u64::try_from(stats.wall.as_micros()).unwrap_or(u64::MAX));
}

/// Records the per-worker chunk sizes a [`parallel_map`] sweep over
/// `items` work items uses (mirrors the contiguous chunking in
/// `nsflow_tensor::par`), making thread-pool utilization visible in
/// snapshots: a lopsided `dse.chunk_items` histogram means idle workers.
pub(crate) fn record_chunk_utilization(items: usize, threads: usize) {
    let threads = threads.clamp(1, items.max(1));
    let chunk = items.div_ceil(threads).max(1);
    let mut start = 0usize;
    while start < items {
        let end = (start + chunk).min(items);
        telemetry::histogram!("dse.chunk_items").record((end - start) as u64);
        start = end;
    }
}

/// Per-`(H, W)` memo: cycles of every array-class node for every possible
/// sub-array assignment `1..=a_max`, plus per-assignment totals so the
/// uniform-split sweep is O(1) per point.
#[derive(Debug, Clone)]
pub struct CycleTable {
    height: usize,
    width: usize,
    a_max: usize,
    /// `nn_node[i * a_max + (a-1)]` = eq. (1) cycles of NN node `i` on
    /// `a` sub-arrays.
    nn_node: Vec<u64>,
    /// Eq. (3) per VSA node and assignment, same layout.
    vsa_spat_node: Vec<u64>,
    /// Eq. (4) per VSA node and assignment, same layout.
    vsa_temp_node: Vec<u64>,
    /// `nn_total[a-1]` = Σ_i `nn_node[i][a]` — eq. (2) under a uniform
    /// split `N̄_l = a`.
    nn_total: Vec<u64>,
    vsa_spat_total: Vec<u64>,
    vsa_temp_total: Vec<u64>,
    t_simd: u64,
}

impl CycleTable {
    /// Sub-array geometry this table was built for.
    #[must_use]
    pub fn geometry(&self) -> (usize, usize) {
        (self.height, self.width)
    }

    /// Largest assignment count tabulated.
    #[must_use]
    pub fn a_max(&self) -> usize {
        self.a_max
    }

    /// Eq. (1) cycles of NN node `i` under `a` sub-arrays (table lookup).
    ///
    /// # Panics
    ///
    /// Panics if `a` is 0 or exceeds [`CycleTable::a_max`].
    #[must_use]
    pub fn nn_node_cycles(&self, i: usize, a: usize) -> u64 {
        assert!(
            a >= 1 && a <= self.a_max,
            "assignment {a} outside 1..={}",
            self.a_max
        );
        self.nn_node[i * self.a_max + (a - 1)]
    }

    /// `(spatial, temporal)` cycles of VSA node `j` under `a` sub-arrays.
    ///
    /// # Panics
    ///
    /// Panics if `a` is 0 or exceeds [`CycleTable::a_max`].
    #[must_use]
    pub fn vsa_node_cycles(&self, j: usize, a: usize) -> (u64, u64) {
        assert!(
            a >= 1 && a <= self.a_max,
            "assignment {a} outside 1..={}",
            self.a_max
        );
        let idx = j * self.a_max + (a - 1);
        (self.vsa_spat_node[idx], self.vsa_temp_node[idx])
    }

    /// Timing of a uniform parallel split (`N̄_l = nl`, `N̄_v = nv`) — two
    /// table lookups, no trace walk.
    #[must_use]
    pub fn uniform_timing(&self, nl: usize, nv: usize) -> LoopTiming {
        let t_nn = self.nn_total[nl - 1];
        let t_vsa = self.vsa_spat_total[nv - 1].min(self.vsa_temp_total[nv - 1]);
        LoopTiming {
            t_nn,
            t_vsa,
            t_simd: self.t_simd,
            t_loop: t_nn.max(t_vsa).max(self.t_simd),
            parallel: true,
        }
    }

    /// Timing of sequential (whole-array, time-shared) mode on `n`
    /// sub-arrays — two table lookups.
    #[must_use]
    pub fn sequential_timing(&self, n: usize) -> LoopTiming {
        let t_nn = self.nn_total[n - 1];
        let t_vsa = self.vsa_spat_total[n - 1].min(self.vsa_temp_total[n - 1]);
        LoopTiming {
            t_nn,
            t_vsa,
            t_simd: self.t_simd,
            t_loop: (t_nn + t_vsa).max(self.t_simd),
            parallel: false,
        }
    }

    /// Timing of an arbitrary per-node mapping — O(nodes) table lookups
    /// instead of recomputing eqs. (1)/(3)/(4) per node. Produces values
    /// identical to [`analytical::loop_timing`].
    ///
    /// # Panics
    ///
    /// Panics if the mapping's lengths do not match the tabulated node
    /// counts or any assignment exceeds [`CycleTable::a_max`].
    #[must_use]
    pub fn mapping_timing(&self, mapping: &Mapping) -> LoopTiming {
        debug_assert_eq!(
            mapping.n_l.len() * self.a_max,
            self.nn_node.len(),
            "NN length"
        );
        debug_assert_eq!(
            mapping.n_v.len() * self.a_max,
            self.vsa_spat_node.len(),
            "VSA length"
        );
        let mut t_nn = 0u64;
        for (i, &a) in mapping.n_l.iter().enumerate() {
            t_nn += self.nn_node_cycles(i, a);
        }
        let mut sum_spatial = 0u64;
        let mut sum_temporal = 0u64;
        for (j, &a) in mapping.n_v.iter().enumerate() {
            let (s, t) = self.vsa_node_cycles(j, a);
            sum_spatial += s;
            sum_temporal += t;
        }
        let t_vsa = sum_spatial.min(sum_temporal);
        let t_loop = if mapping.parallel {
            t_nn.max(t_vsa).max(self.t_simd)
        } else {
            (t_nn + t_vsa).max(self.t_simd)
        };
        LoopTiming {
            t_nn,
            t_vsa,
            t_simd: self.t_simd,
            t_loop,
            parallel: mapping.parallel,
        }
    }
}

/// The shared evaluation engine: caches the graph's array-node dimensions
/// and the mapping-independent SIMD term, and builds [`CycleTable`]s for
/// the geometries a sweep visits.
#[derive(Debug)]
pub struct EvalEngine {
    /// `(m, n, k)` of each NN node, in `nn_nodes()` order (`None` for a
    /// node that never runs on the array).
    nn_dims: Vec<Option<(usize, usize, usize)>>,
    /// `(n_vec, dim)` of each VSA node, in `vsa_nodes()` order.
    vsa_dims: Vec<Option<(usize, usize)>>,
    t_simd: u64,
}

impl EvalEngine {
    /// Walks the trace once, caching node dimensions and the SIMD term.
    #[must_use]
    pub fn new(graph: &DataflowGraph, simd_lanes: usize) -> Self {
        let trace = graph.trace();
        let nn_dims = trace
            .nn_nodes()
            .iter()
            .map(|id| match *trace.op(*id).kind() {
                nsflow_trace::OpKind::Gemm { m, n, k } => Some((m, n, k)),
                _ => None,
            })
            .collect();
        let vsa_dims = trace
            .vsa_nodes()
            .iter()
            .map(|id| match *trace.op(*id).kind() {
                nsflow_trace::OpKind::VsaConv { n_vec, dim } => Some((n_vec, dim)),
                _ => None,
            })
            .collect();
        EvalEngine {
            nn_dims,
            vsa_dims,
            t_simd: analytical::simd_loop_cycles(graph, simd_lanes),
        }
    }

    /// NN array-node count of the cached graph.
    #[must_use]
    pub fn nn_count(&self) -> usize {
        self.nn_dims.len()
    }

    /// VSA array-node count of the cached graph.
    #[must_use]
    pub fn vsa_count(&self) -> usize {
        self.vsa_dims.len()
    }

    /// The mapping-independent SIMD term (computed once at construction).
    #[must_use]
    pub fn t_simd(&self) -> u64 {
        self.t_simd
    }

    /// Builds the cycle table for an `(H, W)` geometry covering
    /// assignments `1..=a_max`. Cost: one eq-(1)/(3)/(4) evaluation per
    /// node per assignment — after which every design point of this
    /// geometry is a table lookup.
    ///
    /// # Panics
    ///
    /// Panics if `height`, `width` or `a_max` is zero.
    #[must_use]
    pub fn build_table(&self, height: usize, width: usize, a_max: usize) -> CycleTable {
        assert!(a_max >= 1, "a_max must be at least 1");
        telemetry::counter!("dse.tables_built").incr();
        let cfg = ArrayConfig::new(height, width, 1).expect("nonzero geometry");
        let nn_n = self.nn_dims.len();
        let vsa_n = self.vsa_dims.len();
        let mut nn_node = vec![0u64; nn_n * a_max];
        let mut vsa_spat_node = vec![0u64; vsa_n * a_max];
        let mut vsa_temp_node = vec![0u64; vsa_n * a_max];
        let mut nn_total = vec![0u64; a_max];
        let mut vsa_spat_total = vec![0u64; a_max];
        let mut vsa_temp_total = vec![0u64; a_max];

        for (i, dims) in self.nn_dims.iter().enumerate() {
            if let Some((m, n, k)) = *dims {
                for a in 1..=a_max {
                    let c = analytical::nn_layer_cycles(&cfg, a, m, n, k);
                    nn_node[i * a_max + (a - 1)] = c;
                    nn_total[a - 1] += c;
                }
            }
        }
        for (j, dims) in self.vsa_dims.iter().enumerate() {
            if let Some((n_vec, d)) = *dims {
                for a in 1..=a_max {
                    let s = analytical::vsa_spatial_cycles(&cfg, a, n_vec, d);
                    let t = analytical::vsa_temporal_cycles(&cfg, a, n_vec, d);
                    vsa_spat_node[j * a_max + (a - 1)] = s;
                    vsa_temp_node[j * a_max + (a - 1)] = t;
                    vsa_spat_total[a - 1] += s;
                    vsa_temp_total[a - 1] += t;
                }
            }
        }
        CycleTable {
            height,
            width,
            a_max,
            nn_node,
            vsa_spat_node,
            vsa_temp_node,
            nn_total,
            vsa_spat_total,
            vsa_temp_total,
            t_simd: self.t_simd,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, EltFunc, OpKind, TraceBuilder};

    fn mixed_graph() -> DataflowGraph {
        let mut b = TraceBuilder::new("mixed");
        let c1 = b.push(
            "conv1",
            OpKind::Gemm {
                m: 900,
                n: 96,
                k: 160,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let r = b.push(
            "relu",
            OpKind::Elementwise {
                elems: 900 * 96,
                func: EltFunc::Relu,
            },
            Domain::Neural,
            DType::Int8,
            &[c1],
        );
        let c2 = b.push(
            "conv2",
            OpKind::Gemm {
                m: 300,
                n: 160,
                k: 288,
            },
            Domain::Neural,
            DType::Int8,
            &[r],
        );
        let v1 = b.push(
            "bind",
            OpKind::VsaConv {
                n_vec: 24,
                dim: 768,
            },
            Domain::Symbolic,
            DType::Int4,
            &[c2],
        );
        let _v2 = b.push(
            "probe",
            OpKind::VsaConv {
                n_vec: 8,
                dim: 1536,
            },
            Domain::Symbolic,
            DType::Int4,
            &[v1],
        );
        DataflowGraph::from_trace(b.finish(4).unwrap())
    }

    /// The load-bearing property: table construction reproduces
    /// `loop_timing` node-by-node and in every aggregate, for uniform,
    /// sequential and arbitrary per-node mappings.
    #[test]
    fn table_matches_loop_timing_node_by_node() {
        let g = mixed_graph();
        let engine = EvalEngine::new(&g, 64);
        let trace = g.trace();
        let nn = trace.nn_nodes();
        let vsa = trace.vsa_nodes();
        for (h, w) in [(4, 16), (16, 16), (32, 8)] {
            let a_max = 8;
            let table = engine.build_table(h, w, a_max);
            let cfg = ArrayConfig::new(h, w, a_max).unwrap();
            for a in 1..=a_max {
                // Node-by-node agreement with the direct equations.
                for (i, id) in nn.iter().enumerate() {
                    let direct =
                        analytical::nn_op_cycles(&cfg, a, trace.op(*id).kind()).unwrap_or(0);
                    assert_eq!(table.nn_node_cycles(i, a), direct, "nn node {i} a={a}");
                }
                for (j, id) in vsa.iter().enumerate() {
                    let direct = analytical::vsa_op_cycle_pair(&cfg, a, trace.op(*id).kind())
                        .unwrap_or((0, 0));
                    assert_eq!(table.vsa_node_cycles(j, a), direct, "vsa node {j} a={a}");
                }
                // Aggregate agreement for whole mappings.
                if a < a_max {
                    let m = Mapping::uniform(nn.len(), vsa.len(), a, a_max - a);
                    assert_eq!(
                        table.uniform_timing(a, a_max - a),
                        analytical::loop_timing(&g, &cfg, &m, 64)
                    );
                    assert_eq!(
                        table.mapping_timing(&m),
                        analytical::loop_timing(&g, &cfg, &m, 64)
                    );
                }
                let seq = Mapping::sequential(nn.len(), vsa.len(), a);
                assert_eq!(
                    table.sequential_timing(a),
                    analytical::loop_timing(&g, &cfg, &seq, 64)
                );
            }
            // A deliberately lopsided per-node mapping.
            let m = Mapping {
                n_l: vec![5, 2],
                n_v: vec![1, 3],
                parallel: true,
            };
            assert_eq!(
                table.mapping_timing(&m),
                analytical::loop_timing(&g, &cfg, &m, 64)
            );
        }
    }

    #[test]
    fn t_simd_is_mapping_independent_and_cached() {
        let g = mixed_graph();
        let engine = EvalEngine::new(&g, 64);
        assert_eq!(engine.t_simd(), analytical::simd_loop_cycles(&g, 64));
        let table = engine.build_table(16, 16, 4);
        assert_eq!(table.uniform_timing(1, 3).t_simd, engine.t_simd());
        assert_eq!(table.sequential_timing(4).t_simd, engine.t_simd());
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 3, 8] {
            let out = parallel_map(&items, threads, |&x| x * 2);
            assert_eq!(
                out,
                items.iter().map(|&x| x * 2).collect::<Vec<_>>(),
                "t={threads}"
            );
        }
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = SweepStats {
            points_evaluated: 10,
            cache_hits: 8,
            tables_built: 2,
            threads: 1,
            wall: Duration::from_millis(5),
        };
        let b = SweepStats {
            points_evaluated: 3,
            cache_hits: 2,
            tables_built: 1,
            threads: 4,
            wall: Duration::from_millis(2),
        };
        a.absorb(&b);
        assert_eq!(a.points_evaluated, 13);
        assert_eq!(a.cache_hits, 10);
        assert_eq!(a.tables_built, 3);
        assert_eq!(a.threads, 4);
        assert_eq!(a.wall, Duration::from_millis(7));
    }
}
