//! Phase I of Algorithm 1: hardware-configuration search under a static
//! partition.

use nsflow_arch::{analytical, ArrayConfig, Mapping};
use nsflow_graph::DataflowGraph;

use crate::DseOptions;

/// Phase-I outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase1Result {
    /// Best `(H, W, N)` found.
    pub config: ArrayConfig,
    /// Static mapping at that point (uniform `N̄_l`/`N̄_v`, or sequential).
    pub mapping: Mapping,
    /// Timing under the chosen mapping.
    pub timing: analytical::LoopTiming,
    /// Number of `(H, W, N̄_l)` points evaluated.
    pub points_evaluated: usize,
}

/// Runs Phase I: for every pruned `(H, W)` pair, derive `N = ⌊M/(H·W)⌋`
/// and sweep the static split `N̄_l ∈ [1, N)`; also evaluate the
/// sequential (whole-array, time-shared) mode and keep whichever wins.
///
/// Workloads with no NN nodes or no VSA nodes skip the split sweep and
/// use sequential mode directly (there is nothing to run concurrently).
///
/// # Panics
///
/// Panics if no candidate `(H, W)` fits the PE budget.
#[must_use]
pub fn phase1(graph: &DataflowGraph, options: &DseOptions) -> Phase1Result {
    let trace = graph.trace();
    let nn_count = trace.nn_nodes().len();
    let vsa_count = trace.vsa_nodes().len();
    let (ar_min, ar_max) = options.aspect_bounds;

    let mut best: Option<Phase1Result> = None;
    let mut points = 0usize;

    for &h in &options.heights {
        for &w in &options.widths {
            if h * w > options.max_pes {
                continue;
            }
            let aspect = h as f64 / w as f64;
            if !(ar_min..=ar_max).contains(&aspect) {
                continue;
            }
            let n = (options.max_pes / (h * w)).min(options.max_subarrays);
            if n == 0 {
                continue;
            }
            let cfg = ArrayConfig::new(h, w, n).expect("nonzero dims by construction");

            // Parallel mode: sweep the static split when both kinds exist.
            if nn_count > 0 && vsa_count > 0 && n >= 2 {
                for nl in 1..n {
                    let nv = n - nl;
                    let mapping = Mapping::uniform(nn_count, vsa_count, nl, nv);
                    let timing =
                        analytical::loop_timing(graph, &cfg, &mapping, options.simd_lanes);
                    points += 1;
                    if best.as_ref().is_none_or(|b| timing.t_loop < b.timing.t_loop) {
                        best = Some(Phase1Result {
                            config: cfg,
                            mapping,
                            timing,
                            points_evaluated: 0,
                        });
                    }
                }
            }

            // Sequential mode (line 12 of Algorithm 1): every node gets the
            // whole array in turn.
            let seq = Mapping::sequential(nn_count, vsa_count, n);
            let seq_timing = analytical::loop_timing(graph, &cfg, &seq, options.simd_lanes);
            points += 1;
            if best.as_ref().is_none_or(|b| seq_timing.t_loop < b.timing.t_loop) {
                best = Some(Phase1Result {
                    config: cfg,
                    mapping: seq,
                    timing: seq_timing,
                    points_evaluated: 0,
                });
            }
        }
    }

    let mut result = best.expect("at least one candidate configuration must fit the PE budget");
    result.points_evaluated = points;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, OpKind, TraceBuilder};

    fn graph() -> DataflowGraph {
        let mut b = TraceBuilder::new("g");
        let c = b.push(
            "conv",
            OpKind::Gemm { m: 1024, n: 128, k: 256 },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let _v = b.push(
            "bind",
            OpKind::VsaConv { n_vec: 32, dim: 1024 },
            Domain::Symbolic,
            DType::Int4,
            &[c],
        );
        DataflowGraph::from_trace(b.finish(4).unwrap())
    }

    #[test]
    fn finds_config_within_budget() {
        let r = phase1(&graph(), &DseOptions::default());
        assert!(r.config.total_pes() <= 8192);
        assert!(r.points_evaluated > 0);
    }

    #[test]
    fn pruning_reduces_points() {
        let opts = DseOptions::default();
        let loose = DseOptions { aspect_bounds: (0.001, 1000.0), ..opts.clone() };
        let strict = DseOptions { aspect_bounds: (1.0, 1.0), ..opts };
        let g = graph();
        let p_loose = phase1(&g, &loose).points_evaluated;
        let p_strict = phase1(&g, &strict).points_evaluated;
        assert!(p_strict < p_loose);
    }

    #[test]
    fn pure_nn_workload_uses_sequential_mode() {
        let mut b = TraceBuilder::new("nn");
        b.push(
            "conv",
            OpKind::Gemm { m: 512, n: 64, k: 64 },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let g = DataflowGraph::from_trace(b.finish(1).unwrap());
        let r = phase1(&g, &DseOptions::default());
        assert!(!r.mapping.parallel);
        assert!(r.mapping.n_v.is_empty());
    }

    #[test]
    fn pure_vsa_workload_uses_sequential_mode() {
        let mut b = TraceBuilder::new("vsa");
        b.push(
            "bind",
            OpKind::VsaConv { n_vec: 8, dim: 512 },
            Domain::Symbolic,
            DType::Int4,
            &[],
        );
        let g = DataflowGraph::from_trace(b.finish(1).unwrap());
        let r = phase1(&g, &DseOptions::default());
        assert!(!r.mapping.parallel);
        assert!(r.mapping.n_l.is_empty());
    }

    #[test]
    fn static_mapping_is_uniform() {
        let r = phase1(&graph(), &DseOptions::default());
        if r.mapping.parallel {
            assert!(r.mapping.n_l.windows(2).all(|w| w[0] == w[1]));
            assert!(r.mapping.n_v.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn result_beats_naive_single_subarray_square() {
        // The searched config should be at least as good as an arbitrary
        // fixed point like 64×64×2 with a 1:1 split.
        let g = graph();
        let opts = DseOptions::default();
        let r = phase1(&g, &opts);
        let naive_cfg = ArrayConfig::new(64, 64, 2).unwrap();
        let naive = analytical::loop_timing(
            &g,
            &naive_cfg,
            &Mapping::uniform(1, 1, 1, 1),
            opts.simd_lanes,
        );
        assert!(r.timing.t_loop <= naive.t_loop);
    }
}
