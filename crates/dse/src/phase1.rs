//! Phase I of Algorithm 1: hardware-configuration search under a static
//! partition.
//!
//! Two implementations share one search order:
//!
//! - [`phase1`] — the production path: per-`(H, W)` cycle tables from the
//!   [`crate::EvalEngine`] make each `(N̄_l)` split an O(1) lookup, and
//!   the `(H, W)` pairs are swept on worker threads with deterministic
//!   first-minimum-wins reduction,
//! - [`phase1_reference`] — the serial reference that re-walks the trace
//!   via [`analytical::loop_timing`] for every point, kept as the
//!   ground truth the equivalence proptests compare against.
//!
//! Both visit candidates in the same order (heights outer, widths inner,
//! splits ascending, sequential mode last per pair) and improve on
//! strict-`<` only, so their results are bit-identical.

use std::time::Instant;

use nsflow_arch::{analytical, ArrayConfig, Mapping};
use nsflow_graph::DataflowGraph;

use crate::eval::{
    parallel_map, record_chunk_utilization, record_sweep_stats, EvalEngine, SweepStats,
};
use crate::DseOptions;
use nsflow_telemetry as telemetry;

/// Phase-I outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase1Result {
    /// Best `(H, W, N)` found.
    pub config: ArrayConfig,
    /// Static mapping at that point (uniform `N̄_l`/`N̄_v`, or sequential).
    pub mapping: Mapping,
    /// Timing under the chosen mapping.
    pub timing: analytical::LoopTiming,
    /// Number of `(H, W, N̄_l)` points evaluated.
    pub points_evaluated: usize,
    /// Evaluation counters (memoization hits, tables built, wall time).
    pub stats: SweepStats,
}

/// A design point compressed to what the sweep needs: the winner is
/// materialized into an [`ArrayConfig`] + [`Mapping`] only once, at the
/// end, instead of allocating mapping vectors for every candidate.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Candidate {
    pub t_loop: u64,
    pub h: usize,
    pub w: usize,
    pub n: usize,
    /// `Some(nl)` = uniform parallel split, `None` = sequential mode.
    pub split: Option<usize>,
}

/// Per-`(H, W)` worker outcome: the pair's local best plus how many
/// points it evaluated.
pub(crate) struct PairOutcome {
    pub best: Option<Candidate>,
    pub points: usize,
}

/// Folds per-pair outcomes (in pair-enumeration order) into a global best
/// with the same strict-`<` rule a serial scan uses, plus merged stats.
pub(crate) fn reduce_outcomes(outcomes: &[PairOutcome]) -> (Option<Candidate>, usize, SweepStats) {
    let mut best: Option<Candidate> = None;
    let mut points = 0usize;
    let mut stats = SweepStats::default();
    for out in outcomes {
        points += out.points;
        if out.points > 0 {
            stats.tables_built += 1;
            stats.cache_hits += out.points - 1;
        }
        if let Some(c) = out.best {
            if best.is_none_or(|b| c.t_loop < b.t_loop) {
                best = Some(c);
            }
        }
    }
    stats.points_evaluated = points;
    (best, points, stats)
}

/// Enumerates the pruned `(H, W, N)` pairs in deterministic sweep order.
pub(crate) fn pruned_pairs(options: &DseOptions) -> Vec<(usize, usize, usize)> {
    let (heights, widths) = options.normalized_dims();
    let (ar_min, ar_max) = options.aspect_bounds;
    let mut pairs = Vec::with_capacity(heights.len() * widths.len());
    for &h in &heights {
        for &w in &widths {
            if h * w > options.max_pes {
                continue;
            }
            let aspect = h as f64 / w as f64;
            if !(ar_min..=ar_max).contains(&aspect) {
                continue;
            }
            let n = (options.max_pes / (h * w)).min(options.max_subarrays);
            if n == 0 {
                continue;
            }
            pairs.push((h, w, n));
        }
    }
    pairs
}

/// Materializes a winning candidate into the full Phase-I result, with a
/// final direct `loop_timing` evaluation (also a cross-check that the
/// table path agreed with the trace walk).
fn materialize(
    graph: &DataflowGraph,
    options: &DseOptions,
    c: Candidate,
    points: usize,
    stats: SweepStats,
) -> Phase1Result {
    let trace = graph.trace();
    let nn_count = trace.nn_nodes().len();
    let vsa_count = trace.vsa_nodes().len();
    let config = ArrayConfig::new(c.h, c.w, c.n).expect("nonzero dims by construction");
    let mapping = match c.split {
        Some(nl) => Mapping::uniform(nn_count, vsa_count, nl, c.n - nl),
        None => Mapping::sequential(nn_count, vsa_count, c.n),
    };
    let timing = analytical::loop_timing(graph, &config, &mapping, options.simd_lanes);
    debug_assert_eq!(
        timing.t_loop, c.t_loop,
        "cycle table diverged from loop_timing"
    );
    Phase1Result {
        config,
        mapping,
        timing,
        points_evaluated: points,
        stats,
    }
}

/// Runs Phase I: for every pruned `(H, W)` pair, derive `N = ⌊M/(H·W)⌋`
/// and sweep the static split `N̄_l ∈ [1, N)`; also evaluate the
/// sequential (whole-array, time-shared) mode and keep whichever wins.
///
/// Workloads with no NN nodes or no VSA nodes skip the split sweep and
/// use sequential mode directly (there is nothing to run concurrently).
///
/// Candidate timings come from memoized cycle tables (one per `(H, W)`)
/// and the pair sweep runs on [`DseOptions::threads`] worker threads;
/// results are bit-identical to [`phase1_reference`].
///
/// # Panics
///
/// Panics if no candidate `(H, W)` fits the PE budget.
#[must_use]
pub fn phase1(graph: &DataflowGraph, options: &DseOptions) -> Phase1Result {
    let _span = telemetry::span!("dse.phase1");
    let start = Instant::now();
    let trace = graph.trace();
    let nn_count = trace.nn_nodes().len();
    let vsa_count = trace.vsa_nodes().len();
    let engine = EvalEngine::new(graph, options.simd_lanes);
    let pairs = pruned_pairs(options);
    let threads = options.effective_threads();
    record_chunk_utilization(pairs.len(), threads);

    let outcomes = parallel_map(&pairs, threads, |&(h, w, n)| {
        let table = engine.build_table(h, w, n);
        let mut best: Option<Candidate> = None;
        let mut points = 0usize;
        if nn_count > 0 && vsa_count > 0 && n >= 2 {
            for nl in 1..n {
                let t = table.uniform_timing(nl, n - nl).t_loop;
                points += 1;
                if best.is_none_or(|b| t < b.t_loop) {
                    best = Some(Candidate {
                        t_loop: t,
                        h,
                        w,
                        n,
                        split: Some(nl),
                    });
                }
            }
        }
        let t = table.sequential_timing(n).t_loop;
        points += 1;
        if best.is_none_or(|b| t < b.t_loop) {
            best = Some(Candidate {
                t_loop: t,
                h,
                w,
                n,
                split: None,
            });
        }
        PairOutcome { best, points }
    });

    let (best, points, mut stats) = reduce_outcomes(&outcomes);
    stats.threads = threads;
    stats.wall = start.elapsed();
    record_sweep_stats(&stats);
    let c = best.expect("at least one candidate configuration must fit the PE budget");
    materialize(graph, options, c, points, stats)
}

/// The serial reference implementation of Phase I: identical candidate
/// order and tie-breaking, but every point re-walks the trace through
/// [`analytical::loop_timing`] with no memoization and no threads. Kept
/// as the ground truth for the equivalence proptests and the
/// `dse_throughput` speedup baseline.
///
/// # Panics
///
/// Panics if no candidate `(H, W)` fits the PE budget.
#[must_use]
pub fn phase1_reference(graph: &DataflowGraph, options: &DseOptions) -> Phase1Result {
    let _span = telemetry::span!("dse.phase1_reference");
    let start = Instant::now();
    let trace = graph.trace();
    let nn_count = trace.nn_nodes().len();
    let vsa_count = trace.vsa_nodes().len();

    let mut best: Option<Phase1Result> = None;
    let mut points = 0usize;

    for (h, w, n) in pruned_pairs(options) {
        let cfg = ArrayConfig::new(h, w, n).expect("nonzero dims by construction");

        // Parallel mode: sweep the static split when both kinds exist.
        if nn_count > 0 && vsa_count > 0 && n >= 2 {
            for nl in 1..n {
                let nv = n - nl;
                let mapping = Mapping::uniform(nn_count, vsa_count, nl, nv);
                let timing = analytical::loop_timing(graph, &cfg, &mapping, options.simd_lanes);
                points += 1;
                if best
                    .as_ref()
                    .is_none_or(|b| timing.t_loop < b.timing.t_loop)
                {
                    best = Some(Phase1Result {
                        config: cfg,
                        mapping,
                        timing,
                        points_evaluated: 0,
                        stats: SweepStats::default(),
                    });
                }
            }
        }

        // Sequential mode (line 12 of Algorithm 1): every node gets the
        // whole array in turn.
        let seq = Mapping::sequential(nn_count, vsa_count, n);
        let seq_timing = analytical::loop_timing(graph, &cfg, &seq, options.simd_lanes);
        points += 1;
        if best
            .as_ref()
            .is_none_or(|b| seq_timing.t_loop < b.timing.t_loop)
        {
            best = Some(Phase1Result {
                config: cfg,
                mapping: seq,
                timing: seq_timing,
                points_evaluated: 0,
                stats: SweepStats::default(),
            });
        }
    }

    let mut result = best.expect("at least one candidate configuration must fit the PE budget");
    result.points_evaluated = points;
    result.stats = SweepStats {
        points_evaluated: points,
        threads: 1,
        wall: start.elapsed(),
        ..SweepStats::default()
    };
    record_sweep_stats(&result.stats);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, OpKind, TraceBuilder};

    fn graph() -> DataflowGraph {
        let mut b = TraceBuilder::new("g");
        let c = b.push(
            "conv",
            OpKind::Gemm {
                m: 1024,
                n: 128,
                k: 256,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let _v = b.push(
            "bind",
            OpKind::VsaConv {
                n_vec: 32,
                dim: 1024,
            },
            Domain::Symbolic,
            DType::Int4,
            &[c],
        );
        DataflowGraph::from_trace(b.finish(4).unwrap())
    }

    #[test]
    fn finds_config_within_budget() {
        let r = phase1(&graph(), &DseOptions::default());
        assert!(r.config.total_pes() <= 8192);
        assert!(r.points_evaluated > 0);
        assert_eq!(r.stats.points_evaluated, r.points_evaluated);
        assert!(r.stats.tables_built > 0);
        assert!(r.stats.cache_hits > 0);
    }

    #[test]
    fn pruning_reduces_points() {
        let opts = DseOptions::default();
        let loose = DseOptions {
            aspect_bounds: (0.001, 1000.0),
            ..opts.clone()
        };
        let strict = DseOptions {
            aspect_bounds: (1.0, 1.0),
            ..opts
        };
        let g = graph();
        let p_loose = phase1(&g, &loose).points_evaluated;
        let p_strict = phase1(&g, &strict).points_evaluated;
        assert!(p_strict < p_loose);
    }

    #[test]
    fn pure_nn_workload_uses_sequential_mode() {
        let mut b = TraceBuilder::new("nn");
        b.push(
            "conv",
            OpKind::Gemm {
                m: 512,
                n: 64,
                k: 64,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let g = DataflowGraph::from_trace(b.finish(1).unwrap());
        let r = phase1(&g, &DseOptions::default());
        assert!(!r.mapping.parallel);
        assert!(r.mapping.n_v.is_empty());
    }

    #[test]
    fn pure_vsa_workload_uses_sequential_mode() {
        let mut b = TraceBuilder::new("vsa");
        b.push(
            "bind",
            OpKind::VsaConv { n_vec: 8, dim: 512 },
            Domain::Symbolic,
            DType::Int4,
            &[],
        );
        let g = DataflowGraph::from_trace(b.finish(1).unwrap());
        let r = phase1(&g, &DseOptions::default());
        assert!(!r.mapping.parallel);
        assert!(r.mapping.n_l.is_empty());
    }

    #[test]
    fn static_mapping_is_uniform() {
        let r = phase1(&graph(), &DseOptions::default());
        if r.mapping.parallel {
            assert!(r.mapping.n_l.windows(2).all(|w| w[0] == w[1]));
            assert!(r.mapping.n_v.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn result_beats_naive_single_subarray_square() {
        // The searched config should be at least as good as an arbitrary
        // fixed point like 64×64×2 with a 1:1 split.
        let g = graph();
        let opts = DseOptions::default();
        let r = phase1(&g, &opts);
        let naive_cfg = ArrayConfig::new(64, 64, 2).unwrap();
        let naive = analytical::loop_timing(
            &g,
            &naive_cfg,
            &Mapping::uniform(1, 1, 1, 1),
            opts.simd_lanes,
        );
        assert!(r.timing.t_loop <= naive.t_loop);
    }

    #[test]
    fn engine_path_matches_reference_bit_for_bit() {
        let g = graph();
        for threads in [Some(1), Some(4), None] {
            let opts = DseOptions {
                threads,
                ..DseOptions::default()
            };
            let fast = phase1(&g, &opts);
            let slow = phase1_reference(&g, &opts);
            assert_eq!(fast.config, slow.config);
            assert_eq!(fast.mapping, slow.mapping);
            assert_eq!(fast.timing, slow.timing);
            assert_eq!(fast.points_evaluated, slow.points_evaluated);
        }
    }

    #[test]
    fn duplicate_dimension_entries_do_not_inflate_points() {
        let g = graph();
        let base = DseOptions::default();
        let duped = DseOptions {
            heights: vec![8, 4, 8, 16, 4, 32, 64, 128, 16],
            widths: vec![128, 4, 8, 8, 16, 32, 64, 4],
            ..base.clone()
        };
        let r_base = phase1(&g, &base);
        let r_duped = phase1(&g, &duped);
        assert_eq!(r_base.points_evaluated, r_duped.points_evaluated);
        assert_eq!(r_base.timing.t_loop, r_duped.timing.t_loop);
    }
}
