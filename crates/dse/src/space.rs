//! Design-space accounting (paper Tab. II).
//!
//! With a PE budget of `2^m`, the *original* cross-coupled space is
//!
//! - hardware: all power-of-two `(H, W)` with `H·W ≤ 2^m` —
//!   `m·(m+1)/2` pairs,
//! - mapping: each of the `k` dataflow nodes independently picks how many
//!   of the `N − 1` possible sub-array assignments it uses — `(N−1)^k`
//!   for each `N`,
//!
//! which at `m = 10` and NVSA-scale node counts reaches ~10³⁰⁰. The DAG's
//! two-phase decoupling reduces it to Phase I's pruned
//! `(H, W) × N̄_l` sweep plus Phase II's `Iter × #layers` refinement —
//! ~10³. Sizes are reported as log₁₀ to keep the arithmetic exact far
//! beyond `u64`.

/// One row of the Tab. II comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceComparison {
    /// log₁₀ of the original (exhaustive) design-space size.
    pub original_log10: f64,
    /// log₁₀ of the two-phase DSE's evaluated-point count.
    pub dag_log10: f64,
}

impl SpaceComparison {
    /// Orders-of-magnitude reduction (difference of the logs).
    #[must_use]
    pub fn reduction_magnitudes(&self) -> f64 {
        self.original_log10 - self.dag_log10
    }
}

/// Number of power-of-two `(H, W)` pairs with `H·W ≤ 2^m`:
/// `Σ_{a=0..m} (m − a + 1) = (m+1)(m+2)/2`, or the paper's `m(m+1)/2`
/// when degenerate 1-sized axes are excluded. We follow the paper.
#[must_use]
pub fn hw_config_count(m: u32) -> u64 {
    (m as u64) * (m as u64 + 1) / 2
}

/// log₁₀ of the original mapping-space size for one `(H, W)` with `N`
/// sub-arrays and `k` mapped nodes: `(N − 1)^k`.
#[must_use]
pub fn mapping_space_log10(n_subarrays: usize, nodes: usize) -> f64 {
    if n_subarrays <= 2 {
        return 0.0; // (N−1)^k = 1 possibility at N ≤ 2
    }
    (nodes as f64) * ((n_subarrays - 1) as f64).log10()
}

/// log₁₀ of the full original space: hardware configs × the mapping space
/// summed over every reachable `N` (dominated by the largest term; we sum
/// exactly in log domain).
#[must_use]
pub fn original_space_log10(m: u32, nodes: usize) -> f64 {
    // For each (H, W) pair, N = 2^m / (H·W) ranges over 2^0..2^m as the
    // pair sweeps; enumerate power-of-two pairs directly.
    let mut log_sum = f64::NEG_INFINITY;
    for a in 0..=m {
        for b in 0..=(m - a) {
            let n = 1u64 << (m - a - b);
            let term = mapping_space_log10(n as usize, nodes);
            log_sum = log_add(log_sum, term);
        }
    }
    // Total = (#HW configs) × (Σ_N mapping spaces); in log domain the sum
    // over N was accumulated above.
    (hw_config_count(m).max(1) as f64).log10() + log_sum.max(0.0)
}

/// log₁₀ of the two-phase DSE's evaluated points: Phase I sweeps the
/// pruned `(H, W)` pairs times the `N̄_l` split (≤ `N`), Phase II adds
/// `iter_max × layers`.
#[must_use]
pub fn dag_space_log10(
    pruned_hw_pairs: usize,
    max_splits: usize,
    iter_max: usize,
    layers: usize,
) -> f64 {
    let points = pruned_hw_pairs * max_splits + iter_max * layers;
    (points.max(1) as f64).log10()
}

/// Builds the Tab. II row for a PE exponent `m`, `nodes` mapped nodes
/// (NN + VSA), and the DSE parameters.
#[must_use]
pub fn table2_row(
    m: u32,
    nodes: usize,
    pruned_hw_pairs: usize,
    max_splits: usize,
    iter_max: usize,
    layers: usize,
) -> SpaceComparison {
    SpaceComparison {
        original_log10: original_space_log10(m, nodes),
        dag_log10: dag_space_log10(pruned_hw_pairs, max_splits, iter_max, layers),
    }
}

/// `log₁₀(10^a + 10^b)` without overflow.
fn log_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (1.0 + 10f64.powf(lo - hi)).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hw_config_count_matches_paper_formula() {
        assert_eq!(hw_config_count(10), 55);
        assert_eq!(hw_config_count(1), 1);
    }

    #[test]
    fn mapping_space_grows_with_nodes() {
        assert!(mapping_space_log10(16, 100) > mapping_space_log10(16, 10));
        assert_eq!(mapping_space_log10(2, 50), 0.0);
    }

    #[test]
    fn original_space_reaches_paper_scale() {
        // The paper quotes ~10³⁰⁰ for m = 10 with NVSA-scale node counts
        // (hundreds of nodes in the dataflow loop).
        let log = original_space_log10(10, 100);
        assert!(log > 100.0, "log10 = {log}");
        let log_big = original_space_log10(10, 300);
        assert!(log_big > 250.0, "log10 = {log_big}");
    }

    #[test]
    fn dag_space_is_about_1e3() {
        // Phase I: ~30 pruned pairs × ≤16 splits, Phase II: 16 × 20 layers.
        let log = dag_space_log10(30, 16, 16, 20);
        assert!((2.0..4.0).contains(&log), "log10 = {log}");
    }

    #[test]
    fn reduction_is_hundreds_of_magnitudes() {
        let row = table2_row(10, 300, 30, 16, 16, 20);
        assert!(
            row.reduction_magnitudes() > 100.0,
            "reduction {}",
            row.reduction_magnitudes()
        );
    }

    #[test]
    fn log_add_is_accurate() {
        // 10^2 + 10^2 = 200 → log10 ≈ 2.301.
        assert!((log_add(2.0, 2.0) - 200f64.log10()).abs() < 1e-9);
        assert_eq!(log_add(f64::NEG_INFINITY, 3.0), 3.0);
    }
}
