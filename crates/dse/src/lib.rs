//! # nsflow-dse
//!
//! The two-phase design-space exploration of the NSFlow frontend
//! (paper Sec. V-C, Algorithm 1).
//!
//! The cross-coupled space of hardware configuration `(H, W, N)` and
//! per-node mapping `(N_l, N_v)` reaches ~10³⁰⁰ points at `m = 10`
//! (Tab. II). The DSE decouples it:
//!
//! - **Phase I** ([`phase1`]): assume a *static* partition
//!   (`∀i N_l[i] = N̄_l`, `∀j N_v[j] = N̄_v`), sweep power-of-two `(H, W)`
//!   with the aspect-ratio pruning `1/4 ≤ H/W ≤ 16`, derive
//!   `N = ⌊M/(H·W)⌋`, and keep the `(H, W, N, N̄_l)` minimizing the
//!   parallel loop time — falling back to **sequential mode** when
//!   time-sharing the whole array wins,
//! - **Phase II** ([`phase2`]): fine-tune the per-node partition around
//!   the Phase-I point by shifting sub-arrays between each NN layer and
//!   the VSA nodes spanning it, for at most `iter_max` sweeps.
//!
//! [`explore`] runs both phases; [`space`] reproduces the Tab. II
//! design-space accounting.
//!
//! All search paths evaluate candidates through the shared
//! [`EvalEngine`]: per-`(H, W)` cycle tables turn the inner `N̄_l` sweep
//! into O(1) lookups, the mapping-independent SIMD term is computed once,
//! and the `(H, W)` pairs fan out over worker threads with deterministic
//! reduction ([`SweepStats`] records points, cache hits and wall time).
//! Serial trace-walking references ([`phase1_reference`],
//! [`exhaustive::exhaustive_uniform_reference`]) are kept for equivalence
//! proptests and speedup baselines.
//!
//! # Examples
//!
//! ```
//! use nsflow_dse::{explore, DseOptions};
//! use nsflow_graph::DataflowGraph;
//! use nsflow_trace::{TraceBuilder, OpKind, Domain};
//! use nsflow_tensor::DType;
//!
//! let mut b = TraceBuilder::new("w");
//! let c = b.push("conv", OpKind::Gemm { m: 4096, n: 64, k: 64 }, Domain::Neural, DType::Int8, &[]);
//! b.push("bind", OpKind::VsaConv { n_vec: 32, dim: 512 }, Domain::Symbolic, DType::Int4, &[c]);
//! let graph = DataflowGraph::from_trace(b.finish(8)?);
//! let result = explore(&graph, &DseOptions::default());
//! assert!(result.config.total_pes() <= DseOptions::default().max_pes);
//! # Ok::<(), nsflow_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod phase1;
mod phase2;

pub mod exhaustive;
pub mod space;

pub use eval::{CycleTable, EvalEngine, SweepStats};
pub use phase1::{phase1, phase1_reference, Phase1Result};
pub use phase2::{phase2, phase2_with_stats, vsa_span_of_layer, Phase2Outcome};

use nsflow_arch::{analytical, ArrayConfig, Mapping};
use nsflow_graph::DataflowGraph;

/// Options controlling the exploration.
///
/// # Invariants
///
/// `heights` and `widths` are treated as candidate **sets**: every sweep
/// first sorts them ascending and drops duplicates and zero entries
/// ([`DseOptions::normalized_dims`]), so duplicated entries neither
/// inflate `points_evaluated` nor change the search outcome, and the
/// enumeration order (heights outer, widths inner, both ascending) is
/// well defined regardless of how the lists were written.
#[derive(Debug, Clone, PartialEq)]
pub struct DseOptions {
    /// Maximum PE budget `M` (FPGA resource bound); the paper uses
    /// 8192 PEs on the U250.
    pub max_pes: usize,
    /// Candidate sub-array heights (powers of two by default).
    pub heights: Vec<usize>,
    /// Candidate sub-array widths (powers of two by default).
    pub widths: Vec<usize>,
    /// Aspect-ratio pruning bounds `(min, max)` on `H/W`.
    pub aspect_bounds: (f64, f64),
    /// Upper bound on the sub-array count `N`: each independently
    /// foldable region needs its own control FSM, stream generators and
    /// memory banking, so physical designs keep `N` modest (the paper's
    /// deployments use 8–16).
    pub max_subarrays: usize,
    /// Phase-II sweep cap (`Iter_max`).
    pub iter_max: usize,
    /// SIMD lanes assumed while evaluating timings.
    pub simd_lanes: usize,
    /// Worker threads for the sweeps: `None` picks the host's available
    /// parallelism, `Some(1)` forces a serial run. Results are
    /// bit-identical at any thread count — parallelism only changes wall
    /// time (see [`SweepStats`]).
    pub threads: Option<usize>,
}

impl Default for DseOptions {
    fn default() -> Self {
        DseOptions {
            max_pes: 8192,
            heights: vec![4, 8, 16, 32, 64, 128],
            widths: vec![4, 8, 16, 32, 64, 128],
            aspect_bounds: (0.25, 16.0),
            max_subarrays: 16,
            iter_max: 16,
            simd_lanes: 64,
            threads: None,
        }
    }
}

impl DseOptions {
    /// The candidate dimension lists as sweeps actually consume them:
    /// sorted ascending, deduplicated, zero entries dropped.
    #[must_use]
    pub fn normalized_dims(&self) -> (Vec<usize>, Vec<usize>) {
        let norm = |dims: &[usize]| {
            let mut v: Vec<usize> = dims.iter().copied().filter(|&d| d > 0).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        (norm(&self.heights), norm(&self.widths))
    }

    /// Resolves [`DseOptions::threads`] against the host: explicit value
    /// if set (minimum 1), otherwise `std::thread::available_parallelism`.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            Some(t) => t.max(1),
            None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }
}

/// The exploration outcome: a hardware configuration, a mapping and its
/// predicted loop timing.
#[derive(Debug, Clone, PartialEq)]
pub struct DseResult {
    /// Selected `(H, W, N)`.
    pub config: ArrayConfig,
    /// Selected per-node mapping (Phase II refined, or Phase I static).
    pub mapping: Mapping,
    /// Predicted timing of one loop under the selection.
    pub timing: analytical::LoopTiming,
    /// Design points evaluated during Phase I (for Tab. II style
    /// reporting).
    pub phase1_points: usize,
    /// Phase-II sweeps actually executed.
    pub phase2_sweeps: usize,
    /// Loop-time improvement of Phase II over Phase I, as a fraction
    /// (0.0 when Phase II could not improve).
    pub phase2_gain: f64,
    /// Combined evaluation counters of both phases (points, cache hits,
    /// tables built, wall time) — how the sweep spent its work.
    pub stats: SweepStats,
}

/// Runs the full two-phase DSE over a dataflow graph.
///
/// # Panics
///
/// Panics if `options` contains no candidate heights/widths or a zero PE
/// budget.
#[must_use]
pub fn explore(graph: &DataflowGraph, options: &DseOptions) -> DseResult {
    let _span = nsflow_telemetry::span!("dse.explore");
    assert!(options.max_pes > 0, "PE budget must be positive");
    assert!(
        !options.heights.is_empty() && !options.widths.is_empty(),
        "candidate dimension lists must be non-empty"
    );
    let p1 = phase1(graph, options);
    let p1_loop = p1.timing.t_loop;
    let p2 = phase2_with_stats(graph, &p1.config, &p1.mapping, options);
    let mut stats = p1.stats;
    stats.absorb(&p2.stats);
    let timing = analytical::loop_timing(graph, &p1.config, &p2.mapping, options.simd_lanes);
    // Keep whichever mapping is actually better (Phase II never regresses).
    if timing.t_loop <= p1_loop {
        let gain = if p1_loop == 0 {
            0.0
        } else {
            (p1_loop - timing.t_loop) as f64 / p1_loop as f64
        };
        DseResult {
            config: p1.config,
            mapping: p2.mapping,
            timing,
            phase1_points: p1.points_evaluated,
            phase2_sweeps: p2.sweeps,
            phase2_gain: gain,
            stats,
        }
    } else {
        DseResult {
            config: p1.config,
            mapping: p1.mapping,
            timing: p1.timing,
            phase1_points: p1.points_evaluated,
            phase2_sweeps: p2.sweeps,
            phase2_gain: 0.0,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, OpKind, TraceBuilder};

    fn nvsa_like(loops: usize) -> DataflowGraph {
        let mut b = TraceBuilder::new("nvsa-like");
        let mut prev = None;
        for i in 0..4 {
            let inputs: Vec<_> = prev.into_iter().collect();
            prev = Some(b.push(
                format!("conv{i}"),
                OpKind::Gemm {
                    m: 1600,
                    n: 64 << i.min(2),
                    k: 64 * 9,
                },
                Domain::Neural,
                DType::Int8,
                &inputs,
            ));
        }
        let mut v_prev = prev.unwrap();
        for j in 0..6 {
            v_prev = b.push(
                format!("bind{j}"),
                OpKind::VsaConv {
                    n_vec: 16,
                    dim: 1024,
                },
                Domain::Symbolic,
                DType::Int4,
                &[v_prev],
            );
        }
        DataflowGraph::from_trace(b.finish(loops).unwrap())
    }

    #[test]
    fn explore_respects_pe_budget() {
        let g = nvsa_like(8);
        let opts = DseOptions::default();
        let r = explore(&g, &opts);
        assert!(r.config.total_pes() <= opts.max_pes);
    }

    #[test]
    fn explore_respects_aspect_bounds() {
        let g = nvsa_like(8);
        let r = explore(&g, &DseOptions::default());
        let ar = r.config.aspect_ratio();
        assert!((0.25..=16.0).contains(&ar), "aspect {ar}");
    }

    #[test]
    fn phase2_never_regresses_phase1() {
        let g = nvsa_like(8);
        let opts = DseOptions::default();
        let p1 = phase1(&g, &opts);
        let r = explore(&g, &opts);
        assert!(
            r.timing.t_loop <= p1.timing.t_loop,
            "phase 2 regressed: {} > {}",
            r.timing.t_loop,
            p1.timing.t_loop
        );
        assert!(r.phase2_gain >= 0.0);
    }

    #[test]
    fn mapping_is_valid_for_graph() {
        let g = nvsa_like(4);
        let r = explore(&g, &DseOptions::default());
        let nn = g.trace().nn_nodes().len();
        let vsa = g.trace().vsa_nodes().len();
        r.mapping
            .validate(&r.config, nn, vsa)
            .expect("returned mapping must be valid");
    }

    #[test]
    fn symbolic_heavy_workload_gets_more_vsa_subarrays() {
        let mut b = TraceBuilder::new("symbolic-heavy");
        let c = b.push(
            "conv",
            OpKind::Gemm {
                m: 64,
                n: 16,
                k: 16,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let mut prev = c;
        for j in 0..12 {
            prev = b.push(
                format!("bind{j}"),
                OpKind::VsaConv {
                    n_vec: 64,
                    dim: 2048,
                },
                Domain::Symbolic,
                DType::Int4,
                &[prev],
            );
        }
        let g = DataflowGraph::from_trace(b.finish(8).unwrap());
        let r = explore(&g, &DseOptions::default());
        if r.mapping.parallel {
            let avg_v: f64 =
                r.mapping.n_v.iter().sum::<usize>() as f64 / r.mapping.n_v.len() as f64;
            let avg_l: f64 =
                r.mapping.n_l.iter().sum::<usize>() as f64 / r.mapping.n_l.len() as f64;
            assert!(avg_v >= avg_l, "VSA should dominate: {avg_v} vs {avg_l}");
        }
    }

    #[test]
    fn more_pe_budget_never_hurts() {
        let g = nvsa_like(8);
        let small = explore(
            &g,
            &DseOptions {
                max_pes: 1024,
                ..DseOptions::default()
            },
        );
        let large = explore(
            &g,
            &DseOptions {
                max_pes: 8192,
                ..DseOptions::default()
            },
        );
        assert!(
            large.timing.t_loop <= small.timing.t_loop,
            "more PEs slower: {} > {}",
            large.timing.t_loop,
            small.timing.t_loop
        );
    }
}
