use std::fmt;

use nsflow_tensor::DType;

/// Opaque, trace-local operator identifier (topological position).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// The op's topological index within its trace.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Which side of the neuro-symbolic split an operator belongs to —
/// the attribute Fig. 1's latency breakdowns and Fig. 6's symbolic-ratio
/// sweep are computed over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Neural (perception) operator.
    Neural,
    /// Vector-symbolic (reasoning) operator.
    Symbolic,
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Neural => f.write_str("neural"),
            Domain::Symbolic => f.write_str("symbolic"),
        }
    }
}

/// Element-wise function executed on the SIMD unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EltFunc {
    /// Rectified linear unit.
    Relu,
    /// Addition of two operands.
    Add,
    /// Multiplication of two operands.
    Mul,
    /// Division of two operands.
    Div,
    /// Clamp into a range.
    Clamp,
    /// Exponential / logarithm / tanh class (one transcendental per lane).
    Transcendental,
    /// Softmax normalization (exp + sum + divide).
    Softmax,
    /// Batch-norm style affine.
    Affine,
    /// Max-pool style windowed selection.
    PoolMax,
}

/// Reduction function executed on the SIMD unit's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ReduceFunc {
    /// Summation.
    Sum,
    /// Maximum.
    Max,
    /// Mean (sum + scale).
    Mean,
    /// L2 norm.
    Norm,
}

/// Compute class and size of an operator.
///
/// The two array-class kinds carry exactly the parameters the paper's
/// analytical models need: `Gemm` the `m, n, k` of eq. (1), `VsaConv` the
/// vector quantity `n_j` and dimension `d_j` of eqs. (3)/(4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OpKind {
    /// NN layer lowered to GEMM, executed on merged sub-arrays.
    Gemm {
        /// Output rows (spatial positions × batch).
        m: usize,
        /// Output columns (filters).
        n: usize,
        /// Reduction length.
        k: usize,
    },
    /// Blockwise circular convolution / correlation: `n_vec` independent
    /// vectors of length `dim` streamed through array columns.
    VsaConv {
        /// Number of vectors (the paper's `n_j`).
        n_vec: usize,
        /// Vector dimension (the paper's `d_j`).
        dim: usize,
    },
    /// Element-wise SIMD operator over `elems` lanes.
    Elementwise {
        /// Total element count.
        elems: usize,
        /// Function applied per lane.
        func: EltFunc,
    },
    /// Reduction over `elems` elements on the SIMD tree.
    Reduce {
        /// Total element count reduced.
        elems: usize,
        /// Reduction function.
        func: ReduceFunc,
    },
    /// Similarity of `n_vec` query/dictionary pairs of length `dim`
    /// (`match_prob` class): dot products + softmax on the SIMD unit.
    Similarity {
        /// Number of comparisons.
        n_vec: usize,
        /// Vector dimension.
        dim: usize,
    },
}

impl OpKind {
    /// Whether the op executes on the (systolic) array.
    #[must_use]
    pub fn is_array_op(&self) -> bool {
        matches!(self, OpKind::Gemm { .. } | OpKind::VsaConv { .. })
    }

    /// Whether the op executes on the SIMD unit.
    #[must_use]
    pub fn is_simd_op(&self) -> bool {
        !self.is_array_op()
    }

    /// Multiply-accumulate (or lane-op) count — the FLOP basis.
    #[must_use]
    pub fn macs(&self) -> u64 {
        match *self {
            OpKind::Gemm { m, n, k } => (m * n * k) as u64,
            // One circular convolution of length d costs d² MACs.
            OpKind::VsaConv { n_vec, dim } => (n_vec * dim * dim) as u64,
            OpKind::Elementwise { elems, .. } => elems as u64,
            OpKind::Reduce { elems, .. } => elems as u64,
            OpKind::Similarity { n_vec, dim } => (n_vec * dim) as u64,
        }
    }

    /// Output element count.
    #[must_use]
    pub fn output_elems(&self) -> usize {
        match *self {
            OpKind::Gemm { m, n, .. } => m * n,
            OpKind::VsaConv { n_vec, dim } => n_vec * dim,
            OpKind::Elementwise { elems, .. } => elems,
            OpKind::Reduce { .. } => 1,
            OpKind::Similarity { n_vec, .. } => n_vec,
        }
    }

    /// Input element count (operands streamed in, weights excluded).
    #[must_use]
    pub fn input_elems(&self) -> usize {
        match *self {
            OpKind::Gemm { m, k, .. } => m * k,
            OpKind::VsaConv { n_vec, dim } => 2 * n_vec * dim,
            OpKind::Elementwise { elems, .. } => elems,
            OpKind::Reduce { elems, .. } => elems,
            OpKind::Similarity { n_vec, dim } => (n_vec + 1) * dim,
        }
    }

    /// Stationary/weight element count (filter for GEMM, the held vector
    /// for circular convolution, nothing for SIMD ops).
    #[must_use]
    pub fn weight_elems(&self) -> usize {
        match *self {
            OpKind::Gemm { n, k, .. } => n * k,
            OpKind::VsaConv { n_vec, dim } => n_vec * dim,
            _ => 0,
        }
    }

    /// True when every size parameter is nonzero.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        match *self {
            OpKind::Gemm { m, n, k } => m > 0 && n > 0 && k > 0,
            OpKind::VsaConv { n_vec, dim } => n_vec > 0 && dim > 0,
            OpKind::Elementwise { elems, .. } | OpKind::Reduce { elems, .. } => elems > 0,
            OpKind::Similarity { n_vec, dim } => n_vec > 0 && dim > 0,
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            OpKind::Gemm { m, n, k } => write!(f, "gemm(m={m}, n={n}, k={k})"),
            OpKind::VsaConv { n_vec, dim } => write!(f, "vsa_conv(n={n_vec}, d={dim})"),
            OpKind::Elementwise { elems, func } => write!(f, "eltwise({func:?}, {elems})"),
            OpKind::Reduce { elems, func } => write!(f, "reduce({func:?}, {elems})"),
            OpKind::Similarity { n_vec, dim } => write!(f, "similarity(n={n_vec}, d={dim})"),
        }
    }
}

/// One operator in an [`crate::ExecutionTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceOp {
    pub(crate) id: OpId,
    pub(crate) name: String,
    pub(crate) kind: OpKind,
    pub(crate) domain: Domain,
    pub(crate) dtype: DType,
    pub(crate) inputs: Vec<OpId>,
}

impl TraceOp {
    /// The op's id (topological position).
    #[must_use]
    pub fn id(&self) -> OpId {
        self.id
    }

    /// The op's trace-level name (e.g. `%inv_binding_circular_2`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Compute class and sizes.
    #[must_use]
    pub fn kind(&self) -> &OpKind {
        &self.kind
    }

    /// Neural or symbolic domain.
    #[must_use]
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Execution precision of this op.
    #[must_use]
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Data dependencies (ids of producing ops).
    #[must_use]
    pub fn inputs(&self) -> &[OpId] {
        &self.inputs
    }

    /// Bytes of output at the op's precision.
    #[must_use]
    pub fn output_bytes(&self) -> usize {
        self.dtype.storage_bytes(self.kind.output_elems())
    }

    /// Bytes of streamed input at the op's precision.
    #[must_use]
    pub fn input_bytes(&self) -> usize {
        self.dtype.storage_bytes(self.kind.input_elems())
    }

    /// Bytes of stationary data (weights / held vectors).
    #[must_use]
    pub fn weight_bytes(&self) -> usize {
        self.dtype.storage_bytes(self.kind.weight_elems())
    }

    /// Total memory touched by the op (input + weights + output).
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.input_bytes() + self.weight_bytes() + self.output_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(OpKind::Gemm { m: 1, n: 1, k: 1 }.is_array_op());
        assert!(OpKind::VsaConv { n_vec: 1, dim: 8 }.is_array_op());
        assert!(OpKind::Elementwise {
            elems: 4,
            func: EltFunc::Relu
        }
        .is_simd_op());
        assert!(OpKind::Reduce {
            elems: 4,
            func: ReduceFunc::Sum
        }
        .is_simd_op());
        assert!(OpKind::Similarity {
            n_vec: 7,
            dim: 1024
        }
        .is_simd_op());
    }

    #[test]
    fn mac_counts() {
        assert_eq!(OpKind::Gemm { m: 2, n: 3, k: 4 }.macs(), 24);
        assert_eq!(OpKind::VsaConv { n_vec: 4, dim: 256 }.macs(), 4 * 256 * 256);
        assert_eq!(
            OpKind::Similarity {
                n_vec: 7,
                dim: 1024
            }
            .macs(),
            7 * 1024
        );
    }

    #[test]
    fn element_accounting() {
        let g = OpKind::Gemm { m: 2, n: 3, k: 4 };
        assert_eq!(g.output_elems(), 6);
        assert_eq!(g.input_elems(), 8);
        assert_eq!(g.weight_elems(), 12);
        let v = OpKind::VsaConv { n_vec: 4, dim: 256 };
        assert_eq!(v.output_elems(), 1024);
        assert_eq!(v.input_elems(), 2048);
        assert_eq!(v.weight_elems(), 1024);
        let r = OpKind::Reduce {
            elems: 100,
            func: ReduceFunc::Sum,
        };
        assert_eq!(r.output_elems(), 1);
    }

    #[test]
    fn well_formedness() {
        assert!(OpKind::Gemm { m: 1, n: 1, k: 1 }.is_well_formed());
        assert!(!OpKind::Gemm { m: 0, n: 1, k: 1 }.is_well_formed());
        assert!(!OpKind::VsaConv { n_vec: 1, dim: 0 }.is_well_formed());
        assert!(!OpKind::Elementwise {
            elems: 0,
            func: EltFunc::Add
        }
        .is_well_formed());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            OpKind::Gemm { m: 1, n: 2, k: 3 }.to_string(),
            "gemm(m=1, n=2, k=3)"
        );
        assert_eq!(OpId(4).to_string(), "%4");
        assert_eq!(Domain::Symbolic.to_string(), "symbolic");
    }
}
