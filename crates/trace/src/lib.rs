//! # nsflow-trace
//!
//! Execution-trace intermediate representation for the NSFlow frontend.
//!
//! The paper's Design Architecture Generator "begins by extracting an
//! execution trace from the user-provided workload" (Sec. III-A) — an
//! FX-style operator list like Listing 1 — and every later stage (dataflow
//! graph, DSE, memory planning) consumes only operator kinds, shapes and
//! data dependencies. This crate is that IR:
//!
//! - [`TraceOp`] / [`OpKind`]: one operator with its compute class
//!   (systolic-array GEMM, systolic-array circular convolution, SIMD
//!   element-wise/reduction/similarity), tensor sizes and dependencies,
//! - [`ExecutionTrace`]: a validated, topologically-ordered operator list
//!   representing **one loop iteration** of the workload plus the loop
//!   count,
//! - [`parser`]: a text parser for the paper's Listing-1 trace syntax, so
//!   a real PyTorch-FX dump can be ingested ([`emitter`] writes the same
//!   format back out, and traces round-trip),
//! - [`TraceBuilder`]: ergonomic programmatic construction used by the
//!   workload models.
//!
//! # Examples
//!
//! ```
//! use nsflow_trace::{TraceBuilder, OpKind, Domain};
//! use nsflow_tensor::DType;
//!
//! let mut b = TraceBuilder::new("demo");
//! let conv = b.push("conv1", OpKind::Gemm { m: 6400, n: 64, k: 147 }, Domain::Neural, DType::Int8, &[]);
//! let bind = b.push("bind", OpKind::VsaConv { n_vec: 4, dim: 256 }, Domain::Symbolic, DType::Int4, &[conv]);
//! let trace = b.finish(1)?;
//! assert_eq!(trace.ops().len(), 2);
//! assert!(trace.op(bind).inputs().contains(&conv));
//! # Ok::<(), nsflow_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod op;
mod trace_impl;

pub mod emitter;
pub mod parser;
pub mod passes;

pub use builder::TraceBuilder;
pub use error::TraceError;
pub use op::{Domain, EltFunc, OpId, OpKind, ReduceFunc, TraceOp};
pub use trace_impl::ExecutionTrace;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TraceError>;
