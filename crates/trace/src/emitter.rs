//! Emits an [`ExecutionTrace`] back to the FX-style text format the
//! parser consumes, so traces round-trip: `parse(emit(t)) ≡ t` up to the
//! structural information the text format carries.
//!
//! Emission maps each op kind to a canonical target name that
//! [`crate::parser`] classifies back to the same kind:
//!
//! | op kind | emitted line |
//! |---|---|
//! | `Gemm` | `call_module[conv_<id>]` with a 4-D output shape |
//! | `VsaConv` | `call_function[nvsa.binding_circular]` |
//! | `Similarity` | `call_function[nvsa.match_prob_multi_batched]` |
//! | `Reduce(Sum)` | `call_function[torch.sum]` — others `torch.norm` |
//! | `Elementwise` | the matching module/function per function kind |
//!
//! GEMM reduction lengths are not expressible in the text format; the
//! emitter returns the [`ModuleRegistry`] needed to re-parse them.

use nsflow_tensor::DType;

use crate::parser::ModuleRegistry;
use crate::{EltFunc, ExecutionTrace, OpKind, ReduceFunc};

/// Emits the trace as Listing-1-style text plus the module registry the
/// parser needs to recover GEMM reduction lengths.
#[must_use]
pub fn emit_trace(trace: &ExecutionTrace) -> (String, ModuleRegistry) {
    let mut out = String::from("graph():\n");
    let mut registry = ModuleRegistry::new();

    for op in trace.ops() {
        let args: Vec<String> = if op.inputs().is_empty() {
            // External input placeholder with a matching element count.
            vec![format!(
                "%ext_{}[{}]",
                op.id().index(),
                op.kind().input_elems().max(1)
            )]
        } else {
            op.inputs()
                .iter()
                .map(|d| {
                    let dep = trace.op(*d);
                    format!("%{}{}", dep.name(), dims_text(dep.kind()))
                })
                .collect()
        };
        let args = args.join(", ");
        let name = op.name();
        let line = match *op.kind() {
            OpKind::Gemm { m, n, k } => {
                let target = format!("conv_{}", op.id().index());
                registry.insert(target.clone(), k);
                // Encode (m, n) as a [m, n, 1, 1] NCHW output so the parser
                // recovers them exactly.
                format!("%{name}[{m},{n},1,1] : call_module[{target}](args = ({args}))")
            }
            OpKind::VsaConv { n_vec, dim } => format!(
                "%{name}[1,{n_vec},{dim}] : call_function[nvsa.binding_circular](args = ({args}))"
            ),
            OpKind::Similarity { n_vec, dim } => format!(
                "%{name}[{n_vec}] : call_function[nvsa.match_prob_multi_batched](args = ({args}, %dict_{}[{n_vec},{dim}]))",
                op.id().index()
            ),
            OpKind::Reduce { elems, func } => {
                let target = match func {
                    ReduceFunc::Norm => "torch.norm",
                    _ => "torch.sum",
                };
                // The parser derives the reduced element count from the
                // widest argument; add a phantom external operand when the
                // real dependencies are narrower than `elems`.
                let widest = op
                    .inputs()
                    .iter()
                    .map(|d| trace.op(*d).kind().output_elems())
                    .max()
                    .unwrap_or(0);
                let args = if widest < elems {
                    format!("{args}, %red_{}[{elems}]", op.id().index())
                } else {
                    args
                };
                format!("%{name}[1] : call_function[{target}](args = ({args}))")
            }
            OpKind::Elementwise { elems, func } => match func {
                EltFunc::Relu => {
                    format!("%{name}[{elems}] : call_module[relu_{}](args = ({args}))", op.id().index())
                }
                EltFunc::Affine => {
                    format!("%{name}[{elems}] : call_module[bn_{}](args = ({args}))", op.id().index())
                }
                EltFunc::PoolMax => {
                    format!("%{name}[{elems}] : call_module[maxpool_{}](args = ({args}))", op.id().index())
                }
                EltFunc::Softmax => {
                    format!("%{name}[{elems}] : call_function[torch.softmax](args = ({args}))")
                }
                EltFunc::Clamp => {
                    format!("%{name}[{elems}] : call_function[torch.clamp](args = ({args}))")
                }
                EltFunc::Div => {
                    format!("%{name}[{elems}] : call_function[operator.div](args = ({args}))")
                }
                EltFunc::Add => {
                    format!("%{name}[{elems}] : call_function[operator.add](args = ({args}))")
                }
                _ => format!("%{name}[{elems}] : call_function[operator.mul](args = ({args}))"),
            },
        };
        out.push_str(&line);
        out.push('\n');
    }
    (out, registry)
}

fn dims_text(kind: &OpKind) -> String {
    match *kind {
        OpKind::Gemm { m, n, .. } => format!("[{m},{n},1,1]"),
        OpKind::VsaConv { n_vec, dim } => format!("[1,{n_vec},{dim}]"),
        OpKind::Similarity { n_vec, .. } => format!("[{n_vec}]"),
        OpKind::Reduce { .. } => "[1]".to_string(),
        OpKind::Elementwise { elems, .. } => format!("[{elems}]"),
    }
}

/// Structural fingerprint used by round-trip checks: op kinds, domains and
/// dependency in-degrees, ignoring names/dtypes the text format does not
/// carry losslessly.
#[must_use]
pub fn structural_signature(trace: &ExecutionTrace) -> Vec<(OpKind, usize)> {
    trace
        .ops()
        .iter()
        .map(|op| (*op.kind(), op.inputs().len()))
        .collect()
}

/// Does the dtype assignment the parser will produce match the trace's?
/// (Parsing re-derives dtypes from domains via [`crate::parser::ParsePrecision`].)
#[must_use]
pub fn dtype_profile(trace: &ExecutionTrace) -> Vec<DType> {
    trace.ops().iter().map(|op| op.dtype()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_trace, ParsePrecision};
    use crate::{Domain, TraceBuilder};

    fn sample() -> ExecutionTrace {
        let mut b = TraceBuilder::new("sample");
        let c = b.push(
            "conv1",
            OpKind::Gemm {
                m: 64,
                n: 16,
                k: 27,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let r = b.push(
            "relu1",
            OpKind::Elementwise {
                elems: 1024,
                func: EltFunc::Relu,
            },
            Domain::Neural,
            DType::Int8,
            &[c],
        );
        let v = b.push(
            "bind1",
            OpKind::VsaConv { n_vec: 4, dim: 256 },
            Domain::Symbolic,
            DType::Int4,
            &[r],
        );
        let s = b.push(
            "match1",
            OpKind::Similarity {
                n_vec: 8,
                dim: 1024,
            },
            Domain::Symbolic,
            DType::Int4,
            &[v],
        );
        let _sum = b.push(
            "sum1",
            OpKind::Reduce {
                elems: 8,
                func: ReduceFunc::Sum,
            },
            Domain::Symbolic,
            DType::Int4,
            &[s],
        );
        b.finish(4).unwrap()
    }

    #[test]
    fn emit_then_parse_preserves_structure() {
        let original = sample();
        let (text, registry) = emit_trace(&original);
        let reparsed =
            parse_trace(&text, "sample", &registry, ParsePrecision::default(), 4).unwrap();
        assert_eq!(
            structural_signature(&reparsed),
            structural_signature(&original),
            "round trip changed the op structure\n--- emitted ---\n{text}"
        );
        assert_eq!(reparsed.loop_count(), original.loop_count());
    }

    #[test]
    fn emit_then_parse_preserves_dependencies() {
        let original = sample();
        let (text, registry) = emit_trace(&original);
        let reparsed =
            parse_trace(&text, "sample", &registry, ParsePrecision::default(), 4).unwrap();
        for (a, b) in original.ops().iter().zip(reparsed.ops()) {
            let da: Vec<usize> = a.inputs().iter().map(|d| d.index()).collect();
            let db: Vec<usize> = b.inputs().iter().map(|d| d.index()).collect();
            assert_eq!(da, db, "dependencies drifted at {}", a.name());
        }
    }

    #[test]
    fn emitted_text_is_human_shaped() {
        let (text, _) = emit_trace(&sample());
        assert!(text.starts_with("graph():"));
        assert!(text.contains("call_function[nvsa.binding_circular]"));
        assert!(text.contains("call_function[torch.sum]"));
        assert!(text.lines().count() >= 6);
    }

    #[test]
    fn dtype_profile_follows_domains() {
        let t = sample();
        let profile = dtype_profile(&t);
        assert_eq!(profile[0], DType::Int8);
        assert_eq!(profile[2], DType::Int4);
    }
}
