use nsflow_tensor::DType;

use crate::{Domain, ExecutionTrace, OpId, OpKind, Result, TraceOp};

/// Incremental builder for [`ExecutionTrace`]s.
///
/// Ops are appended in topological order; [`TraceBuilder::push`] returns
/// the new op's [`OpId`] so later ops can reference it.
///
/// # Examples
///
/// ```
/// use nsflow_trace::{TraceBuilder, OpKind, Domain};
/// use nsflow_tensor::DType;
///
/// let mut b = TraceBuilder::new("w");
/// let a = b.push("a", OpKind::Gemm { m: 4, n: 4, k: 4 }, Domain::Neural, DType::Int8, &[]);
/// let _bind = b.push("b", OpKind::VsaConv { n_vec: 1, dim: 64 }, Domain::Symbolic, DType::Int4, &[a]);
/// let trace = b.finish(2)?;
/// assert_eq!(trace.loop_count(), 2);
/// # Ok::<(), nsflow_trace::TraceError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    name: String,
    ops: Vec<TraceOp>,
}

impl TraceBuilder {
    /// Starts an empty trace with the given workload name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        TraceBuilder {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Appends an op and returns its id.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        kind: OpKind,
        domain: Domain,
        dtype: DType,
        inputs: &[OpId],
    ) -> OpId {
        let id = OpId(self.ops.len());
        self.ops.push(TraceOp {
            id,
            name: name.into(),
            kind,
            domain,
            dtype,
            inputs: inputs.to_vec(),
        });
        id
    }

    /// Number of ops pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops have been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Id of the most recently pushed op, if any.
    #[must_use]
    pub fn last_id(&self) -> Option<OpId> {
        self.ops.last().map(|op| op.id)
    }

    /// Validates and finishes the trace.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation: [`crate::TraceError::EmptyTrace`],
    /// [`crate::TraceError::ZeroLoopCount`], [`crate::TraceError::ZeroDimension`]
    /// or [`crate::TraceError::DanglingInput`].
    pub fn finish(self, loop_count: usize) -> Result<ExecutionTrace> {
        ExecutionTrace::new(self.name, self.ops, loop_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceError;

    #[test]
    fn empty_builder_fails_to_finish() {
        assert_eq!(
            TraceBuilder::new("e").finish(1).unwrap_err(),
            TraceError::EmptyTrace
        );
    }

    #[test]
    fn dangling_inputs_rejected() {
        let mut b = TraceBuilder::new("d");
        // Reference a forward op id (1) from op 0.
        let fake = OpId(1);
        b.push(
            "bad",
            OpKind::Gemm { m: 1, n: 1, k: 1 },
            Domain::Neural,
            DType::Fp32,
            &[fake],
        );
        assert!(matches!(b.finish(1), Err(TraceError::DanglingInput { .. })));
    }

    #[test]
    fn self_reference_rejected() {
        let mut b = TraceBuilder::new("s");
        let own = OpId(0);
        b.push(
            "selfish",
            OpKind::Gemm { m: 1, n: 1, k: 1 },
            Domain::Neural,
            DType::Fp32,
            &[own],
        );
        assert!(matches!(b.finish(1), Err(TraceError::DanglingInput { .. })));
    }

    #[test]
    fn zero_dimension_rejected() {
        let mut b = TraceBuilder::new("z");
        b.push(
            "zero",
            OpKind::Gemm { m: 0, n: 1, k: 1 },
            Domain::Neural,
            DType::Fp32,
            &[],
        );
        assert!(matches!(b.finish(1), Err(TraceError::ZeroDimension { .. })));
    }

    #[test]
    fn ids_are_sequential() {
        let mut b = TraceBuilder::new("seq");
        let a = b.push(
            "a",
            OpKind::Gemm { m: 1, n: 1, k: 1 },
            Domain::Neural,
            DType::Fp32,
            &[],
        );
        let c = b.push(
            "c",
            OpKind::Gemm { m: 1, n: 1, k: 1 },
            Domain::Neural,
            DType::Fp32,
            &[a],
        );
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 1);
        assert_eq!(b.last_id(), Some(c));
        assert_eq!(b.len(), 2);
    }
}
