use std::fmt;

/// Error type for trace construction and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// An op referenced an input id that does not precede it.
    DanglingInput {
        /// The op doing the referencing.
        op: String,
        /// The missing input id.
        input: usize,
    },
    /// A trace was finished with no ops.
    EmptyTrace,
    /// The loop count was zero.
    ZeroLoopCount,
    /// An op was constructed with a zero-sized dimension.
    ZeroDimension {
        /// The offending op name.
        op: String,
    },
    /// The parser could not understand a line.
    ParseLine {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// The parser met a `call_module` target it has no registry entry for.
    UnknownModule {
        /// 1-based line number.
        line: usize,
        /// The module target name.
        target: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::DanglingInput { op, input } => {
                write!(
                    f,
                    "op {op} references input #{input} that does not precede it"
                )
            }
            TraceError::EmptyTrace => write!(f, "trace must contain at least one op"),
            TraceError::ZeroLoopCount => write!(f, "loop count must be at least 1"),
            TraceError::ZeroDimension { op } => {
                write!(f, "op {op} has a zero-sized dimension")
            }
            TraceError::ParseLine { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceError::UnknownModule { line, target } => {
                write!(
                    f,
                    "line {line}: call_module target {target} is not in the module registry"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }

    #[test]
    fn display_nonempty() {
        let errs = [
            TraceError::DanglingInput {
                op: "x".into(),
                input: 3,
            },
            TraceError::EmptyTrace,
            TraceError::ZeroLoopCount,
            TraceError::ZeroDimension { op: "x".into() },
            TraceError::ParseLine {
                line: 2,
                message: "bad".into(),
            },
            TraceError::UnknownModule {
                line: 4,
                target: "conv9".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
