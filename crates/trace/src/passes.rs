//! Trace-level optimization passes the frontend applies before dataflow
//! generation (extensions beyond the paper's pipeline, labelled as such
//! in DESIGN.md).
//!
//! - [`eliminate_dead_ops`]: removes ops whose results nothing consumes
//!   (scalar diagnostics a trace often carries, like Listing 1's trailing
//!   `mul`),
//! - [`fuse_elementwise`]: merges chains of element-wise SIMD ops with a
//!   single consumer into one fused kernel, eliminating per-op dispatch
//!   the same way fused activation pipelines do on any accelerator.

use std::collections::HashMap;

use crate::{EltFunc, ExecutionTrace, OpId, OpKind, Result, TraceBuilder};

/// Statistics from an optimization pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassStats {
    /// Ops in the input trace.
    pub ops_before: usize,
    /// Ops in the output trace.
    pub ops_after: usize,
}

impl PassStats {
    /// Ops removed by the pass.
    #[must_use]
    pub fn removed(&self) -> usize {
        self.ops_before - self.ops_after
    }
}

/// Removes ops that no other op consumes, except the trace's final op
/// (the workload result) and array-class ops (their outputs feed the
/// memory system even when the trace snippet does not show a consumer).
/// Runs to a fixed point.
///
/// # Errors
///
/// Propagates trace-validation errors from reconstruction (structurally
/// impossible for a valid input).
pub fn eliminate_dead_ops(trace: &ExecutionTrace) -> Result<(ExecutionTrace, PassStats)> {
    let mut keep = vec![true; trace.ops().len()];
    loop {
        let mut changed = false;
        let mut consumed = vec![false; trace.ops().len()];
        for (pos, op) in trace.ops().iter().enumerate() {
            if !keep[pos] {
                continue;
            }
            for d in op.inputs() {
                consumed[d.index()] = true;
            }
        }
        let last = trace.ops().len() - 1;
        for (pos, op) in trace.ops().iter().enumerate() {
            if keep[pos] && !consumed[pos] && pos != last && op.kind().is_simd_op() {
                keep[pos] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    rebuild(trace, &keep, &HashMap::new())
}

/// Fuses maximal chains of element-wise ops where each link is the sole
/// consumer of its predecessor: `relu → affine → clamp` becomes a single
/// element-wise op carrying the *sum* of the chain's per-lane costs
/// (represented with the dominant function and the combined element
/// count), so the SIMD cost model still charges the same arithmetic while
/// the scheduler dispatches one kernel.
///
/// # Errors
///
/// Propagates trace-validation errors from reconstruction.
pub fn fuse_elementwise(trace: &ExecutionTrace) -> Result<(ExecutionTrace, PassStats)> {
    let n = trace.ops().len();
    // Count consumers per op.
    let mut consumers = vec![0usize; n];
    for op in trace.ops() {
        for d in op.inputs() {
            consumers[d.index()] += 1;
        }
    }
    // An op is fused *into its producer* when both are Elementwise, the
    // producer has exactly one consumer (this op), and this op has exactly
    // one input.
    let mut keep = vec![true; n];
    let mut extra_elems: Vec<usize> = vec![0; n];
    // Map from removed op -> surviving representative producing its value.
    let mut alias: HashMap<usize, usize> = HashMap::new();
    for (pos, op) in trace.ops().iter().enumerate() {
        let OpKind::Elementwise { elems, .. } = *op.kind() else {
            continue;
        };
        if op.inputs().len() != 1 {
            continue;
        }
        let producer = op.inputs()[0].index();
        let producer_rep = *alias.get(&producer).unwrap_or(&producer);
        let OpKind::Elementwise { .. } = trace.ops()[producer_rep].kind() else {
            continue;
        };
        if consumers[producer] != 1 {
            continue;
        }
        // Fuse: this op disappears; its work joins the representative.
        keep[pos] = false;
        extra_elems[producer_rep] += elems + extra_elems[pos];
        extra_elems[pos] = 0;
        alias.insert(pos, producer_rep);
    }
    let mut grown: HashMap<usize, usize> = HashMap::new();
    for (pos, &extra) in extra_elems.iter().enumerate() {
        if keep[pos] && extra > 0 {
            grown.insert(pos, extra);
        }
    }
    rebuild_with_alias(trace, &keep, &alias, &grown)
}

fn rebuild(
    trace: &ExecutionTrace,
    keep: &[bool],
    alias: &HashMap<usize, usize>,
) -> Result<(ExecutionTrace, PassStats)> {
    rebuild_with_alias(trace, keep, alias, &HashMap::new())
}

fn rebuild_with_alias(
    trace: &ExecutionTrace,
    keep: &[bool],
    alias: &HashMap<usize, usize>,
    grown: &HashMap<usize, usize>,
) -> Result<(ExecutionTrace, PassStats)> {
    let mut b = TraceBuilder::new(trace.name());
    let mut new_id: HashMap<usize, OpId> = HashMap::new();
    for (pos, op) in trace.ops().iter().enumerate() {
        if !keep[pos] {
            continue;
        }
        let inputs: Vec<OpId> = op
            .inputs()
            .iter()
            .filter_map(|d| {
                let mut idx = d.index();
                while let Some(&a) = alias.get(&idx) {
                    idx = a;
                }
                new_id.get(&idx).copied()
            })
            .collect();
        let kind = match (*op.kind(), grown.get(&pos)) {
            (OpKind::Elementwise { elems, func }, Some(&extra)) => OpKind::Elementwise {
                elems: elems + extra,
                func: fused_label(func),
            },
            (k, _) => k,
        };
        let id = b.push(op.name(), kind, op.domain(), op.dtype(), &inputs);
        new_id.insert(pos, id);
    }
    let stats = PassStats {
        ops_before: trace.ops().len(),
        ops_after: b.len(),
    };
    Ok((b.finish(trace.loop_count())?, stats))
}

/// The function label a fused chain carries (keeps the costliest member's
/// issue class so the SIMD model never undercharges).
fn fused_label(f: EltFunc) -> EltFunc {
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;
    use nsflow_tensor::DType;

    fn listing1_like() -> ExecutionTrace {
        let mut b = TraceBuilder::new("l1");
        let conv = b.push(
            "conv",
            OpKind::Gemm { m: 64, n: 8, k: 8 },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let relu = b.push(
            "relu",
            OpKind::Elementwise {
                elems: 512,
                func: EltFunc::Relu,
            },
            Domain::Neural,
            DType::Int8,
            &[conv],
        );
        let bn = b.push(
            "bn",
            OpKind::Elementwise {
                elems: 512,
                func: EltFunc::Affine,
            },
            Domain::Neural,
            DType::Int8,
            &[relu],
        );
        let bind = b.push(
            "bind",
            OpKind::VsaConv { n_vec: 2, dim: 32 },
            Domain::Symbolic,
            DType::Int4,
            &[bn],
        );
        let sim = b.push(
            "sim",
            OpKind::Similarity { n_vec: 4, dim: 64 },
            Domain::Symbolic,
            DType::Int4,
            &[bind],
        );
        // Dead diagnostic tail (like Listing 1's mul).
        let sum = b.push(
            "sum",
            OpKind::Reduce {
                elems: 4,
                func: crate::ReduceFunc::Sum,
            },
            Domain::Symbolic,
            DType::Int4,
            &[sim],
        );
        let clamp = b.push(
            "clamp",
            OpKind::Elementwise {
                elems: 1,
                func: EltFunc::Clamp,
            },
            Domain::Symbolic,
            DType::Int4,
            &[sum],
        );
        let _mul = b.push(
            "mul",
            OpKind::Elementwise {
                elems: 1,
                func: EltFunc::Mul,
            },
            Domain::Symbolic,
            DType::Int4,
            &[sim, clamp],
        );
        b.finish(2).unwrap()
    }

    #[test]
    fn dce_keeps_live_chain_and_final_op() {
        let t = listing1_like();
        let (out, stats) = eliminate_dead_ops(&t).unwrap();
        // Nothing here is dead: mul is final, everything else is consumed.
        assert_eq!(stats.removed(), 0);
        assert_eq!(out.ops().len(), t.ops().len());
    }

    #[test]
    fn dce_removes_unconsumed_diagnostics() {
        let mut b = TraceBuilder::new("dead");
        let conv = b.push(
            "conv",
            OpKind::Gemm { m: 4, n: 4, k: 4 },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let _dead = b.push(
            "debug_norm",
            OpKind::Reduce {
                elems: 16,
                func: crate::ReduceFunc::Norm,
            },
            Domain::Neural,
            DType::Int8,
            &[conv],
        );
        let _live = b.push(
            "bind",
            OpKind::VsaConv { n_vec: 1, dim: 16 },
            Domain::Symbolic,
            DType::Int4,
            &[conv],
        );
        let t = b.finish(1).unwrap();
        let (out, stats) = eliminate_dead_ops(&t).unwrap();
        assert_eq!(stats.removed(), 1);
        assert!(out.ops().iter().all(|op| op.name() != "debug_norm"));
        // The live chain survives with its edge intact.
        assert_eq!(out.ops().len(), 2);
        assert_eq!(out.ops()[1].inputs().len(), 1);
    }

    #[test]
    fn fusion_merges_single_consumer_elementwise_chains() {
        let t = listing1_like();
        let (out, stats) = fuse_elementwise(&t).unwrap();
        // relu→bn fuse into relu (bn had the only ref to relu).
        assert_eq!(stats.removed(), 1, "exactly the bn op should fuse");
        let relu = out.ops().iter().find(|o| o.name() == "relu").unwrap();
        match relu.kind() {
            OpKind::Elementwise { elems, .. } => assert_eq!(*elems, 1024),
            other => panic!("unexpected kind {other}"),
        }
        // bind now consumes the fused op.
        let bind = out.ops().iter().find(|o| o.name() == "bind").unwrap();
        assert_eq!(out.op(bind.inputs()[0]).name(), "relu");
    }

    #[test]
    fn fusion_preserves_total_simd_work() {
        let t = listing1_like();
        let (out, _) = fuse_elementwise(&t).unwrap();
        let work = |tr: &ExecutionTrace| -> u64 {
            tr.ops()
                .iter()
                .filter_map(|o| match *o.kind() {
                    OpKind::Elementwise { elems, .. } => Some(elems as u64),
                    _ => None,
                })
                .sum()
        };
        assert_eq!(work(&t), work(&out), "fusion must not drop lane work");
    }

    #[test]
    fn fusion_does_not_merge_multi_consumer_producers() {
        let mut b = TraceBuilder::new("fanout");
        let a = b.push(
            "a",
            OpKind::Elementwise {
                elems: 8,
                func: EltFunc::Relu,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let _u = b.push(
            "u",
            OpKind::Elementwise {
                elems: 8,
                func: EltFunc::Mul,
            },
            Domain::Neural,
            DType::Int8,
            &[a],
        );
        let _v = b.push(
            "v",
            OpKind::Elementwise {
                elems: 8,
                func: EltFunc::Add,
            },
            Domain::Neural,
            DType::Int8,
            &[a],
        );
        let t = b.finish(1).unwrap();
        let (out, stats) = fuse_elementwise(&t).unwrap();
        assert_eq!(stats.removed(), 0, "fan-out producers must not fuse");
        assert_eq!(out.ops().len(), 3);
    }
}
