//! Text parser for FX-style execution traces (the paper's Listing 1).
//!
//! The accepted grammar is one operator per line:
//!
//! ```text
//! %<name>[d0,d1,…] : call_module[<target>](args = (%ref[dims], …))
//! %<name>[d0,d1,…] : call_function[<target>](args = (%ref[dims], …))
//! ```
//!
//! Blank lines, a leading `graph():` header and `//`/`#` comments are
//! skipped. References to names never defined in the trace are treated as
//! external inputs (constants, parameters, dataset tensors) and produce no
//! dependency edge — exactly how FX free variables behave.
//!
//! ## Operator classification
//!
//! | target pattern | op kind | domain |
//! |---|---|---|
//! | `conv*` module (needs a [`ModuleRegistry`] entry for its reduction length) | `Gemm` | neural |
//! | `linear*`/`fc*` module (registry entry) | `Gemm` | neural |
//! | `relu*`, `bn*`, `batchnorm*`, `maxpool*`, `avgpool*`, `sigmoid*` | `Elementwise` | neural |
//! | function containing `binding_circular` (incl. `inv_binding…`) | `VsaConv` | symbolic |
//! | function containing `match_prob` | `Similarity` | symbolic |
//! | `torch.sum` | `Reduce(Sum)` | inherited |
//! | `*.clamp`/`clamp` | `Elementwise(Clamp)` | inherited |
//! | `operator.mul`/`add`/`div` | `Elementwise` | inherited |
//! | `*softmax*` | `Elementwise(Softmax)` | inherited |
//!
//! "Inherited" domain means symbolic if any producing op is symbolic,
//! neural otherwise — matching how the glue arithmetic after `match_prob`
//! in Listing 1 belongs to the symbolic phase.

use std::collections::HashMap;

use nsflow_tensor::DType;

use crate::{
    Domain, EltFunc, ExecutionTrace, OpId, OpKind, ReduceFunc, Result, TraceBuilder, TraceError,
};

/// Extra information the trace text does not carry: the reduction length
/// (`k`) of each GEMM-class module target.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModuleRegistry {
    k_by_target: HashMap<String, usize>,
}

impl ModuleRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        ModuleRegistry::default()
    }

    /// Registers the reduction length for a `call_module` target.
    pub fn insert(&mut self, target: impl Into<String>, k: usize) -> &mut Self {
        self.k_by_target.insert(target.into(), k);
        self
    }

    /// Looks up a target's reduction length.
    #[must_use]
    pub fn k_for(&self, target: &str) -> Option<usize> {
        self.k_by_target.get(target).copied()
    }
}

/// Precision assignment for parsed ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsePrecision {
    /// Precision given to neural ops.
    pub neural: DType,
    /// Precision given to symbolic ops.
    pub symbolic: DType,
}

impl Default for ParsePrecision {
    fn default() -> Self {
        // The paper's NVSA deployment: INT8 NN, INT4 symbolic (Tab. III).
        ParsePrecision {
            neural: DType::Int8,
            symbolic: DType::Int4,
        }
    }
}

/// Parses a Listing-1-style trace into an [`ExecutionTrace`].
///
/// # Errors
///
/// Returns [`TraceError::ParseLine`] for malformed lines,
/// [`TraceError::UnknownModule`] for GEMM-class modules missing from the
/// registry, and propagates trace-validation errors.
pub fn parse_trace(
    text: &str,
    name: &str,
    registry: &ModuleRegistry,
    precision: ParsePrecision,
    loop_count: usize,
) -> Result<ExecutionTrace> {
    let mut builder = TraceBuilder::new(name);
    let mut ids: HashMap<String, OpId> = HashMap::new();
    let mut domains: HashMap<OpId, Domain> = HashMap::new();

    for (lineno0, raw) in text.lines().enumerate() {
        let lineno = lineno0 + 1;
        let line = raw.trim();
        if line.is_empty()
            || line.starts_with("//")
            || line.starts_with('#')
            || line.starts_with("graph()")
            || line == "..."
        {
            continue;
        }
        let parsed = parse_line(line, lineno)?;
        let input_ids: Vec<OpId> = parsed
            .args
            .iter()
            .filter_map(|a| ids.get(&a.name).copied())
            .collect();

        let inherited = if input_ids
            .iter()
            .any(|id| domains.get(id) == Some(&Domain::Symbolic))
        {
            Domain::Symbolic
        } else {
            Domain::Neural
        };

        let (kind, domain) = classify(&parsed, registry, inherited, lineno)?;
        let dtype = match domain {
            Domain::Neural => precision.neural,
            Domain::Symbolic => precision.symbolic,
        };
        let id = builder.push(parsed.name.clone(), kind, domain, dtype, &input_ids);
        domains.insert(id, domain);
        ids.insert(parsed.name, id);
    }
    builder.finish(loop_count)
}

#[derive(Debug)]
struct ParsedRef {
    name: String,
    dims: Vec<usize>,
}

#[derive(Debug)]
struct ParsedLine {
    name: String,
    dims: Vec<usize>,
    is_module: bool,
    target: String,
    args: Vec<ParsedRef>,
}

fn parse_line(line: &str, lineno: usize) -> Result<ParsedLine> {
    let err = |message: &str| TraceError::ParseLine {
        line: lineno,
        message: message.into(),
    };

    let (lhs, rhs) = line.split_once(':').ok_or_else(|| err("missing ':'"))?;
    let lhs_ref = parse_ref(lhs.trim(), lineno)?;

    let rhs = rhs.trim();
    let (call_kind, rest) = if let Some(r) = rhs.strip_prefix("call_module[") {
        (true, r)
    } else if let Some(r) = rhs.strip_prefix("call_function[") {
        (false, r)
    } else {
        return Err(err("expected call_module[…] or call_function[…]"));
    };
    let (target, rest) = rest
        .split_once(']')
        .ok_or_else(|| err("unclosed target bracket"))?;

    let args_start = rest.find('(').ok_or_else(|| err("missing args list"))?;
    let args_str = &rest[args_start + 1..];
    let args_str = args_str.strip_suffix(')').unwrap_or(args_str);
    let args_str = args_str
        .trim()
        .strip_prefix("args")
        .and_then(|s| s.trim_start().strip_prefix('='))
        .ok_or_else(|| err("expected args = (…)"))?
        .trim()
        .trim_start_matches('(')
        .trim_end_matches(')');

    let mut args = Vec::new();
    for piece in split_top_level_args(args_str) {
        let piece = piece.trim();
        if piece.is_empty() {
            continue;
        }
        if piece.starts_with('%') {
            args.push(parse_ref(piece, lineno)?);
        }
        // Non-tensor literals (scalars, dims) are ignored.
    }

    Ok(ParsedLine {
        name: lhs_ref.name,
        dims: lhs_ref.dims,
        is_module: call_kind,
        target: target.trim().to_string(),
        args,
    })
}

/// Splits `%a[1,2], %b[3], 0.5` on commas that are *outside* brackets.
fn split_top_level_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' | '(' => {
                depth += 1;
                cur.push(c);
            }
            ']' | ')' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

fn parse_ref(s: &str, lineno: usize) -> Result<ParsedRef> {
    let err = |message: &str| TraceError::ParseLine {
        line: lineno,
        message: message.into(),
    };
    let s = s.trim();
    let s = s
        .strip_prefix('%')
        .ok_or_else(|| err("reference must start with '%'"))?;
    let (name, rest) = match s.find('[') {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    };
    let mut dims = Vec::new();
    if let Some(inner) = rest.strip_prefix('[') {
        let inner = inner
            .split(']')
            .next()
            .ok_or_else(|| err("unclosed dims bracket"))?;
        for d in inner.split(',') {
            let d = d.trim();
            if d.is_empty() {
                continue;
            }
            dims.push(
                d.parse::<usize>()
                    .map_err(|_| err("non-numeric dimension"))?,
            );
        }
    }
    Ok(ParsedRef {
        name: name.trim().to_string(),
        dims,
    })
}

fn classify(
    p: &ParsedLine,
    registry: &ModuleRegistry,
    inherited: Domain,
    lineno: usize,
) -> Result<(OpKind, Domain)> {
    let t = p.target.to_ascii_lowercase();
    let out_volume = p.dims.iter().product::<usize>().max(1);

    if p.is_module {
        if t.starts_with("conv") || t.starts_with("linear") || t.starts_with("fc") {
            let k = registry.k_for(&p.target).ok_or(TraceError::UnknownModule {
                line: lineno,
                target: p.target.clone(),
            })?;
            let (m, n) = gemm_mn_from_output(&p.dims);
            return Ok((OpKind::Gemm { m, n, k }, Domain::Neural));
        }
        if t.starts_with("relu") || t.starts_with("sigmoid") {
            return Ok((
                OpKind::Elementwise {
                    elems: out_volume,
                    func: EltFunc::Relu,
                },
                Domain::Neural,
            ));
        }
        if t.starts_with("bn") || t.starts_with("batchnorm") {
            return Ok((
                OpKind::Elementwise {
                    elems: out_volume,
                    func: EltFunc::Affine,
                },
                Domain::Neural,
            ));
        }
        if t.contains("pool") {
            return Ok((
                OpKind::Elementwise {
                    elems: out_volume,
                    func: EltFunc::PoolMax,
                },
                Domain::Neural,
            ));
        }
        return Err(TraceError::UnknownModule {
            line: lineno,
            target: p.target.clone(),
        });
    }

    // call_function targets.
    if t.contains("binding_circular") || t.contains("bind_circular") {
        let (n_vec, dim) = vsa_shape(&p.dims);
        return Ok((OpKind::VsaConv { n_vec, dim }, Domain::Symbolic));
    }
    if t.contains("match_prob") {
        // Dictionary size from the widest argument's leading dim.
        let n_vec = p
            .args
            .iter()
            .map(|a| a.dims.first().copied().unwrap_or(1))
            .max()
            .unwrap_or(1);
        let dim = p
            .args
            .iter()
            .map(|a| a.dims.iter().skip(1).product::<usize>())
            .max()
            .unwrap_or(1)
            .max(1);
        return Ok((OpKind::Similarity { n_vec, dim }, Domain::Symbolic));
    }
    if t.ends_with("sum") {
        let elems = p
            .args
            .iter()
            .map(|a| a.dims.iter().product::<usize>())
            .max()
            .unwrap_or(1);
        return Ok((
            OpKind::Reduce {
                elems: elems.max(1),
                func: ReduceFunc::Sum,
            },
            inherited,
        ));
    }
    if t.contains("norm") {
        let elems = p
            .args
            .iter()
            .map(|a| a.dims.iter().product::<usize>())
            .max()
            .unwrap_or(1);
        return Ok((
            OpKind::Reduce {
                elems: elems.max(1),
                func: ReduceFunc::Norm,
            },
            inherited,
        ));
    }
    if t.contains("softmax") {
        return Ok((
            OpKind::Elementwise {
                elems: out_volume,
                func: EltFunc::Softmax,
            },
            inherited,
        ));
    }
    if t.contains("clamp") {
        return Ok((
            OpKind::Elementwise {
                elems: out_volume,
                func: EltFunc::Clamp,
            },
            inherited,
        ));
    }
    if t.ends_with("mul") {
        return Ok((
            OpKind::Elementwise {
                elems: out_volume,
                func: EltFunc::Mul,
            },
            inherited,
        ));
    }
    if t.ends_with("add") {
        return Ok((
            OpKind::Elementwise {
                elems: out_volume,
                func: EltFunc::Add,
            },
            inherited,
        ));
    }
    if t.ends_with("div") {
        return Ok((
            OpKind::Elementwise {
                elems: out_volume,
                func: EltFunc::Div,
            },
            inherited,
        ));
    }
    Err(TraceError::ParseLine {
        line: lineno,
        message: format!("unrecognized call_function target {}", p.target),
    })
}

/// `[B, C, H, W]` → `(B·H·W, C)`; `[B, F]` → `(B, F)`; rank-1 → `(1, F)`.
fn gemm_mn_from_output(dims: &[usize]) -> (usize, usize) {
    match dims.len() {
        4 => (dims[0] * dims[2] * dims[3], dims[1]),
        2 => (dims[0], dims[1]),
        1 => (1, dims[0]),
        _ => (dims.iter().product::<usize>().max(1), 1),
    }
}

/// `[B, blocks, dim]` → `(B·blocks, dim)`; `[blocks, dim]` → `(blocks, dim)`;
/// rank-1 → `(1, dim)`.
fn vsa_shape(dims: &[usize]) -> (usize, usize) {
    match dims.len() {
        0 => (1, 1),
        1 => (1, dims[0]),
        _ => (
            dims[..dims.len() - 1].iter().product(),
            dims[dims.len() - 1],
        ),
    }
}

/// The NVSA trace snapshot from the paper's Listing 1 (cleaned up), used
/// by tests and the quickstart example.
pub const LISTING1_NVSA: &str = r#"
graph():
// Neuro Operation - CNN (ResNet18)
%relu_1[16,64,160,160] : call_module[relu](args = (%bn1[16,64,160,160]))
%conv2_1[16,64,80,80] : call_module[conv2](args = (%maxpool_1[16,64,160,160]))
// Symbolic Operations
// Inverse binding of two block codes vectors by blockwise circular correlation
%inv_binding_circular_1[1,4,256] : call_function[nvsa.inv_binding_circular](args = (%vec_1[1,4,256], %vec_2[1,4,256]))
%inv_binding_circular_2[1,4,256] : call_function[nvsa.inv_binding_circular](args = (%vec_3[1,4,256], %vec_4[1,4,256]))
// Compute similarity between two block codes vectors
%match_prob_1[1] : call_function[nvsa.match_prob](args = (%inv_binding_circular_1[1,4,256], %vec_5[1,4,256]))
// Compute similarity between a dictionary and a batch of query vectors
%match_prob_multi_batched_1[1] : call_function[nvsa.match_prob_multi_batched](args = (%inv_binding_circular_2[1,4,256], %vec_6[7,4,256]))
%sum_1[1] : call_function[torch.sum](args = (%match_prob_multi_batched_1[1]))
%clamp_1[1] : call_function[torch.clamp](args = (%sum_1[1]))
%mul_1[1] : call_function[operator.mul](args = (%match_prob_1[1], %clamp_1[1]))
"#;

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ModuleRegistry {
        let mut r = ModuleRegistry::new();
        r.insert("conv2", 64 * 9);
        r
    }

    #[test]
    fn parses_listing1() {
        let t = parse_trace(
            LISTING1_NVSA,
            "nvsa",
            &registry(),
            ParsePrecision::default(),
            1,
        )
        .unwrap();
        assert_eq!(t.ops().len(), 9);
        assert_eq!(t.nn_nodes().len(), 1);
        assert_eq!(t.vsa_nodes().len(), 2);
    }

    #[test]
    fn listing1_shapes_are_captured() {
        let t = parse_trace(
            LISTING1_NVSA,
            "nvsa",
            &registry(),
            ParsePrecision::default(),
            1,
        )
        .unwrap();
        let conv = &t.ops()[1];
        assert_eq!(conv.name(), "conv2_1");
        assert_eq!(
            *conv.kind(),
            OpKind::Gemm {
                m: 16 * 80 * 80,
                n: 64,
                k: 576
            }
        );
        let bind = &t.ops()[2];
        assert_eq!(*bind.kind(), OpKind::VsaConv { n_vec: 4, dim: 256 });
        let matchp = &t.ops()[5];
        assert_eq!(
            *matchp.kind(),
            OpKind::Similarity {
                n_vec: 7,
                dim: 4 * 256
            }
        );
    }

    #[test]
    fn listing1_dependency_edges() {
        let t = parse_trace(
            LISTING1_NVSA,
            "nvsa",
            &registry(),
            ParsePrecision::default(),
            1,
        )
        .unwrap();
        // mul_1 depends on match_prob_1 and clamp_1 (both defined in trace).
        let mul = t.ops().last().unwrap();
        assert_eq!(mul.inputs().len(), 2);
        // sum_1 depends on match_prob_multi_batched_1.
        let sum = &t.ops()[6];
        assert_eq!(sum.inputs().len(), 1);
        assert_eq!(t.op(sum.inputs()[0]).name(), "match_prob_multi_batched_1");
    }

    #[test]
    fn inherited_domain_follows_symbolic_producers() {
        let t = parse_trace(
            LISTING1_NVSA,
            "nvsa",
            &registry(),
            ParsePrecision::default(),
            1,
        )
        .unwrap();
        let sum = &t.ops()[6];
        assert_eq!(sum.domain(), Domain::Symbolic);
        let relu = &t.ops()[0];
        assert_eq!(relu.domain(), Domain::Neural);
    }

    #[test]
    fn precision_assignment() {
        let t = parse_trace(
            LISTING1_NVSA,
            "nvsa",
            &registry(),
            ParsePrecision::default(),
            1,
        )
        .unwrap();
        assert_eq!(t.ops()[0].dtype(), DType::Int8); // neural
        assert_eq!(t.ops()[2].dtype(), DType::Int4); // symbolic
    }

    #[test]
    fn unknown_module_is_reported_with_line() {
        let text = "%x[1,8,4,4] : call_module[conv_exotic](args = (%in[1,8,4,4]))";
        let err = parse_trace(
            text,
            "t",
            &ModuleRegistry::new(),
            ParsePrecision::default(),
            1,
        )
        .unwrap_err();
        assert!(matches!(err, TraceError::UnknownModule { line: 1, .. }));
    }

    #[test]
    fn malformed_lines_are_reported() {
        for bad in [
            "%x[1] call_module[relu](args = (%y[1]))", // missing ':'
            "%x[1] : weird[relu](args = (%y[1]))",     // bad call kind
            "%x[1] : call_function[nvsa.binding_circular](nope)", // bad args
        ] {
            let err = parse_trace(
                bad,
                "t",
                &ModuleRegistry::new(),
                ParsePrecision::default(),
                1,
            )
            .unwrap_err();
            assert!(matches!(err, TraceError::ParseLine { .. }), "{bad}");
        }
    }

    #[test]
    fn comments_and_headers_are_skipped() {
        let text = "graph():\n// comment\n# another\n%r[4] : call_module[relu](args = (%x[4]))\n";
        let t = parse_trace(
            text,
            "t",
            &ModuleRegistry::new(),
            ParsePrecision::default(),
            1,
        )
        .unwrap();
        assert_eq!(t.ops().len(), 1);
    }

    #[test]
    fn undefined_references_are_external_inputs() {
        let text = "%r[4] : call_module[relu](args = (%external[4]))";
        let t = parse_trace(
            text,
            "t",
            &ModuleRegistry::new(),
            ParsePrecision::default(),
            1,
        )
        .unwrap();
        assert!(t.ops()[0].inputs().is_empty());
    }

    #[test]
    fn scalar_literal_args_are_ignored() {
        let text = "%c[1] : call_function[torch.clamp](args = (%x[1], 0.0, 1.0))";
        let t = parse_trace(
            text,
            "t",
            &ModuleRegistry::new(),
            ParsePrecision::default(),
            1,
        )
        .unwrap();
        assert_eq!(
            *t.ops()[0].kind(),
            OpKind::Elementwise {
                elems: 1,
                func: EltFunc::Clamp
            }
        );
    }
}
