use nsflow_tensor::DType;

use crate::{Domain, OpId, OpKind, Result, TraceError, TraceOp};

/// A validated, topologically-ordered operator trace for **one loop
/// iteration** of a workload, plus the number of loop repetitions.
///
/// For NVSA-class reasoning a "loop" is one candidate-panel evaluation;
/// the workload repeats it per answer candidate (the paper exploits this
/// inter-loop parallelism in Sec. V-B step 3).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionTrace {
    name: String,
    ops: Vec<TraceOp>,
    loop_count: usize,
}

impl ExecutionTrace {
    pub(crate) fn new(name: String, ops: Vec<TraceOp>, loop_count: usize) -> Result<Self> {
        if ops.is_empty() {
            return Err(TraceError::EmptyTrace);
        }
        if loop_count == 0 {
            return Err(TraceError::ZeroLoopCount);
        }
        for (pos, op) in ops.iter().enumerate() {
            if !op.kind.is_well_formed() {
                return Err(TraceError::ZeroDimension {
                    op: op.name.clone(),
                });
            }
            for input in &op.inputs {
                if input.0 >= pos {
                    return Err(TraceError::DanglingInput {
                        op: op.name.clone(),
                        input: input.0,
                    });
                }
            }
        }
        Ok(ExecutionTrace {
            name,
            ops,
            loop_count,
        })
    }

    /// The workload name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All ops in topological order.
    #[must_use]
    pub fn ops(&self) -> &[TraceOp] {
        &self.ops
    }

    /// One op by id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this trace.
    #[must_use]
    pub fn op(&self, id: OpId) -> &TraceOp {
        &self.ops[id.0]
    }

    /// Number of loop repetitions of this trace in the full workload.
    #[must_use]
    pub fn loop_count(&self) -> usize {
        self.loop_count
    }

    /// Returns a copy with a different loop count.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ZeroLoopCount`] if `loop_count == 0`.
    pub fn with_loop_count(&self, loop_count: usize) -> Result<Self> {
        if loop_count == 0 {
            return Err(TraceError::ZeroLoopCount);
        }
        Ok(ExecutionTrace {
            name: self.name.clone(),
            ops: self.ops.clone(),
            loop_count,
        })
    }

    /// Ids of ops that consume `id`'s output.
    #[must_use]
    pub fn consumers(&self, id: OpId) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|op| op.inputs.contains(&id))
            .map(|op| op.id)
            .collect()
    }

    /// Array-class NN ops (the paper's `R_l` set), in order.
    #[must_use]
    pub fn nn_nodes(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|op| matches!(op.kind, OpKind::Gemm { .. }))
            .map(|op| op.id)
            .collect()
    }

    /// Array-class VSA ops (the paper's `R_v` set), in order.
    #[must_use]
    pub fn vsa_nodes(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|op| matches!(op.kind, OpKind::VsaConv { .. }))
            .map(|op| op.id)
            .collect()
    }

    /// SIMD-class ops, in order.
    #[must_use]
    pub fn simd_nodes(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|op| op.kind.is_simd_op())
            .map(|op| op.id)
            .collect()
    }

    /// Total MACs of one loop iteration, split `(neural, symbolic)`.
    #[must_use]
    pub fn macs_by_domain(&self) -> (u64, u64) {
        let mut neural = 0u64;
        let mut symbolic = 0u64;
        for op in &self.ops {
            match op.domain {
                Domain::Neural => neural += op.kind.macs(),
                Domain::Symbolic => symbolic += op.kind.macs(),
            }
        }
        (neural, symbolic)
    }

    /// Total bytes touched in one loop iteration, split
    /// `(neural, symbolic)`.
    #[must_use]
    pub fn bytes_by_domain(&self) -> (usize, usize) {
        let mut neural = 0usize;
        let mut symbolic = 0usize;
        for op in &self.ops {
            match op.domain {
                Domain::Neural => neural += op.total_bytes(),
                Domain::Symbolic => symbolic += op.total_bytes(),
            }
        }
        (neural, symbolic)
    }

    /// Fraction of total memory traffic attributable to symbolic ops —
    /// the x-axis of the paper's Fig. 6 ablation.
    #[must_use]
    pub fn symbolic_memory_fraction(&self) -> f64 {
        let (n, s) = self.bytes_by_domain();
        if n + s == 0 {
            return 0.0;
        }
        s as f64 / (n + s) as f64
    }

    /// Fraction of total FLOPs attributable to symbolic ops (the paper
    /// reports 19% for NVSA while symbolic takes 87% of runtime).
    #[must_use]
    pub fn symbolic_flop_fraction(&self) -> f64 {
        let (n, s) = self.macs_by_domain();
        if n + s == 0 {
            return 0.0;
        }
        s as f64 / (n + s) as f64
    }

    /// The widest precision any op in the trace uses — sizing information
    /// for the compute units.
    #[must_use]
    pub fn widest_dtype(&self) -> DType {
        self.ops
            .iter()
            .map(|op| op.dtype)
            .max()
            .unwrap_or(DType::Fp32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EltFunc, TraceBuilder};

    fn sample() -> ExecutionTrace {
        let mut b = TraceBuilder::new("sample");
        let c1 = b.push(
            "conv1",
            OpKind::Gemm {
                m: 100,
                n: 8,
                k: 27,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let r1 = b.push(
            "relu1",
            OpKind::Elementwise {
                elems: 800,
                func: EltFunc::Relu,
            },
            Domain::Neural,
            DType::Int8,
            &[c1],
        );
        let v1 = b.push(
            "bind",
            OpKind::VsaConv { n_vec: 4, dim: 256 },
            Domain::Symbolic,
            DType::Int4,
            &[r1],
        );
        let _ = b.push(
            "sim",
            OpKind::Similarity {
                n_vec: 7,
                dim: 1024,
            },
            Domain::Symbolic,
            DType::Int4,
            &[v1],
        );
        b.finish(8).unwrap()
    }

    #[test]
    fn node_sets_partition_ops() {
        let t = sample();
        assert_eq!(t.nn_nodes().len(), 1);
        assert_eq!(t.vsa_nodes().len(), 1);
        assert_eq!(t.simd_nodes().len(), 2);
        assert_eq!(
            t.nn_nodes().len() + t.vsa_nodes().len() + t.simd_nodes().len(),
            t.ops().len()
        );
    }

    #[test]
    fn consumers_follow_edges() {
        let t = sample();
        let c1 = t.ops()[0].id();
        let consumers = t.consumers(c1);
        assert_eq!(consumers.len(), 1);
        assert_eq!(t.op(consumers[0]).name(), "relu1");
    }

    #[test]
    fn domain_splits_are_consistent() {
        let t = sample();
        let (n_mac, s_mac) = t.macs_by_domain();
        assert_eq!(n_mac, 100 * 8 * 27 + 800);
        assert_eq!(s_mac, 4 * 256 * 256 + 7 * 1024);
        let f = t.symbolic_flop_fraction();
        assert!((0.0..=1.0).contains(&f));
        assert!(t.symbolic_memory_fraction() > 0.0);
    }

    #[test]
    fn widest_dtype_is_max() {
        let t = sample();
        assert_eq!(t.widest_dtype(), DType::Int8);
    }

    #[test]
    fn with_loop_count_validates() {
        let t = sample();
        assert_eq!(t.with_loop_count(16).unwrap().loop_count(), 16);
        assert_eq!(t.with_loop_count(0).unwrap_err(), TraceError::ZeroLoopCount);
    }
}
