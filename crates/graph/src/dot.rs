//! Graphviz DOT export of a dataflow graph.
//!
//! Renders the trace's dependency DAG with the generator's analysis
//! overlaid: critical-path nodes are highlighted, nodes are colored by
//! compute class (array NN, array VSA, SIMD), and parallel groups are
//! annotated — a direct visual counterpart of the paper's Fig. 4.

use nsflow_trace::OpKind;

use crate::DataflowGraph;

/// Renders the graph as DOT text (pipe into `dot -Tsvg` to draw it).
#[must_use]
pub fn to_dot(graph: &DataflowGraph) -> String {
    let trace = graph.trace();
    let mut out = String::new();
    out.push_str(&format!(
        "digraph \"{}\" {{\n  rankdir=TB;\n  node [shape=box, style=filled, fontname=\"monospace\"];\n",
        trace.name()
    ));
    for op in trace.ops() {
        let (fill, class) = match op.kind() {
            OpKind::Gemm { .. } => ("#aecbfa", "NN"),
            OpKind::VsaConv { .. } => ("#f9c38c", "VSA"),
            _ => ("#d8f0d8", "SIMD"),
        };
        let border = if graph.is_critical(op.id()) {
            ", penwidth=3, color=\"#c5221f\""
        } else {
            ""
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\\n{} d{}\" , fillcolor=\"{}\"{}];\n",
            op.id().index(),
            op.name(),
            class,
            graph.depth(op.id()),
            fill,
            border
        ));
    }
    for op in trace.ops() {
        for dep in op.inputs() {
            out.push_str(&format!("  n{} -> n{};\n", dep.index(), op.id().index()));
        }
    }
    // Critical path as a bold chain annotation.
    if graph.critical_path().len() > 1 {
        let chain: Vec<String> = graph
            .critical_path()
            .iter()
            .map(|id| format!("n{}", id.index()))
            .collect();
        out.push_str(&format!(
            "  {} [style=bold, color=\"#c5221f\", constraint=false];\n",
            chain.join(" -> ")
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, OpKind, TraceBuilder};

    fn graph() -> DataflowGraph {
        let mut b = TraceBuilder::new("dotty");
        let c = b.push(
            "conv",
            OpKind::Gemm { m: 64, n: 8, k: 8 },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let v = b.push(
            "bind",
            OpKind::VsaConv { n_vec: 2, dim: 32 },
            Domain::Symbolic,
            DType::Int4,
            &[c],
        );
        let _s = b.push(
            "sum",
            OpKind::Reduce {
                elems: 64,
                func: nsflow_trace::ReduceFunc::Sum,
            },
            Domain::Symbolic,
            DType::Int4,
            &[v],
        );
        DataflowGraph::from_trace(b.finish(1).unwrap())
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = graph();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 ["));
        assert!(dot.contains("n1 ["));
        assert!(dot.contains("n2 ["));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> n2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_classes_and_critical_path_are_marked() {
        let dot = to_dot(&graph());
        assert!(dot.contains("NN d0"));
        assert!(dot.contains("VSA d1"));
        assert!(dot.contains("SIMD d2"));
        assert!(
            dot.contains("penwidth=3"),
            "critical nodes should be highlighted"
        );
        assert!(dot.contains("n0 -> n1 -> n2 [style=bold"));
    }

    #[test]
    fn dot_is_balanced() {
        let dot = to_dot(&graph());
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert_eq!(dot.matches('[').count(), dot.matches(']').count());
    }
}
