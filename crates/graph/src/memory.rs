//! Memory-cost aggregation (step ⑤ of the dataflow-graph generation).
//!
//! The paper sizes the on-chip memory blocks from the dataflow graph
//! (Sec. V-C, "Memory and SIMD unit"): `Mem_A1 = max(filter size in R_l)`,
//! `Mem_A2 = max(node size in R_v)`, `Mem_B` holds the largest NN input
//! tile, `Mem_C` the largest output, and the URAM cache is sized at
//! `2 × (Mem_A + Mem_B + Mem_C)`. This module computes those aggregates;
//! the FPGA crate then rounds them onto physical BRAM/URAM blocks.

use nsflow_trace::{ExecutionTrace, OpKind};

/// Raw (un-rounded) memory requirements of a workload, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryRequirements {
    /// Largest NN filter (stationary weights) across `R_l` → sizes `Mem_A1`.
    pub max_nn_filter_bytes: usize,
    /// Largest VSA node footprint (both operands + output) across `R_v`
    /// → sizes `Mem_A2`.
    pub max_vsa_node_bytes: usize,
    /// Largest NN streamed-input tile (IFMAP) → sizes `Mem_B`.
    pub max_nn_input_bytes: usize,
    /// Largest single-op output anywhere in the graph → sizes `Mem_C`.
    pub max_output_bytes: usize,
    /// Total bytes touched by one loop iteration (for off-chip traffic
    /// estimates).
    pub total_bytes_per_loop: usize,
}

impl MemoryRequirements {
    /// Aggregates the requirements from a trace.
    #[must_use]
    pub fn from_trace(trace: &ExecutionTrace) -> Self {
        let mut req = MemoryRequirements::default();
        for op in trace.ops() {
            match op.kind() {
                OpKind::Gemm { .. } => {
                    req.max_nn_filter_bytes = req.max_nn_filter_bytes.max(op.weight_bytes());
                    req.max_nn_input_bytes = req.max_nn_input_bytes.max(op.input_bytes());
                }
                OpKind::VsaConv { .. } => {
                    req.max_vsa_node_bytes = req.max_vsa_node_bytes.max(op.total_bytes());
                }
                _ => {}
            }
            req.max_output_bytes = req.max_output_bytes.max(op.output_bytes());
            req.total_bytes_per_loop += op.total_bytes();
        }
        req
    }

    /// `Mem_A` when the A1/A2 chunks are merged for non-parallel execution.
    #[must_use]
    pub fn merged_mem_a_bytes(&self) -> usize {
        self.max_nn_filter_bytes + self.max_vsa_node_bytes
    }

    /// The paper's cache-sizing rule: `2 × (Mem_A + Mem_B + Mem_C)`.
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        2 * (self.merged_mem_a_bytes() + self.max_nn_input_bytes + self.max_output_bytes)
    }

    /// Total on-chip bytes the plan asks for (double-buffered blocks plus
    /// cache).
    #[must_use]
    pub fn total_on_chip_bytes(&self) -> usize {
        // Mem_A, Mem_B, Mem_C are double-buffered (×2) plus the cache.
        2 * (self.merged_mem_a_bytes() + self.max_nn_input_bytes + self.max_output_bytes)
            + self.cache_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, OpKind, TraceBuilder};

    fn trace() -> ExecutionTrace {
        let mut b = TraceBuilder::new("m");
        let c1 = b.push(
            "conv_small",
            OpKind::Gemm {
                m: 100,
                n: 16,
                k: 27,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let c2 = b.push(
            "conv_big",
            OpKind::Gemm {
                m: 100,
                n: 64,
                k: 576,
            },
            Domain::Neural,
            DType::Int8,
            &[c1],
        );
        let _v = b.push(
            "bind",
            OpKind::VsaConv { n_vec: 4, dim: 256 },
            Domain::Symbolic,
            DType::Int4,
            &[c2],
        );
        b.finish(1).unwrap()
    }

    #[test]
    fn filter_max_is_biggest_gemm_weights() {
        let req = MemoryRequirements::from_trace(&trace());
        // conv_big weights: 64×576 INT8 = 36864 bytes.
        assert_eq!(req.max_nn_filter_bytes, 64 * 576);
    }

    #[test]
    fn vsa_node_bytes_cover_operands_and_output() {
        let req = MemoryRequirements::from_trace(&trace());
        // 4×256 INT4 vectors: input 2·1024, weight 1024, output 1024 elems
        // at 4 bits each = (4096 elems · 4 bits) / 8 = 2048 bytes.
        assert_eq!(req.max_vsa_node_bytes, 2048);
    }

    #[test]
    fn input_max_is_biggest_gemm_ifmap() {
        let req = MemoryRequirements::from_trace(&trace());
        assert_eq!(req.max_nn_input_bytes, 100 * 576);
    }

    #[test]
    fn cache_rule_matches_paper() {
        let req = MemoryRequirements::from_trace(&trace());
        assert_eq!(
            req.cache_bytes(),
            2 * (req.merged_mem_a_bytes() + req.max_nn_input_bytes + req.max_output_bytes)
        );
    }

    #[test]
    fn totals_accumulate() {
        let req = MemoryRequirements::from_trace(&trace());
        assert!(req.total_bytes_per_loop > req.max_nn_input_bytes);
        assert!(req.total_on_chip_bytes() > req.cache_bytes());
    }
}
