use std::collections::HashMap;

use nsflow_trace::{ExecutionTrace, OpId};

use crate::MemoryRequirements;

/// A critical-path node together with the off-critical-path nodes attached
/// to it (nodes at the same dependency depth, i.e. the inner-loop
/// parallelism opportunity the paper's step ② exposes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelGroup {
    /// The critical-path anchor node.
    pub anchor: OpId,
    /// Nodes that may execute concurrently with the anchor.
    pub attached: Vec<OpId>,
}

/// The dataflow graph: the execution trace reshaped around its critical
/// path, with parallelism groups and memory costs.
///
/// This structure is what the two-phase DSE and the cycle-level scheduler
/// consume; it owns the underlying [`ExecutionTrace`].
#[derive(Debug, Clone, PartialEq)]
pub struct DataflowGraph {
    trace: ExecutionTrace,
    depth: Vec<usize>,
    critical_path: Vec<OpId>,
    groups: Vec<ParallelGroup>,
}

impl DataflowGraph {
    /// Builds the dataflow graph from a validated trace.
    ///
    /// The critical path is the dependency chain maximizing total
    /// arithmetic work (MACs) — the hardware-independent proxy the
    /// generator uses before a concrete `(H, W, N)` configuration exists.
    #[must_use]
    pub fn from_trace(trace: ExecutionTrace) -> Self {
        let n = trace.ops().len();

        // ① Longest-path DP over the DAG (ops are already topological).
        // dist[i] = weight(i) + max over preds; weight = MACs.
        let mut dist = vec![0u64; n];
        let mut best_pred: Vec<Option<usize>> = vec![None; n];
        for (i, op) in trace.ops().iter().enumerate() {
            let mut best = 0u64;
            let mut pred = None;
            for input in op.inputs() {
                if dist[input.index()] > best || pred.is_none() {
                    best = dist[input.index()];
                    pred = Some(input.index());
                }
            }
            dist[i] = best + op.kind().macs().max(1);
            best_pred[i] = pred;
        }
        let mut tail = (0..n).max_by_key(|&i| dist[i]).expect("trace is non-empty");
        let mut critical_rev = vec![tail];
        while let Some(p) = best_pred[tail] {
            critical_rev.push(p);
            tail = p;
        }
        critical_rev.reverse();
        let critical_path: Vec<OpId> = critical_rev.iter().map(|&i| trace.ops()[i].id()).collect();

        // ② BFS depth: longest hop count from any source.
        let mut depth = vec![0usize; n];
        for (i, op) in trace.ops().iter().enumerate() {
            depth[i] = op
                .inputs()
                .iter()
                .map(|p| depth[p.index()] + 1)
                .max()
                .unwrap_or(0);
        }

        // Attach every off-critical-path node to the critical-path node at
        // its depth (or the deepest critical node not exceeding it).
        let critical_set: std::collections::HashSet<usize> =
            critical_path.iter().map(|id| id.index()).collect();
        let mut anchor_by_depth: HashMap<usize, usize> = HashMap::new();
        for id in &critical_path {
            anchor_by_depth.insert(depth[id.index()], id.index());
        }
        let mut attached_map: HashMap<usize, Vec<OpId>> = HashMap::new();
        for (i, op) in trace.ops().iter().enumerate() {
            if critical_set.contains(&i) {
                continue;
            }
            let d = depth[i];
            // Deepest critical anchor with depth <= d; sources fall back to
            // the first critical node.
            let anchor = (0..=d)
                .rev()
                .find_map(|dd| anchor_by_depth.get(&dd).copied())
                .unwrap_or(critical_path[0].index());
            attached_map.entry(anchor).or_default().push(op.id());
        }
        let groups = critical_path
            .iter()
            .map(|id| ParallelGroup {
                anchor: *id,
                attached: attached_map.remove(&id.index()).unwrap_or_default(),
            })
            .collect();

        DataflowGraph {
            trace,
            depth,
            critical_path,
            groups,
        }
    }

    /// The underlying trace.
    #[must_use]
    pub fn trace(&self) -> &ExecutionTrace {
        &self.trace
    }

    /// Dependency depth of an op (longest hop count from a source).
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this graph's trace.
    #[must_use]
    pub fn depth(&self, id: OpId) -> usize {
        self.depth[id.index()]
    }

    /// The critical path in execution order.
    #[must_use]
    pub fn critical_path(&self) -> &[OpId] {
        &self.critical_path
    }

    /// Parallel groups in critical-path order; every op of the trace is
    /// either an anchor or attached to exactly one anchor.
    #[must_use]
    pub fn groups(&self) -> &[ParallelGroup] {
        &self.groups
    }

    /// Whether an op lies on the critical path.
    #[must_use]
    pub fn is_critical(&self, id: OpId) -> bool {
        self.critical_path.contains(&id)
    }

    /// Total arithmetic work (MACs) on the critical path.
    #[must_use]
    pub fn critical_path_macs(&self) -> u64 {
        self.critical_path
            .iter()
            .map(|id| self.trace.op(*id).kind().macs())
            .sum()
    }

    /// Maximum number of array-class ops that are simultaneously eligible
    /// in any group — an upper bound on useful sub-array parallelism.
    #[must_use]
    pub fn max_group_array_parallelism(&self) -> usize {
        self.groups
            .iter()
            .map(|g| {
                let anchor_is_array = self.trace.op(g.anchor).kind().is_array_op() as usize;
                anchor_is_array
                    + g.attached
                        .iter()
                        .filter(|id| self.trace.op(**id).kind().is_array_op())
                        .count()
            })
            .max()
            .unwrap_or(0)
    }

    /// The memory-planning aggregates (step ⑤).
    #[must_use]
    pub fn memory_requirements(&self) -> MemoryRequirements {
        MemoryRequirements::from_trace(&self.trace)
    }

    /// Ids of the first and last NN (GEMM) node of one loop, if any —
    /// the boundary the inter-loop pipelining rule uses ("the first NN
    /// layer of loop 2 starts as soon as the last NN layer of loop 1
    /// finishes").
    #[must_use]
    pub fn nn_span(&self) -> Option<(OpId, OpId)> {
        let nn = self.trace.nn_nodes();
        match (nn.first(), nn.last()) {
            (Some(&f), Some(&l)) => Some((f, l)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, EltFunc, OpKind, TraceBuilder};

    /// conv1 → conv2 → bind → sim, with a side branch bind2 parallel to
    /// conv2 (same depth, smaller work).
    fn diamond() -> DataflowGraph {
        let mut b = TraceBuilder::new("diamond");
        let c1 = b.push(
            "conv1",
            OpKind::Gemm {
                m: 1000,
                n: 64,
                k: 27,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let c2 = b.push(
            "conv2",
            OpKind::Gemm {
                m: 1000,
                n: 64,
                k: 576,
            },
            Domain::Neural,
            DType::Int8,
            &[c1],
        );
        let side = b.push(
            "bind_side",
            OpKind::VsaConv { n_vec: 1, dim: 64 },
            Domain::Symbolic,
            DType::Int4,
            &[c1],
        );
        let _join = b.push(
            "sim",
            OpKind::Similarity {
                n_vec: 4,
                dim: 1024,
            },
            Domain::Symbolic,
            DType::Int4,
            &[c2, side],
        );
        DataflowGraph::from_trace(b.finish(2).unwrap())
    }

    #[test]
    fn critical_path_takes_heavier_branch() {
        let g = diamond();
        let names: Vec<&str> = g
            .critical_path()
            .iter()
            .map(|id| g.trace().op(*id).name())
            .collect();
        assert_eq!(names, vec!["conv1", "conv2", "sim"]);
    }

    #[test]
    fn off_path_node_attached_at_its_depth() {
        let g = diamond();
        // bind_side (depth 1) attaches to conv2 (the critical node at depth 1).
        let conv2_group = g
            .groups()
            .iter()
            .find(|grp| g.trace().op(grp.anchor).name() == "conv2")
            .unwrap();
        assert_eq!(conv2_group.attached.len(), 1);
        assert_eq!(g.trace().op(conv2_group.attached[0]).name(), "bind_side");
    }

    #[test]
    fn every_op_appears_exactly_once_across_groups() {
        let g = diamond();
        let mut seen = std::collections::HashSet::new();
        for grp in g.groups() {
            assert!(seen.insert(grp.anchor));
            for id in &grp.attached {
                assert!(seen.insert(*id));
            }
        }
        assert_eq!(seen.len(), g.trace().ops().len());
    }

    #[test]
    fn depth_is_longest_hop_count() {
        let g = diamond();
        let ops = g.trace().ops();
        assert_eq!(g.depth(ops[0].id()), 0);
        assert_eq!(g.depth(ops[1].id()), 1);
        assert_eq!(g.depth(ops[2].id()), 1);
        assert_eq!(g.depth(ops[3].id()), 2);
    }

    #[test]
    fn chain_trace_critical_path_is_whole_chain() {
        let mut b = TraceBuilder::new("chain");
        let mut prev = None;
        for i in 0..5 {
            let inputs: Vec<OpId> = prev.into_iter().collect();
            prev = Some(b.push(
                format!("op{i}"),
                OpKind::Gemm {
                    m: 10,
                    n: 10,
                    k: 10,
                },
                Domain::Neural,
                DType::Int8,
                &inputs,
            ));
        }
        let g = DataflowGraph::from_trace(b.finish(1).unwrap());
        assert_eq!(g.critical_path().len(), 5);
        assert_eq!(g.critical_path_macs(), 5 * 1000);
        assert!(g.groups().iter().all(|grp| grp.attached.is_empty()));
    }

    #[test]
    fn independent_ops_attach_to_first_anchor() {
        let mut b = TraceBuilder::new("indep");
        let _a = b.push(
            "big",
            OpKind::Gemm {
                m: 100,
                n: 100,
                k: 100,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let _c = b.push(
            "small",
            OpKind::Elementwise {
                elems: 4,
                func: EltFunc::Add,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let g = DataflowGraph::from_trace(b.finish(1).unwrap());
        assert_eq!(g.critical_path().len(), 1);
        assert_eq!(g.groups()[0].attached.len(), 1);
    }

    #[test]
    fn array_parallelism_counts_array_ops_only() {
        let g = diamond();
        // Group at conv2 holds conv2 (array) + bind_side (array) = 2.
        assert_eq!(g.max_group_array_parallelism(), 2);
    }

    #[test]
    fn nn_span_finds_first_and_last_gemm() {
        let g = diamond();
        let (first, last) = g.nn_span().unwrap();
        assert_eq!(g.trace().op(first).name(), "conv1");
        assert_eq!(g.trace().op(last).name(), "conv2");
    }

    #[test]
    fn nn_span_none_for_pure_symbolic() {
        let mut b = TraceBuilder::new("symb");
        b.push(
            "bind",
            OpKind::VsaConv { n_vec: 1, dim: 16 },
            Domain::Symbolic,
            DType::Int4,
            &[],
        );
        let g = DataflowGraph::from_trace(b.finish(1).unwrap());
        assert!(g.nn_span().is_none());
    }
}
