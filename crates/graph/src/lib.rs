//! # nsflow-graph
//!
//! Dataflow-graph generation — step ② of the paper's Design Architecture
//! Generator (Sec. V-B).
//!
//! Starting from an [`ExecutionTrace`], the generator:
//!
//! 1. **identifies the critical path** of one loop iteration (longest
//!    dependency chain, weighted by arithmetic work) with a DFS-based
//!    longest-path pass,
//! 2. **identifies inner-loop parallelism** with a BFS depth pass,
//!    attaching off-critical-path nodes to the critical-path node at their
//!    depth (their earliest execution point),
//! 3. **identifies inter-loop parallelism**: the next loop's first NN layer
//!    may start as soon as the array's NN partition is free, overlapping
//!    with the previous loop's symbolic tail,
//! 4. annotates each node with the *size parameters* its runtime function
//!    needs (the architecture crate evaluates eqs. (1)–(5) against them),
//! 5. computes per-node **memory costs** and the aggregate quantities the
//!    memory planner uses (`max filter size in R_l` → `Mem_A1`,
//!    `max node size in R_v` → `Mem_A2`, …).
//!
//! # Examples
//!
//! ```
//! use nsflow_graph::DataflowGraph;
//! use nsflow_trace::{TraceBuilder, OpKind, Domain};
//! use nsflow_tensor::DType;
//!
//! let mut b = TraceBuilder::new("w");
//! let a = b.push("conv", OpKind::Gemm { m: 64, n: 8, k: 9 }, Domain::Neural, DType::Int8, &[]);
//! let _v = b.push("bind", OpKind::VsaConv { n_vec: 2, dim: 64 }, Domain::Symbolic, DType::Int4, &[a]);
//! let g = DataflowGraph::from_trace(b.finish(4)?);
//! assert_eq!(g.critical_path().len(), 2);
//! # Ok::<(), nsflow_trace::TraceError>(())
//! ```
//!
//! [`ExecutionTrace`]: nsflow_trace::ExecutionTrace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataflow;
mod memory;

pub mod dot;

pub use dataflow::{DataflowGraph, ParallelGroup};
pub use memory::MemoryRequirements;
