//! # nsflow-core
//!
//! The end-to-end NSFlow framework (paper Sec. III): given a workload's
//! execution trace, the **frontend** builds the dataflow graph, runs the
//! two-phase DSE and plans memory and SIMD sizing; the **backend**
//! instantiates the hardware template on an FPGA device model, checks
//! resources, and emits the design configuration + host schedule; the
//! resulting deployment runs on the cycle-level simulator.
//!
//! ```text
//! trace ──frontend──▶ Design ──deploy──▶ Deployment ──run──▶ RunReport
//!         (graph, DSE,          (resource check,     (cycle-level
//!          memory, SIMD)         config emission)     schedule)
//! ```
//!
//! # Examples
//!
//! ```
//! use nsflow_core::NsFlow;
//! use nsflow_workloads::traces;
//!
//! let workload = traces::mimonet();
//! let design = NsFlow::new().compile(workload.trace)?;
//! let report = design.deploy().run();
//! assert!(report.seconds > 0.0);
//! # Ok::<(), nsflow_core::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// The shared deterministic parallelism utility ([`par::parallel_map`],
/// [`par::KernelOptions`]) used by the DSE sweeps, the blocked GEMM
/// kernels and the spectral VSA engine. Physically hosted in
/// `nsflow-tensor` (the dependency-free base crate) so every kernel crate
/// can reach it; re-exported here as the framework-level name.
pub use nsflow_tensor::par;

/// The workspace observability layer: metrics registry, span timers and
/// deterministic [`telemetry::TelemetrySnapshot`] JSON snapshots.
/// Recording is gated by the default-on `telemetry` cargo feature and
/// compiles to no-ops when disabled. Physically hosted in
/// `nsflow-telemetry`; re-exported here as the framework-level name.
pub use nsflow_telemetry as telemetry;

use nsflow_arch::memory::{MemoryPlan, TransferModel};
use nsflow_arch::{analytical, simd, ArrayConfig, Mapping, PrecisionConfig};
use nsflow_dse::{explore, DseOptions, DseResult};
use nsflow_fpga::design::{host_schedule, DesignConfig};
use nsflow_fpga::resources::{estimate, max_pes_for, DesignResources, Utilization};
use nsflow_fpga::{FpgaDevice, FpgaError};
use nsflow_graph::DataflowGraph;
use nsflow_sim::schedule::{self, Schedule, SimOptions};
use nsflow_trace::ExecutionTrace;

/// Errors from [`NsFlow::compile`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CompileError {
    /// The generated design does not fit the target device.
    DeviceTooSmall(FpgaError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::DeviceTooSmall(e) => write!(f, "design does not fit device: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::DeviceTooSmall(e) => Some(e),
        }
    }
}

/// Framework entry point with target-device and precision settings.
#[derive(Debug, Clone, PartialEq)]
pub struct NsFlow {
    device: FpgaDevice,
    precision: PrecisionConfig,
    dse_iter_max: usize,
    max_simd_lanes: usize,
    optimize_trace: bool,
}

impl Default for NsFlow {
    fn default() -> Self {
        NsFlow::new()
    }
}

impl NsFlow {
    /// Framework targeting the paper's deployment (AMD U250, mixed
    /// INT8/INT4 precision).
    #[must_use]
    pub fn new() -> Self {
        NsFlow {
            device: FpgaDevice::u250(),
            precision: PrecisionConfig::mixed(),
            dse_iter_max: 16,
            max_simd_lanes: 512,
            optimize_trace: false,
        }
    }

    /// Enables the frontend trace-optimization passes (dead-op
    /// elimination + element-wise fusion) before dataflow generation.
    #[must_use]
    pub fn with_optimizations(mut self) -> Self {
        self.optimize_trace = true;
        self
    }

    /// Selects a different target device.
    #[must_use]
    pub fn with_device(mut self, device: FpgaDevice) -> Self {
        self.device = device;
        self
    }

    /// Selects the per-domain precisions.
    #[must_use]
    pub fn with_precision(mut self, precision: PrecisionConfig) -> Self {
        self.precision = precision;
        self
    }

    /// Overrides the Phase-II iteration cap.
    #[must_use]
    pub fn with_iter_max(mut self, iter_max: usize) -> Self {
        self.dse_iter_max = iter_max;
        self
    }

    /// Runs the frontend: trace → dataflow graph → two-phase DSE →
    /// memory/SIMD planning → resource check.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::DeviceTooSmall`] if no feasible design fits
    /// the device.
    pub fn compile(&self, trace: ExecutionTrace) -> Result<Design, CompileError> {
        let trace = if self.optimize_trace {
            let (t, _) = nsflow_trace::passes::eliminate_dead_ops(&trace)
                .expect("DCE preserves trace validity");
            let (t, _) = nsflow_trace::passes::fuse_elementwise(&t)
                .expect("fusion preserves trace validity");
            t
        } else {
            trace
        };
        let graph = DataflowGraph::from_trace(trace);

        // ① SIMD sizing needs an array-time target, which needs the DSE;
        // run the DSE at a provisional width first.
        let provisional_lanes = 64usize;
        // Leave ~10% headroom on the binding resource for routing and
        // timing closure — standard FPGA practice; it also matches the
        // paper's ~89% DSP deployments.
        let pe_budget =
            (max_pes_for(&self.device, &self.precision, provisional_lanes) as f64 * 0.9) as usize;
        let dse_opts = DseOptions {
            max_pes: pe_budget,
            iter_max: self.dse_iter_max,
            simd_lanes: provisional_lanes,
            ..DseOptions::default()
        };
        let dse = explore(&graph, &dse_opts);

        // ② Minimize the SIMD width that still hides behind the array
        // (the paper's sizing rule), then re-evaluate the timing.
        let simd_ops: Vec<_> = graph
            .trace()
            .ops()
            .iter()
            .filter(|op| op.kind().is_simd_op())
            .map(|op| *op.kind())
            .collect();
        let array_time = dse.timing.t_nn.max(dse.timing.t_vsa).max(1);
        let lanes = simd::minimal_lanes(&simd_ops, array_time, self.max_simd_lanes);

        // A wider-than-provisional SIMD unit eats into the DSP budget; if
        // the design no longer fits, re-run the DSE against the corrected
        // PE budget.
        let plan = MemoryPlan::from_requirements(&graph.memory_requirements());
        let mut dse = dse;
        let mut resources = estimate(&dse.config, &self.precision, lanes, &plan);
        if resources.utilization_on(&self.device).is_err() && lanes > provisional_lanes {
            let corrected_budget =
                (max_pes_for(&self.device, &self.precision, lanes) as f64 * 0.9) as usize;
            let corrected_opts = DseOptions {
                max_pes: corrected_budget,
                simd_lanes: lanes,
                ..dse_opts
            };
            dse = explore(&graph, &corrected_opts);
            resources = estimate(&dse.config, &self.precision, lanes, &plan);
        }
        let timing = analytical::loop_timing(&graph, &dse.config, &dse.mapping, lanes);
        let utilization = resources
            .utilization_on(&self.device)
            .map_err(CompileError::DeviceTooSmall)?;

        let default_partition = (
            dse.mapping.n_l.first().copied().unwrap_or(0),
            dse.mapping.n_v.first().copied().unwrap_or(0),
        );
        let config = DesignConfig {
            workload: graph.trace().name().to_string(),
            array: dse.config,
            default_partition,
            simd_lanes: lanes,
            memory: plan,
            precision: self.precision,
            freq_hz: self.device.default_freq_hz,
        };
        Ok(Design {
            graph,
            dse,
            timing,
            config,
            resources,
            utilization,
        })
    }
}

/// A compiled design: everything the backend needs to deploy.
#[derive(Debug, Clone)]
pub struct Design {
    /// The dataflow graph the design was generated for.
    pub graph: DataflowGraph,
    /// The DSE outcome (configuration + mapping + exploration stats).
    pub dse: DseResult,
    /// Loop timing at the final SIMD width.
    pub timing: analytical::LoopTiming,
    /// The emitted design configuration.
    pub config: DesignConfig,
    /// Absolute resource demand.
    pub resources: DesignResources,
    /// Utilization on the target device.
    pub utilization: Utilization,
}

impl Design {
    /// The selected array configuration.
    #[must_use]
    pub fn array(&self) -> &ArrayConfig {
        &self.config.array
    }

    /// The selected mapping.
    #[must_use]
    pub fn mapping(&self) -> &Mapping {
        &self.dse.mapping
    }

    /// Renders the design-configuration file.
    #[must_use]
    pub fn config_text(&self) -> String {
        self.config.to_config_text()
    }

    /// Renders the host kernel schedule.
    #[must_use]
    pub fn host_schedule(&self) -> String {
        host_schedule(&self.graph, &self.dse.mapping)
    }

    /// Renders the parameterized SystemVerilog template bundle (the
    /// "pre-defined RTL with scaling parameters" the backend would hand to
    /// synthesis).
    #[must_use]
    pub fn rtl_text(&self) -> String {
        nsflow_fpga::rtl::emit_rtl(&self.config)
    }

    /// Instantiates the deployment (the bitstream-on-device analog).
    #[must_use]
    pub fn deploy(&self) -> Deployment {
        Deployment {
            graph: self.graph.clone(),
            array: self.config.array,
            mapping: self.dse.mapping.clone(),
            simd_lanes: self.config.simd_lanes,
            freq_hz: self.config.freq_hz,
        }
    }
}

/// A deployed design ready to execute workloads.
#[derive(Debug, Clone)]
pub struct Deployment {
    graph: DataflowGraph,
    array: ArrayConfig,
    mapping: Mapping,
    simd_lanes: usize,
    freq_hz: f64,
}

/// Outcome of a batched throughput run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Number of workload instances executed.
    pub tasks: usize,
    /// Wall-clock seconds for the whole batch.
    pub total_seconds: f64,
    /// Sustained throughput, tasks per second.
    pub throughput_per_s: f64,
    /// Single-task latency for comparison.
    pub latency_single: f64,
}

/// Outcome of one end-to-end run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Total cycles for all loop iterations.
    pub cycles: u64,
    /// Wall-clock seconds at the deployment frequency.
    pub seconds: f64,
    /// Temporal utilization of the array partitions.
    pub array_utilization: f64,
}

impl Deployment {
    /// Executes the full workload on the cycle-level scheduler.
    #[must_use]
    pub fn run(&self) -> RunReport {
        self.run_with(&SimOptions {
            simd_lanes: self.simd_lanes,
            transfer: Some(TransferModel::default()),
        })
    }

    /// Executes `tasks` back-to-back workload instances and reports
    /// aggregate throughput. Because successive instances pipeline
    /// through the sub-array pool exactly like loop iterations do, batch
    /// throughput exceeds `1 / single-task latency`.
    ///
    /// # Panics
    ///
    /// Panics if `tasks == 0`.
    #[must_use]
    pub fn run_batch(&self, tasks: usize) -> BatchReport {
        assert!(tasks > 0, "need at least one task");
        let total_loops = self.graph.trace().loop_count() * tasks;
        let batched = self
            .graph
            .trace()
            .with_loop_count(total_loops)
            .expect("nonzero loop count");
        let graph = DataflowGraph::from_trace(batched);
        let schedule = schedule::run_pooled(
            &graph,
            &self.array,
            &self.mapping,
            &SimOptions {
                simd_lanes: self.simd_lanes,
                transfer: Some(TransferModel::default()),
            },
        );
        let seconds = schedule.seconds_at(self.freq_hz);
        BatchReport {
            tasks,
            total_seconds: seconds,
            throughput_per_s: tasks as f64 / seconds,
            latency_single: self.run().seconds,
        }
    }

    /// Executes with custom simulation options.
    ///
    /// Uses the pooled AdArray scheduler ([`schedule::run_pooled`]): the
    /// sub-arrays form a capacity pool and each kernel claims its mapped
    /// allocation — runtime array folding as the backend performs it.
    #[must_use]
    pub fn run_with(&self, options: &SimOptions) -> RunReport {
        let schedule = schedule::run_pooled(&self.graph, &self.array, &self.mapping, options);
        self.report_from(&schedule)
    }

    /// The deployment clock, Hz.
    #[must_use]
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    fn report_from(&self, schedule: &Schedule) -> RunReport {
        RunReport {
            cycles: schedule.total_cycles(),
            seconds: schedule.seconds_at(self.freq_hz),
            array_utilization: schedule.array_utilization(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, OpKind, TraceBuilder};

    fn small_trace(loops: usize) -> ExecutionTrace {
        let mut b = TraceBuilder::new("small");
        let c = b.push(
            "conv",
            OpKind::Gemm {
                m: 1024,
                n: 64,
                k: 128,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let v = b.push(
            "bind",
            OpKind::VsaConv { n_vec: 8, dim: 512 },
            Domain::Symbolic,
            DType::Int4,
            &[c],
        );
        let _s = b.push(
            "sim",
            OpKind::Similarity {
                n_vec: 8,
                dim: 2048,
            },
            Domain::Symbolic,
            DType::Int4,
            &[v],
        );
        b.finish(loops).unwrap()
    }

    #[test]
    fn compile_produces_feasible_design() {
        let design = NsFlow::new().compile(small_trace(8)).unwrap();
        assert!(design.array().total_pes() <= 12_000);
        assert!(design.utilization.dsp_pct <= 100.0);
        assert!(design.config.simd_lanes >= 8);
    }

    #[test]
    fn config_text_round_trips_through_parser() {
        let design = NsFlow::new().compile(small_trace(4)).unwrap();
        let parsed = DesignConfig::parse(&design.config_text()).unwrap();
        assert_eq!(parsed, design.config);
    }

    #[test]
    fn host_schedule_mentions_every_op() {
        let design = NsFlow::new().compile(small_trace(2)).unwrap();
        let sched = design.host_schedule();
        for op in design.graph.trace().ops() {
            assert!(sched.contains(op.name()), "schedule missing {}", op.name());
        }
    }

    #[test]
    fn run_report_is_consistent() {
        let design = NsFlow::new().compile(small_trace(8)).unwrap();
        let dep = design.deploy();
        let report = dep.run();
        assert!(report.cycles > 0);
        assert!((report.seconds - report.cycles as f64 / dep.freq_hz()).abs() < 1e-12);
        assert!(report.array_utilization > 0.0 && report.array_utilization <= 1.0);
    }

    #[test]
    fn more_loops_cost_more_cycles() {
        let d4 = NsFlow::new()
            .compile(small_trace(4))
            .unwrap()
            .deploy()
            .run();
        let d8 = NsFlow::new()
            .compile(small_trace(8))
            .unwrap()
            .deploy()
            .run();
        assert!(d8.cycles > d4.cycles);
    }

    #[test]
    fn small_device_yields_smaller_design_or_error() {
        let trace = small_trace(4);
        let big = NsFlow::new().compile(trace.clone()).unwrap();
        match NsFlow::new()
            .with_device(FpgaDevice::zcu104())
            .compile(trace)
        {
            Ok(small) => {
                assert!(small.array().total_pes() < big.array().total_pes());
            }
            Err(CompileError::DeviceTooSmall(_)) => {} // also acceptable
        }
    }

    #[test]
    fn optimizations_shrink_the_trace_without_slowing_it() {
        // A trace with a fusable elementwise chain and a dead diagnostic.
        let mut b = TraceBuilder::new("opt");
        let c = b.push(
            "conv",
            OpKind::Gemm {
                m: 512,
                n: 64,
                k: 64,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let r = b.push(
            "relu",
            OpKind::Elementwise {
                elems: 4096,
                func: nsflow_trace::EltFunc::Relu,
            },
            Domain::Neural,
            DType::Int8,
            &[c],
        );
        let bn = b.push(
            "bn",
            OpKind::Elementwise {
                elems: 4096,
                func: nsflow_trace::EltFunc::Affine,
            },
            Domain::Neural,
            DType::Int8,
            &[r],
        );
        let _dead = b.push(
            "debug_sum",
            OpKind::Reduce {
                elems: 4096,
                func: nsflow_trace::ReduceFunc::Sum,
            },
            Domain::Neural,
            DType::Int8,
            &[c],
        );
        let _v = b.push(
            "bind",
            OpKind::VsaConv { n_vec: 8, dim: 512 },
            Domain::Symbolic,
            DType::Int4,
            &[bn],
        );
        let trace = b.finish(4).unwrap();

        let plain = NsFlow::new().compile(trace.clone()).unwrap();
        let optimized = NsFlow::new().with_optimizations().compile(trace).unwrap();
        assert!(
            optimized.graph.trace().ops().len() < plain.graph.trace().ops().len(),
            "passes should shrink the op count"
        );
        let c_plain = plain.deploy().run().cycles;
        let c_opt = optimized.deploy().run().cycles;
        assert!(c_opt <= c_plain, "optimized {c_opt} !<= plain {c_plain}");
    }

    #[test]
    fn batch_throughput_beats_inverse_latency() {
        let design = NsFlow::new().compile(small_trace(4)).unwrap();
        let dep = design.deploy();
        let batch = dep.run_batch(8);
        assert_eq!(batch.tasks, 8);
        assert!(batch.total_seconds > 0.0);
        assert!(
            batch.throughput_per_s >= 0.99 / batch.latency_single,
            "pipelined batch throughput {} should beat 1/latency {}",
            batch.throughput_per_s,
            1.0 / batch.latency_single
        );
    }

    #[test]
    fn uniform_precision_is_respected_in_config() {
        let p = PrecisionConfig::uniform(DType::Int8);
        let design = NsFlow::new()
            .with_precision(p)
            .compile(small_trace(2))
            .unwrap();
        assert_eq!(design.config.precision, p);
    }
}
