//! Design-configuration and host-schedule emission.
//!
//! In the paper, the frontend emits (a) a *design configuration file* that
//! parameterizes the pre-defined RTL template before synthesis and (b)
//! *host code* that schedules accelerator kernels through the XRT API.
//! This module emits both as deterministic text artifacts: the config in a
//! `key = value` format that round-trips through [`DesignConfig::parse`],
//! and the host schedule as an ordered kernel-invocation script.

use std::collections::HashMap;
use std::fmt;

use nsflow_arch::memory::MemoryPlan;
use nsflow_arch::{ArrayConfig, Mapping, PrecisionConfig};
use nsflow_graph::DataflowGraph;
use nsflow_tensor::DType;
use nsflow_trace::OpKind;

/// The complete parameterization of one NSFlow deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignConfig {
    /// Workload name the design was generated for.
    pub workload: String,
    /// AdArray geometry.
    pub array: ArrayConfig,
    /// Default partition `(N̄_l, N̄_v)` programmed at reset.
    pub default_partition: (usize, usize),
    /// SIMD lane count.
    pub simd_lanes: usize,
    /// Planned memory block sizes.
    pub memory: MemoryPlan,
    /// Execution precisions.
    pub precision: PrecisionConfig,
    /// Target clock, Hz.
    pub freq_hz: f64,
}

impl DesignConfig {
    /// Renders the config file text.
    #[must_use]
    pub fn to_config_text(&self) -> String {
        format!(
            "# NSFlow design configuration (generated)\n\
             workload = {}\n\
             array.height = {}\n\
             array.width = {}\n\
             array.subarrays = {}\n\
             partition.nn = {}\n\
             partition.vsa = {}\n\
             simd.lanes = {}\n\
             mem.a1_bytes = {}\n\
             mem.a2_bytes = {}\n\
             mem.b_bytes = {}\n\
             mem.c_bytes = {}\n\
             mem.cache_bytes = {}\n\
             precision.neural = {}\n\
             precision.symbolic = {}\n\
             clock.freq_hz = {}\n",
            self.workload,
            self.array.height(),
            self.array.width(),
            self.array.n_subarrays(),
            self.default_partition.0,
            self.default_partition.1,
            self.simd_lanes,
            self.memory.mem_a1,
            self.memory.mem_a2,
            self.memory.mem_b,
            self.memory.mem_c,
            self.memory.cache,
            self.precision.neural,
            self.precision.symbolic,
            self.freq_hz,
        )
    }

    /// Parses a config file produced by [`Self::to_config_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseDesignError`] describing the missing or malformed
    /// key.
    pub fn parse(text: &str) -> Result<Self, ParseDesignError> {
        let mut kv = HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| ParseDesignError(format!("malformed line: {line}")))?;
            kv.insert(k.trim().to_string(), v.trim().to_string());
        }
        let get = |key: &str| -> Result<String, ParseDesignError> {
            kv.get(key)
                .cloned()
                .ok_or_else(|| ParseDesignError(format!("missing key {key}")))
        };
        let num = |key: &str| -> Result<usize, ParseDesignError> {
            get(key)?
                .parse()
                .map_err(|_| ParseDesignError(format!("non-numeric {key}")))
        };
        let dtype = |key: &str| -> Result<DType, ParseDesignError> {
            match get(key)?.as_str() {
                "INT4" => Ok(DType::Int4),
                "INT8" => Ok(DType::Int8),
                "FP16" => Ok(DType::Fp16),
                "FP32" => Ok(DType::Fp32),
                other => Err(ParseDesignError(format!("unknown precision {other}"))),
            }
        };
        let array = ArrayConfig::new(
            num("array.height")?,
            num("array.width")?,
            num("array.subarrays")?,
        )
        .map_err(|e| ParseDesignError(e.to_string()))?;
        Ok(DesignConfig {
            workload: get("workload")?,
            array,
            default_partition: (num("partition.nn")?, num("partition.vsa")?),
            simd_lanes: num("simd.lanes")?,
            memory: MemoryPlan {
                mem_a1: num("mem.a1_bytes")?,
                mem_a2: num("mem.a2_bytes")?,
                mem_b: num("mem.b_bytes")?,
                mem_c: num("mem.c_bytes")?,
                cache: num("mem.cache_bytes")?,
            },
            precision: PrecisionConfig {
                neural: dtype("precision.neural")?,
                symbolic: dtype("precision.symbolic")?,
            },
            freq_hz: get("clock.freq_hz")?
                .parse()
                .map_err(|_| ParseDesignError("non-numeric clock.freq_hz".into()))?,
        })
    }
}

/// Error from [`DesignConfig::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDesignError(String);

impl fmt::Display for ParseDesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "design config parse error: {}", self.0)
    }
}

impl std::error::Error for ParseDesignError {}

/// Emits the host kernel schedule (the XRT host-code analog): one line
/// per kernel invocation of one loop iteration, with fold/reconfigure
/// commands whenever the partition a node needs differs from the previous
/// one.
#[must_use]
pub fn host_schedule(graph: &DataflowGraph, mapping: &Mapping) -> String {
    let trace = graph.trace();
    let nn_nodes = trace.nn_nodes();
    let vsa_nodes = trace.vsa_nodes();
    let nn_index: HashMap<_, _> = nn_nodes
        .iter()
        .enumerate()
        .map(|(i, id)| (*id, i))
        .collect();
    let vsa_index: HashMap<_, _> = vsa_nodes
        .iter()
        .enumerate()
        .map(|(i, id)| (*id, i))
        .collect();

    let mut out = String::new();
    out.push_str(&format!(
        "// host schedule for {} ({} loops, {} mode)\n",
        trace.name(),
        trace.loop_count(),
        if mapping.parallel {
            "parallel"
        } else {
            "sequential"
        }
    ));
    let mut last_fold: Option<(usize, usize)> = None;
    for op in trace.ops() {
        let (engine, fold) = match op.kind() {
            OpKind::Gemm { .. } => {
                let nl = mapping.n_l[nn_index[&op.id()]];
                ("adarray.nn", Some((nl, 0)))
            }
            OpKind::VsaConv { .. } => {
                let nv = mapping.n_v[vsa_index[&op.id()]];
                ("adarray.vsa", Some((0, nv)))
            }
            _ => ("simd", None),
        };
        if let Some((nl, nv)) = fold {
            if last_fold != Some((nl, nv)) {
                out.push_str(&format!("fold(nn={nl}, vsa={nv})\n"));
                last_fold = Some((nl, nv));
            }
        }
        let deps: Vec<String> = op
            .inputs()
            .iter()
            .map(|d| format!("%{}", d.index()))
            .collect();
        out.push_str(&format!(
            "launch {engine} kernel={} deps=[{}]\n",
            op.name(),
            deps.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_trace::{Domain, TraceBuilder};

    fn config() -> DesignConfig {
        DesignConfig {
            workload: "nvsa".into(),
            array: ArrayConfig::new(32, 16, 16).unwrap(),
            default_partition: (14, 2),
            simd_lanes: 64,
            memory: MemoryPlan {
                mem_a1: 2_831_155,
                mem_a2: 1_153_433,
                mem_b: 2_831_155,
                mem_c: 1_677_721,
                cache: 16_986_931,
            },
            precision: PrecisionConfig::mixed(),
            freq_hz: 272.0e6,
        }
    }

    #[test]
    fn config_text_round_trips() {
        let cfg = config();
        let text = cfg.to_config_text();
        let parsed = DesignConfig::parse(&text).unwrap();
        assert_eq!(parsed, cfg);
    }

    #[test]
    fn parse_reports_missing_keys() {
        let err = DesignConfig::parse("workload = x\n").unwrap_err();
        assert!(err.to_string().contains("missing key"));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        let err = DesignConfig::parse("not a key value line\n").unwrap_err();
        assert!(err.to_string().contains("malformed"));
    }

    #[test]
    fn parse_rejects_unknown_precision() {
        let text = config().to_config_text().replace("INT4", "INT3");
        assert!(DesignConfig::parse(&text).is_err());
    }

    #[test]
    fn host_schedule_lists_every_op_and_folds() {
        let mut b = TraceBuilder::new("w");
        let c = b.push(
            "conv1",
            OpKind::Gemm {
                m: 64,
                n: 16,
                k: 16,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let v = b.push(
            "bind1",
            OpKind::VsaConv { n_vec: 4, dim: 64 },
            Domain::Symbolic,
            DType::Int4,
            &[c],
        );
        let _s = b.push(
            "sum1",
            OpKind::Reduce {
                elems: 256,
                func: nsflow_trace::ReduceFunc::Sum,
            },
            Domain::Symbolic,
            DType::Int4,
            &[v],
        );
        let g = DataflowGraph::from_trace(b.finish(2).unwrap());
        let m = Mapping::uniform(1, 1, 3, 1);
        let sched = host_schedule(&g, &m);
        assert!(sched.contains("launch adarray.nn kernel=conv1"));
        assert!(sched.contains("launch adarray.vsa kernel=bind1"));
        assert!(sched.contains("launch simd kernel=sum1"));
        assert!(sched.contains("fold(nn=3, vsa=0)"));
        assert!(sched.contains("fold(nn=0, vsa=1)"));
        assert!(sched.contains("deps=[%1]"));
    }
}
