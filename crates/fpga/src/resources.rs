//! FPGA resource estimation, calibrated against the paper's Tab. III.
//!
//! ## Calibration
//!
//! The per-PE constants below were fit so the three Tab. III deployment
//! points land on the paper's utilization numbers for the U250:
//!
//! | point | config | precision | DSP | LUT | FF | BRAM | URAM | LUTRAM |
//! |---|---|---|---|---|---|---|---|---|
//! | NVSA | 32×16×16 | INT8/INT4 | 89% | 56% | 60% | 34% | 8% | 24% |
//! | MIMONet | 32×32×8 | INT8/INT8 | 89% | 44% | 52% | 43% | 10% | 20% |
//! | LVRF | 32×16×16 | INT8/INT4 | 89% | 56% | 60% | 31% | 7% | 24% |
//!
//! Structure of the model:
//!
//! - **DSP** ∝ PEs (1.3 DSP/PE — an INT8 multiplier with partial
//!   dual-INT4 packing per [Langhammer et al., FCCM'20]) + 4 per SIMD
//!   lane (mult/div/exp path),
//! - **LUT/FF** per PE, higher when the design carries both INT8 and
//!   INT4 datapaths (mixed precision adds muxing and LUT-based
//!   low-precision adders, Sec. IV-D),
//! - **BRAM** = 4 × single-buffer plan (double buffering × dual-bank
//!   read/write), in 18 KB blocks,
//! - **URAM** = 2 × cache (double-buffered), in 288 KB blocks,
//! - **LUTRAM** per PE for the stationary/passing/streaming registers.

use nsflow_arch::memory::MemoryPlan;
use nsflow_arch::{ArrayConfig, PrecisionConfig};

use crate::{FpgaDevice, FpgaError, Result};

/// DSP slices per PE (INT8 MAC with partial dual-INT4 DSP packing).
pub const DSP_PER_PE: f64 = 1.3;
/// DSP slices per SIMD lane.
pub const DSP_PER_SIMD_LANE: f64 = 4.0;
/// Logic LUTs per PE with a single-precision datapath.
pub const LUT_PER_PE_UNIFORM: u64 = 75;
/// Logic LUTs per PE with mixed INT8+INT4 datapaths.
pub const LUT_PER_PE_MIXED: u64 = 102;
/// Logic LUTs per SIMD lane (transcendental + norm + softmax logic).
pub const LUT_PER_SIMD_LANE: u64 = 1_500;
/// Fixed control/AXI/scheduler LUT overhead.
pub const LUT_CONTROL: u64 = 50_000;
/// Flip-flops per PE, single precision.
pub const FF_PER_PE_UNIFORM: u64 = 200;
/// Flip-flops per PE, mixed precision.
pub const FF_PER_PE_MIXED: u64 = 235;
/// Flip-flops per SIMD lane.
pub const FF_PER_SIMD_LANE: u64 = 1_000;
/// Fixed control FF overhead.
pub const FF_CONTROL: u64 = 100_000;
/// LUTRAM LUTs per PE, single precision (stationary + streaming regs).
pub const LUTRAM_PER_PE_UNIFORM: u64 = 19;
/// LUTRAM LUTs per PE, mixed precision (adds the packed-INT4 register
/// file).
pub const LUTRAM_PER_PE_MIXED: u64 = 23;
/// BRAM block size in bytes (the paper's 18 KB unit).
pub const BRAM_BLOCK_BYTES: u64 = 18 * 1024;
/// URAM block size in bytes (the paper's 288 KB unit).
pub const URAM_BLOCK_BYTES: u64 = 288 * 1024;

/// Absolute resource demand of a design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignResources {
    /// DSP slices.
    pub dsps: u64,
    /// Logic LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// 18 KB BRAM blocks.
    pub bram_blocks: u64,
    /// 288 KB URAM blocks.
    pub uram_blocks: u64,
    /// LUTs used as LUTRAM.
    pub lutram_luts: u64,
}

/// Utilization percentages against a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// DSP utilization, percent.
    pub dsp_pct: f64,
    /// LUT utilization, percent.
    pub lut_pct: f64,
    /// FF utilization, percent.
    pub ff_pct: f64,
    /// BRAM utilization, percent.
    pub bram_pct: f64,
    /// URAM utilization, percent.
    pub uram_pct: f64,
    /// LUTRAM utilization, percent.
    pub lutram_pct: f64,
}

/// Whether the precision configuration needs both integer datapaths.
#[must_use]
pub fn is_mixed(precision: &PrecisionConfig) -> bool {
    precision.neural != precision.symbolic
}

/// Estimates the resources of a design point.
#[must_use]
pub fn estimate(
    config: &ArrayConfig,
    precision: &PrecisionConfig,
    simd_lanes: usize,
    plan: &MemoryPlan,
) -> DesignResources {
    let pes = config.total_pes() as u64;
    let lanes = simd_lanes as u64;
    let mixed = is_mixed(precision);
    let (lut_pe, ff_pe, lutram_pe) = if mixed {
        (LUT_PER_PE_MIXED, FF_PER_PE_MIXED, LUTRAM_PER_PE_MIXED)
    } else {
        (LUT_PER_PE_UNIFORM, FF_PER_PE_UNIFORM, LUTRAM_PER_PE_UNIFORM)
    };
    let single_buffer = (plan.mem_a1 + plan.mem_a2 + plan.mem_b + plan.mem_c) as u64;
    DesignResources {
        dsps: (pes as f64 * DSP_PER_PE + lanes as f64 * DSP_PER_SIMD_LANE).ceil() as u64,
        luts: pes * lut_pe + lanes * LUT_PER_SIMD_LANE + LUT_CONTROL,
        ffs: pes * ff_pe + lanes * FF_PER_SIMD_LANE + FF_CONTROL,
        bram_blocks: (4 * single_buffer).div_ceil(BRAM_BLOCK_BYTES),
        uram_blocks: (2 * plan.cache as u64).div_ceil(URAM_BLOCK_BYTES),
        lutram_luts: pes * lutram_pe,
    }
}

impl DesignResources {
    /// Utilization on a device.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::ResourceOverflow`] naming the first resource
    /// the design exceeds.
    pub fn utilization_on(&self, device: &FpgaDevice) -> Result<Utilization> {
        let checks: [(&str, u64, u64); 6] = [
            ("DSP", self.dsps, device.dsps),
            ("LUT", self.luts, device.luts),
            ("FF", self.ffs, device.ffs),
            ("BRAM", self.bram_blocks, device.bram_blocks),
            ("URAM", self.uram_blocks, device.uram_blocks),
            ("LUTRAM", self.lutram_luts, device.lutram_luts),
        ];
        for (name, required, available) in checks {
            if required > available {
                return Err(FpgaError::ResourceOverflow {
                    resource: name.to_string(),
                    required,
                    available,
                });
            }
        }
        let pct = |req: u64, avail: u64| 100.0 * req as f64 / avail as f64;
        Ok(Utilization {
            dsp_pct: pct(self.dsps, device.dsps),
            lut_pct: pct(self.luts, device.luts),
            ff_pct: pct(self.ffs, device.ffs),
            bram_pct: pct(self.bram_blocks, device.bram_blocks),
            uram_pct: pct(self.uram_blocks, device.uram_blocks),
            lutram_pct: pct(self.lutram_luts, device.lutram_luts),
        })
    }
}

/// Largest PE count a device can host at the given precision and SIMD
/// width (the DSE's `M` budget), limited by whichever of DSP/LUT/FF
/// binds first.
#[must_use]
pub fn max_pes_for(device: &FpgaDevice, precision: &PrecisionConfig, simd_lanes: usize) -> usize {
    let lanes = simd_lanes as u64;
    let mixed = is_mixed(precision);
    let (lut_pe, ff_pe) = if mixed {
        (LUT_PER_PE_MIXED, FF_PER_PE_MIXED)
    } else {
        (LUT_PER_PE_UNIFORM, FF_PER_PE_UNIFORM)
    };
    let by_dsp = ((device.dsps as f64 - lanes as f64 * DSP_PER_SIMD_LANE) / DSP_PER_PE) as u64;
    let by_lut = (device
        .luts
        .saturating_sub(lanes * LUT_PER_SIMD_LANE + LUT_CONTROL))
        / lut_pe;
    let by_ff = (device
        .ffs
        .saturating_sub(lanes * FF_PER_SIMD_LANE + FF_CONTROL))
        / ff_pe;
    by_dsp.min(by_lut).min(by_ff) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvsa_plan() -> MemoryPlan {
        // The paper's NVSA memory plan (Tab. III), in bytes.
        MemoryPlan {
            mem_a1: (2.7 * 1024.0 * 1024.0) as usize,
            mem_a2: (1.1 * 1024.0 * 1024.0) as usize,
            mem_b: (2.7 * 1024.0 * 1024.0) as usize,
            mem_c: (1.6 * 1024.0 * 1024.0) as usize,
            cache: (16.2 * 1024.0 * 1024.0) as usize,
        }
    }

    fn mimonet_plan() -> MemoryPlan {
        MemoryPlan {
            mem_a1: (3.4 * 1024.0 * 1024.0) as usize,
            mem_a2: (1.2 * 1024.0 * 1024.0) as usize,
            mem_b: (3.4 * 1024.0 * 1024.0) as usize,
            mem_c: (2.1 * 1024.0 * 1024.0) as usize,
            cache: (20.1 * 1024.0 * 1024.0) as usize,
        }
    }

    #[test]
    fn nvsa_point_matches_table3() {
        let cfg = ArrayConfig::new(32, 16, 16).unwrap();
        let res = estimate(&cfg, &PrecisionConfig::mixed(), 64, &nvsa_plan());
        let u = res.utilization_on(&FpgaDevice::u250()).unwrap();
        assert!((u.dsp_pct - 89.0).abs() < 2.0, "DSP {}", u.dsp_pct);
        assert!((u.lut_pct - 56.0).abs() < 3.0, "LUT {}", u.lut_pct);
        assert!((u.ff_pct - 60.0).abs() < 3.0, "FF {}", u.ff_pct);
        assert!((u.bram_pct - 34.0).abs() < 3.0, "BRAM {}", u.bram_pct);
        assert!((u.uram_pct - 8.0).abs() < 2.0, "URAM {}", u.uram_pct);
        assert!((u.lutram_pct - 24.0).abs() < 2.0, "LUTRAM {}", u.lutram_pct);
    }

    #[test]
    fn mimonet_point_matches_table3() {
        let cfg = ArrayConfig::new(32, 32, 8).unwrap();
        let res = estimate(
            &cfg,
            &PrecisionConfig::uniform(nsflow_tensor::DType::Int8),
            64,
            &mimonet_plan(),
        );
        let u = res.utilization_on(&FpgaDevice::u250()).unwrap();
        assert!((u.dsp_pct - 89.0).abs() < 2.0, "DSP {}", u.dsp_pct);
        assert!((u.lut_pct - 44.0).abs() < 3.0, "LUT {}", u.lut_pct);
        assert!((u.ff_pct - 52.0).abs() < 3.0, "FF {}", u.ff_pct);
        assert!((u.bram_pct - 43.0).abs() < 3.0, "BRAM {}", u.bram_pct);
        assert!((u.uram_pct - 10.0).abs() < 2.0, "URAM {}", u.uram_pct);
        assert!((u.lutram_pct - 20.0).abs() < 2.0, "LUTRAM {}", u.lutram_pct);
    }

    #[test]
    fn mixed_precision_costs_more_logic_than_uniform() {
        let cfg = ArrayConfig::new(32, 16, 16).unwrap();
        let plan = nvsa_plan();
        let mixed = estimate(&cfg, &PrecisionConfig::mixed(), 64, &plan);
        let uniform = estimate(
            &cfg,
            &PrecisionConfig::uniform(nsflow_tensor::DType::Int8),
            64,
            &plan,
        );
        assert!(mixed.luts > uniform.luts);
        assert!(mixed.ffs > uniform.ffs);
        assert!(mixed.lutram_luts > uniform.lutram_luts);
        assert_eq!(mixed.dsps, uniform.dsps);
    }

    #[test]
    fn overflow_is_reported_with_resource_name() {
        let cfg = ArrayConfig::new(128, 128, 4).unwrap(); // 65k PEs
        let res = estimate(&cfg, &PrecisionConfig::mixed(), 64, &MemoryPlan::default());
        let err = res.utilization_on(&FpgaDevice::u250()).unwrap_err();
        assert!(
            matches!(err, FpgaError::ResourceOverflow { ref resource, .. } if resource == "DSP")
        );
    }

    #[test]
    fn zcu104_cannot_host_the_u250_design() {
        let cfg = ArrayConfig::new(32, 16, 16).unwrap();
        let res = estimate(&cfg, &PrecisionConfig::mixed(), 64, &nvsa_plan());
        assert!(res.utilization_on(&FpgaDevice::zcu104()).is_err());
    }

    #[test]
    fn max_pes_u250_is_about_8k() {
        // The paper's deployments use 8192 PEs at 89% DSP — the budget
        // should be a bit above that.
        let m = max_pes_for(&FpgaDevice::u250(), &PrecisionConfig::mixed(), 64);
        assert!((8192..12000).contains(&m), "max PEs {m}");
    }

    #[test]
    fn max_pes_scales_down_for_small_device() {
        let big = max_pes_for(&FpgaDevice::u250(), &PrecisionConfig::mixed(), 64);
        let small = max_pes_for(&FpgaDevice::zcu104(), &PrecisionConfig::mixed(), 64);
        assert!(small < big / 4, "{small} vs {big}");
    }
}
