use std::fmt;

/// Error type for FPGA deployment modeling.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FpgaError {
    /// A design asks for more of a resource than the device has.
    ResourceOverflow {
        /// Resource name (DSP, LUT, FF, BRAM, URAM, LUTRAM).
        resource: String,
        /// Amount required.
        required: u64,
        /// Amount available on the device.
        available: u64,
    },
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::ResourceOverflow {
                resource,
                required,
                available,
            } => write!(
                f,
                "design requires {required} {resource} but the device provides {available}"
            ),
        }
    }
}

impl std::error::Error for FpgaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FpgaError>();
    }

    #[test]
    fn display_mentions_resource() {
        let e = FpgaError::ResourceOverflow {
            resource: "DSP".into(),
            required: 100,
            available: 50,
        };
        assert!(e.to_string().contains("DSP"));
    }
}
