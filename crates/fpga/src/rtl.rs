//! RTL template emission.
//!
//! The paper's backend keeps "pre-defined RTL of all blocks with scaling
//! parameters subject to the design configuration generated from DAG"
//! (Sec. IV-A) and synthesizes it into a bitstream. This module is the
//! template side of that flow: it renders parameterized SystemVerilog
//! skeletons — the AdArray PE grid with its passing-register stream path,
//! the SIMD unit, the re-organizable memory blocks and the top level —
//! with every scaling parameter filled in from a [`DesignConfig`].
//!
//! The output is a faithful *structural* template (module hierarchy,
//! parameter lists, generate loops, port directions) rather than a
//! verified implementation; synthesizing it is outside this
//! reproduction's scope (DESIGN.md §1).

use std::fmt::Write as _;

use crate::design::DesignConfig;

/// Renders the complete RTL bundle: one string containing every module,
/// topologically ordered (leaf modules first).
#[must_use]
pub fn emit_rtl(config: &DesignConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// NSFlow generated RTL template — workload: {}\n\
         // array {}x{}x{}, SIMD x{}, {} / {} precision, target {:.0} MHz\n",
        config.workload,
        config.array.height(),
        config.array.width(),
        config.array.n_subarrays(),
        config.simd_lanes,
        config.precision.neural,
        config.precision.symbolic,
        config.freq_hz / 1.0e6
    );
    out.push_str(&emit_pe(config));
    out.push('\n');
    out.push_str(&emit_subarray(config));
    out.push('\n');
    out.push_str(&emit_simd(config));
    out.push('\n');
    out.push_str(&emit_memory(config));
    out.push('\n');
    out.push_str(&emit_top(config));
    out
}

/// The dual-mode PE: weight-stationary MAC with the extra passing
/// register and vertical port that enable circular-convolution streaming
/// (paper Fig. 3(b)).
#[must_use]
pub fn emit_pe(config: &DesignConfig) -> String {
    let nn_w = config.precision.neural.bits();
    let sy_w = config.precision.symbolic.bits();
    let acc_w = 2 * nn_w.max(sy_w) + 8; // product + accumulation guard bits
    format!(
        "module nsflow_pe #(\n\
         \x20 parameter NN_W  = {nn_w},\n\
         \x20 parameter SYM_W = {sy_w},\n\
         \x20 parameter ACC_W = {acc_w}\n\
         ) (\n\
         \x20 input  logic                clk,\n\
         \x20 input  logic                rst_n,\n\
         \x20 input  logic                mode_vsa,      // 0: NN weight-stationary, 1: VSA streaming\n\
         \x20 input  logic [NN_W-1:0]     stationary_in, // weight / held vector element\n\
         \x20 input  logic                stationary_we,\n\
         \x20 input  logic [NN_W-1:0]     west_in,       // NN activation stream\n\
         \x20 output logic [NN_W-1:0]     east_out,\n\
         \x20 input  logic [SYM_W-1:0]    north_in,      // VSA stream (via passing reg)\n\
         \x20 input  logic [SYM_W-1:0]    north_pass_in, // neighbour's previous right output\n\
         \x20 output logic [SYM_W-1:0]    south_pass_out,\n\
         \x20 input  logic [ACC_W-1:0]    psum_in,\n\
         \x20 output logic [ACC_W-1:0]    psum_out\n\
         );\n\
         \x20 logic [NN_W-1:0]  stationary_q;\n\
         \x20 logic [SYM_W-1:0] passing_q;    // 1-cycle pace mismatch for circular conv\n\
         \x20 logic [SYM_W-1:0] streaming_q;\n\
         \x20 always_ff @(posedge clk) begin\n\
         \x20   if (stationary_we) stationary_q <= stationary_in;\n\
         \x20   passing_q   <= mode_vsa ? north_pass_in : '0;\n\
         \x20   streaming_q <= passing_q;\n\
         \x20   psum_out    <= psum_in + (mode_vsa\n\
         \x20                   ? ACC_W'(stationary_q) * ACC_W'(streaming_q)\n\
         \x20                   : ACC_W'(stationary_q) * ACC_W'(west_in));\n\
         \x20   east_out    <= west_in;\n\
         \x20   south_pass_out <= streaming_q;\n\
         \x20 end\n\
         endmodule\n"
    )
}

/// One H×W sub-array with the fold select that merges it with its
/// neighbour for NN mode or isolates its columns for VSA streams.
#[must_use]
pub fn emit_subarray(config: &DesignConfig) -> String {
    let h = config.array.height();
    let w = config.array.width();
    format!(
        "module nsflow_subarray #(\n\
         \x20 parameter H = {h},\n\
         \x20 parameter W = {w}\n\
         ) (\n\
         \x20 input  logic clk, rst_n,\n\
         \x20 input  logic mode_vsa,\n\
         \x20 input  logic merge_east,  // adaptive folding: bridge to the adjacent sub-array\n\
         \x20 input  logic [H-1:0][7:0] act_west,\n\
         \x20 input  logic [W-1:0][7:0] stream_north,\n\
         \x20 output logic [W-1:0][31:0] psum_south\n\
         );\n\
         \x20 genvar r, c;\n\
         \x20 generate\n\
         \x20   for (r = 0; r < H; r++) begin : row\n\
         \x20     for (c = 0; c < W; c++) begin : col\n\
         \x20       nsflow_pe pe (.clk(clk), .rst_n(rst_n), .mode_vsa(mode_vsa) /* mesh ports elided */);\n\
         \x20     end\n\
         \x20   end\n\
         \x20 endgenerate\n\
         endmodule\n"
    )
}

/// The custom SIMD unit: `lanes` compact ALUs plus a reduction tree.
#[must_use]
pub fn emit_simd(config: &DesignConfig) -> String {
    let lanes = config.simd_lanes;
    let depth = usize::BITS - (lanes.max(1) - 1).leading_zeros();
    format!(
        "module nsflow_simd #(\n\
         \x20 parameter LANES = {lanes},\n\
         \x20 parameter TREE_DEPTH = {depth}\n\
         ) (\n\
         \x20 input  logic clk, rst_n,\n\
         \x20 input  logic [3:0] op, // sum/mult/div/exp/log/tanh/norm/softmax\n\
         \x20 input  logic [LANES-1:0][15:0] a, b,\n\
         \x20 output logic [LANES-1:0][15:0] y,\n\
         \x20 output logic [31:0] reduced\n\
         );\n\
         \x20 // per-lane compact logic + log2(LANES)-stage adder tree\n\
         endmodule\n"
    )
}

/// The re-organizable memory: double-buffered Mem_A1/A2/B/C with the
/// runtime merge switch, plus the URAM cache.
#[must_use]
pub fn emit_memory(config: &DesignConfig) -> String {
    let m = &config.memory;
    format!(
        "module nsflow_memory #(\n\
         \x20 parameter MEM_A1_BYTES = {},\n\
         \x20 parameter MEM_A2_BYTES = {},\n\
         \x20 parameter MEM_B_BYTES  = {},\n\
         \x20 parameter MEM_C_BYTES  = {},\n\
         \x20 parameter CACHE_BYTES  = {}\n\
         ) (\n\
         \x20 input  logic clk, rst_n,\n\
         \x20 input  logic merge_a,   // runtime merge of Mem_A1 + Mem_A2\n\
         \x20 input  logic buf_sel,   // double-buffer ping/pong\n\
         \x20 output logic axi_req    // off-chip transaction request\n\
         );\n\
         \x20 // BRAM banks for A1/A2/B/C (x2 for double buffering), URAM cache\n\
         endmodule\n",
        m.mem_a1, m.mem_a2, m.mem_b, m.mem_c, m.cache
    )
}

/// Top level: N sub-arrays, the SIMD unit, the memory system and the
/// fold/schedule controller driven by the host configuration registers.
#[must_use]
pub fn emit_top(config: &DesignConfig) -> String {
    let n = config.array.n_subarrays();
    let (nl, nv) = config.default_partition;
    format!(
        "module nsflow_top #(\n\
         \x20 parameter N_SUBARRAYS = {n},\n\
         \x20 parameter DEFAULT_NN_FOLD = {nl},\n\
         \x20 parameter DEFAULT_VSA_FOLD = {nv}\n\
         ) (\n\
         \x20 input  logic clk, rst_n,\n\
         \x20 input  logic [31:0] csr_addr, csr_wdata,\n\
         \x20 output logic [31:0] csr_rdata\n\
         );\n\
         \x20 genvar s;\n\
         \x20 generate\n\
         \x20   for (s = 0; s < N_SUBARRAYS; s++) begin : sub\n\
         \x20     nsflow_subarray u_sub (.clk(clk), .rst_n(rst_n) /* fold fabric elided */);\n\
         \x20   end\n\
         \x20 endgenerate\n\
         \x20 nsflow_simd   u_simd (.clk(clk), .rst_n(rst_n));\n\
         \x20 nsflow_memory u_mem  (.clk(clk), .rst_n(rst_n));\n\
         endmodule\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_arch::memory::MemoryPlan;
    use nsflow_arch::{ArrayConfig, PrecisionConfig};

    fn config() -> DesignConfig {
        DesignConfig {
            workload: "nvsa".into(),
            array: ArrayConfig::new(32, 16, 16).unwrap(),
            default_partition: (14, 2),
            simd_lanes: 64,
            memory: MemoryPlan {
                mem_a1: 1000,
                mem_a2: 500,
                mem_b: 2000,
                mem_c: 300,
                cache: 7600,
            },
            precision: PrecisionConfig::mixed(),
            freq_hz: 272.0e6,
        }
    }

    #[test]
    fn bundle_contains_every_module() {
        let rtl = emit_rtl(&config());
        for module in [
            "nsflow_pe",
            "nsflow_subarray",
            "nsflow_simd",
            "nsflow_memory",
            "nsflow_top",
        ] {
            assert!(
                rtl.contains(&format!("module {module}")),
                "missing {module}"
            );
        }
        // Balanced module/endmodule pairs.
        assert_eq!(
            rtl.matches("module ").count(),
            rtl.matches("endmodule").count()
        );
    }

    #[test]
    fn scaling_parameters_come_from_the_config() {
        let rtl = emit_rtl(&config());
        assert!(rtl.contains("parameter H = 32"));
        assert!(rtl.contains("parameter W = 16"));
        assert!(rtl.contains("parameter N_SUBARRAYS = 16"));
        assert!(rtl.contains("parameter LANES = 64"));
        assert!(rtl.contains("parameter MEM_A1_BYTES = 1000"));
        assert!(rtl.contains("DEFAULT_NN_FOLD = 14"));
        assert!(rtl.contains("DEFAULT_VSA_FOLD = 2"));
    }

    #[test]
    fn pe_template_has_the_passing_register_path() {
        let pe = emit_pe(&config());
        assert!(pe.contains("passing_q"));
        assert!(pe.contains("streaming_q"));
        assert!(
            pe.contains("streaming_q <= passing_q"),
            "2-cycle stream hop missing"
        );
        assert!(pe.contains("mode_vsa"));
    }

    #[test]
    fn pe_widths_follow_precision() {
        let rtl = emit_pe(&config());
        assert!(rtl.contains("parameter NN_W  = 8"));
        assert!(rtl.contains("parameter SYM_W = 4"));
        let fp16 = DesignConfig {
            precision: PrecisionConfig::uniform(nsflow_tensor::DType::Fp16),
            ..config()
        };
        assert!(emit_pe(&fp16).contains("parameter NN_W  = 16"));
    }

    #[test]
    fn emission_is_deterministic() {
        assert_eq!(emit_rtl(&config()), emit_rtl(&config()));
    }
}
