//! # nsflow-fpga
//!
//! FPGA deployment model for the NSFlow backend: a device catalog, a
//! resource-estimation model calibrated against the paper's Tab. III
//! (AMD U250 deployments of NVSA/MIMONet/LVRF), and the design-config /
//! host-schedule emission that stands in for the paper's RTL
//! parameterization + XRT host code.
//!
//! The resource model's per-PE constants are *calibrated*, not invented:
//! they are fit so that the paper's own `(H, W, N)` + memory-plan points
//! land on the utilization percentages Tab. III reports (see
//! [`resources`] for the constants and the fit), then validated in tests
//! at those three points. BRAM/URAM accounting follows the paper's block
//! units (18 KB BRAM blocks, 288 KB URAM blocks).
//!
//! # Examples
//!
//! ```
//! use nsflow_fpga::{FpgaDevice, resources::{DesignResources, estimate}};
//! use nsflow_arch::{ArrayConfig, PrecisionConfig, memory::MemoryPlan};
//!
//! let cfg = ArrayConfig::new(32, 16, 16)?;
//! let plan = MemoryPlan::default();
//! let res = estimate(&cfg, &PrecisionConfig::mixed(), 64, &plan);
//! let util = res.utilization_on(&FpgaDevice::u250())?;
//! assert!(util.dsp_pct > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod error;

pub mod design;
pub mod resources;
pub mod rtl;

pub use device::FpgaDevice;
pub use error::FpgaError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, FpgaError>;
