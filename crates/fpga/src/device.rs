/// An FPGA device's resource budget.
///
/// Block units follow the paper's convention (Sec. IV-C): BRAM blocks of
/// 18 KB and URAM blocks of 288 KB.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaDevice {
    name: String,
    /// Logic LUTs.
    pub luts: u64,
    /// Flip-flops.
    pub ffs: u64,
    /// DSP slices.
    pub dsps: u64,
    /// 18 KB BRAM blocks.
    pub bram_blocks: u64,
    /// 288 KB URAM blocks.
    pub uram_blocks: u64,
    /// LUTs usable as distributed LUTRAM.
    pub lutram_luts: u64,
    /// Achievable clock for the NSFlow template, Hz.
    pub default_freq_hz: f64,
}

impl FpgaDevice {
    /// AMD Alveo U250 — the paper's deployment target (272 MHz template
    /// clock, Tab. III).
    #[must_use]
    pub fn u250() -> Self {
        FpgaDevice {
            name: "AMD Alveo U250".into(),
            luts: 1_728_000,
            ffs: 3_456_000,
            dsps: 12_288,
            bram_blocks: 5_376,
            uram_blocks: 1_280,
            lutram_luts: 791_000,
            default_freq_hz: 272.0e6,
        }
    }

    /// Zynq UltraScale+ ZCU104 — the embedded board whose ~36 MB of
    /// on-chip memory the paper cites when motivating re-organizable
    /// memory.
    #[must_use]
    pub fn zcu104() -> Self {
        FpgaDevice {
            name: "AMD ZCU104".into(),
            luts: 230_400,
            ffs: 460_800,
            dsps: 1_728,
            bram_blocks: 624,
            uram_blocks: 96,
            lutram_luts: 101_000,
            default_freq_hz: 200.0e6,
        }
    }

    /// Device name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// BRAM capacity in bytes (18 KB blocks).
    #[must_use]
    pub fn bram_bytes(&self) -> u64 {
        self.bram_blocks * 18 * 1024
    }

    /// URAM capacity in bytes (288 KB blocks).
    #[must_use]
    pub fn uram_bytes(&self) -> u64 {
        self.uram_blocks * 288 * 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u250_capacities() {
        let d = FpgaDevice::u250();
        assert_eq!(d.dsps, 12_288);
        assert_eq!(d.bram_bytes(), 5_376 * 18 * 1024);
        assert_eq!(d.uram_bytes(), 1_280 * 288 * 1024);
        assert_eq!(d.default_freq_hz, 272.0e6);
    }

    #[test]
    fn zcu104_is_smaller_everywhere() {
        let big = FpgaDevice::u250();
        let small = FpgaDevice::zcu104();
        assert!(small.luts < big.luts);
        assert!(small.dsps < big.dsps);
        assert!(small.bram_blocks < big.bram_blocks);
        assert!(small.uram_blocks < big.uram_blocks);
    }
}
