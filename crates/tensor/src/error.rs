use std::fmt;

/// Error type for tensor construction and numeric conversions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The provided data length does not match the product of the shape
    /// dimensions.
    ShapeMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A shape with zero dimensions (or a zero-sized axis where that is not
    /// meaningful) was supplied.
    EmptyShape,
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending flat or per-axis index.
        index: usize,
        /// The bound that was violated.
        bound: usize,
    },
    /// Quantization parameters could not be fitted (e.g. empty or non-finite
    /// input).
    InvalidQuantInput(String),
    /// Two tensors that must agree in shape for an operation did not.
    IncompatibleShapes {
        /// Left-hand shape rendered as text.
        lhs: String,
        /// Right-hand shape rendered as text.
        rhs: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::EmptyShape => write!(f, "shape must have at least one dimension"),
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for size {bound}")
            }
            TensorError::InvalidQuantInput(msg) => {
                write!(f, "invalid quantization input: {msg}")
            }
            TensorError::IncompatibleShapes { lhs, rhs } => {
                write!(f, "incompatible shapes {lhs} and {rhs}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let msgs = [
            TensorError::ShapeMismatch {
                expected: 4,
                actual: 3,
            }
            .to_string(),
            TensorError::EmptyShape.to_string(),
            TensorError::IndexOutOfBounds { index: 9, bound: 4 }.to_string(),
            TensorError::InvalidQuantInput("empty".into()).to_string(),
            TensorError::IncompatibleShapes {
                lhs: "[2]".into(),
                rhs: "[3]".into(),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "no trailing period: {m}");
            assert!(
                m.chars().next().is_some_and(|c| c.is_lowercase()),
                "lowercase start: {m}"
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
