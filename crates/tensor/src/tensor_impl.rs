use crate::{DType, Result, Shape, TensorError};

/// Dense row-major `f32` tensor.
///
/// All functional computation in the reproduction (NN layers, VSA binding,
/// reasoning pipelines) runs on `f32` values; lower precisions are modeled
/// by *fake quantization* (quantize→dequantize round trips through
/// [`crate::quant::QuantParams`]), exactly as a quantization-aware software
/// stack would evaluate an INT8/INT4 FPGA datapath.
///
/// # Examples
///
/// ```
/// use nsflow_tensor::{Tensor, Shape};
/// let t = Tensor::zeros(Shape::matrix(2, 2));
/// assert_eq!(t.shape().volume(), 4);
/// assert_eq!(t.data(), &[0.0; 4]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and matching data vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` differs from
    /// the shape volume.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if shape.volume() != data.len() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a zero-filled tensor.
    #[must_use]
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.volume();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    #[must_use]
    pub fn full(shape: Shape, value: f32) -> Self {
        let n = shape.volume();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a rank-1 tensor from a slice.
    #[must_use]
    pub fn from_slice(values: &[f32]) -> Self {
        Tensor {
            shape: Shape::vector(values.len()),
            data: values.to_vec(),
        }
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Read-only view of the backing data (row-major).
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the backing data.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on rank or bound violation.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        let flat = self.shape.flatten_index(index)?;
        Ok(self.data[flat])
    }

    /// Sets the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on rank or bound violation.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let flat = self.shape.flatten_index(index)?;
        self.data[flat] = value;
        Ok(())
    }

    /// Returns a tensor with the same data but a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if volumes differ.
    pub fn reshape(&self, shape: Shape) -> Result<Self> {
        if shape.volume() != self.data.len() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.volume(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise multiplication (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Applies `f` element-wise, producing a new tensor.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Scales every element by `s`.
    #[must_use]
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean (L2) norm of all elements.
    #[must_use]
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Dot product with another tensor of identical shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if shapes differ.
    pub fn dot(&self, rhs: &Tensor) -> Result<f32> {
        self.check_same_shape(rhs)?;
        Ok(self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).sum())
    }

    /// Cosine similarity with another tensor of identical shape.
    ///
    /// Returns 0.0 when either operand has zero norm.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if shapes differ.
    pub fn cosine_similarity(&self, rhs: &Tensor) -> Result<f32> {
        let d = self.dot(rhs)?;
        let denom = self.norm() * rhs.norm();
        Ok(if denom == 0.0 { 0.0 } else { d / denom })
    }

    /// Bytes required to store this tensor at the given precision.
    #[must_use]
    pub fn storage_bytes(&self, dtype: DType) -> usize {
        dtype.storage_bytes(self.data.len())
    }

    fn check_same_shape(&self, rhs: &Tensor) -> Result<()> {
        if self.shape != rhs.shape {
            return Err(TensorError::IncompatibleShapes {
                lhs: self.shape.to_string(),
                rhs: rhs.shape.to_string(),
            });
        }
        Ok(())
    }

    fn zip_with(&self, rhs: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Self> {
        self.check_same_shape(rhs)?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(Shape::new(vec![]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(dims: Vec<usize>, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(Shape::new(dims), data).unwrap()
    }

    #[test]
    fn from_vec_validates_volume() {
        assert!(Tensor::from_vec(Shape::matrix(2, 2), vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(Shape::matrix(2, 2), vec![1.0; 4]).is_ok());
    }

    #[test]
    fn indexing_and_set() {
        let mut x = Tensor::zeros(Shape::matrix(2, 3));
        x.set(&[1, 2], 5.0).unwrap();
        assert_eq!(x.at(&[1, 2]).unwrap(), 5.0);
        assert_eq!(x.at(&[0, 0]).unwrap(), 0.0);
        assert!(x.at(&[2, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let x = t(vec![2, 3], (0..6).map(|i| i as f32).collect());
        let y = x.reshape(Shape::new(vec![3, 2])).unwrap();
        assert_eq!(y.data(), x.data());
        assert!(x.reshape(Shape::vector(5)).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = t(vec![3], vec![1.0, 2.0, 3.0]);
        let b = t(vec![3], vec![4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
        let c = t(vec![2], vec![0.0, 0.0]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn norm_and_cosine() {
        let a = t(vec![2], vec![3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
        let b = a.scale(2.0);
        assert!((a.cosine_similarity(&b).unwrap() - 1.0).abs() < 1e-6);
        let zero = Tensor::zeros(Shape::vector(2));
        assert_eq!(a.cosine_similarity(&zero).unwrap(), 0.0);
    }

    #[test]
    fn map_and_sum() {
        let a = t(vec![4], vec![1.0, -2.0, 3.0, -4.0]);
        let relu = a.map(|x| x.max(0.0));
        assert_eq!(relu.data(), &[1.0, 0.0, 3.0, 0.0]);
        assert_eq!(a.sum(), -2.0);
    }

    #[test]
    fn storage_bytes_respects_dtype() {
        let a = Tensor::zeros(Shape::vector(1024));
        assert_eq!(a.storage_bytes(DType::Fp32), 4096);
        assert_eq!(a.storage_bytes(DType::Int4), 512);
    }

    #[test]
    fn default_is_scalar_zero() {
        let d = Tensor::default();
        assert_eq!(d.shape().rank(), 0);
        assert_eq!(d.data(), &[0.0]);
    }
}
