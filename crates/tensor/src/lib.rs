//! # nsflow-tensor
//!
//! Shared dense-tensor and mixed-precision numerics substrate for the NSFlow
//! reproduction.
//!
//! The NSFlow hardware template supports mixed precision "ranging from
//! FP16/8 to INT8/4 in different components of the workload" (paper
//! Sec. IV-D). This crate provides:
//!
//! - [`Shape`] / [`Tensor`]: a minimal row-major dense tensor used by the
//!   neural (`nsflow-nn`) and vector-symbolic (`nsflow-vsa`) substrates,
//! - [`DType`]: the precision lattice (FP32, FP16, INT8, INT4) with exact
//!   bit/byte accounting used for memory-footprint results (paper Tab. IV),
//! - [`quant`]: symmetric fixed-point quantization and software FP16
//!   emulation, used both functionally (fake-quantized execution for the
//!   reasoning-accuracy harness) and for storage sizing,
//! - [`par`]: the deterministic input-order-chunked thread pool and the
//!   [`par::KernelOptions`] threads knob shared by the DSE sweeps, the
//!   blocked GEMM kernels and the spectral VSA engine.
//!
//! # Examples
//!
//! ```
//! use nsflow_tensor::{Tensor, Shape, DType, quant::QuantParams};
//!
//! let t = Tensor::from_vec(Shape::new(vec![2, 3]), vec![0.5, -1.0, 2.0, 0.0, 1.5, -0.25])?;
//! let q = QuantParams::fit(t.data(), DType::Int8)?;
//! let deq = q.fake_quantize_slice(t.data());
//! assert_eq!(deq.len(), 6);
//! # Ok::<(), nsflow_tensor::TensorError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dtype;
mod error;
mod shape;
mod tensor_impl;

pub mod par;
pub mod quant;

pub use dtype::DType;
pub use error::TensorError;
pub use shape::Shape;
pub use tensor_impl::Tensor;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
