use std::fmt;

/// Numeric precision supported by the NSFlow compute units.
///
/// The paper's mixed-precision scheme (Sec. IV-D) quantizes neural kernels
/// to INT8 and symbolic kernels to INT4 ("MP" in Tab. IV), with FP32/FP16
/// as reference precisions. Bit widths here drive both the functional
/// fake-quantization in [`crate::quant`] and the byte-exact memory
/// accounting used by the FPGA memory planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DType {
    /// 4-bit signed fixed point (symmetric, range −8..=7).
    Int4,
    /// 8-bit signed fixed point (symmetric, range −128..=127).
    Int8,
    /// IEEE-754 binary16, software emulated (round-through-bits).
    Fp16,
    /// IEEE-754 binary32 (native `f32`).
    Fp32,
}

impl DType {
    /// Width of one element in bits.
    ///
    /// # Examples
    ///
    /// ```
    /// use nsflow_tensor::DType;
    /// assert_eq!(DType::Int4.bits(), 4);
    /// assert_eq!(DType::Fp32.bits(), 32);
    /// ```
    #[must_use]
    pub const fn bits(self) -> u32 {
        match self {
            DType::Int4 => 4,
            DType::Int8 => 8,
            DType::Fp16 => 16,
            DType::Fp32 => 32,
        }
    }

    /// Bytes required to store `elems` elements at this precision,
    /// rounding the total *bit* count up to whole bytes (INT4 packs two
    /// elements per byte, as the FPGA BRAM packing does).
    ///
    /// # Examples
    ///
    /// ```
    /// use nsflow_tensor::DType;
    /// assert_eq!(DType::Int4.storage_bytes(3), 2); // 12 bits -> 2 bytes
    /// assert_eq!(DType::Int8.storage_bytes(3), 3);
    /// ```
    #[must_use]
    pub const fn storage_bytes(self, elems: usize) -> usize {
        (elems * self.bits() as usize).div_ceil(8)
    }

    /// Whether this precision is an integer fixed-point format.
    #[must_use]
    pub const fn is_integer(self) -> bool {
        matches!(self, DType::Int4 | DType::Int8)
    }

    /// Largest representable quantized magnitude for integer formats
    /// (`None` for floating formats).
    #[must_use]
    pub const fn integer_max(self) -> Option<i32> {
        match self {
            DType::Int4 => Some(7),
            DType::Int8 => Some(127),
            DType::Fp16 | DType::Fp32 => None,
        }
    }

    /// Smallest representable quantized value for integer formats.
    #[must_use]
    pub const fn integer_min(self) -> Option<i32> {
        match self {
            DType::Int4 => Some(-8),
            DType::Int8 => Some(-128),
            DType::Fp16 | DType::Fp32 => None,
        }
    }

    /// All precisions, widest first — the order used by the Tab. IV sweep.
    #[must_use]
    pub const fn all() -> [DType; 4] {
        [DType::Fp32, DType::Fp16, DType::Int8, DType::Int4]
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::Int4 => "INT4",
            DType::Int8 => "INT8",
            DType::Fp16 => "FP16",
            DType::Fp32 => "FP32",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths() {
        assert_eq!(DType::Int4.bits(), 4);
        assert_eq!(DType::Int8.bits(), 8);
        assert_eq!(DType::Fp16.bits(), 16);
        assert_eq!(DType::Fp32.bits(), 32);
    }

    #[test]
    fn int4_packs_two_per_byte() {
        assert_eq!(DType::Int4.storage_bytes(0), 0);
        assert_eq!(DType::Int4.storage_bytes(1), 1);
        assert_eq!(DType::Int4.storage_bytes(2), 1);
        assert_eq!(DType::Int4.storage_bytes(1024), 512);
    }

    #[test]
    fn storage_matches_paper_footprint_ratios() {
        // Tab. IV: a model taking 32 MB at FP32 takes 16/8/4 MB at
        // FP16/INT8/INT4.
        let elems = 8 * 1024 * 1024; // 8 Mi elements = 32 MB at FP32
        assert_eq!(DType::Fp32.storage_bytes(elems), 32 << 20);
        assert_eq!(DType::Fp16.storage_bytes(elems), 16 << 20);
        assert_eq!(DType::Int8.storage_bytes(elems), 8 << 20);
        assert_eq!(DType::Int4.storage_bytes(elems), 4 << 20);
    }

    #[test]
    fn integer_ranges() {
        assert_eq!(DType::Int4.integer_min(), Some(-8));
        assert_eq!(DType::Int4.integer_max(), Some(7));
        assert_eq!(DType::Int8.integer_min(), Some(-128));
        assert_eq!(DType::Int8.integer_max(), Some(127));
        assert_eq!(DType::Fp32.integer_max(), None);
        assert!(DType::Int8.is_integer());
        assert!(!DType::Fp16.is_integer());
    }

    #[test]
    fn ordering_is_by_width() {
        assert!(DType::Int4 < DType::Int8);
        assert!(DType::Int8 < DType::Fp16);
        assert!(DType::Fp16 < DType::Fp32);
    }

    #[test]
    fn display_names() {
        assert_eq!(DType::Int4.to_string(), "INT4");
        assert_eq!(DType::Fp32.to_string(), "FP32");
    }
}
