//! Symmetric fixed-point quantization and software FP16 emulation.
//!
//! NSFlow evaluates mixed precision by quantizing NN kernels to INT8 and
//! symbolic kernels to INT4 (paper Sec. IV-D, Tab. IV). This module provides
//! the functional model of that datapath: per-tensor symmetric scaling for
//! integer formats and a round-through-bits emulation of IEEE binary16.
//!
//! Quantized execution in the reproduction uses *fake quantization*: values
//! are quantized and immediately dequantized, so downstream arithmetic sees
//! exactly the value lattice an integer datapath would produce, while the
//! host math stays in `f32`.

use crate::{DType, Result, TensorError};

/// Per-tensor symmetric quantization parameters.
///
/// # Examples
///
/// ```
/// use nsflow_tensor::{DType, quant::QuantParams};
/// let q = QuantParams::fit(&[-1.0, 0.5, 2.0], DType::Int8)?;
/// let v = q.fake_quantize(2.0);
/// assert!((v - 2.0).abs() < 0.02);
/// # Ok::<(), nsflow_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    dtype: DType,
    scale: f32,
}

impl QuantParams {
    /// Builds parameters with an explicit scale.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidQuantInput`] if `scale` is not finite
    /// and positive, or if `dtype` is not an integer format.
    pub fn with_scale(dtype: DType, scale: f32) -> Result<Self> {
        if !dtype.is_integer() {
            return Err(TensorError::InvalidQuantInput(format!(
                "dtype {dtype} is not an integer format"
            )));
        }
        if !(scale.is_finite() && scale > 0.0) {
            return Err(TensorError::InvalidQuantInput(format!(
                "scale {scale} must be positive"
            )));
        }
        Ok(QuantParams { dtype, scale })
    }

    /// Fits symmetric parameters to cover the maximum absolute value of
    /// `values`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidQuantInput`] if `values` is empty,
    /// contains non-finite entries, or `dtype` is not an integer format.
    pub fn fit(values: &[f32], dtype: DType) -> Result<Self> {
        if values.is_empty() {
            return Err(TensorError::InvalidQuantInput("empty input".into()));
        }
        let mut max_abs = 0.0f32;
        for &v in values {
            if !v.is_finite() {
                return Err(TensorError::InvalidQuantInput(format!(
                    "non-finite value {v}"
                )));
            }
            max_abs = max_abs.max(v.abs());
        }
        let qmax = dtype
            .integer_max()
            .ok_or_else(|| TensorError::InvalidQuantInput(format!("{dtype} is not integer")))?
            as f32;
        // An all-zero tensor still gets a valid (arbitrary) scale.
        let scale = if max_abs == 0.0 {
            1.0 / qmax
        } else {
            max_abs / qmax
        };
        QuantParams::with_scale(dtype, scale)
    }

    /// The integer format these parameters target.
    #[must_use]
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// The positive real value represented by quantized code `1`.
    #[must_use]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Quantizes one value to its integer code (round-to-nearest, saturating).
    #[must_use]
    pub fn quantize(&self, value: f32) -> i32 {
        let (lo, hi) = (
            self.dtype.integer_min().expect("integer dtype"),
            self.dtype.integer_max().expect("integer dtype"),
        );
        let q = (value / self.scale).round();
        // Saturate before casting so huge f32 values stay in range.
        q.clamp(lo as f32, hi as f32) as i32
    }

    /// Dequantizes an integer code to its real value.
    #[must_use]
    pub fn dequantize(&self, code: i32) -> f32 {
        code as f32 * self.scale
    }

    /// Quantize→dequantize round trip of one value.
    #[must_use]
    pub fn fake_quantize(&self, value: f32) -> f32 {
        self.dequantize(self.quantize(value))
    }

    /// Quantize→dequantize round trip over a slice.
    #[must_use]
    pub fn fake_quantize_slice(&self, values: &[f32]) -> Vec<f32> {
        values.iter().map(|&v| self.fake_quantize(v)).collect()
    }

    /// Worst-case absolute rounding error (half a quantization step).
    #[must_use]
    pub fn max_rounding_error(&self) -> f32 {
        self.scale * 0.5
    }
}

/// Rounds an `f32` through IEEE-754 binary16 (round-to-nearest-even),
/// emulating FP16 storage/compute without a hardware half type.
///
/// Values above the FP16 max (65504) saturate to ±max rather than overflow
/// to infinity — matching an FPGA datapath with saturating arithmetic.
///
/// # Examples
///
/// ```
/// use nsflow_tensor::quant::round_to_f16;
/// assert_eq!(round_to_f16(1.0), 1.0);
/// assert!((round_to_f16(0.1) - 0.1).abs() < 1e-4);
/// assert_eq!(round_to_f16(1.0e6), 65504.0);
/// ```
#[must_use]
pub fn round_to_f16(value: f32) -> f32 {
    const F16_MAX: f32 = 65504.0;
    if value.is_nan() {
        return value;
    }
    let clamped = value.clamp(-F16_MAX, F16_MAX);
    f16_bits_to_f32(f32_to_f16_bits(clamped))
}

/// Applies the precision `dtype` to a single value: identity for FP32,
/// binary16 rounding for FP16, fitted fake quantization for integer formats
/// (caller supplies `params` for those).
///
/// # Panics
///
/// Panics if `dtype` is an integer format and `params` is `None` — integer
/// quantization is meaningless without a scale.
#[must_use]
pub fn apply_precision(value: f32, dtype: DType, params: Option<&QuantParams>) -> f32 {
    match dtype {
        DType::Fp32 => value,
        DType::Fp16 => round_to_f16(value),
        DType::Int8 | DType::Int4 => {
            let p = params.expect("integer precision requires QuantParams");
            assert_eq!(p.dtype(), dtype, "QuantParams dtype must match");
            p.fake_quantize(value)
        }
    }
}

/// Applies the precision `dtype` to a slice, fitting integer parameters to
/// the slice itself (per-tensor quantization).
///
/// # Errors
///
/// Propagates [`TensorError::InvalidQuantInput`] from parameter fitting.
pub fn quantize_slice_to(values: &[f32], dtype: DType) -> Result<Vec<f32>> {
    match dtype {
        DType::Fp32 => Ok(values.to_vec()),
        DType::Fp16 => Ok(values.iter().map(|&v| round_to_f16(v)).collect()),
        DType::Int8 | DType::Int4 => {
            let p = QuantParams::fit(values, dtype)?;
            Ok(p.fake_quantize_slice(values))
        }
    }
}

fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let frac = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf/NaN (clamped earlier, but keep a total function).
        return sign | 0x7c00 | if frac != 0 { 0x0200 } else { 0 };
    }
    // Re-bias exponent from 127 to 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7bff; // saturate to f16 max
    }
    if unbiased >= -14 {
        // Normal f16. Round-to-nearest-even on the 13 truncated bits.
        let mut half_exp = (unbiased + 15) as u32;
        let mut half_frac = frac >> 13;
        let round_bits = frac & 0x1fff;
        if round_bits > 0x1000 || (round_bits == 0x1000 && (half_frac & 1) == 1) {
            half_frac += 1;
            if half_frac == 0x400 {
                half_frac = 0;
                half_exp += 1;
                if half_exp >= 31 {
                    return sign | 0x7bff;
                }
            }
        }
        return sign | ((half_exp as u16) << 10) | (half_frac as u16);
    }
    if unbiased >= -24 {
        // Subnormal f16.
        let shift = (-14 - unbiased) as u32;
        let full = frac | 0x0080_0000; // implicit leading 1
        let shifted = full >> (13 + shift);
        let rem = full & ((1u32 << (13 + shift)) - 1);
        let halfway = 1u32 << (12 + shift);
        let mut half_frac = shifted;
        if rem > halfway || (rem == halfway && (half_frac & 1) == 1) {
            half_frac += 1;
        }
        return sign | (half_frac as u16);
    }
    sign // underflow to signed zero
}

fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let frac = (h & 0x3ff) as u32;
    let bits = if exp == 0 {
        if frac == 0 {
            sign
        } else {
            // Subnormal: normalize.
            let mut e = -1i32;
            let mut f = frac;
            while f & 0x400 == 0 {
                f <<= 1;
                e -= 1;
            }
            f &= 0x3ff;
            sign | (((114 + e) as u32) << 23) | (f << 13)
        }
    } else if exp == 31 {
        sign | 0x7f80_0000 | (frac << 13)
    } else {
        sign | ((exp + 112) << 23) | (frac << 13)
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_rejects_bad_input() {
        assert!(QuantParams::fit(&[], DType::Int8).is_err());
        assert!(QuantParams::fit(&[f32::NAN], DType::Int8).is_err());
        assert!(QuantParams::fit(&[1.0], DType::Fp32).is_err());
        assert!(QuantParams::with_scale(DType::Int8, 0.0).is_err());
        assert!(QuantParams::with_scale(DType::Int8, -1.0).is_err());
        assert!(QuantParams::with_scale(DType::Fp16, 1.0).is_err());
    }

    #[test]
    fn fit_covers_max_abs() {
        let q = QuantParams::fit(&[-3.0, 1.0, 2.5], DType::Int8).unwrap();
        assert_eq!(q.quantize(-3.0), -127);
        assert_eq!(q.quantize(3.0), 127);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn all_zero_input_gets_valid_scale() {
        let q = QuantParams::fit(&[0.0, 0.0], DType::Int4).unwrap();
        assert!(q.scale() > 0.0);
        assert_eq!(q.fake_quantize(0.0), 0.0);
    }

    #[test]
    fn quantize_saturates() {
        let q = QuantParams::with_scale(DType::Int4, 1.0).unwrap();
        assert_eq!(q.quantize(100.0), 7);
        assert_eq!(q.quantize(-100.0), -8);
        assert_eq!(q.quantize(f32::MAX), 7);
    }

    #[test]
    fn fake_quantize_error_bounded_by_half_step() {
        let q = QuantParams::fit(&[-1.0, 1.0], DType::Int8).unwrap();
        for i in -100..=100 {
            let v = i as f32 / 100.0;
            let err = (q.fake_quantize(v) - v).abs();
            assert!(err <= q.max_rounding_error() + 1e-7, "v={v} err={err}");
        }
    }

    #[test]
    fn int4_is_coarser_than_int8() {
        let values: Vec<f32> = (-50..=50).map(|i| i as f32 / 50.0).collect();
        let e8: f32 = {
            let q = QuantParams::fit(&values, DType::Int8).unwrap();
            values.iter().map(|&v| (q.fake_quantize(v) - v).abs()).sum()
        };
        let e4: f32 = {
            let q = QuantParams::fit(&values, DType::Int4).unwrap();
            values.iter().map(|&v| (q.fake_quantize(v) - v).abs()).sum()
        };
        assert!(e4 > e8, "INT4 total error {e4} must exceed INT8 {e8}");
    }

    #[test]
    fn f16_round_trip_exact_for_representable() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25, 1024.0] {
            assert_eq!(round_to_f16(v), v, "exactly representable {v}");
        }
    }

    #[test]
    fn f16_rounds_inexact_values() {
        let v = 0.1f32;
        let r = round_to_f16(v);
        assert_ne!(r, v);
        assert!((r - v).abs() < 1e-4);
    }

    #[test]
    fn f16_saturates_above_max() {
        assert_eq!(round_to_f16(1.0e9), 65504.0);
        assert_eq!(round_to_f16(-1.0e9), -65504.0);
    }

    #[test]
    fn f16_subnormals_preserved_approximately() {
        let v = 1.0e-5f32; // subnormal in f16 (min normal ≈ 6.1e-5)
        let r = round_to_f16(v);
        assert!(r > 0.0);
        assert!((r - v).abs() / v < 0.05, "v={v} r={r}");
    }

    #[test]
    fn f16_tiny_underflows_to_zero() {
        assert_eq!(round_to_f16(1.0e-12), 0.0);
        assert_eq!(round_to_f16(-1.0e-12), -0.0);
    }

    #[test]
    fn f16_nan_stays_nan() {
        assert!(round_to_f16(f32::NAN).is_nan());
    }

    #[test]
    fn apply_precision_dispatch() {
        assert_eq!(apply_precision(0.1, DType::Fp32, None), 0.1);
        assert_eq!(apply_precision(1.0, DType::Fp16, None), 1.0);
        let q = QuantParams::fit(&[1.0], DType::Int8).unwrap();
        let v = apply_precision(0.5, DType::Int8, Some(&q));
        assert!((v - 0.5).abs() <= q.max_rounding_error());
    }

    #[test]
    #[should_panic(expected = "integer precision requires QuantParams")]
    fn apply_precision_int_requires_params() {
        let _ = apply_precision(0.5, DType::Int8, None);
    }

    #[test]
    fn quantize_slice_to_matches_dtype() {
        let values = vec![-0.7, 0.3, 0.9];
        let f32_out = quantize_slice_to(&values, DType::Fp32).unwrap();
        assert_eq!(f32_out, values);
        let i4 = quantize_slice_to(&values, DType::Int4).unwrap();
        for (o, v) in i4.iter().zip(&values) {
            assert!((o - v).abs() <= 0.9 / 7.0 / 2.0 + 1e-6);
        }
    }

    #[test]
    fn f16_round_to_nearest_even() {
        // 2049 is between 2048 and 2050 in f16 (step = 2 at this magnitude);
        // round-to-even picks 2048.
        assert_eq!(round_to_f16(2049.0), 2048.0);
        assert_eq!(round_to_f16(2051.0), 2052.0);
    }
}
