//! Deterministic thread-parallel mapping shared by every software kernel.
//!
//! PR 1 buried a deterministic `std::thread::scope` pool inside
//! `nsflow-dse::eval`; the functional kernel engine (blocked GEMM in
//! `nsflow-nn`, the spectral VSA engine in `nsflow-vsa`, the workload
//! pipelines) needs the same primitive, so it lives here in the base crate
//! and is re-exported as `nsflow_core::par`.
//!
//! # Determinism contract
//!
//! [`parallel_map`] splits the work list into **contiguous chunks in input
//! order**, one worker per chunk, and returns results in input order.
//! Reductions that scan the output with strict-`<` "first minimum wins"
//! tie-breaking therefore produce bit-identical results to a serial scan,
//! regardless of thread count — the property the DSE equivalence proptests
//! (`crates/dse/tests/parallel_equivalence.rs`) and the GEMM/VSA kernel
//! proptests pin down. Kernels built on it additionally keep each output
//! element owned by exactly one worker, so floating-point accumulation
//! order never depends on the thread count either.

/// Thread-count knob threaded through the functional kernel engine
/// (blocked GEMM, the spectral resonator, the workload pipelines).
///
/// The knob only changes *wall time*: every kernel taking a
/// `KernelOptions` partitions outputs so each element is produced by one
/// worker with a fixed accumulation order, making results independent of
/// the thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelOptions {
    /// Worker threads; `None` selects the host's available parallelism,
    /// `Some(1)` forces the serial path.
    pub threads: Option<usize>,
}

impl KernelOptions {
    /// Serial execution (no worker threads).
    #[must_use]
    pub const fn serial() -> Self {
        KernelOptions { threads: Some(1) }
    }

    /// One worker per available hardware thread.
    #[must_use]
    pub const fn auto() -> Self {
        KernelOptions { threads: None }
    }

    /// A fixed worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "thread count must be nonzero");
        KernelOptions {
            threads: Some(threads),
        }
    }

    /// The concrete worker count this knob resolves to on this host.
    #[must_use]
    pub fn resolve(&self) -> usize {
        self.threads.unwrap_or_else(available_threads).max(1)
    }
}

/// The host's available parallelism (1 when it cannot be queried).
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` OS threads, returning results
/// **in input order**. Contiguous chunking keeps reductions deterministic:
/// scanning the output with strict-`<` comparisons visits candidates in
/// exactly the serial order. `threads <= 1` (or a single item) short-
/// circuits to a plain serial map with zero threading overhead.
///
/// # Panics
///
/// Propagates a panic from `f` (the worker's panic is resurfaced on the
/// calling thread).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    })
}

/// Runs `f` once per contiguous chunk of `0..len`, in parallel, passing
/// each chunk's half-open index range. This is the "each worker owns a
/// disjoint slice of the output" building block the blocked GEMM kernels
/// use: `f` receives `(start, end)` and must only touch outputs in that
/// range, which makes the result independent of the thread count by
/// construction.
pub fn parallel_chunks<F>(len: usize, threads: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = threads.clamp(1, len.max(1));
    if threads == 1 {
        f(0, len);
        return;
    }
    let chunk = len.div_ceil(threads);
    let f = &f;
    std::thread::scope(|s| {
        let mut start = 0usize;
        while start < len {
            let end = (start + chunk).min(len);
            s.spawn(move || f(start, end));
            start = end;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 3, 8] {
            let out = parallel_map(&items, threads, |&x| x * 2);
            assert_eq!(
                out,
                items.iter().map(|&x| x * 2).collect::<Vec<_>>(),
                "t={threads}"
            );
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_chunks_covers_every_index_once() {
        use std::sync::Mutex;
        for (len, threads) in [(0usize, 4usize), (1, 4), (10, 3), (64, 8), (7, 16)] {
            let seen = Mutex::new(vec![0u32; len]);
            parallel_chunks(len, threads, |start, end| {
                let mut s = seen.lock().unwrap();
                for i in start..end {
                    s[i] += 1;
                }
            });
            assert!(
                seen.into_inner().unwrap().iter().all(|&c| c == 1),
                "len={len} t={threads}"
            );
        }
    }

    #[test]
    fn kernel_options_resolve() {
        assert_eq!(KernelOptions::serial().resolve(), 1);
        assert_eq!(KernelOptions::with_threads(3).resolve(), 3);
        assert!(KernelOptions::auto().resolve() >= 1);
        assert_eq!(KernelOptions::default(), KernelOptions::auto());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_threads_rejected() {
        let _ = KernelOptions::with_threads(0);
    }
}
