use std::fmt;

use crate::TensorError;

/// Row-major tensor shape.
///
/// # Examples
///
/// ```
/// use nsflow_tensor::Shape;
/// let s = Shape::new(vec![16, 64, 160, 160]);
/// assert_eq!(s.rank(), 4);
/// assert_eq!(s.volume(), 16 * 64 * 160 * 160);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from its dimensions.
    #[must_use]
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Creates a rank-1 shape.
    #[must_use]
    pub fn vector(len: usize) -> Self {
        Shape { dims: vec![len] }
    }

    /// Creates a rank-2 shape `[rows, cols]`.
    #[must_use]
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape {
            dims: vec![rows, cols],
        }
    }

    /// Number of axes.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Dimensions as a slice.
    #[must_use]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Size of axis `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds {
                index: axis,
                bound: self.dims.len(),
            })
    }

    /// Total number of elements (product of dimensions; 1 for rank 0).
    #[must_use]
    pub fn volume(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides (elements, not bytes).
    #[must_use]
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-index to a row-major flat offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index rank differs
    /// from the shape rank or any coordinate exceeds its axis.
    pub fn flatten_index(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: index.len(),
                bound: self.dims.len(),
            });
        }
        let strides = self.strides();
        let mut flat = 0usize;
        for ((&i, &d), &s) in index.iter().zip(&self.dims).zip(&strides) {
            if i >= d {
                return Err(TensorError::IndexOutOfBounds { index: i, bound: d });
            }
            flat += i * s;
        }
        Ok(flat)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_rank() {
        let s = Shape::new(vec![1, 4, 256]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.volume(), 1024);
    }

    #[test]
    fn scalar_shape_has_volume_one() {
        let s = Shape::new(vec![]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.volume(), 1);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn flatten_index_round_trip() {
        let s = Shape::new(vec![2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let flat = s.flatten_index(&[i, j, k]).unwrap();
                    assert!(flat < s.volume());
                    assert!(seen.insert(flat), "flat offsets must be unique");
                }
            }
        }
        assert_eq!(seen.len(), s.volume());
    }

    #[test]
    fn flatten_index_rejects_out_of_bounds() {
        let s = Shape::new(vec![2, 3]);
        assert!(s.flatten_index(&[2, 0]).is_err());
        assert!(s.flatten_index(&[0]).is_err());
        assert!(s.flatten_index(&[0, 0, 0]).is_err());
    }

    #[test]
    fn display_renders_brackets() {
        assert_eq!(Shape::new(vec![7, 4, 256]).to_string(), "[7, 4, 256]");
        assert_eq!(Shape::new(vec![]).to_string(), "[]");
    }

    #[test]
    fn conversions() {
        let s: Shape = vec![2, 2].into();
        assert_eq!(s, Shape::matrix(2, 2));
        let s2: Shape = (&[5usize][..]).into();
        assert_eq!(s2, Shape::vector(5));
    }
}
