//! # nsflow-vsa
//!
//! Vector-symbolic architecture (VSA) substrate for the NSFlow reproduction.
//!
//! The symbolic half of every workload the paper evaluates (NVSA, MIMONet,
//! LVRF, PrAE) is built on *block codes*: hypervectors partitioned into
//! blocks, combined with **blockwise circular convolution** (binding),
//! inverted with **blockwise circular correlation** (inverse binding), and
//! compared with normalized similarity (`match_prob` in the paper's
//! Listing 1 trace). This crate implements those kernels functionally and
//! exactly — they are the values the reasoning-accuracy harness (Tab. IV)
//! quantizes, and the operator shapes the dataflow-graph generator sizes.
//!
//! Contents:
//!
//! - [`BlockCode`]: a hypervector of `n_blocks × block_dim` elements,
//! - [`ops`]: circular convolution/correlation, bundling, permutation,
//! - [`Codebook`]: random item memories (bipolar and unitary) with cleanup,
//! - [`fft`]: O(d·log d) convolution/correlation for software consumers,
//! - [`engine`]: spectral-cached, thread-parallel codebook + resonator
//!   kernels for the functional workload path,
//! - [`sparse`]: sparse block codes (the one-hot-per-block family NVSA
//!   uses), whose binding reduces to modular index arithmetic,
//! - [`resonator`]: a resonator network for factorizing bound products,
//!   the iterative inference NVSA uses during rule abduction.
//!
//! # Examples
//!
//! ```
//! use nsflow_vsa::{BlockCode, Codebook};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let book = Codebook::random_unitary(8, 4, 128, &mut rng);
//! let a = book.codeword(2).clone();
//! let b = book.codeword(5).clone();
//! let bound = a.bind(&b)?;
//! let recovered = bound.unbind(&b)?;
//! assert_eq!(book.cleanup(&recovered)?, 2);
//! # Ok::<(), nsflow_vsa::VsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod codebook;
mod error;

pub mod engine;
pub mod fft;
pub mod ops;
pub mod resonator;
pub mod sparse;

pub use block::BlockCode;
pub use codebook::Codebook;
pub use error::VsaError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, VsaError>;
