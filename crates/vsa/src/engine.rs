//! Spectral-cached VSA kernel engine.
//!
//! The reference kernels in [`crate::ops`] and [`crate::resonator`]
//! recompute everything from scratch: every bind/unbind is an O(d²)
//! direct convolution and every codebook projection walks the codewords
//! one [`BlockCode::similarity`] call at a time. That is the right shape
//! for the hardware cross-check oracles, but the functional workload path
//! (the reasoning pipeline, the accuracy harness, the scalability
//! experiments) runs these kernels millions of times and only cares about
//! the values.
//!
//! This module is the fast path:
//!
//! - [`SpectralCodebook`] precomputes, **once**, the per-codeword block
//!   spectra (for spectral-domain superposition), a flat row-major
//!   codeword matrix, and the per-codeword norms. Cleanup, similarity
//!   scans, and softmax projections become one blocked matvec over the
//!   matrix ([`nsflow_nn::gemm::matvec_fast`]) plus a scale — and are
//!   **bit-identical** to the reference `Codebook` methods, because the
//!   matvec folds each row in the same left-to-right order as
//!   [`BlockCode::similarity`].
//! - [`SpectralResonator`] runs the resonator's refinement loop entirely
//!   in the spectral domain. Factor estimates are kept as cached spectra;
//!   binding the "other" estimates is a pointwise spectral product, and
//!   unbinding from the target is a pointwise product with the conjugate
//!   — so each factor update costs **one inverse FFT** (for the residual
//!   that feeds the codebook projection) instead of the reference's chain
//!   of O(d²) convolutions. The probability-weighted superposition that
//!   feeds back into the next iteration is assembled directly from the
//!   cached codeword spectra, so no forward FFT ever runs inside the
//!   loop.
//!
//! # Equivalence with the reference resonator
//!
//! The spectral loop mirrors [`Resonator::factorize`] decision for
//! decision: the same softmax temperature clamp, the same
//! last-of-equal-maxima argmax, and the same "no index changed and at
//! least two sweeps ran" convergence rule. Two deliberate numerical
//! differences are documented here and bounded by the equivalence tests:
//!
//! 1. Residuals are produced by the f64 FFT instead of the f32 direct
//!    kernel, so their entries differ from the reference by FFT rounding
//!    (~1e-6 relative — the f64 transform is *more* accurate than the f32
//!    O(d²) sum it replaces).
//! 2. Estimates are not re-normalized each iteration. Cosine similarity
//!    is invariant under positive scaling of the query, and the
//!    probability-weighted superposition of unit-norm codewords keeps
//!    every estimate's norm in `[~1/√N, 1]`, so skipping the reference's
//!    `normalize()` changes no similarity by more than rounding and never
//!    under/overflows.
//!
//! Both effects perturb softmax inputs by ≲1e-5, far below the
//! inter-codeword similarity gaps (~0.1 at the dimensions the workloads
//! use), so the *index trajectory* — and therefore the returned
//! factorization — matches the reference exactly on the tested
//! geometries.
//!
//! # Fallback contract
//!
//! The spectral path needs [`crate::fft::fast_path_applies`] to hold for
//! the block dimension (power of two, ≥ 8). For any other geometry
//! [`SpectralResonator::factorize`] transparently delegates to the
//! reference [`Resonator`], so the engine is total over every geometry
//! the reference accepts.

use nsflow_nn::gemm;
use nsflow_telemetry as telemetry;
use nsflow_tensor::par::KernelOptions;

use crate::fft::{self, Complex, FftPlan};
use crate::resonator::{Factorization, Resonator, ResonatorConfig};
use crate::{ops, BlockCode, Codebook, Result};

/// A [`Codebook`] with precomputed spectral and matrix caches.
///
/// Construction cost is one FFT per codeword block plus one pass over the
/// data; every subsequent cleanup/similarity/projection call amortizes it.
///
/// # Examples
///
/// ```
/// use nsflow_vsa::{Codebook, engine::SpectralCodebook};
/// use nsflow_tensor::par::KernelOptions;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let book = Codebook::random_unitary(16, 4, 64, &mut rng);
/// let engine = SpectralCodebook::new(book.clone());
/// let query = book.codeword(9);
/// assert_eq!(engine.cleanup(query, &KernelOptions::auto())?, 9);
/// # Ok::<(), nsflow_vsa::VsaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpectralCodebook {
    book: Codebook,
    n_blocks: usize,
    block_dim: usize,
    dim: usize,
    /// Row-major `len × dim` matrix of codeword data.
    flat: Vec<f32>,
    /// Per-codeword L2 norms, computed with the same f32 fold as
    /// [`BlockCode::similarity`] so quotients are bit-identical.
    norms: Vec<f32>,
    /// Per-codeword blockwise spectra (block FFTs concatenated), present
    /// iff the block dimension admits the radix-2 fast path.
    spectra: Option<Vec<Vec<Complex>>>,
}

impl SpectralCodebook {
    /// Builds the caches for `book`.
    #[must_use]
    pub fn new(book: Codebook) -> Self {
        let first = book.codeword(0);
        let (n_blocks, block_dim) = (first.n_blocks(), first.block_dim());
        let dim = n_blocks * block_dim;
        let mut flat = Vec::with_capacity(book.len() * dim);
        let mut norms = Vec::with_capacity(book.len());
        for cw in book.codewords() {
            flat.extend_from_slice(cw.data());
            norms.push(cw.data().iter().map(|x| x * x).sum::<f32>().sqrt());
        }
        let spectra = fft::fast_path_applies(block_dim).then(|| {
            let plan = fft::plan(block_dim);
            book.codewords()
                .iter()
                .map(|cw| spectrum_of(cw.data(), n_blocks, &plan))
                .collect()
        });
        SpectralCodebook {
            book,
            n_blocks,
            block_dim,
            dim,
            flat,
            norms,
            spectra,
        }
    }

    /// The wrapped codebook.
    #[must_use]
    pub fn book(&self) -> &Codebook {
        &self.book
    }

    /// Number of codewords.
    #[must_use]
    pub fn len(&self) -> usize {
        self.book.len()
    }

    /// Whether the codebook is empty (never true for a constructed one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.book.is_empty()
    }

    /// Whether the spectral caches are live (block dimension admits the
    /// radix-2 fast path); when false the resonator delegates to the
    /// reference implementation.
    #[must_use]
    pub fn is_spectral(&self) -> bool {
        self.spectra.is_some()
    }

    /// Similarities of `query` against every codeword as one blocked
    /// matvec — bit-identical to [`Codebook::similarities`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::VsaError::GeometryMismatch`] on geometry
    /// disagreement.
    pub fn similarities(&self, query: &BlockCode, options: &KernelOptions) -> Result<Vec<f32>> {
        self.book.codeword(0).check_geometry(query)?;
        Ok(self.similarities_flat(query.data(), options))
    }

    /// Cleanup memory: index of the most similar codeword (first of equal
    /// maxima, matching [`Codebook::cleanup`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::VsaError::GeometryMismatch`] on geometry
    /// disagreement.
    pub fn cleanup(&self, query: &BlockCode, options: &KernelOptions) -> Result<usize> {
        let sims = self.similarities(query, options)?;
        let mut best = 0usize;
        let mut best_sim = f32::NEG_INFINITY;
        for (i, &s) in sims.iter().enumerate() {
            if s > best_sim {
                best_sim = s;
                best = i;
            }
        }
        Ok(best)
    }

    /// Softmax match probabilities — bit-identical to
    /// [`Codebook::match_prob`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::VsaError::GeometryMismatch`] on geometry
    /// disagreement.
    pub fn match_prob(
        &self,
        query: &BlockCode,
        temperature: f32,
        options: &KernelOptions,
    ) -> Result<Vec<f32>> {
        let sims = self.similarities(query, options)?;
        let t = temperature.max(f32::MIN_POSITIVE);
        let logits: Vec<f32> = sims.into_iter().map(|s| s / t).collect();
        Ok(ops::softmax(&logits))
    }

    /// Similarity scan against a raw query slice (no geometry to check:
    /// the engine's internal residuals are plain vectors).
    fn similarities_flat(&self, query: &[f32], options: &KernelOptions) -> Vec<f32> {
        debug_assert_eq!(query.len(), self.dim);
        let dots = gemm::matvec_fast(&self.flat, query, self.book.len(), self.dim, options);
        let qn: f32 = query.iter().map(|x| x * x).sum::<f32>().sqrt();
        dots.into_iter()
            .zip(&self.norms)
            .map(|(dot, &cn)| {
                if qn == 0.0 || cn == 0.0 {
                    0.0
                } else {
                    dot / (qn * cn)
                }
            })
            .collect()
    }
}

/// Blockwise forward spectrum of a block-code data slice.
fn spectrum_of(data: &[f32], n_blocks: usize, plan: &FftPlan) -> Vec<Complex> {
    let bd = plan.len();
    let mut spec = Vec::with_capacity(n_blocks * bd);
    for blk in 0..n_blocks {
        spec.extend(plan.forward_real(&data[blk * bd..(blk + 1) * bd]));
    }
    spec
}

/// Resonator network running on [`SpectralCodebook`] caches.
///
/// Matches [`Resonator::factorize`] semantics (see the module docs for
/// the equivalence argument) at O(d·log d) per factor update instead of
/// O(d²). Geometries outside the fast path delegate to the reference.
///
/// # Examples
///
/// ```
/// use nsflow_vsa::{Codebook, engine::SpectralResonator};
/// use nsflow_vsa::resonator::ResonatorConfig;
/// use nsflow_tensor::par::KernelOptions;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let f1 = Codebook::random_unitary(5, 4, 128, &mut rng);
/// let f2 = Codebook::random_unitary(5, 4, 128, &mut rng);
/// let target = f1.codeword(2).bind(f2.codeword(4))?;
/// let res = SpectralResonator::new(vec![f1, f2], KernelOptions::auto())?;
/// let out = res.factorize(&target, ResonatorConfig::default())?;
/// assert_eq!(out.indices, vec![2, 4]);
/// # Ok::<(), nsflow_vsa::VsaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SpectralResonator {
    reference: Resonator,
    books: Vec<SpectralCodebook>,
    options: KernelOptions,
}

impl SpectralResonator {
    /// Creates the engine from one codebook per factor.
    ///
    /// # Errors
    ///
    /// Returns [`crate::VsaError::FactorGeometryMismatch`] under the same
    /// conditions as [`Resonator::new`].
    pub fn new(factors: Vec<Codebook>, options: KernelOptions) -> Result<Self> {
        let books = factors.iter().cloned().map(SpectralCodebook::new).collect();
        let reference = Resonator::new(factors)?;
        Ok(SpectralResonator {
            reference,
            books,
            options,
        })
    }

    /// The spectral factor codebooks.
    #[must_use]
    pub fn books(&self) -> &[SpectralCodebook] {
        &self.books
    }

    /// The reference resonator over the same factors (the fallback path
    /// and the oracle the equivalence tests compare against).
    #[must_use]
    pub fn reference(&self) -> &Resonator {
        &self.reference
    }

    /// The threading knob every kernel call inherits.
    #[must_use]
    pub fn options(&self) -> &KernelOptions {
        &self.options
    }

    /// Whether factorization will run the spectral loop (vs. delegating
    /// to the reference resonator).
    #[must_use]
    pub fn is_spectral(&self) -> bool {
        self.books.iter().all(SpectralCodebook::is_spectral)
    }

    /// Binds selected codewords back into a product — same as
    /// [`Resonator::reconstruct`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::VsaError::CodewordOutOfRange`] if an index
    /// exceeds its codebook.
    pub fn reconstruct(&self, indices: &[usize]) -> Result<BlockCode> {
        self.reference.reconstruct(indices)
    }

    /// Iteratively factorizes `target` into one codeword per factor.
    ///
    /// Semantics match [`Resonator::factorize`]; see the module docs for
    /// the documented numerical differences on the spectral path and the
    /// fallback contract for unsupported geometries.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors if `target` disagrees with the
    /// codebooks.
    pub fn factorize(&self, target: &BlockCode, config: ResonatorConfig) -> Result<Factorization> {
        let _span = telemetry::span!("vsa.factorize");
        if !self.is_spectral() {
            telemetry::counter!("vsa.resonator_fallbacks").incr();
            return self.reference.factorize(target, config);
        }
        // Geometry check against factor 0 (all factors agree by
        // construction).
        self.books[0].book.codeword(0).check_geometry(target)?;

        let nf = self.books.len();
        let (nb, bd) = (self.books[0].n_blocks, self.books[0].block_dim);
        let dim = nb * bd;
        let plan = fft::plan(bd);
        let t_spec = spectrum_of(target.data(), nb, &plan);

        // Estimates live as spectra. Initialization is the uniform
        // codebook superposition — a plain sum of the cached spectra
        // (normalization skipped; see module docs).
        let mut est_spec: Vec<Vec<Complex>> = self
            .books
            .iter()
            .map(|book| {
                let spectra = book.spectra.as_ref().expect("spectral path checked above");
                // Every cached spectrum consumed here replaces a forward
                // FFT the reference path would have to run.
                telemetry::counter!("vsa.spectral_cache_hits").add(spectra.len() as u64);
                let mut acc = vec![Complex::ZERO; dim];
                for spec in spectra {
                    for (a, s) in acc.iter_mut().zip(spec) {
                        *a = a.add(*s);
                    }
                }
                acc
            })
            .collect();

        let mut indices: Vec<usize> = vec![0; nf];
        let mut iterations = 0usize;
        let mut residual_spec = vec![Complex::ZERO; dim];
        let mut residual = vec![0.0f32; dim];

        for _sweep in 0..config.max_iterations {
            iterations += 1;
            let mut changed = false;
            for f in 0..nf {
                // residual = target ⊘ (⊛ other estimates): pointwise
                // product of the other spectra, conjugated against the
                // target spectrum.
                for (i, slot) in residual_spec.iter_mut().enumerate() {
                    let mut others = Complex { re: 1.0, im: 0.0 };
                    for (g, est) in est_spec.iter().enumerate() {
                        if g != f {
                            others = others.mul(est[i]);
                        }
                    }
                    *slot = t_spec[i].mul(others.conj());
                }
                // One inverse FFT per factor update: the residual must
                // come back to the time domain for the codebook scan.
                for blk in 0..nb {
                    let time = plan.inverse_real(residual_spec[blk * bd..(blk + 1) * bd].to_vec());
                    residual[blk * bd..(blk + 1) * bd].copy_from_slice(&time);
                }
                let book = &self.books[f];
                let sims = book.similarities_flat(&residual, &self.options);
                let t = config.temperature.max(f32::MIN_POSITIVE);
                let logits: Vec<f32> = sims.iter().map(|s| s / t).collect();
                let probs = ops::softmax(&logits);
                // New estimate: probability-weighted superposition,
                // assembled directly in the spectral domain from the
                // cached codeword spectra — no forward FFT.
                let spectra = book.spectra.as_ref().expect("spectral path checked above");
                telemetry::counter!("vsa.spectral_cache_hits").add(spectra.len() as u64);
                let acc = &mut est_spec[f];
                acc.fill(Complex::ZERO);
                for (&p, spec) in probs.iter().zip(spectra) {
                    let w = f64::from(p);
                    for (a, s) in acc.iter_mut().zip(spec) {
                        *a = a.add(s.scale(w));
                    }
                }
                let best = argmax_last(&probs);
                if best != indices[f] {
                    indices[f] = best;
                    changed = true;
                }
            }
            if !changed && iterations > 1 {
                telemetry::counter!("vsa.resonator_iterations").add(iterations as u64);
                return Ok(Factorization {
                    indices,
                    iterations,
                    converged: true,
                });
            }
        }
        telemetry::counter!("vsa.resonator_iterations").add(iterations as u64);
        Ok(Factorization {
            indices,
            iterations,
            converged: false,
        })
    }
}

/// Argmax returning the **last** of equal maxima — the same tie-break as
/// the reference resonator's `max_by(total_cmp)`.
fn argmax_last(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unitary_books(counts: &[usize], nb: usize, bd: usize, seed: u64) -> Vec<Codebook> {
        let mut rng = StdRng::seed_from_u64(seed);
        counts
            .iter()
            .map(|&c| Codebook::random_unitary(c, nb, bd, &mut rng))
            .collect()
    }

    #[test]
    fn codebook_scans_are_bit_identical_to_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        let book = Codebook::random_unitary(12, 4, 64, &mut rng);
        let engine = SpectralCodebook::new(book.clone());
        let noisy = {
            let mut q = book.codeword(7).clone();
            use rand::Rng;
            for x in q.data_mut() {
                *x += 0.05 * (rng.gen::<f32>() - 0.5);
            }
            q
        };
        for opts in [KernelOptions::serial(), KernelOptions::with_threads(4)] {
            assert_eq!(
                engine.similarities(&noisy, &opts).unwrap(),
                book.similarities(&noisy).unwrap(),
                "similarities must be bit-identical"
            );
            assert_eq!(
                engine.cleanup(&noisy, &opts).unwrap(),
                book.cleanup(&noisy).unwrap()
            );
            assert_eq!(
                engine.match_prob(&noisy, 0.08, &opts).unwrap(),
                book.match_prob(&noisy, 0.08).unwrap()
            );
        }
    }

    #[test]
    fn spectral_factorization_matches_reference_two_factors() {
        let books = unitary_books(&[6, 6], 4, 128, 21);
        let target = books[0].codeword(1).bind(books[1].codeword(4)).unwrap();
        let engine = SpectralResonator::new(books.clone(), KernelOptions::auto()).unwrap();
        assert!(engine.is_spectral());
        let reference = Resonator::new(books).unwrap();
        let cfg = ResonatorConfig::default();
        let fast = engine.factorize(&target, cfg).unwrap();
        let slow = reference.factorize(&target, cfg).unwrap();
        assert_eq!(fast.indices, slow.indices);
        assert_eq!(fast.converged, slow.converged);
    }

    #[test]
    fn spectral_factorization_matches_reference_three_factors() {
        let books = unitary_books(&[5, 5, 5], 4, 128, 22);
        let target = books[0]
            .codeword(2)
            .bind(books[1].codeword(0))
            .unwrap()
            .bind(books[2].codeword(3))
            .unwrap();
        let engine = SpectralResonator::new(books.clone(), KernelOptions::auto()).unwrap();
        let reference = Resonator::new(books).unwrap();
        let cfg = ResonatorConfig::default();
        let fast = engine.factorize(&target, cfg).unwrap();
        let slow = reference.factorize(&target, cfg).unwrap();
        assert_eq!(fast.indices, slow.indices);
    }

    #[test]
    fn results_are_independent_of_thread_count() {
        let books = unitary_books(&[8, 8], 2, 256, 23);
        let target = books[0].codeword(5).bind(books[1].codeword(2)).unwrap();
        let cfg = ResonatorConfig::default();
        let baseline = SpectralResonator::new(books.clone(), KernelOptions::serial())
            .unwrap()
            .factorize(&target, cfg)
            .unwrap();
        for threads in [2usize, 4, 8] {
            let out = SpectralResonator::new(books.clone(), KernelOptions::with_threads(threads))
                .unwrap()
                .factorize(&target, cfg)
                .unwrap();
            assert_eq!(out, baseline, "threads={threads}");
        }
    }

    #[test]
    fn non_power_of_two_geometry_falls_back_to_reference() {
        let books = unitary_books(&[4, 4], 2, 24, 24); // bd = 24: not a power of two
        let target = books[0].codeword(1).bind(books[1].codeword(3)).unwrap();
        let engine = SpectralResonator::new(books.clone(), KernelOptions::auto()).unwrap();
        assert!(!engine.is_spectral());
        let out = engine
            .factorize(&target, ResonatorConfig::default())
            .unwrap();
        let slow = Resonator::new(books)
            .unwrap()
            .factorize(&target, ResonatorConfig::default())
            .unwrap();
        // Fallback IS the reference — identical outcome, bit for bit.
        assert_eq!(out, slow);
        assert_eq!(out.indices, vec![1, 3]);
    }

    #[test]
    fn factorization_tolerates_noise_like_reference() {
        let books = unitary_books(&[6, 6], 4, 128, 25);
        let mut target = books[0].codeword(5).bind(books[1].codeword(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(26);
        use rand::Rng;
        for x in target.data_mut() {
            *x += 0.02 * (rng.gen::<f32>() - 0.5);
        }
        let engine = SpectralResonator::new(books, KernelOptions::auto()).unwrap();
        let out = engine
            .factorize(&target, ResonatorConfig::default())
            .unwrap();
        assert_eq!(out.indices, vec![5, 1]);
    }

    #[test]
    fn iteration_cap_and_convergence_flags_match() {
        let books = unitary_books(&[8, 8], 4, 64, 27);
        let target = books[0].codeword(0).bind(books[1].codeword(0)).unwrap();
        let engine = SpectralResonator::new(books, KernelOptions::auto()).unwrap();
        let cfg = ResonatorConfig {
            max_iterations: 1,
            temperature: 0.08,
        };
        let out = engine.factorize(&target, cfg).unwrap();
        assert_eq!(out.iterations, 1);
        assert!(!out.converged);
    }

    #[test]
    fn geometry_mismatch_is_rejected() {
        let books = unitary_books(&[4, 4], 2, 32, 28);
        let engine = SpectralResonator::new(books, KernelOptions::auto()).unwrap();
        let wrong = BlockCode::zeros(1, 64);
        assert!(engine
            .factorize(&wrong, ResonatorConfig::default())
            .is_err());
        let book_engine = SpectralCodebook::new(Codebook::random_bipolar(
            3,
            2,
            32,
            &mut StdRng::seed_from_u64(29),
        ));
        assert!(book_engine
            .similarities(&wrong, &KernelOptions::auto())
            .is_err());
    }

    #[test]
    fn reconstruct_delegates_to_reference() {
        let books = unitary_books(&[4, 4], 2, 64, 30);
        let target = books[0].codeword(3).bind(books[1].codeword(2)).unwrap();
        let engine = SpectralResonator::new(books, KernelOptions::auto()).unwrap();
        let rebuilt = engine.reconstruct(&[3, 2]).unwrap();
        assert!(rebuilt.similarity(&target).unwrap() > 0.999);
        assert!(engine.reconstruct(&[3]).is_err());
    }
}
