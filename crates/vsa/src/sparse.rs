//! Sparse block codes — the code family NVSA itself uses.
//!
//! A sparse block code activates exactly **one** element per block. Under
//! blockwise circular convolution this family is closed: binding two
//! one-hot blocks yields the one-hot block at the *sum of their indices
//! modulo the block size*, so binding/unbinding reduce to modular index
//! arithmetic — the property that makes VSA reasoning hardware-friendly
//! and INT4-robust. The dense kernels in [`crate::ops`] compute the same
//! result through the full convolution; tests pin the equivalence.

use rand::Rng;

use crate::{ops, BlockCode, Result, VsaError};

/// A sparse block code: one active index per block (activation value 1).
///
/// # Examples
///
/// ```
/// use nsflow_vsa::sparse::SparseBlockCode;
/// let a = SparseBlockCode::new(vec![1, 2], 4)?;
/// let b = SparseBlockCode::new(vec![3, 3], 4)?;
/// let bound = a.bind(&b)?;
/// assert_eq!(bound.indices(), &[0, 1]); // (1+3) mod 4, (2+3) mod 4
/// assert_eq!(bound.unbind(&b)?, a);
/// # Ok::<(), nsflow_vsa::VsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SparseBlockCode {
    indices: Vec<usize>,
    block_dim: usize,
}

impl SparseBlockCode {
    /// Creates a sparse code from its per-block active indices.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::EmptyGeometry`] for an empty index list or zero
    /// block size, and [`VsaError::CodewordOutOfRange`] if any index
    /// reaches beyond the block.
    pub fn new(indices: Vec<usize>, block_dim: usize) -> Result<Self> {
        if indices.is_empty() || block_dim == 0 {
            return Err(VsaError::EmptyGeometry);
        }
        for &i in &indices {
            if i >= block_dim {
                return Err(VsaError::CodewordOutOfRange {
                    index: i,
                    len: block_dim,
                });
            }
        }
        Ok(SparseBlockCode { indices, block_dim })
    }

    /// Draws a uniformly random sparse code.
    ///
    /// # Panics
    ///
    /// Panics if either size parameter is zero.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(n_blocks: usize, block_dim: usize, rng: &mut R) -> Self {
        assert!(n_blocks > 0 && block_dim > 0, "geometry must be nonzero");
        SparseBlockCode {
            indices: (0..n_blocks).map(|_| rng.gen_range(0..block_dim)).collect(),
            block_dim,
        }
    }

    /// The binding identity (index 0 in every block).
    ///
    /// # Panics
    ///
    /// Panics if either size parameter is zero.
    #[must_use]
    pub fn identity(n_blocks: usize, block_dim: usize) -> Self {
        assert!(n_blocks > 0 && block_dim > 0, "geometry must be nonzero");
        SparseBlockCode {
            indices: vec![0; n_blocks],
            block_dim,
        }
    }

    /// Active index per block.
    #[must_use]
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of blocks.
    #[must_use]
    pub fn n_blocks(&self) -> usize {
        self.indices.len()
    }

    /// Elements per block.
    #[must_use]
    pub fn block_dim(&self) -> usize {
        self.block_dim
    }

    /// Binding: per-block index addition modulo the block size — exactly
    /// circular convolution of one-hot blocks.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::GeometryMismatch`] if geometries differ.
    pub fn bind(&self, other: &SparseBlockCode) -> Result<SparseBlockCode> {
        self.check_geometry(other)?;
        Ok(SparseBlockCode {
            indices: self
                .indices
                .iter()
                .zip(&other.indices)
                .map(|(&a, &b)| (a + b) % self.block_dim)
                .collect(),
            block_dim: self.block_dim,
        })
    }

    /// Inverse binding: per-block index subtraction — exact, with zero
    /// crosstalk (the sparse family's key advantage).
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::GeometryMismatch`] if geometries differ.
    pub fn unbind(&self, other: &SparseBlockCode) -> Result<SparseBlockCode> {
        self.check_geometry(other)?;
        Ok(SparseBlockCode {
            indices: self
                .indices
                .iter()
                .zip(&other.indices)
                .map(|(&a, &b)| (a + self.block_dim - b) % self.block_dim)
                .collect(),
            block_dim: self.block_dim,
        })
    }

    /// Normalized similarity: fraction of blocks whose active index
    /// matches (1.0 for identical codes; expectation `1/block_dim` for
    /// random pairs).
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::GeometryMismatch`] if geometries differ.
    pub fn similarity(&self, other: &SparseBlockCode) -> Result<f32> {
        self.check_geometry(other)?;
        let matches = self
            .indices
            .iter()
            .zip(&other.indices)
            .filter(|(a, b)| a == b)
            .count();
        Ok(matches as f32 / self.indices.len() as f32)
    }

    /// Expands to the equivalent dense one-hot [`BlockCode`].
    #[must_use]
    pub fn to_dense(&self) -> BlockCode {
        let mut dense = BlockCode::zeros(self.indices.len(), self.block_dim);
        for (blk, &idx) in self.indices.iter().enumerate() {
            dense.data_mut()[blk * self.block_dim + idx] = 1.0;
        }
        dense
    }

    /// Recovers a sparse code from a (possibly noisy) dense code by
    /// taking each block's argmax.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::EmptyGeometry`] for a degenerate dense code.
    pub fn from_dense(dense: &BlockCode) -> Result<SparseBlockCode> {
        if dense.n_blocks() == 0 || dense.block_dim() == 0 {
            return Err(VsaError::EmptyGeometry);
        }
        let indices = (0..dense.n_blocks())
            .map(|blk| {
                let block = dense.block(blk).expect("block index in range");
                block
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect();
        SparseBlockCode::new(indices, dense.block_dim())
    }

    fn check_geometry(&self, other: &SparseBlockCode) -> Result<()> {
        if self.indices.len() != other.indices.len() || self.block_dim != other.block_dim {
            return Err(VsaError::GeometryMismatch {
                lhs: format!("{}×{}", self.indices.len(), self.block_dim),
                rhs: format!("{}×{}", other.indices.len(), other.block_dim),
            });
        }
        Ok(())
    }
}

/// A sparse item memory with exact cleanup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseCodebook {
    codewords: Vec<SparseBlockCode>,
}

impl SparseCodebook {
    /// Draws `count` random sparse codewords.
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(
        count: usize,
        n_blocks: usize,
        block_dim: usize,
        rng: &mut R,
    ) -> Self {
        assert!(count > 0, "codebook must be non-empty");
        SparseCodebook {
            codewords: (0..count)
                .map(|_| SparseBlockCode::random(n_blocks, block_dim, rng))
                .collect(),
        }
    }

    /// Number of codewords.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codewords.len()
    }

    /// Whether the codebook is empty (never true once constructed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codewords.is_empty()
    }

    /// One codeword by index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn codeword(&self, index: usize) -> &SparseBlockCode {
        &self.codewords[index]
    }

    /// Index of the most similar codeword.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::GeometryMismatch`] on geometry disagreement.
    pub fn cleanup(&self, query: &SparseBlockCode) -> Result<usize> {
        let mut best = 0usize;
        let mut best_sim = f32::NEG_INFINITY;
        for (i, cw) in self.codewords.iter().enumerate() {
            let s = query.similarity(cw)?;
            if s > best_sim {
                best_sim = s;
                best = i;
            }
        }
        Ok(best)
    }
}

/// Dense-path equivalence: circular convolution of the dense expansions
/// equals the dense expansion of the sparse binding. Exposed as a
/// function (rather than only a test) so property tests in the workspace
/// can reuse it.
///
/// # Errors
///
/// Propagates geometry errors from the dense kernels.
pub fn dense_equivalence_check(a: &SparseBlockCode, b: &SparseBlockCode) -> Result<bool> {
    let dense_bound = ops::bind(&a.to_dense(), &b.to_dense())?;
    let sparse_bound = a.bind(b)?.to_dense();
    Ok(dense_bound
        .data()
        .iter()
        .zip(sparse_bound.data())
        .all(|(x, y)| (x - y).abs() < 1e-5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    #[test]
    fn new_validates_geometry() {
        assert!(SparseBlockCode::new(vec![], 4).is_err());
        assert!(SparseBlockCode::new(vec![0], 0).is_err());
        assert!(matches!(
            SparseBlockCode::new(vec![4], 4),
            Err(VsaError::CodewordOutOfRange { .. })
        ));
    }

    #[test]
    fn bind_is_index_addition() {
        let a = SparseBlockCode::new(vec![1, 3], 4).unwrap();
        let b = SparseBlockCode::new(vec![2, 2], 4).unwrap();
        assert_eq!(a.bind(&b).unwrap().indices(), &[3, 1]);
    }

    #[test]
    fn unbind_exactly_inverts_bind() {
        let mut r = rng();
        for _ in 0..50 {
            let a = SparseBlockCode::random(4, 256, &mut r);
            let k = SparseBlockCode::random(4, 256, &mut r);
            assert_eq!(a.bind(&k).unwrap().unbind(&k).unwrap(), a);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let a = SparseBlockCode::random(3, 16, &mut rng());
        let id = SparseBlockCode::identity(3, 16);
        assert_eq!(a.bind(&id).unwrap(), a);
    }

    #[test]
    fn bind_commutes() {
        let mut r = rng();
        let a = SparseBlockCode::random(4, 64, &mut r);
        let b = SparseBlockCode::random(4, 64, &mut r);
        assert_eq!(a.bind(&b).unwrap(), b.bind(&a).unwrap());
    }

    #[test]
    fn sparse_binding_equals_dense_circular_convolution() {
        let mut r = rng();
        for _ in 0..10 {
            let a = SparseBlockCode::random(3, 32, &mut r);
            let b = SparseBlockCode::random(3, 32, &mut r);
            assert!(dense_equivalence_check(&a, &b).unwrap());
        }
    }

    #[test]
    fn dense_round_trip() {
        let a = SparseBlockCode::new(vec![5, 0, 31], 32).unwrap();
        assert_eq!(SparseBlockCode::from_dense(&a.to_dense()).unwrap(), a);
    }

    #[test]
    fn similarity_counts_matching_blocks() {
        let a = SparseBlockCode::new(vec![1, 2, 3, 4], 8).unwrap();
        let b = SparseBlockCode::new(vec![1, 2, 0, 0], 8).unwrap();
        assert_eq!(a.similarity(&b).unwrap(), 0.5);
        assert_eq!(a.similarity(&a).unwrap(), 1.0);
    }

    #[test]
    fn cleanup_recovers_noisy_dense_queries() {
        let mut r = rng();
        let book = SparseCodebook::random(16, 4, 64, &mut r);
        use rand::Rng as _;
        for i in [0usize, 7, 15] {
            // Perturb the dense expansion and recover through argmax.
            let mut dense = book.codeword(i).to_dense();
            for x in dense.data_mut() {
                *x += 0.3 * (r.gen::<f32>() - 0.5);
            }
            let recovered = SparseBlockCode::from_dense(&dense).unwrap();
            assert_eq!(book.cleanup(&recovered).unwrap(), i);
        }
    }

    #[test]
    fn geometry_mismatch_rejected() {
        let a = SparseBlockCode::random(2, 8, &mut rng());
        let b = SparseBlockCode::random(3, 8, &mut rng());
        assert!(a.bind(&b).is_err());
        assert!(a.similarity(&b).is_err());
    }
}
