//! Radix-2 FFT-accelerated circular convolution with precomputed twiddle
//! tables.
//!
//! The reference kernels in [`crate::ops`] are O(d²) — the same arithmetic
//! the AdArray performs — which is what the microsimulator cross-checks.
//! Software consumers (the reasoning pipeline, large-scale experiments)
//! want the O(d·log d) path: convolution via the convolution theorem,
//! `a ⊛ b = IFFT(FFT(a)·FFT(b))`.
//!
//! # Twiddle tables
//!
//! Butterfly twiddles are precomputed per stage into an `FftPlan`
//! (`w_k = exp(−i·2πk/len)` evaluated directly per index) instead of the
//! seed's running product `w ← w·w_len`, which accumulated one rounding
//! error per butterfly and drifted measurably by `d = 4096`. Plans are
//! cached per transform length in a thread-local table, so blockwise
//! binds and resonator sweeps reuse one table per block length.
//!
//! # Fallback contract
//!
//! [`circular_convolve_fast`] and [`circular_correlate_fast`] are **total
//! over all equal-length inputs**: when `n` is not a power of two — the
//! radix-2 plan cannot decompose it — or `n < 8` — where the butterfly +
//! complex-arithmetic overhead loses to the direct kernel — they fall back
//! to [`ops::circular_convolve`]/[`ops::circular_correlate`] and are then
//! **bit-identical** to the reference (same function, not an
//! approximation). On the fast path the result carries f64-FFT rounding
//! instead, within ~1e-3 absolute of the reference for unit-scale
//! operands. Callers that need to know which path runs can test
//! [`fast_path_applies`].

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use nsflow_telemetry as telemetry;

use crate::{ops, BlockCode, Result};

/// Complex number as a bare `(re, im)` pair — enough for an in-crate FFT
/// without growing the dependency set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Complex {
    pub(crate) re: f64,
    pub(crate) im: f64,
}

impl Complex {
    pub(crate) const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    pub(crate) fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    pub(crate) fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }

    pub(crate) fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    pub(crate) fn scale(self, s: f64) -> Complex {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

/// A radix-2 Cooley–Tukey plan for one power-of-two length: the
/// bit-reversal permutation and the per-stage forward twiddle tables
/// (`w_k = exp(−i·2πk/len)`, each entry computed directly from its angle).
/// The inverse transform conjugates the same tables, so one table serves
/// both directions.
#[derive(Debug, Clone)]
pub(crate) struct FftPlan {
    n: usize,
    /// `rev[i]` = bit-reversed index of `i`.
    rev: Vec<usize>,
    /// Concatenated per-stage tables: stage with butterfly span `len`
    /// contributes `len/2` entries; stages ordered `len = 2, 4, …, n`.
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Builds the plan for transform length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub(crate) fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two(),
            "fft length must be a power of two, got {n}"
        );
        let mut rev = vec![0usize; n];
        let mut j = 0usize;
        for slot in rev.iter_mut().skip(1) {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            *slot = j;
        }
        // Σ_{len=2,4,…,n} len/2 = n − 1 twiddles.
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2usize;
        while len <= n {
            let step = -std::f64::consts::TAU / len as f64;
            for k in 0..len / 2 {
                let ang = step * k as f64;
                twiddles.push(Complex {
                    re: ang.cos(),
                    im: ang.sin(),
                });
            }
            len <<= 1;
        }
        FftPlan { n, rev, twiddles }
    }

    /// Transform length this plan serves.
    pub(crate) fn len(&self) -> usize {
        self.n
    }

    fn process(&self, data: &mut [Complex], inverse: bool) {
        let n = self.n;
        debug_assert_eq!(data.len(), n, "data length must match the plan");
        if n <= 1 {
            return;
        }
        for i in 1..n {
            let j = self.rev[i];
            if i < j {
                data.swap(i, j);
            }
        }
        let mut len = 2usize;
        let mut stage_base = 0usize;
        while len <= n {
            let half = len / 2;
            let stage = &self.twiddles[stage_base..stage_base + half];
            for chunk in data.chunks_mut(len) {
                for (k, &tw) in stage.iter().enumerate() {
                    let w = if inverse { tw.conj() } else { tw };
                    let u = chunk[k];
                    let v = chunk[k + half].mul(w);
                    chunk[k] = u.add(v);
                    chunk[k + half] = u.sub(v);
                }
            }
            stage_base += half;
            len <<= 1;
        }
        if inverse {
            let inv_n = 1.0 / n as f64;
            for x in data.iter_mut() {
                x.re *= inv_n;
                x.im *= inv_n;
            }
        }
    }

    /// In-place forward transform.
    pub(crate) fn forward(&self, data: &mut [Complex]) {
        self.process(data, false);
    }

    /// In-place inverse transform (includes the `1/n` scaling).
    pub(crate) fn inverse(&self, data: &mut [Complex]) {
        self.process(data, true);
    }

    /// Forward transform of a real signal.
    pub(crate) fn forward_real(&self, x: &[f32]) -> Vec<Complex> {
        debug_assert_eq!(x.len(), self.n);
        telemetry::counter!("vsa.fft_forward").incr();
        let mut data: Vec<Complex> = x
            .iter()
            .map(|&v| Complex {
                re: f64::from(v),
                im: 0.0,
            })
            .collect();
        self.forward(&mut data);
        data
    }

    /// Inverse transform returning only the real parts (the signals here
    /// are real by construction; imaginary residue is rounding noise).
    pub(crate) fn inverse_real(&self, mut data: Vec<Complex>) -> Vec<f32> {
        telemetry::counter!("vsa.fft_inverse").incr();
        self.inverse(&mut data);
        data.into_iter().map(|c| c.re as f32).collect()
    }
}

thread_local! {
    /// Per-thread plan cache keyed by transform length. Resonator sweeps
    /// and blockwise binds hit the same couple of lengths thousands of
    /// times; the cache makes plan construction a one-time cost.
    static PLAN_CACHE: RefCell<HashMap<usize, Rc<FftPlan>>> = RefCell::new(HashMap::new());
}

/// The cached plan for length `n` (building and caching it on first use).
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub(crate) fn plan(n: usize) -> Rc<FftPlan> {
    PLAN_CACHE.with(|cache| {
        Rc::clone(
            cache
                .borrow_mut()
                .entry(n)
                .or_insert_with(|| Rc::new(FftPlan::new(n))),
        )
    })
}

/// Whether the O(d·log d) spectral path handles length `n` (power of two
/// and at least 8); otherwise the `*_fast` functions run the direct
/// reference kernel. See the module-level fallback contract.
#[must_use]
pub fn fast_path_applies(n: usize) -> bool {
    n.is_power_of_two() && n >= 8
}

/// Circular convolution via the convolution theorem; falls back to the
/// direct O(d²) kernel — bit-identical to [`ops::circular_convolve`] —
/// when [`fast_path_applies`] is false (non-power-of-two `n`, or `n < 8`).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn circular_convolve_fast(a: &[f32], b: &[f32]) -> Vec<f32> {
    let n = a.len();
    assert_eq!(b.len(), n, "operand lengths must match");
    if !fast_path_applies(n) {
        telemetry::counter!("vsa.kernel_fallbacks").incr();
        return ops::circular_convolve(a, b);
    }
    telemetry::counter!("vsa.kernel_fast").incr();
    let plan = plan(n);
    let mut fa = plan.forward_real(a);
    let fb = plan.forward_real(b);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = x.mul(*y);
    }
    plan.inverse_real(fa)
}

/// Circular correlation via the spectrum (`FFT(a)·conj(FFT(b))`); exact
/// counterpart of [`crate::ops::circular_correlate`], with the same
/// fallback contract as [`circular_convolve_fast`] (bit-identical to the
/// reference kernel when [`fast_path_applies`] is false).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn circular_correlate_fast(a: &[f32], b: &[f32]) -> Vec<f32> {
    let n = a.len();
    assert_eq!(b.len(), n, "operand lengths must match");
    if !fast_path_applies(n) {
        telemetry::counter!("vsa.kernel_fallbacks").incr();
        return ops::circular_correlate(a, b);
    }
    telemetry::counter!("vsa.kernel_fast").incr();
    let plan = plan(n);
    let mut fa = plan.forward_real(a);
    let fb = plan.forward_real(b);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = x.mul(y.conj());
    }
    plan.inverse_real(fa)
}

/// Blockwise binding through the fast path — drop-in accelerated
/// equivalent of [`crate::ops::bind`].
///
/// # Errors
///
/// Returns [`crate::VsaError::GeometryMismatch`] if geometries differ.
pub fn bind_fast(a: &BlockCode, b: &BlockCode) -> Result<BlockCode> {
    a.check_geometry(b)?;
    let (nb, bd) = (a.n_blocks(), a.block_dim());
    let mut data = Vec::with_capacity(nb * bd);
    for blk in 0..nb {
        let start = blk * bd;
        data.extend(circular_convolve_fast(
            &a.data()[start..start + bd],
            &b.data()[start..start + bd],
        ));
    }
    BlockCode::from_vec(nb, bd, data)
}

/// Blockwise inverse binding through the fast path — drop-in accelerated
/// equivalent of [`crate::ops::unbind`].
///
/// # Errors
///
/// Returns [`crate::VsaError::GeometryMismatch`] if geometries differ.
pub fn unbind_fast(bound: &BlockCode, b: &BlockCode) -> Result<BlockCode> {
    bound.check_geometry(b)?;
    let (nb, bd) = (bound.n_blocks(), bound.block_dim());
    let mut data = Vec::with_capacity(nb * bd);
    for blk in 0..nb {
        let start = blk * bd;
        data.extend(circular_correlate_fast(
            &bound.data()[start..start + bd],
            &b.data()[start..start + bd],
        ));
    }
    BlockCode::from_vec(nb, bd, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randvec(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn fast_convolution_matches_direct_power_of_two() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [8usize, 16, 64, 256, 1024] {
            let a = randvec(n, &mut rng);
            let b = randvec(n, &mut rng);
            let fast = circular_convolve_fast(&a, &b);
            let direct = ops::circular_convolve(&a, &b);
            for (f, d) in fast.iter().zip(&direct) {
                assert!((f - d).abs() < 1e-3, "n={n}: {f} vs {d}");
            }
        }
    }

    #[test]
    fn fast_correlation_matches_direct() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [8usize, 32, 128] {
            let a = randvec(n, &mut rng);
            let b = randvec(n, &mut rng);
            let fast = circular_correlate_fast(&a, &b);
            let direct = ops::circular_correlate(&a, &b);
            for (f, d) in fast.iter().zip(&direct) {
                assert!((f - d).abs() < 1e-3, "n={n}");
            }
        }
    }

    /// The twiddle-table satellite: at d = 4096 the tabulated FFT stays
    /// tight against the direct O(d²) kernel. The seed's running-product
    /// twiddles drifted roughly an order of magnitude worse here, so the
    /// bound also guards against reintroducing the accumulation.
    #[test]
    fn twiddle_tables_hold_accuracy_at_4096() {
        let mut rng = StdRng::seed_from_u64(40);
        let n = 4096;
        let a = randvec(n, &mut rng);
        let b = randvec(n, &mut rng);
        let fast = circular_convolve_fast(&a, &b);
        let direct = ops::circular_convolve(&a, &b);
        let mut max_err = 0.0f32;
        for (f, d) in fast.iter().zip(&direct) {
            max_err = max_err.max((f - d).abs());
        }
        // The direct f32 kernel itself carries ~1e-3 of summation noise at
        // this length; the f64 tabulated FFT must stay inside that noise.
        assert!(max_err < 5e-3, "max |fast − direct| = {max_err} at d={n}");

        // Round trip through bind/unbind at the same length: unitary
        // codewords make inverse binding exact, so the recovered vector
        // must match the original almost perfectly.
        let book = crate::Codebook::random_unitary(2, 1, n, &mut rng);
        let bound = bind_fast(book.codeword(0), book.codeword(1)).unwrap();
        let recovered = unbind_fast(&bound, book.codeword(1)).unwrap();
        let sim = recovered.similarity(book.codeword(0)).unwrap();
        assert!(sim > 0.9999, "round-trip similarity {sim} at d={n}");
    }

    /// The fallback contract: both fallback branches (non-power-of-two,
    /// and power-of-two below 8) return the reference kernel's output
    /// bit-for-bit, for convolution and correlation alike.
    #[test]
    fn fallback_branches_are_bit_identical_to_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        // Branch 1: non-power-of-two length (≥ 8 so only this branch trips).
        for n in [12usize, 100] {
            assert!(!fast_path_applies(n));
            let a = randvec(n, &mut rng);
            let b = randvec(n, &mut rng);
            assert_eq!(
                circular_convolve_fast(&a, &b),
                ops::circular_convolve(&a, &b)
            );
            assert_eq!(
                circular_correlate_fast(&a, &b),
                ops::circular_correlate(&a, &b)
            );
        }
        // Branch 2: power-of-two length below the n = 8 threshold.
        for n in [1usize, 2, 4] {
            assert!(!fast_path_applies(n));
            let a = randvec(n, &mut rng);
            let b = randvec(n, &mut rng);
            assert_eq!(
                circular_convolve_fast(&a, &b),
                ops::circular_convolve(&a, &b)
            );
            assert_eq!(
                circular_correlate_fast(&a, &b),
                ops::circular_correlate(&a, &b)
            );
        }
        // And the boundary itself takes the fast path.
        assert!(fast_path_applies(8));
    }

    #[test]
    fn fast_bind_unbind_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let book = crate::Codebook::random_unitary(3, 4, 128, &mut rng);
        let bound = bind_fast(book.codeword(0), book.codeword(1)).unwrap();
        let recovered = unbind_fast(&bound, book.codeword(1)).unwrap();
        let sim = recovered.similarity(book.codeword(0)).unwrap();
        assert!(sim > 0.999, "fast round trip sim {sim}");
    }

    #[test]
    fn fast_bind_matches_reference_bind() {
        let mut rng = StdRng::seed_from_u64(5);
        let book = crate::Codebook::random_bipolar(2, 2, 64, &mut rng);
        let fast = bind_fast(book.codeword(0), book.codeword(1)).unwrap();
        let slow = ops::bind(book.codeword(0), book.codeword(1)).unwrap();
        for (f, s) in fast.data().iter().zip(slow.data()) {
            assert!((f - s).abs() < 1e-4);
        }
    }

    #[test]
    fn fast_bind_rejects_geometry_mismatch() {
        let a = BlockCode::zeros(2, 8);
        let b = BlockCode::zeros(1, 16);
        assert!(bind_fast(&a, &b).is_err());
        assert!(unbind_fast(&a, &b).is_err());
    }

    #[test]
    fn fft_identity_delta() {
        // delta ⊛ x == x through the fast path too.
        let mut delta = vec![0.0f32; 16];
        delta[0] = 1.0;
        let x: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let out = circular_convolve_fast(&x, &delta);
        for (o, v) in out.iter().zip(&x) {
            assert!((o - v).abs() < 1e-4);
        }
    }

    #[test]
    fn plan_cache_returns_shared_plans() {
        let p1 = plan(64);
        let p2 = plan(64);
        assert!(Rc::ptr_eq(&p1, &p2));
        assert_eq!(p1.len(), 64);
    }
}
