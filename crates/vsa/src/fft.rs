//! Radix-2 FFT-accelerated circular convolution.
//!
//! The reference kernels in [`crate::ops`] are O(d²) — the same arithmetic
//! the AdArray performs — which is what the microsimulator cross-checks.
//! Software consumers (the reasoning pipeline, large-scale experiments)
//! want the O(d·log d) path: convolution via the convolution theorem,
//! `a ⊛ b = IFFT(FFT(a)·FFT(b))`. For non-power-of-two lengths the
//! implementation falls back to the direct kernel, keeping the function
//! total over all inputs.

use crate::{ops, BlockCode, Result};

/// Complex number as a bare `(re, im)` pair — enough for an in-crate FFT
/// without growing the dependency set.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Complex {
    re: f64,
    im: f64,
}

impl Complex {
    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }

    fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics (debug) if `data.len()` is not a power of two.
fn fft_in_place(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    debug_assert!(n.is_power_of_two(), "fft length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2usize;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex {
            re: ang.cos(),
            im: ang.sin(),
        };
        for chunk in data.chunks_mut(len) {
            let mut w = Complex { re: 1.0, im: 0.0 };
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let v = chunk[k + half].mul(w);
                chunk[k] = u.add(v);
                chunk[k + half] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
    if inverse {
        let inv_n = 1.0 / n as f64;
        for x in data.iter_mut() {
            x.re *= inv_n;
            x.im *= inv_n;
        }
    }
}

/// Circular convolution via the convolution theorem; falls back to the
/// direct O(d²) kernel for non-power-of-two lengths.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn circular_convolve_fast(a: &[f32], b: &[f32]) -> Vec<f32> {
    let n = a.len();
    assert_eq!(b.len(), n, "operand lengths must match");
    if !n.is_power_of_two() || n < 8 {
        return ops::circular_convolve(a, b);
    }
    let mut fa: Vec<Complex> = a
        .iter()
        .map(|&x| Complex {
            re: x as f64,
            im: 0.0,
        })
        .collect();
    let mut fb: Vec<Complex> = b
        .iter()
        .map(|&x| Complex {
            re: x as f64,
            im: 0.0,
        })
        .collect();
    fft_in_place(&mut fa, false);
    fft_in_place(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = x.mul(*y);
    }
    fft_in_place(&mut fa, true);
    fa.into_iter().map(|c| c.re as f32).collect()
}

/// Circular correlation via the spectrum (`FFT(a)·conj(FFT(b))`); exact
/// counterpart of [`crate::ops::circular_correlate`].
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn circular_correlate_fast(a: &[f32], b: &[f32]) -> Vec<f32> {
    let n = a.len();
    assert_eq!(b.len(), n, "operand lengths must match");
    if !n.is_power_of_two() || n < 8 {
        return ops::circular_correlate(a, b);
    }
    let mut fa: Vec<Complex> = a
        .iter()
        .map(|&x| Complex {
            re: x as f64,
            im: 0.0,
        })
        .collect();
    let mut fb: Vec<Complex> = b
        .iter()
        .map(|&x| Complex {
            re: x as f64,
            im: 0.0,
        })
        .collect();
    fft_in_place(&mut fa, false);
    fft_in_place(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = x.mul(y.conj());
    }
    fft_in_place(&mut fa, true);
    fa.into_iter().map(|c| c.re as f32).collect()
}

/// Blockwise binding through the fast path — drop-in accelerated
/// equivalent of [`crate::ops::bind`].
///
/// # Errors
///
/// Returns [`crate::VsaError::GeometryMismatch`] if geometries differ.
pub fn bind_fast(a: &BlockCode, b: &BlockCode) -> Result<BlockCode> {
    a.check_geometry(b)?;
    let (nb, bd) = (a.n_blocks(), a.block_dim());
    let mut data = Vec::with_capacity(nb * bd);
    for blk in 0..nb {
        let start = blk * bd;
        data.extend(circular_convolve_fast(
            &a.data()[start..start + bd],
            &b.data()[start..start + bd],
        ));
    }
    BlockCode::from_vec(nb, bd, data)
}

/// Blockwise inverse binding through the fast path — drop-in accelerated
/// equivalent of [`crate::ops::unbind`].
///
/// # Errors
///
/// Returns [`crate::VsaError::GeometryMismatch`] if geometries differ.
pub fn unbind_fast(bound: &BlockCode, b: &BlockCode) -> Result<BlockCode> {
    bound.check_geometry(b)?;
    let (nb, bd) = (bound.n_blocks(), bound.block_dim());
    let mut data = Vec::with_capacity(nb * bd);
    for blk in 0..nb {
        let start = blk * bd;
        data.extend(circular_correlate_fast(
            &bound.data()[start..start + bd],
            &b.data()[start..start + bd],
        ));
    }
    BlockCode::from_vec(nb, bd, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randvec(n: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn fast_convolution_matches_direct_power_of_two() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [8usize, 16, 64, 256, 1024] {
            let a = randvec(n, &mut rng);
            let b = randvec(n, &mut rng);
            let fast = circular_convolve_fast(&a, &b);
            let direct = ops::circular_convolve(&a, &b);
            for (f, d) in fast.iter().zip(&direct) {
                assert!((f - d).abs() < 1e-3, "n={n}: {f} vs {d}");
            }
        }
    }

    #[test]
    fn fast_correlation_matches_direct() {
        let mut rng = StdRng::seed_from_u64(2);
        for n in [8usize, 32, 128] {
            let a = randvec(n, &mut rng);
            let b = randvec(n, &mut rng);
            let fast = circular_correlate_fast(&a, &b);
            let direct = ops::circular_correlate(&a, &b);
            for (f, d) in fast.iter().zip(&direct) {
                assert!((f - d).abs() < 1e-3, "n={n}");
            }
        }
    }

    #[test]
    fn non_power_of_two_falls_back_to_direct() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = randvec(12, &mut rng);
        let b = randvec(12, &mut rng);
        assert_eq!(
            circular_convolve_fast(&a, &b),
            ops::circular_convolve(&a, &b)
        );
        let c = randvec(3, &mut rng);
        let d = randvec(3, &mut rng);
        assert_eq!(
            circular_convolve_fast(&c, &d),
            ops::circular_convolve(&c, &d)
        );
    }

    #[test]
    fn fast_bind_unbind_round_trip() {
        let mut rng = StdRng::seed_from_u64(4);
        let book = crate::Codebook::random_unitary(3, 4, 128, &mut rng);
        let bound = bind_fast(book.codeword(0), book.codeword(1)).unwrap();
        let recovered = unbind_fast(&bound, book.codeword(1)).unwrap();
        let sim = recovered.similarity(book.codeword(0)).unwrap();
        assert!(sim > 0.999, "fast round trip sim {sim}");
    }

    #[test]
    fn fast_bind_matches_reference_bind() {
        let mut rng = StdRng::seed_from_u64(5);
        let book = crate::Codebook::random_bipolar(2, 2, 64, &mut rng);
        let fast = bind_fast(book.codeword(0), book.codeword(1)).unwrap();
        let slow = ops::bind(book.codeword(0), book.codeword(1)).unwrap();
        for (f, s) in fast.data().iter().zip(slow.data()) {
            assert!((f - s).abs() < 1e-4);
        }
    }

    #[test]
    fn fast_bind_rejects_geometry_mismatch() {
        let a = BlockCode::zeros(2, 8);
        let b = BlockCode::zeros(1, 16);
        assert!(bind_fast(&a, &b).is_err());
        assert!(unbind_fast(&a, &b).is_err());
    }

    #[test]
    fn fft_identity_delta() {
        // delta ⊛ x == x through the fast path too.
        let mut delta = vec![0.0f32; 16];
        delta[0] = 1.0;
        let x: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let out = circular_convolve_fast(&x, &delta);
        for (o, v) in out.iter().zip(&x) {
            assert!((o - v).abs() < 1e-4);
        }
    }
}
