use rand::Rng;

use crate::{ops, BlockCode, Result, VsaError};

/// An item memory: a set of random codewords with cleanup (nearest-codeword
/// recall).
///
/// Two codeword families are provided:
///
/// - **bipolar**: i.i.d. ±1/√len entries — the classic dense binary VSA
///   family; unbinding is approximate (crosstalk ~ 1/√d per block),
/// - **unitary**: every block has a flat Fourier magnitude spectrum, so
///   circular-convolution binding is exactly invertible and norm-preserving
///   — the family NVSA's block codes use, and the reason the AdArray can
///   treat inverse binding as just another convolution.
///
/// # Examples
///
/// ```
/// use nsflow_vsa::Codebook;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let book = Codebook::random_bipolar(16, 4, 64, &mut rng);
/// assert_eq!(book.len(), 16);
/// assert_eq!(book.cleanup(book.codeword(3))?, 3);
/// # Ok::<(), nsflow_vsa::VsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Codebook {
    codewords: Vec<BlockCode>,
}

impl Codebook {
    /// Builds a codebook from existing codewords.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::EmptyCodebook`] for an empty input and
    /// [`VsaError::GeometryMismatch`] if codewords disagree in geometry.
    pub fn from_codewords(codewords: Vec<BlockCode>) -> Result<Self> {
        let first = codewords.first().ok_or(VsaError::EmptyCodebook)?;
        for cw in &codewords[1..] {
            first.check_geometry(cw)?;
        }
        Ok(Codebook { codewords })
    }

    /// Generates `count` random bipolar codewords (entries ±1/√len).
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero.
    #[must_use]
    pub fn random_bipolar<R: Rng + ?Sized>(
        count: usize,
        n_blocks: usize,
        block_dim: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            count > 0 && n_blocks > 0 && block_dim > 0,
            "sizes must be nonzero"
        );
        let len = n_blocks * block_dim;
        let amp = 1.0 / (len as f32).sqrt();
        let codewords = (0..count)
            .map(|_| {
                let data = (0..len)
                    .map(|_| if rng.gen::<bool>() { amp } else { -amp })
                    .collect();
                BlockCode::from_vec(n_blocks, block_dim, data)
                    .expect("generated data matches geometry")
            })
            .collect();
        Codebook { codewords }
    }

    /// Generates `count` random unitary codewords: each block is the
    /// inverse DFT of a flat-magnitude random-phase spectrum, so binding is
    /// exactly invertible and each block has unit L2 norm.
    ///
    /// # Panics
    ///
    /// Panics if any size parameter is zero.
    #[must_use]
    pub fn random_unitary<R: Rng + ?Sized>(
        count: usize,
        n_blocks: usize,
        block_dim: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            count > 0 && n_blocks > 0 && block_dim > 0,
            "sizes must be nonzero"
        );
        let codewords = (0..count)
            .map(|_| {
                let mut data = Vec::with_capacity(n_blocks * block_dim);
                for _ in 0..n_blocks {
                    data.extend(random_unitary_block(block_dim, rng));
                }
                BlockCode::from_vec(n_blocks, block_dim, data)
                    .expect("generated data matches geometry")
            })
            .collect();
        Codebook { codewords }
    }

    /// Number of codewords.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codewords.len()
    }

    /// Whether the codebook is empty (never true for a constructed one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codewords.is_empty()
    }

    /// The codewords as a slice.
    #[must_use]
    pub fn codewords(&self) -> &[BlockCode] {
        &self.codewords
    }

    /// One codeword by index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[must_use]
    pub fn codeword(&self, index: usize) -> &BlockCode {
        &self.codewords[index]
    }

    /// Cleanup memory: index of the codeword most similar to `query`.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::GeometryMismatch`] if `query` disagrees with the
    /// codebook geometry.
    pub fn cleanup(&self, query: &BlockCode) -> Result<usize> {
        let mut best = 0usize;
        let mut best_sim = f32::NEG_INFINITY;
        for (i, cw) in self.codewords.iter().enumerate() {
            let s = query.similarity(cw)?;
            if s > best_sim {
                best_sim = s;
                best = i;
            }
        }
        Ok(best)
    }

    /// Similarities of `query` against every codeword.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::GeometryMismatch`] on geometry disagreement.
    pub fn similarities(&self, query: &BlockCode) -> Result<Vec<f32>> {
        self.codewords
            .iter()
            .map(|cw| query.similarity(cw))
            .collect()
    }

    /// Softmax match probabilities of `query` against the codebook
    /// (`match_prob_multi_batched` over the whole item memory).
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::GeometryMismatch`] on geometry disagreement.
    pub fn match_prob(&self, query: &BlockCode, temperature: f32) -> Result<Vec<f32>> {
        ops::match_prob(query, &self.codewords, temperature)
    }

    /// Weighted superposition of the codebook: `Σ weights[i] · codeword[i]`
    /// — the "bundled estimate" a resonator feeds back each iteration.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::DataLengthMismatch`] if `weights.len()` differs
    /// from `len()`.
    pub fn weighted_superposition(&self, weights: &[f32]) -> Result<BlockCode> {
        if weights.len() != self.codewords.len() {
            return Err(VsaError::DataLengthMismatch {
                expected: self.codewords.len(),
                actual: weights.len(),
            });
        }
        let first = &self.codewords[0];
        let mut out = BlockCode::zeros(first.n_blocks(), first.block_dim());
        for (w, cw) in weights.iter().zip(&self.codewords) {
            for (o, x) in out.data_mut().iter_mut().zip(cw.data()) {
                *o += w * x;
            }
        }
        Ok(out)
    }
}

/// One unitary block: inverse DFT of a conjugate-symmetric flat-magnitude
/// spectrum with uniformly random phases (computed in `f64` for accuracy).
fn random_unitary_block<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Vec<f32> {
    use std::f64::consts::TAU;
    // Random phases with conjugate symmetry so the time signal is real:
    // theta[d-k] = -theta[k]; theta[0] (and theta[d/2] for even d) in {0, π}.
    let mut theta = vec![0.0f64; dim];
    theta[0] = if rng.gen::<bool>() {
        0.0
    } else {
        std::f64::consts::PI
    };
    if dim.is_multiple_of(2) {
        theta[dim / 2] = if rng.gen::<bool>() {
            0.0
        } else {
            std::f64::consts::PI
        };
    }
    for k in 1..dim.div_ceil(2) {
        let t: f64 = rng.gen_range(0.0..TAU);
        theta[k] = t;
        theta[dim - k] = -t;
    }
    // x[n] = (1/d) Σ_k cos(θ_k + 2πkn/d)  (imaginary parts cancel).
    (0..dim)
        .map(|n| {
            let mut acc = 0.0f64;
            for (k, &th) in theta.iter().enumerate() {
                acc += (th + TAU * (k as f64) * (n as f64) / (dim as f64)).cos();
            }
            (acc / dim as f64) as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn from_codewords_validates() {
        assert_eq!(
            Codebook::from_codewords(vec![]).unwrap_err(),
            VsaError::EmptyCodebook
        );
        let mixed = vec![BlockCode::zeros(1, 4), BlockCode::zeros(2, 2)];
        assert!(matches!(
            Codebook::from_codewords(mixed),
            Err(VsaError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn bipolar_codewords_are_unit_norm() {
        let book = Codebook::random_bipolar(4, 2, 32, &mut rng());
        for cw in book.codewords() {
            let n: f32 = cw.data().iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn bipolar_codewords_are_quasi_orthogonal() {
        let book = Codebook::random_bipolar(8, 4, 256, &mut rng());
        for i in 0..8 {
            for j in (i + 1)..8 {
                let s = book.codeword(i).similarity(book.codeword(j)).unwrap();
                assert!(s.abs() < 0.15, "|sim({i},{j})| = {s} too high for d=1024");
            }
        }
    }

    #[test]
    fn unitary_blocks_have_unit_norm() {
        let book = Codebook::random_unitary(3, 2, 64, &mut rng());
        for cw in book.codewords() {
            for b in 0..2 {
                let blk = cw.block(b).unwrap();
                let n: f32 = blk.iter().map(|x| x * x).sum::<f32>().sqrt();
                assert!((n - 1.0).abs() < 1e-4, "block norm {n}");
            }
        }
    }

    #[test]
    fn unitary_binding_is_exactly_invertible() {
        let mut r = rng();
        let book = Codebook::random_unitary(4, 4, 128, &mut r);
        let x = book.codeword(0);
        let k = book.codeword(1);
        let bound = x.bind(k).unwrap();
        let recovered = bound.unbind(k).unwrap();
        let s = recovered.similarity(x).unwrap();
        assert!(s > 0.999, "unitary unbind must be exact, sim = {s}");
    }

    #[test]
    fn unitary_binding_preserves_norm() {
        let mut r = rng();
        let book = Codebook::random_unitary(2, 1, 64, &mut r);
        let bound = book.codeword(0).bind(book.codeword(1)).unwrap();
        let n: f32 = bound.data().iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-4, "bound norm {n}");
    }

    #[test]
    fn bipolar_unbind_is_approximate() {
        let mut r = rng();
        let book = Codebook::random_bipolar(4, 4, 256, &mut r);
        let x = book.codeword(0);
        let k = book.codeword(1);
        let recovered = x.bind(k).unwrap().unbind(k).unwrap();
        let s = recovered.similarity(x).unwrap();
        assert!(
            s > 0.5,
            "bipolar unbind should be noisy but similar, sim = {s}"
        );
        assert_eq!(book.cleanup(&recovered).unwrap(), 0);
    }

    #[test]
    fn cleanup_recovers_exact_codewords() {
        let book = Codebook::random_bipolar(32, 2, 64, &mut rng());
        for i in [0usize, 7, 31] {
            assert_eq!(book.cleanup(book.codeword(i)).unwrap(), i);
        }
    }

    #[test]
    fn cleanup_survives_additive_noise() {
        let mut r = rng();
        let book = Codebook::random_unitary(16, 4, 128, &mut r);
        let mut noisy = book.codeword(5).clone();
        for x in noisy.data_mut() {
            *x += 0.3 * (r.gen::<f32>() - 0.5) / (512.0f32).sqrt() * 10.0;
        }
        assert_eq!(book.cleanup(&noisy).unwrap(), 5);
    }

    #[test]
    fn match_prob_concentrates_on_true_item() {
        let book = Codebook::random_unitary(7, 4, 128, &mut rng());
        let probs = book.match_prob(book.codeword(3), 0.05).unwrap();
        assert_eq!(probs.len(), 7);
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert_eq!(best.0, 3);
        assert!(*best.1 > 0.9);
    }

    #[test]
    fn weighted_superposition_shapes_and_errors() {
        let book = Codebook::random_bipolar(3, 1, 16, &mut rng());
        assert!(book.weighted_superposition(&[1.0, 0.0]).is_err());
        let sup = book.weighted_superposition(&[1.0, 0.0, 0.0]).unwrap();
        assert!((sup.similarity(book.codeword(0)).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Codebook::random_unitary(2, 1, 32, &mut StdRng::seed_from_u64(9));
        let b = Codebook::random_unitary(2, 1, 32, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
