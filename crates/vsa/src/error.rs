use std::fmt;

/// Error type for vector-symbolic operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VsaError {
    /// Two block codes that must share geometry (block count and dimension)
    /// did not.
    GeometryMismatch {
        /// Left operand geometry, rendered as `blocks×dim`.
        lhs: String,
        /// Right operand geometry, rendered as `blocks×dim`.
        rhs: String,
    },
    /// A block code was constructed with zero blocks or zero dimension.
    EmptyGeometry,
    /// Backing data length disagrees with `n_blocks * block_dim`.
    DataLengthMismatch {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// A codebook lookup or cleanup was attempted on an empty codebook.
    EmptyCodebook,
    /// A codeword index was out of range.
    CodewordOutOfRange {
        /// Requested index.
        index: usize,
        /// Codebook size.
        len: usize,
    },
    /// The resonator was given factor codebooks with mismatched geometry.
    FactorGeometryMismatch(String),
}

impl fmt::Display for VsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VsaError::GeometryMismatch { lhs, rhs } => {
                write!(f, "block-code geometries {lhs} and {rhs} do not match")
            }
            VsaError::EmptyGeometry => {
                write!(
                    f,
                    "block code requires at least one block and one element per block"
                )
            }
            VsaError::DataLengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match geometry volume {expected}"
                )
            }
            VsaError::EmptyCodebook => write!(f, "codebook contains no codewords"),
            VsaError::CodewordOutOfRange { index, len } => {
                write!(
                    f,
                    "codeword index {index} out of range for codebook of {len}"
                )
            }
            VsaError::FactorGeometryMismatch(msg) => {
                write!(f, "factor codebooks are inconsistent: {msg}")
            }
        }
    }
}

impl std::error::Error for VsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VsaError>();
    }

    #[test]
    fn display_messages_nonempty() {
        let errs = [
            VsaError::GeometryMismatch {
                lhs: "4×256".into(),
                rhs: "4×128".into(),
            },
            VsaError::EmptyGeometry,
            VsaError::DataLengthMismatch {
                expected: 1024,
                actual: 512,
            },
            VsaError::EmptyCodebook,
            VsaError::CodewordOutOfRange { index: 9, len: 4 },
            VsaError::FactorGeometryMismatch("x".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
