//! Resonator network for factorizing bound products.
//!
//! NVSA's rule abduction must recover the attribute factors (e.g. type,
//! size, color) from a single bound product vector. A resonator network
//! does this iteratively: each factor estimate is refined by unbinding the
//! other factors' current estimates from the target and projecting the
//! residual back onto that factor's codebook. This is the dominant
//! *symbolic* compute loop of the workload — many small circular
//! convolutions and codebook similarity searches — exactly the kernel mix
//! the AdArray's folded sub-arrays accelerate.

use crate::{BlockCode, Codebook, Result, VsaError};

/// Outcome of a resonator factorization run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Factorization {
    /// Selected codeword index per factor.
    pub indices: Vec<usize>,
    /// Iterations executed before convergence (or the cap).
    pub iterations: usize,
    /// Whether the estimates reached a fixed point before the cap.
    pub converged: bool,
}

/// Configuration for [`Resonator::factorize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResonatorConfig {
    /// Maximum refinement sweeps over all factors.
    pub max_iterations: usize,
    /// Softmax temperature for the codebook projection; lower is harder.
    pub temperature: f32,
}

impl Default for ResonatorConfig {
    fn default() -> Self {
        ResonatorConfig {
            max_iterations: 64,
            temperature: 0.08,
        }
    }
}

/// Resonator network over a fixed set of factor codebooks.
///
/// # Examples
///
/// ```
/// use nsflow_vsa::{Codebook, resonator::{Resonator, ResonatorConfig}};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let f1 = Codebook::random_unitary(5, 4, 128, &mut rng);
/// let f2 = Codebook::random_unitary(5, 4, 128, &mut rng);
/// let target = f1.codeword(2).bind(f2.codeword(4))?;
/// let res = Resonator::new(vec![f1, f2])?;
/// let out = res.factorize(&target, ResonatorConfig::default())?;
/// assert_eq!(out.indices, vec![2, 4]);
/// # Ok::<(), nsflow_vsa::VsaError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Resonator {
    factors: Vec<Codebook>,
}

impl Resonator {
    /// Creates a resonator from one codebook per factor.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::FactorGeometryMismatch`] if fewer than two
    /// factors are given or their codeword geometries disagree.
    pub fn new(factors: Vec<Codebook>) -> Result<Self> {
        if factors.len() < 2 {
            return Err(VsaError::FactorGeometryMismatch(format!(
                "need at least 2 factors, got {}",
                factors.len()
            )));
        }
        let reference = factors[0].codeword(0);
        for (i, book) in factors.iter().enumerate() {
            let cw = book.codeword(0);
            if cw.n_blocks() != reference.n_blocks() || cw.block_dim() != reference.block_dim() {
                return Err(VsaError::FactorGeometryMismatch(format!(
                    "factor {i} geometry {} differs from factor 0 geometry {}",
                    cw.geometry_string(),
                    reference.geometry_string()
                )));
            }
        }
        Ok(Resonator { factors })
    }

    /// The factor codebooks.
    #[must_use]
    pub fn factors(&self) -> &[Codebook] {
        &self.factors
    }

    /// Binds the selected codewords back into a product (the resonator's
    /// reconstruction of the target).
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::CodewordOutOfRange`] if an index exceeds its
    /// codebook.
    pub fn reconstruct(&self, indices: &[usize]) -> Result<BlockCode> {
        if indices.len() != self.factors.len() {
            return Err(VsaError::FactorGeometryMismatch(format!(
                "expected {} indices, got {}",
                self.factors.len(),
                indices.len()
            )));
        }
        let mut acc: Option<BlockCode> = None;
        for (book, &idx) in self.factors.iter().zip(indices) {
            if idx >= book.len() {
                return Err(VsaError::CodewordOutOfRange {
                    index: idx,
                    len: book.len(),
                });
            }
            let cw = book.codeword(idx);
            acc = Some(match acc {
                None => cw.clone(),
                Some(prev) => prev.bind(cw)?,
            });
        }
        Ok(acc.expect("at least two factors"))
    }

    /// Iteratively factorizes `target` into one codeword per factor.
    ///
    /// Each sweep refines every factor in turn: the other factors' current
    /// *superposed* estimates are unbound from the target and the residual
    /// is projected onto the factor's codebook through a softmax; estimates
    /// harden as the temperature sharpens the projection. Convergence is a
    /// sweep in which no factor's argmax changes.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors if `target` disagrees with the codebooks.
    pub fn factorize(&self, target: &BlockCode, config: ResonatorConfig) -> Result<Factorization> {
        let nf = self.factors.len();
        // Initialize each estimate to the (normalized) superposition of its
        // whole codebook — the standard resonator initialization.
        let mut estimates: Vec<BlockCode> = self
            .factors
            .iter()
            .map(|book| {
                let uniform = vec![1.0; book.len()];
                let mut sup = book.weighted_superposition(&uniform)?;
                sup.normalize();
                Ok(sup)
            })
            .collect::<Result<_>>()?;
        let mut indices: Vec<usize> = vec![0; nf];
        let mut iterations = 0usize;

        for _sweep in 0..config.max_iterations {
            iterations += 1;
            let mut changed = false;
            for f in 0..nf {
                // Product of every *other* factor's estimate.
                let mut others: Option<BlockCode> = None;
                for (g, est) in estimates.iter().enumerate() {
                    if g == f {
                        continue;
                    }
                    others = Some(match others {
                        None => est.clone(),
                        Some(prev) => prev.bind(est)?,
                    });
                }
                let others = others.expect("at least two factors");
                let residual = target.unbind(&others)?;
                let probs = self.factors[f].match_prob(&residual, config.temperature)?;
                let mut sup = self.factors[f].weighted_superposition(&probs)?;
                sup.normalize();
                let best = argmax(&probs);
                if best != indices[f] {
                    indices[f] = best;
                    changed = true;
                }
                estimates[f] = sup;
            }
            if !changed && iterations > 1 {
                return Ok(Factorization {
                    indices,
                    iterations,
                    converged: true,
                });
            }
        }
        Ok(Factorization {
            indices,
            iterations,
            converged: false,
        })
    }
}

fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Convenience: factorize a product of known factor count using fresh
/// bipolar codebooks — used by tests and synthetic workload generators.
///
/// # Errors
///
/// Propagates [`Resonator::new`] and [`Resonator::factorize`] errors.
pub fn factorize_product(
    target: &BlockCode,
    factors: Vec<Codebook>,
    config: ResonatorConfig,
) -> Result<Factorization> {
    Resonator::new(factors)?.factorize(target, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unitary_books(counts: &[usize], seed: u64) -> Vec<Codebook> {
        let mut rng = StdRng::seed_from_u64(seed);
        counts
            .iter()
            .map(|&c| Codebook::random_unitary(c, 4, 128, &mut rng))
            .collect()
    }

    #[test]
    fn new_requires_two_factors() {
        let books = unitary_books(&[4], 1);
        assert!(matches!(
            Resonator::new(books),
            Err(VsaError::FactorGeometryMismatch(_))
        ));
    }

    #[test]
    fn new_rejects_mixed_geometry() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Codebook::random_unitary(4, 4, 128, &mut rng);
        let b = Codebook::random_unitary(4, 2, 128, &mut rng);
        assert!(Resonator::new(vec![a, b]).is_err());
    }

    #[test]
    fn two_factor_factorization_recovers_indices() {
        let books = unitary_books(&[6, 6], 3);
        let target = books[0].codeword(1).bind(books[1].codeword(4)).unwrap();
        let res = Resonator::new(books).unwrap();
        let out = res.factorize(&target, ResonatorConfig::default()).unwrap();
        assert_eq!(out.indices, vec![1, 4]);
        assert!(out.converged, "should converge well before the cap");
    }

    #[test]
    fn three_factor_factorization_recovers_indices() {
        let books = unitary_books(&[5, 5, 5], 4);
        let target = books[0]
            .codeword(2)
            .bind(books[1].codeword(0))
            .unwrap()
            .bind(books[2].codeword(3))
            .unwrap();
        let res = Resonator::new(books).unwrap();
        let out = res.factorize(&target, ResonatorConfig::default()).unwrap();
        assert_eq!(out.indices, vec![2, 0, 3]);
    }

    #[test]
    fn reconstruct_matches_target() {
        let books = unitary_books(&[4, 4], 5);
        let target = books[0].codeword(3).bind(books[1].codeword(2)).unwrap();
        let res = Resonator::new(books).unwrap();
        let rebuilt = res.reconstruct(&[3, 2]).unwrap();
        assert!(rebuilt.similarity(&target).unwrap() > 0.999);
        assert!(res.reconstruct(&[3]).is_err());
        assert!(res.reconstruct(&[3, 9]).is_err());
    }

    #[test]
    fn factorization_tolerates_noise() {
        let books = unitary_books(&[6, 6], 6);
        let mut target = books[0].codeword(5).bind(books[1].codeword(1)).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        use rand::Rng;
        for x in target.data_mut() {
            *x += 0.02 * (rng.gen::<f32>() - 0.5);
        }
        let res = Resonator::new(books).unwrap();
        let out = res.factorize(&target, ResonatorConfig::default()).unwrap();
        assert_eq!(out.indices, vec![5, 1]);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let books = unitary_books(&[8, 8], 8);
        let target = books[0].codeword(0).bind(books[1].codeword(0)).unwrap();
        let res = Resonator::new(books).unwrap();
        let cfg = ResonatorConfig {
            max_iterations: 1,
            temperature: 0.08,
        };
        let out = res.factorize(&target, cfg).unwrap();
        assert_eq!(out.iterations, 1);
        assert!(!out.converged);
    }

    #[test]
    fn convenience_wrapper_works() {
        let books = unitary_books(&[4, 4], 9);
        let target = books[0].codeword(1).bind(books[1].codeword(3)).unwrap();
        let out = factorize_product(&target, books, ResonatorConfig::default()).unwrap();
        assert_eq!(out.indices, vec![1, 3]);
    }
}
