//! Core vector-symbolic kernels: circular convolution binding, circular
//! correlation (inverse binding), bundling, permutation and similarity
//! batched against a dictionary.
//!
//! The paper defines the key kernel (Sec. II-A):
//!
//! > `C[n] = Σ_{k=0}^{N-1} A[k] · B[(n−k) mod N]`
//!
//! and its inverse (`inv_binding_circular` in the Listing 1 trace) is the
//! circular *correlation* `C[n] = Σ_k A[k] · B[(n+k) mod N]`, which exactly
//! inverts binding for unitary codewords and approximately (up to crosstalk)
//! for random bipolar ones.

use crate::{BlockCode, Result, VsaError};

/// Circular convolution of two equal-length slices into `out`.
///
/// This is the reference O(N²) kernel — also precisely the arithmetic the
/// AdArray column performs while streaming (one stationary operand, one
/// streamed operand, a passing register providing the rotation).
///
/// # Panics
///
/// Panics if the three slices differ in length.
pub fn circular_convolve_into(a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = a.len();
    assert_eq!(b.len(), n, "operand lengths must match");
    assert_eq!(out.len(), n, "output length must match");
    for (idx, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for (k, &ak) in a.iter().enumerate() {
            // (idx - k) mod n without branching on negatives.
            let j = (idx + n - k) % n;
            acc += ak * b[j];
        }
        *slot = acc;
    }
}

/// Circular convolution returning a new vector.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn circular_convolve(a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; a.len()];
    circular_convolve_into(a, b, &mut out);
    out
}

/// Circular correlation `out[n] = Σ_k a[k] · b[(k−n) mod N]` — the
/// approximate inverse of [`circular_convolve`] (recovers `x` from
/// `circular_convolve(x, b)` when correlated with `b`; exact for unitary
/// `b`). Identical to convolving `a` with the [`involution`] of `b`.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn circular_correlate(a: &[f32], b: &[f32]) -> Vec<f32> {
    let n = a.len();
    assert_eq!(b.len(), n, "operand lengths must match");
    let mut out = vec![0.0; n];
    for (idx, slot) in out.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for k in 0..n {
            acc += a[k] * b[(k + n - idx) % n];
        }
        *slot = acc;
    }
    out
}

/// The *involution* `b~[n] = b[(−n) mod N]`; correlation with `b` equals
/// convolution with `b~`, which is how the AdArray maps inverse binding
/// onto the same streaming datapath as binding.
#[must_use]
pub fn involution(b: &[f32]) -> Vec<f32> {
    let n = b.len();
    (0..n).map(|i| b[(n - i) % n]).collect()
}

/// Blockwise circular-convolution binding of two block codes.
///
/// # Errors
///
/// Returns [`VsaError::GeometryMismatch`] if geometries differ.
pub fn bind(a: &BlockCode, b: &BlockCode) -> Result<BlockCode> {
    a.check_geometry(b)?;
    let (nb, bd) = (a.n_blocks(), a.block_dim());
    let mut out = BlockCode::zeros(nb, bd);
    for blk in 0..nb {
        let start = blk * bd;
        let a_blk = &a.data()[start..start + bd];
        let b_blk = &b.data()[start..start + bd];
        circular_convolve_into(a_blk, b_blk, &mut out.data_mut()[start..start + bd]);
    }
    Ok(out)
}

/// Blockwise circular-correlation inverse binding (`inv_binding_circular`
/// in the paper's trace).
///
/// # Errors
///
/// Returns [`VsaError::GeometryMismatch`] if geometries differ.
pub fn unbind(bound: &BlockCode, b: &BlockCode) -> Result<BlockCode> {
    bound.check_geometry(b)?;
    let (nb, bd) = (bound.n_blocks(), bound.block_dim());
    let mut data = Vec::with_capacity(nb * bd);
    for blk in 0..nb {
        let start = blk * bd;
        let bound_blk = &bound.data()[start..start + bd];
        let b_blk = &b.data()[start..start + bd];
        data.extend(circular_correlate(bound_blk, b_blk));
    }
    BlockCode::from_vec(nb, bd, data)
}

/// Bundles (element-wise sums) any number of block codes; the superposition
/// retains similarity to each constituent.
///
/// # Errors
///
/// Returns [`VsaError::EmptyCodebook`] for an empty input and
/// [`VsaError::GeometryMismatch`] if constituents disagree in geometry.
pub fn bundle<'a, I>(codes: I) -> Result<BlockCode>
where
    I: IntoIterator<Item = &'a BlockCode>,
{
    let mut iter = codes.into_iter();
    let first = iter.next().ok_or(VsaError::EmptyCodebook)?;
    let mut out = first.clone();
    for code in iter {
        out.check_geometry(code)?;
        for (o, x) in out.data_mut().iter_mut().zip(code.data()) {
            *o += x;
        }
    }
    Ok(out)
}

/// Cyclically rotates every block by `shift` positions — the cheap
/// "protect"/positional-tag operation VSAs use to encode sequence order.
#[must_use]
pub fn permute(code: &BlockCode, shift: usize) -> BlockCode {
    let (nb, bd) = (code.n_blocks(), code.block_dim());
    let mut out = BlockCode::zeros(nb, bd);
    for blk in 0..nb {
        let start = blk * bd;
        for i in 0..bd {
            out.data_mut()[start + (i + shift) % bd] = code.data()[start + i];
        }
    }
    out
}

/// Normalized similarities of a query against each entry of a dictionary,
/// passed through a softmax — the `match_prob_multi_batched` kernel from
/// the paper's Listing 1 (query `[1,4,256]` against a `[7,4,256]`
/// dictionary producing 7 probabilities).
///
/// `temperature` scales the logits before the softmax; the NVSA reference
/// uses a sharpening temperature well below 1.
///
/// # Errors
///
/// Returns [`VsaError::EmptyCodebook`] for an empty dictionary and
/// [`VsaError::GeometryMismatch`] on geometry disagreement.
pub fn match_prob(
    query: &BlockCode,
    dictionary: &[BlockCode],
    temperature: f32,
) -> Result<Vec<f32>> {
    if dictionary.is_empty() {
        return Err(VsaError::EmptyCodebook);
    }
    let mut logits = Vec::with_capacity(dictionary.len());
    for entry in dictionary {
        logits.push(query.similarity(entry)? / temperature.max(f32::MIN_POSITIVE));
    }
    Ok(softmax(&logits))
}

/// Numerically-stable softmax.
#[must_use]
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    if logits.is_empty() {
        return Vec::new();
    }
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(nb: usize, bd: usize, data: Vec<f32>) -> BlockCode {
        BlockCode::from_vec(nb, bd, data).unwrap()
    }

    #[test]
    fn convolution_matches_paper_definition() {
        // Hand-computed 3-element example: C[n] = Σ A[k]·B[(n−k) mod 3].
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let c = circular_convolve(&a, &b);
        // C[0] = 1·4 + 2·6 + 3·5 = 31
        // C[1] = 1·5 + 2·4 + 3·6 = 31
        // C[2] = 1·6 + 2·5 + 3·4 = 28
        assert_eq!(c, vec![31.0, 31.0, 28.0]);
    }

    #[test]
    fn convolution_is_commutative() {
        let a = [0.3, -0.7, 1.1, 0.2];
        let b = [-0.5, 0.9, 0.4, -1.3];
        let ab = circular_convolve(&a, &b);
        let ba = circular_convolve(&b, &a);
        for (x, y) in ab.iter().zip(&ba) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn convolution_is_associative() {
        let a = [0.3, -0.7, 1.1];
        let b = [-0.5, 0.9, 0.4];
        let c = [0.2, 0.1, -0.6];
        let left = circular_convolve(&circular_convolve(&a, &b), &c);
        let right = circular_convolve(&a, &circular_convolve(&b, &c));
        for (x, y) in left.iter().zip(&right) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn delta_is_identity() {
        let a = [0.3, -0.7, 1.1, 0.2];
        let delta = [1.0, 0.0, 0.0, 0.0];
        assert_eq!(circular_convolve(&a, &delta), a.to_vec());
    }

    #[test]
    fn correlation_equals_convolution_with_involution() {
        let a = [0.3, -0.7, 1.1, 0.2, -0.4];
        let b = [-0.5, 0.9, 0.4, -1.3, 0.8];
        let corr = circular_correlate(&a, &b);
        let conv_inv = circular_convolve(&a, &involution(&b));
        for (x, y) in corr.iter().zip(&conv_inv) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn involution_is_self_inverse() {
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(involution(&involution(&b)), b.to_vec());
    }

    #[test]
    fn bind_requires_matching_geometry() {
        let a = BlockCode::zeros(2, 4);
        let b = BlockCode::zeros(4, 2);
        assert!(matches!(
            bind(&a, &b),
            Err(VsaError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn bind_with_identity_preserves() {
        let a = code(2, 4, vec![0.1, 0.2, 0.3, 0.4, -0.1, -0.2, -0.3, -0.4]);
        let id = BlockCode::identity(2, 4);
        let bound = bind(&a, &id).unwrap();
        assert!((a.similarity(&bound).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bind_is_blockwise() {
        // Changing block 1 of an operand must not affect block 0 of result.
        let a = code(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b1 = code(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let b2 = code(2, 2, vec![5.0, 6.0, 0.0, 0.0]);
        let r1 = bind(&a, &b1).unwrap();
        let r2 = bind(&a, &b2).unwrap();
        assert_eq!(r1.block(0).unwrap(), r2.block(0).unwrap());
        assert_ne!(r1.block(1).unwrap(), r2.block(1).unwrap());
    }

    #[test]
    fn bundle_retains_similarity_to_constituents() {
        let a = code(1, 8, vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0]);
        let b = code(1, 8, vec![1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0]);
        let s = bundle([&a, &b]).unwrap();
        assert!(s.similarity(&a).unwrap() > 0.5);
        assert!(s.similarity(&b).unwrap() > 0.5);
    }

    #[test]
    fn bundle_empty_is_error() {
        let empty: [&BlockCode; 0] = [];
        assert_eq!(bundle(empty).unwrap_err(), VsaError::EmptyCodebook);
    }

    #[test]
    fn permute_rotates_within_blocks() {
        let a = code(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let p = permute(&a, 1);
        assert_eq!(p.block(0).unwrap(), &[3.0, 1.0, 2.0]);
        assert_eq!(p.block(1).unwrap(), &[6.0, 4.0, 5.0]);
        // Full rotation is identity.
        let p3 = permute(&a, 3);
        assert_eq!(p3, a);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn match_prob_picks_the_dictionary_entry() {
        let dict = vec![
            code(1, 4, vec![1.0, 0.0, 0.0, 0.0]),
            code(1, 4, vec![0.0, 1.0, 0.0, 0.0]),
            code(1, 4, vec![0.0, 0.0, 1.0, 0.0]),
        ];
        let query = dict[1].clone();
        let probs = match_prob(&query, &dict, 0.1).unwrap();
        let best = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 1);
        assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn match_prob_empty_dictionary_is_error() {
        let q = BlockCode::zeros(1, 4);
        assert_eq!(
            match_prob(&q, &[], 1.0).unwrap_err(),
            VsaError::EmptyCodebook
        );
    }
}
