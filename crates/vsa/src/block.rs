use nsflow_tensor::{Shape, Tensor};

use crate::{ops, Result, VsaError};

/// A block-code hypervector: `n_blocks` blocks of `block_dim` real elements.
///
/// NVSA represents composite symbols as block codes (the paper's Listing 1
/// shows vectors of shape `[1, 4, 256]`: four blocks of 256 elements).
/// Binding is *blockwise* circular convolution: each block of the result is
/// the circular convolution of the corresponding operand blocks.
///
/// # Examples
///
/// ```
/// use nsflow_vsa::BlockCode;
/// let a = BlockCode::from_vec(2, 3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0])?;
/// // Binding with a one-hot block at index 0 is the identity.
/// let id = BlockCode::identity(2, 3);
/// let b = a.bind(&id)?;
/// assert!(a.similarity(&b)? > 0.999);
/// # Ok::<(), nsflow_vsa::VsaError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BlockCode {
    n_blocks: usize,
    block_dim: usize,
    data: Vec<f32>,
}

impl BlockCode {
    /// Creates a block code from raw data (row-major: block 0 first).
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::EmptyGeometry`] if either geometry parameter is
    /// zero, or [`VsaError::DataLengthMismatch`] if `data.len()` differs
    /// from `n_blocks * block_dim`.
    pub fn from_vec(n_blocks: usize, block_dim: usize, data: Vec<f32>) -> Result<Self> {
        if n_blocks == 0 || block_dim == 0 {
            return Err(VsaError::EmptyGeometry);
        }
        let expected = n_blocks * block_dim;
        if data.len() != expected {
            return Err(VsaError::DataLengthMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(BlockCode {
            n_blocks,
            block_dim,
            data,
        })
    }

    /// All-zero block code.
    ///
    /// # Panics
    ///
    /// Panics if either geometry parameter is zero.
    #[must_use]
    pub fn zeros(n_blocks: usize, block_dim: usize) -> Self {
        assert!(n_blocks > 0 && block_dim > 0, "geometry must be nonzero");
        BlockCode {
            n_blocks,
            block_dim,
            data: vec![0.0; n_blocks * block_dim],
        }
    }

    /// The binding identity: every block is the delta vector `[1, 0, …, 0]`
    /// (circular convolution with a delta leaves the operand unchanged).
    ///
    /// # Panics
    ///
    /// Panics if either geometry parameter is zero.
    #[must_use]
    pub fn identity(n_blocks: usize, block_dim: usize) -> Self {
        let mut code = BlockCode::zeros(n_blocks, block_dim);
        for b in 0..n_blocks {
            code.data[b * block_dim] = 1.0;
        }
        code
    }

    /// Number of blocks.
    #[must_use]
    pub fn n_blocks(&self) -> usize {
        self.n_blocks
    }

    /// Elements per block.
    #[must_use]
    pub fn block_dim(&self) -> usize {
        self.block_dim
    }

    /// Total element count (`n_blocks * block_dim`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the code has zero elements (never true for a valid code).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// One block as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::CodewordOutOfRange`] if `block >= n_blocks()`.
    pub fn block(&self, block: usize) -> Result<&[f32]> {
        if block >= self.n_blocks {
            return Err(VsaError::CodewordOutOfRange {
                index: block,
                len: self.n_blocks,
            });
        }
        let start = block * self.block_dim;
        Ok(&self.data[start..start + self.block_dim])
    }

    /// Geometry rendered as `blocks×dim` (used in error messages).
    #[must_use]
    pub fn geometry_string(&self) -> String {
        format!("{}×{}", self.n_blocks, self.block_dim)
    }

    /// Binds (blockwise circular convolution) with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::GeometryMismatch`] if geometries differ.
    pub fn bind(&self, other: &BlockCode) -> Result<BlockCode> {
        ops::bind(self, other)
    }

    /// Inverse-binds (blockwise circular correlation) with `other`,
    /// recovering `x` from `x.bind(other)` up to crosstalk noise.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::GeometryMismatch`] if geometries differ.
    pub fn unbind(&self, other: &BlockCode) -> Result<BlockCode> {
        ops::unbind(self, other)
    }

    /// Bundles (element-wise sum) with `other`; no normalization.
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::GeometryMismatch`] if geometries differ.
    pub fn bundle(&self, other: &BlockCode) -> Result<BlockCode> {
        ops::bundle([self, other])
    }

    /// Normalized similarity in `[-1, 1]` (cosine over all elements).
    ///
    /// # Errors
    ///
    /// Returns [`VsaError::GeometryMismatch`] if geometries differ.
    pub fn similarity(&self, other: &BlockCode) -> Result<f32> {
        self.check_geometry(other)?;
        let dot: f32 = self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum();
        let n1: f32 = self.data.iter().map(|x| x * x).sum::<f32>().sqrt();
        let n2: f32 = other.data.iter().map(|x| x * x).sum::<f32>().sqrt();
        Ok(if n1 == 0.0 || n2 == 0.0 {
            0.0
        } else {
            dot / (n1 * n2)
        })
    }

    /// Scales every element in place so the whole code has unit L2 norm;
    /// an all-zero code is left unchanged.
    pub fn normalize(&mut self) {
        let n: f32 = self.data.iter().map(|x| x * x).sum::<f32>().sqrt();
        if n > 0.0 {
            for x in &mut self.data {
                *x /= n;
            }
        }
    }

    /// Converts to a `[n_blocks, block_dim]` tensor (copies).
    #[must_use]
    pub fn to_tensor(&self) -> Tensor {
        Tensor::from_vec(
            Shape::matrix(self.n_blocks, self.block_dim),
            self.data.clone(),
        )
        .expect("geometry invariant guarantees matching volume")
    }

    pub(crate) fn check_geometry(&self, other: &BlockCode) -> Result<()> {
        if self.n_blocks != other.n_blocks || self.block_dim != other.block_dim {
            return Err(VsaError::GeometryMismatch {
                lhs: self.geometry_string(),
                rhs: other.geometry_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates() {
        assert_eq!(
            BlockCode::from_vec(0, 4, vec![]),
            Err(VsaError::EmptyGeometry)
        );
        assert_eq!(
            BlockCode::from_vec(2, 0, vec![]),
            Err(VsaError::EmptyGeometry)
        );
        assert_eq!(
            BlockCode::from_vec(2, 2, vec![0.0; 3]),
            Err(VsaError::DataLengthMismatch {
                expected: 4,
                actual: 3
            })
        );
        assert!(BlockCode::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn identity_blocks_are_deltas() {
        let id = BlockCode::identity(3, 4);
        for b in 0..3 {
            let blk = id.block(b).unwrap();
            assert_eq!(blk[0], 1.0);
            assert!(blk[1..].iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn block_accessor_bounds() {
        let c = BlockCode::zeros(2, 3);
        assert!(c.block(1).is_ok());
        assert!(c.block(2).is_err());
    }

    #[test]
    fn similarity_self_is_one() {
        let c = BlockCode::from_vec(1, 4, vec![0.5, -0.5, 0.5, -0.5]).unwrap();
        assert!((c.similarity(&c).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn similarity_zero_operand_is_zero() {
        let c = BlockCode::from_vec(1, 2, vec![1.0, 0.0]).unwrap();
        let z = BlockCode::zeros(1, 2);
        assert_eq!(c.similarity(&z).unwrap(), 0.0);
    }

    #[test]
    fn similarity_rejects_geometry_mismatch() {
        let a = BlockCode::zeros(1, 4);
        let b = BlockCode::zeros(2, 2);
        assert!(matches!(
            a.similarity(&b),
            Err(VsaError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut c = BlockCode::from_vec(1, 3, vec![3.0, 0.0, 4.0]).unwrap();
        c.normalize();
        let n: f32 = c.data().iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-6);
        let mut z = BlockCode::zeros(1, 3);
        z.normalize();
        assert_eq!(z.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn to_tensor_shape() {
        let c = BlockCode::zeros(4, 256);
        let t = c.to_tensor();
        assert_eq!(t.shape().dims(), &[4, 256]);
    }
}
