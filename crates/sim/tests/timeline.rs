//! Integration tests for the timeline observability layer: Chrome-trace
//! export round-trips (native parser and serde), critical-path exactness,
//! utilization accounting for both scheduler variants, gantt rendering,
//! and the `sim.stall_*` telemetry counters — all over both hand-built
//! and property-generated graphs.

use nsflow_arch::memory::TransferModel;
use nsflow_arch::{ArrayConfig, Mapping};
use nsflow_graph::DataflowGraph;
use nsflow_sim::schedule::{self, Resource, Schedule, SimOptions};
use nsflow_sim::timeline::bottleneck_report;
use nsflow_telemetry::{ser::to_json_string, JsonValue};
use nsflow_tensor::DType;
use nsflow_trace::{Domain, EltFunc, OpId, OpKind, ReduceFunc, TraceBuilder};
use proptest::prelude::*;

/// conv → bind → sum chain: one op per resource class, so lane
/// assignment and ordering are fully determined.
fn chain_graph(loops: usize) -> DataflowGraph {
    let mut b = TraceBuilder::new("chain");
    let c = b.push(
        "conv",
        OpKind::Gemm {
            m: 256,
            n: 64,
            k: 64,
        },
        Domain::Neural,
        DType::Int8,
        &[],
    );
    let v = b.push(
        "bind",
        OpKind::VsaConv {
            n_vec: 16,
            dim: 128,
        },
        Domain::Symbolic,
        DType::Int4,
        &[c],
    );
    let _s = b.push(
        "sum",
        OpKind::Reduce {
            elems: 16 * 128,
            func: ReduceFunc::Sum,
        },
        Domain::Symbolic,
        DType::Int4,
        &[v],
    );
    DataflowGraph::from_trace(b.finish(loops).unwrap())
}

fn cfg() -> ArrayConfig {
    ArrayConfig::new(16, 16, 4).unwrap()
}

/// Every invariant the observability layer promises, checked on one
/// schedule.
fn assert_timeline_invariants(g: &DataflowGraph, s: &Schedule) {
    let total = s.total_cycles();

    // Chrome trace: strict-parse round-trip through both renderers, and
    // the serde path must agree byte-for-byte with the native writer.
    let doc = s.to_chrome_trace(g);
    let compact = doc.render_compact();
    assert_eq!(JsonValue::parse(&compact).unwrap(), doc);
    assert_eq!(JsonValue::parse(&doc.render_pretty()).unwrap(), doc);
    assert_eq!(to_json_string(&doc).unwrap(), compact);
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .unwrap();
    assert!(
        events
            .iter()
            .any(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X")),
        "trace has no duration events"
    );

    // Critical path tiles [0, total_cycles) exactly.
    let path = s.critical_path(g);
    assert_eq!(
        path.attributed_cycles(),
        total,
        "critical path must attribute the whole makespan"
    );
    let (nn, vsa, simd) = path.cycles_by_resource();
    assert_eq!(nn + vsa + simd, total);

    // Utilization is a fraction of real capacity for every variant.
    let u = s.array_utilization();
    assert!(
        (0.0..=1.0 + 1e-9).contains(&u),
        "utilization {u} out of range"
    );

    // Overlap can never exceed the makespan.
    assert!(s.classes_overlap_cycles() <= total);

    // Per-op stall attribution: transfer stalls sit inside the
    // occupancy; pre-start waits fit before the start.
    for so in s.ops() {
        assert!(so.transfer_stall <= so.end - so.start);
        assert!(so.dep_wait + so.resource_wait <= so.start);
    }

    // Windowed occupancy tiles the makespan with in-range values.
    let windows = s.utilization_timeline(8);
    if total > 0 {
        assert_eq!(windows.first().unwrap().start, 0);
        assert_eq!(windows.last().unwrap().end, total);
        for pair in windows.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
        for w in &windows {
            for v in [w.nn, w.vsa, w.simd] {
                assert!(
                    (0.0..=1.0 + 1e-9).contains(&v),
                    "occupancy {v} out of range"
                );
            }
        }
    }
}

#[test]
fn gantt_golden_chain_graph() {
    let g = chain_graph(1);
    let s = schedule::run(
        &g,
        &cfg(),
        &Mapping::uniform(1, 1, 3, 1),
        &SimOptions {
            simd_lanes: 64,
            transfer: None,
        },
    );
    let text = s.to_gantt_text(&g);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3);

    // Lane assignment and op ordering: the dependency chain forces
    // conv (NN) → bind (VSA) → sum (SIMD), in start order.
    assert!(lines[0].starts_with("NN  "), "line 0: {}", lines[0]);
    assert!(lines[0].ends_with("conv"));
    assert!(lines[1].starts_with("VSA "), "line 1: {}", lines[1]);
    assert!(lines[1].ends_with("bind"));
    assert!(lines[2].starts_with("SIMD"), "line 2: {}", lines[2]);
    assert!(lines[2].ends_with("sum"));

    // The head op computes from cycle 0: bar opens with '#', no gap.
    let bar = |l: &str| l.split('|').nth(1).unwrap().to_string();
    assert!(bar(lines[0]).starts_with('#'));
    // Dependent ops render their dependency-wait gap as leading dots
    // before the compute bar.
    for line in &lines[1..] {
        let b = bar(line);
        let first_mark = b.trim_start().to_string();
        assert!(
            first_mark.starts_with('.'),
            "expected stall-gap dots before compute: {line}"
        );
        assert!(b.contains('#'), "no compute segment: {line}");
        // Gap strictly precedes compute.
        assert!(b.find('.').unwrap() < b.find('#').unwrap());
    }

    // Start cycles are non-decreasing and abut the chain.
    let starts: Vec<u64> = lines
        .iter()
        .map(|l| {
            l.split('|')
                .nth(2)
                .unwrap()
                .trim()
                .split("..")
                .next()
                .unwrap()
                .parse()
                .unwrap()
        })
        .collect();
    assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(starts[0], 0);
}

#[test]
fn gantt_renders_transfer_stall_head() {
    // Starve the transfer bus so double buffering cannot hide weight
    // loads: ops carry a transfer-stall head, drawn as '~'.
    let g = chain_graph(2);
    let s = schedule::run(
        &g,
        &cfg(),
        &Mapping::uniform(1, 1, 3, 1),
        &SimOptions {
            simd_lanes: 64,
            transfer: Some(TransferModel::new(0.05)),
        },
    );
    assert!(
        s.ops().iter().any(|so| so.transfer_stall > 0),
        "bandwidth starvation must produce transfer stalls"
    );
    let text = s.to_gantt_text(&g);
    assert!(
        text.contains('~'),
        "transfer stall head not rendered:\n{text}"
    );
    // Stalled-but-occupied cycles still belong to the op, so the
    // critical path stays exact.
    assert_timeline_invariants(&g, &s);
}

#[test]
fn utilization_pinned_for_both_scheduler_variants() {
    let g = chain_graph(4);
    let opts = SimOptions::default();

    // Partition-queue scheduler, parallel mapping: two array lanes.
    let s = schedule::run(&g, &cfg(), &Mapping::uniform(1, 1, 3, 1), &opts);
    let busy: u64 = s
        .ops()
        .iter()
        .filter(|so| so.resource != Resource::Simd)
        .map(|so| so.end - so.start)
        .sum();
    let expect = busy as f64 / (2 * s.total_cycles()) as f64;
    assert!((s.array_utilization() - expect).abs() < 1e-12);
    assert!(s.array_utilization() <= 1.0);

    // Sequential mode: ONE time-shared lane — dividing by two lanes
    // (the old bug) would halve this.
    let seq = schedule::run(&g, &cfg(), &Mapping::sequential(1, 1, 4), &opts);
    let busy: u64 = seq
        .ops()
        .iter()
        .filter(|so| so.resource != Resource::Simd)
        .map(|so| so.end - so.start)
        .sum();
    let expect = busy as f64 / seq.total_cycles() as f64;
    assert!((seq.array_utilization() - expect).abs() < 1e-12);
    assert!(seq.array_utilization() <= 1.0);

    // Pooled scheduler: sub-array-cycle accounting over the pool, with
    // per-op weights equal to the units each op actually claimed.
    let pooled = schedule::run_pooled(&g, &cfg(), &Mapping::uniform(1, 1, 3, 1), &opts);
    let weighted: u64 = pooled
        .ops()
        .iter()
        .enumerate()
        .filter(|(_, so)| so.resource != Resource::Simd)
        .map(|(i, so)| pooled.claimed_units(i).len() as u64 * (so.end - so.start))
        .sum();
    let expect = weighted as f64 / (pooled.pool_units() as u64 * pooled.total_cycles()) as f64;
    assert!((pooled.array_utilization() - expect).abs() < 1e-12);
    assert!(pooled.array_utilization() <= 1.0);
}

#[test]
fn pooled_unit_assignment_is_consistent() {
    let g = chain_graph(4);
    let s = schedule::run_pooled(
        &g,
        &cfg(),
        &Mapping::uniform(1, 1, 3, 1),
        &SimOptions::default(),
    );
    let pool = s.pool_units();
    assert!(pool > 0);
    // No unit hosts two overlapping ops, and every array op claims at
    // least one unit.
    let mut per_unit: Vec<Vec<(u64, u64)>> = vec![Vec::new(); pool];
    for (i, so) in s.ops().iter().enumerate() {
        if so.resource == Resource::Simd {
            assert!(s.claimed_units(i).is_empty());
            continue;
        }
        assert!(!s.claimed_units(i).is_empty());
        for &u in s.claimed_units(i) {
            per_unit[usize::from(u)].push((so.start, so.end));
        }
    }
    for intervals in &mut per_unit {
        intervals.sort_unstable();
        for w in intervals.windows(2) {
            assert!(w[0].1 <= w[1].0, "unit double-booked: {w:?}");
        }
    }
}

#[test]
fn stall_counters_are_recorded() {
    if !nsflow_telemetry::enabled() {
        return;
    }
    nsflow_telemetry::reset();
    let g = chain_graph(2);
    let _s = schedule::run_pooled(
        &g,
        &cfg(),
        &Mapping::uniform(1, 1, 3, 1),
        &SimOptions::default(),
    );
    let snap = nsflow_telemetry::TelemetrySnapshot::capture();
    // The chain serializes, so dependency waits must be visible; the
    // other two categories exist (possibly zero-valued) as well.
    assert!(snap.counter("sim.stall_dep_wait") > 0);
    assert!(snap.counters.contains_key("sim.stall_resource_wait"));
    assert!(snap.counters.contains_key("sim.stall_transfer"));
}

#[test]
fn bottleneck_report_names_the_dominant_op() {
    let g = chain_graph(2);
    let s = schedule::run_pooled(
        &g,
        &cfg(),
        &Mapping::uniform(1, 1, 3, 1),
        &SimOptions::default(),
    );
    let report = bottleneck_report(&s, &g, 3);
    for needle in [
        "critical path:",
        "stalls:",
        "overlap:",
        "occupancy NN",
        "top ops by critical-path contribution:",
    ] {
        assert!(report.contains(needle), "missing `{needle}` in:\n{report}");
    }
    // The heavy GEMM dominates this chain.
    assert!(report.contains("conv"));
}

/// Builds a trace from `(kind_pick, size, dep_pick)` specs; dependencies
/// always point at earlier ops, so the graph is a DAG by construction.
fn build_graph(specs: &[(usize, usize, usize)], loops: usize) -> DataflowGraph {
    let mut b = TraceBuilder::new("prop");
    let mut ids: Vec<OpId> = Vec::new();
    for (i, &(kind_pick, size, dep_pick)) in specs.iter().enumerate() {
        let deps: Vec<OpId> = if ids.is_empty() {
            Vec::new()
        } else {
            vec![ids[dep_pick % ids.len()]]
        };
        let (kind, domain, dtype) = match kind_pick {
            0 => (
                OpKind::Gemm {
                    m: 16 * size,
                    n: 8 * size,
                    k: 8 * size,
                },
                Domain::Neural,
                DType::Int8,
            ),
            1 => (
                OpKind::VsaConv {
                    n_vec: 2 * size,
                    dim: 32 * size,
                },
                Domain::Symbolic,
                DType::Int4,
            ),
            2 => (
                OpKind::Elementwise {
                    elems: 64 * size,
                    func: EltFunc::Relu,
                },
                Domain::Neural,
                DType::Int8,
            ),
            3 => (
                OpKind::Reduce {
                    elems: 64 * size,
                    func: ReduceFunc::Sum,
                },
                Domain::Symbolic,
                DType::Int4,
            ),
            _ => (
                OpKind::Similarity {
                    n_vec: 2 * size,
                    dim: 32 * size,
                },
                Domain::Symbolic,
                DType::Int4,
            ),
        };
        ids.push(b.push(format!("op{i}"), kind, domain, dtype, &deps));
    }
    DataflowGraph::from_trace(b.finish(loops).unwrap())
}

proptest! {
    #[test]
    fn timeline_invariants_hold_for_random_graphs(
        specs in proptest::collection::vec((0..5usize, 1..4usize, 0..16usize), 1..10),
        loops in 1..4usize,
        cfg_pick in 0..3usize,
        nl_seed in 0..8usize,
        nv_seed in 0..8usize,
    ) {
        let g = build_graph(&specs, loops);
        let cfg = [
            ArrayConfig::new(8, 8, 2).unwrap(),
            ArrayConfig::new(16, 16, 4).unwrap(),
            ArrayConfig::new(32, 32, 8).unwrap(),
        ][cfg_pick];
        let n = cfg.n_subarrays();
        let nn = g.trace().nn_nodes().len();
        let vsa = g.trace().vsa_nodes().len();
        let mapping = if (nl_seed + nv_seed) % 4 == 0 {
            Mapping::sequential(nn, vsa, n)
        } else {
            Mapping::uniform(nn, vsa, 1 + nl_seed % n, 1 + nv_seed % n)
        };
        let opts = SimOptions {
            simd_lanes: 64,
            // A modest bus so some cases hit transfer stalls.
            transfer: Some(TransferModel::new(4.0)),
        };
        assert_timeline_invariants(&g, &schedule::run(&g, &cfg, &mapping, &opts));
        assert_timeline_invariants(&g, &schedule::run_pooled(&g, &cfg, &mapping, &opts));
    }
}
