//! Event-driven execution of a dataflow graph on the NSFlow backend.
//!
//! Three resources exist: the NN partition of the AdArray, the VSA
//! partition, and the SIMD unit. In parallel mode the partitions run
//! concurrently on disjoint sub-arrays; in sequential mode they are the
//! same time-shared resource. Each op's latency comes from the analytical
//! model (eqs. (1)–(5)) plus an optional double-buffered transfer stall.
//!
//! Loop iterations are pipelined exactly as the paper's step ③ describes:
//! an op of loop `i+1` waits only for its *intra-loop* dependencies and
//! for its resource to free — so the next loop's first NN layer overlaps
//! the previous loop's symbolic tail.

use nsflow_arch::memory::TransferModel;
use nsflow_arch::{analytical, simd, ArrayConfig, Mapping};
use nsflow_graph::DataflowGraph;
use nsflow_telemetry as telemetry;
use nsflow_trace::{OpId, OpKind};

/// Which execution resource an op occupied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The AdArray's NN partition (or the whole array when sequential).
    NnPartition,
    /// The AdArray's VSA partition.
    VsaPartition,
    /// The SIMD unit.
    Simd,
}

/// One scheduled op instance, including *why* it started when it did.
///
/// The pre-start gap is attributed to two mutually exclusive stall
/// categories, both measured by the scheduler that placed the op:
///
/// - [`dep_wait`](Self::dep_wait): cycles the op's execution slot sat
///   idle because a data dependency (or, on the pooled backend, the
///   previous loop instance of the same op) had not finished yet,
/// - [`resource_wait`](Self::resource_wait): cycles the op was ready
///   (all dependencies done) but its resource — partition queue, SIMD
///   unit, or enough free pool sub-arrays — was still claimed.
///
/// [`transfer_stall`](Self::transfer_stall) is different in kind: it is
/// *inside* `[start, end)` — extra occupancy cycles where the claimed
/// arrays wait on the double-buffered weight/vector transfer instead of
/// computing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledOp {
    /// Loop iteration index.
    pub loop_idx: usize,
    /// The op.
    pub op: OpId,
    /// Start cycle.
    pub start: u64,
    /// End cycle (exclusive).
    pub end: u64,
    /// Resource occupied.
    pub resource: Resource,
    /// Cycles the op's slot idled waiting on dependencies before `start`.
    pub dep_wait: u64,
    /// Cycles the op was ready but its resource was busy before `start`.
    pub resource_wait: u64,
    /// Double-buffered transfer stall cycles inside `[start, end)`.
    pub transfer_stall: u64,
}

/// The complete schedule of a workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    ops: Vec<ScheduledOp>,
    total_cycles: u64,
    busy_nn: u64,
    busy_vsa: u64,
    busy_simd: u64,
    /// Sub-array count when produced by the pooled scheduler
    /// ([`run_pooled`]); 0 for the partition-queue scheduler ([`run`]).
    pool_units: usize,
    /// Whether the producing mapping time-shared one array (sequential
    /// mode of [`run`]); pooled schedules are never sequential.
    sequential: bool,
    /// Concrete sub-array indices claimed by each op (aligned with
    /// `ops`). Empty per-op for SIMD ops and for the partition-queue
    /// scheduler, which does not place ops on individual sub-arrays.
    unit_sets: Vec<Vec<u16>>,
}

impl Schedule {
    /// All scheduled op instances in issue order.
    #[must_use]
    pub fn ops(&self) -> &[ScheduledOp] {
        &self.ops
    }

    /// Sub-array pool size for pooled schedules ([`run_pooled`]);
    /// 0 for the partition-queue scheduler ([`run`]).
    #[must_use]
    pub fn pool_units(&self) -> usize {
        self.pool_units
    }

    /// Whether the mapping time-shared a single array resource.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        self.sequential
    }

    /// Concrete sub-array indices op `i` (index into [`Schedule::ops`])
    /// claimed, assigned deterministically first-fit by the pooled
    /// scheduler. Empty for SIMD ops and partition-queue schedules.
    #[must_use]
    pub fn claimed_units(&self, i: usize) -> &[u16] {
        self.unit_sets.get(i).map_or(&[], Vec::as_slice)
    }

    /// Makespan in cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Busy cycles per resource `(nn, vsa, simd)`.
    #[must_use]
    pub fn busy_cycles(&self) -> (u64, u64, u64) {
        (self.busy_nn, self.busy_vsa, self.busy_simd)
    }

    /// Seconds at a given clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not positive.
    #[must_use]
    pub fn seconds_at(&self, freq_hz: f64) -> f64 {
        assert!(freq_hz > 0.0, "frequency must be positive");
        self.total_cycles as f64 / freq_hz
    }

    /// Renders the schedule as a text Gantt timeline (one line per op
    /// instance, ordered by start cycle) — a debugging/inspection artifact
    /// for deployment analysis.
    ///
    /// Bar glyphs: `#` compute, `~` double-buffered transfer stall (the
    /// leading portion of the op's occupancy), `.` the pre-start stall
    /// gap (dependency + resource wait).
    #[must_use]
    pub fn to_gantt_text(&self, graph: &DataflowGraph) -> String {
        let mut lines = String::new();
        let width = 48usize;
        let span = self.total_cycles.max(1) as f64;
        let cell = |cycle: u64| ((cycle as f64 / span) * width as f64) as usize;
        let mut ops = self.ops.clone();
        ops.sort_by_key(|so| (so.start, so.loop_idx, so.op.index()));
        for so in &ops {
            let name = graph.trace().op(so.op).name();
            let lane = match so.resource {
                Resource::NnPartition => "NN  ",
                Resource::VsaPartition => "VSA ",
                Resource::Simd => "SIMD",
            };
            let a = cell(so.start);
            let b = cell(so.end).max(a + 1).min(width);
            let mut bar = vec![b' '; width];
            // Pre-start stall gap (dependency + resource wait).
            let wait = cell(so.start - (so.dep_wait + so.resource_wait).min(so.start)).min(a);
            for c in bar.iter_mut().take(a).skip(wait) {
                *c = b'.';
            }
            // Occupancy: transfer stall head, then compute.
            let stall_end = cell(so.start + so.transfer_stall).clamp(a, b);
            for (i, c) in bar.iter_mut().enumerate().take(b).skip(a) {
                *c = if i < stall_end { b'~' } else { b'#' };
            }
            lines.push_str(&format!(
                "{lane} |{}| {:>10}..{:<10} L{} {}\n",
                String::from_utf8_lossy(&bar),
                so.start,
                so.end,
                so.loop_idx,
                name
            ));
        }
        lines
    }

    /// Temporal utilization of the array: sub-array-cycles busy over
    /// sub-array-cycles available (pooled schedules, where per-op busy
    /// time is weighted by the claimed sub-arrays), or partition
    /// busy/makespan for the two-queue scheduler.
    ///
    /// The denominator follows the schedule's actual array resources: the
    /// sub-array pool for [`run_pooled`], two partition lanes for
    /// parallel-mode [`run`], and a *single* time-shared lane for
    /// sequential-mode [`run`] — so a fully busy sequential schedule
    /// reports 100%, not 50%, and a pooled schedule can never exceed
    /// 100% (its busy cycles are capacity-bounded by construction).
    #[must_use]
    pub fn array_utilization(&self) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let lanes = if self.pool_units > 0 {
            self.pool_units as u64
        } else if self.sequential {
            1
        } else {
            2
        };
        (self.busy_nn + self.busy_vsa) as f64 / (lanes * self.total_cycles) as f64
    }
}

/// Publishes a finished schedule into the telemetry registry: per-class
/// busy-cycle counters, the scheduled-op count, and a per-op latency
/// histogram. No-op when the `telemetry` feature is disabled.
fn record_schedule(schedule: &Schedule) {
    telemetry::counter!("sim.ops_scheduled").add(schedule.ops.len() as u64);
    telemetry::counter!("sim.cycles.nn").add(schedule.busy_nn);
    telemetry::counter!("sim.cycles.vsa").add(schedule.busy_vsa);
    telemetry::counter!("sim.cycles.simd").add(schedule.busy_simd);
    let (mut dep, mut res, mut xfer) = (0u64, 0u64, 0u64);
    for op in &schedule.ops {
        dep += op.dep_wait;
        res += op.resource_wait;
        xfer += op.transfer_stall;
    }
    telemetry::counter!("sim.stall_dep_wait").add(dep);
    telemetry::counter!("sim.stall_resource_wait").add(res);
    telemetry::counter!("sim.stall_transfer").add(xfer);
    if telemetry::enabled() {
        let histogram = telemetry::global().histogram("sim.op_cycles");
        for op in &schedule.ops {
            histogram.record(op.end - op.start);
        }
    }
}

/// Options for [`run`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimOptions {
    /// SIMD unit width.
    pub simd_lanes: usize,
    /// Optional off-chip transfer model; `None` disables stalls.
    pub transfer: Option<TransferModel>,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            simd_lanes: 64,
            transfer: Some(TransferModel::default()),
        }
    }
}

/// Executes `graph` (all loop iterations) on the configured backend and
/// returns the schedule.
///
/// # Panics
///
/// Panics if `mapping` lengths disagree with the graph's NN/VSA node
/// counts (validate first with [`Mapping::validate`]).
#[must_use]
pub fn run(
    graph: &DataflowGraph,
    cfg: &ArrayConfig,
    mapping: &Mapping,
    options: &SimOptions,
) -> Schedule {
    let _span = telemetry::span!("sim.run");
    let trace = graph.trace();
    let nn_nodes = trace.nn_nodes();
    let vsa_nodes = trace.vsa_nodes();
    assert_eq!(mapping.n_l.len(), nn_nodes.len(), "NN mapping length");
    assert_eq!(mapping.n_v.len(), vsa_nodes.len(), "VSA mapping length");

    // Per-op resource + latency (loop-invariant).
    let nn_index: std::collections::HashMap<OpId, usize> = nn_nodes
        .iter()
        .enumerate()
        .map(|(i, id)| (*id, i))
        .collect();
    let vsa_index: std::collections::HashMap<OpId, usize> = vsa_nodes
        .iter()
        .enumerate()
        .map(|(i, id)| (*id, i))
        .collect();

    let mut latencies = Vec::with_capacity(trace.ops().len());
    let mut stalls = Vec::with_capacity(trace.ops().len());
    let mut resources = Vec::with_capacity(trace.ops().len());
    for op in trace.ops() {
        let (latency, stall, resource) = match *op.kind() {
            OpKind::Gemm { m, n, k } => {
                let n_l = mapping.n_l[nn_index[&op.id()]];
                let compute = analytical::nn_layer_cycles(cfg, n_l, m, n, k);
                let stall = options
                    .transfer
                    .as_ref()
                    .map_or(0, |t| t.stall_cycles(op.weight_bytes(), compute));
                (compute + stall, stall, Resource::NnPartition)
            }
            OpKind::VsaConv { n_vec, dim } => {
                let n_v = mapping.n_v[vsa_index[&op.id()]];
                let (compute, _) = analytical::vsa_node_cycles(cfg, n_v, n_vec, dim);
                let stall = options
                    .transfer
                    .as_ref()
                    .map_or(0, |t| t.stall_cycles(op.weight_bytes(), compute));
                (compute + stall, stall, Resource::VsaPartition)
            }
            ref k => (
                simd::op_cycles(k, options.simd_lanes).max(1),
                0,
                Resource::Simd,
            ),
        };
        latencies.push(latency.max(1));
        stalls.push(stall);
        resources.push(resource);
    }

    // In sequential mode the VSA partition aliases the NN partition.
    let alias = |r: Resource| -> Resource {
        if !mapping.parallel && r == Resource::VsaPartition {
            Resource::NnPartition
        } else {
            r
        }
    };

    let mut free_at: std::collections::HashMap<Resource, u64> = std::collections::HashMap::new();
    let mut scheduled = Vec::new();
    let mut busy = std::collections::HashMap::<Resource, u64>::new();
    let n_ops = trace.ops().len();
    let mut end_of: Vec<u64> = vec![0; n_ops];
    let mut makespan = 0u64;

    for loop_idx in 0..trace.loop_count() {
        for (pos, op) in trace.ops().iter().enumerate() {
            let res = alias(resources[pos]);
            let dep_ready = op
                .inputs()
                .iter()
                .map(|d| end_of[d.index()])
                .max()
                .unwrap_or(0);
            let res_ready = free_at.get(&res).copied().unwrap_or(0);
            let start = dep_ready.max(res_ready);
            let end = start + latencies[pos];
            end_of[pos] = end;
            free_at.insert(res, end);
            *busy.entry(res).or_insert(0) += latencies[pos];
            makespan = makespan.max(end);
            scheduled.push(ScheduledOp {
                loop_idx,
                op: op.id(),
                start,
                end,
                resource: resources[pos],
                dep_wait: dep_ready.saturating_sub(res_ready),
                resource_wait: res_ready.saturating_sub(dep_ready),
                transfer_stall: stalls[pos],
            });
        }
    }

    let n_scheduled = scheduled.len();
    let schedule = Schedule {
        ops: scheduled,
        total_cycles: makespan,
        busy_nn: busy.get(&Resource::NnPartition).copied().unwrap_or(0),
        busy_vsa: busy.get(&Resource::VsaPartition).copied().unwrap_or(0),
        busy_simd: busy.get(&Resource::Simd).copied().unwrap_or(0),
        pool_units: 0,
        sequential: !mapping.parallel,
        unit_sets: vec![Vec::new(); n_scheduled],
    };
    record_schedule(&schedule);
    schedule
}

/// Executes `graph` on the **pooled** AdArray model: the `N` sub-arrays
/// form a single capacity pool, each array op claims its mapped
/// allocation (`N_l[i]` / `N_v[j]`) for its duration and releases it on
/// completion — runtime array folding as the backend actually performs
/// it. SIMD ops serialize on the SIMD unit. Successive loop iterations
/// of the *same* op serialize (its stationary weights/vectors occupy the
/// claimed sub-arrays), which is what bounds the loop-pipelining depth.
///
/// This is the execution model behind the Fig. 6 ablation: per-node
/// allocations genuinely compete for the pool, so the Phase-II mapping
/// refinement has real effect.
///
/// # Panics
///
/// Panics if `mapping` lengths disagree with the graph's node counts.
#[must_use]
pub fn run_pooled(
    graph: &DataflowGraph,
    cfg: &ArrayConfig,
    mapping: &Mapping,
    options: &SimOptions,
) -> Schedule {
    let _span = telemetry::span!("sim.run_pooled");
    let trace = graph.trace();
    let nn_nodes = trace.nn_nodes();
    let vsa_nodes = trace.vsa_nodes();
    assert_eq!(mapping.n_l.len(), nn_nodes.len(), "NN mapping length");
    assert_eq!(mapping.n_v.len(), vsa_nodes.len(), "VSA mapping length");
    let pool = cfg.n_subarrays();

    let nn_index: std::collections::HashMap<OpId, usize> = nn_nodes
        .iter()
        .enumerate()
        .map(|(i, id)| (*id, i))
        .collect();
    let vsa_index: std::collections::HashMap<OpId, usize> = vsa_nodes
        .iter()
        .enumerate()
        .map(|(i, id)| (*id, i))
        .collect();

    // Per-op latency, pool demand and class (loop-invariant).
    let n_ops = trace.ops().len();
    let mut latency = vec![0u64; n_ops];
    let mut stall_of = vec![0u64; n_ops];
    let mut demand = vec![0usize; n_ops];
    let mut class = Vec::with_capacity(n_ops);
    for (pos, op) in trace.ops().iter().enumerate() {
        match *op.kind() {
            OpKind::Gemm { m, n, k } => {
                let units = mapping.n_l[nn_index[&op.id()]].min(pool);
                let compute = analytical::nn_layer_cycles(cfg, units, m, n, k);
                let stall = options
                    .transfer
                    .as_ref()
                    .map_or(0, |t| t.stall_cycles(op.weight_bytes(), compute));
                latency[pos] = (compute + stall).max(1);
                stall_of[pos] = stall;
                demand[pos] = units;
                class.push(Resource::NnPartition);
            }
            OpKind::VsaConv { n_vec, dim } => {
                let units = mapping.n_v[vsa_index[&op.id()]].min(pool);
                let (compute, _) = analytical::vsa_node_cycles(cfg, units, n_vec, dim);
                let stall = options
                    .transfer
                    .as_ref()
                    .map_or(0, |t| t.stall_cycles(op.weight_bytes(), compute));
                latency[pos] = (compute + stall).max(1);
                stall_of[pos] = stall;
                demand[pos] = units;
                class.push(Resource::VsaPartition);
            }
            ref k => {
                latency[pos] = simd::op_cycles(k, options.simd_lanes).max(1);
                demand[pos] = 0;
                class.push(Resource::Simd);
            }
        }
    }

    // Event-driven list scheduling over (loop, op) instances.
    let loops = trace.loop_count();
    let total = loops * n_ops;
    let idx = |l: usize, p: usize| l * n_ops + p;
    // Remaining dependency count: intra-loop deps + previous instance of
    // the same op (stationary-operand serialization).
    let mut deps_left = vec![0usize; total];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); total];
    for l in 0..loops {
        for (p, op) in trace.ops().iter().enumerate() {
            let me = idx(l, p);
            for d in op.inputs() {
                deps_left[me] += 1;
                dependents[idx(l, d.index())].push(me);
            }
            if l > 0 {
                deps_left[me] += 1;
                dependents[idx(l - 1, p)].push(me);
            }
        }
    }

    use std::cmp::Reverse;
    use std::collections::{BTreeSet, BinaryHeap};
    let mut ready: BTreeSet<usize> = (0..total).filter(|&i| deps_left[i] == 0).collect();
    let mut running: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut free = pool;
    let mut simd_free = true;
    let mut now = 0u64;
    let mut scheduled: Vec<(ScheduledOp, Vec<u16>)> = Vec::with_capacity(total);
    let mut busy = std::collections::HashMap::<Resource, u64>::new();
    let mut makespan = 0u64;
    let mut done = 0usize;
    // Stall-attribution state: when each instance's dependencies finished
    // (its entry into `ready`), when each concrete sub-array frees, and
    // the previous SIMD op's end.
    let mut ready_at = vec![0u64; total];
    let mut unit_free = vec![0u64; pool];
    let mut simd_prev_end = 0u64;

    while done < total {
        // Start every ready instance that fits, in deterministic order.
        let candidates: Vec<usize> = ready.iter().copied().collect();
        for inst in candidates {
            let p = inst % n_ops;
            let fits = if class[p] == Resource::Simd {
                simd_free
            } else {
                demand[p] <= free
            };
            if !fits {
                continue;
            }
            ready.remove(&inst);
            // Claim concrete resources and note how long the last-needed
            // one had been sitting idle — that idle window before the
            // instance became ready is dependency-imposed.
            let (anchor, units) = if class[p] == Resource::Simd {
                simd_free = false;
                let anchor = simd_prev_end;
                simd_prev_end = now + latency[p];
                (anchor, Vec::new())
            } else {
                free -= demand[p];
                let mut claimed = Vec::with_capacity(demand[p]);
                let mut anchor = 0u64;
                for (u, f) in unit_free.iter_mut().enumerate() {
                    if claimed.len() == demand[p] {
                        break;
                    }
                    if *f <= now {
                        anchor = anchor.max(*f);
                        *f = now + latency[p];
                        claimed.push(u as u16);
                    }
                }
                debug_assert_eq!(claimed.len(), demand[p], "pool accounting diverged");
                (anchor, claimed)
            };
            let end = now + latency[p];
            running.push(Reverse((end, inst)));
            // Pool utilization weights busy time by claimed sub-arrays.
            let weight = if class[p] == Resource::Simd {
                1
            } else {
                demand[p] as u64
            };
            *busy.entry(class[p]).or_insert(0) += latency[p] * weight;
            makespan = makespan.max(end);
            scheduled.push((
                ScheduledOp {
                    loop_idx: inst / n_ops,
                    op: trace.ops()[p].id(),
                    start: now,
                    end,
                    resource: class[p],
                    dep_wait: ready_at[inst].saturating_sub(anchor),
                    resource_wait: now - ready_at[inst],
                    transfer_stall: stall_of[p],
                },
                units,
            ));
        }
        // Advance to the next completion.
        let Some(Reverse((t, inst))) = running.pop() else {
            debug_assert!(done == total, "scheduler stalled with work remaining");
            break;
        };
        now = t;
        let mut finished = vec![inst];
        while let Some(&Reverse((t2, inst2))) = running.peek() {
            if t2 == now {
                running.pop();
                finished.push(inst2);
            } else {
                break;
            }
        }
        for f in finished {
            let p = f % n_ops;
            if class[p] == Resource::Simd {
                simd_free = true;
            } else {
                free += demand[p];
            }
            done += 1;
            for &dep in &dependents[f] {
                deps_left[dep] -= 1;
                if deps_left[dep] == 0 {
                    ready.insert(dep);
                    ready_at[dep] = now;
                }
            }
        }
    }

    scheduled.sort_by_key(|(so, _)| (so.start, so.loop_idx, so.op.index()));
    let (ops, unit_sets): (Vec<ScheduledOp>, Vec<Vec<u16>>) = scheduled.into_iter().unzip();
    let schedule = Schedule {
        ops,
        total_cycles: makespan,
        busy_nn: busy.get(&Resource::NnPartition).copied().unwrap_or(0),
        busy_vsa: busy.get(&Resource::VsaPartition).copied().unwrap_or(0),
        busy_simd: busy.get(&Resource::Simd).copied().unwrap_or(0),
        pool_units: pool,
        sequential: false,
        unit_sets,
    };
    record_schedule(&schedule);
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;
    use nsflow_trace::{Domain, EltFunc, TraceBuilder};

    fn graph(loops: usize) -> DataflowGraph {
        let mut b = TraceBuilder::new("t");
        let c = b.push(
            "conv",
            OpKind::Gemm {
                m: 256,
                n: 64,
                k: 64,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let r = b.push(
            "relu",
            OpKind::Elementwise {
                elems: 256 * 64,
                func: EltFunc::Relu,
            },
            Domain::Neural,
            DType::Int8,
            &[c],
        );
        let v = b.push(
            "bind",
            OpKind::VsaConv {
                n_vec: 16,
                dim: 128,
            },
            Domain::Symbolic,
            DType::Int4,
            &[r],
        );
        let _s = b.push(
            "sim",
            OpKind::Similarity { n_vec: 8, dim: 512 },
            Domain::Symbolic,
            DType::Int4,
            &[v],
        );
        DataflowGraph::from_trace(b.finish(loops).unwrap())
    }

    fn cfg() -> ArrayConfig {
        ArrayConfig::new(16, 16, 4).unwrap()
    }

    #[test]
    fn dependencies_are_respected() {
        let g = graph(1);
        let s = run(
            &g,
            &cfg(),
            &Mapping::uniform(1, 1, 3, 1),
            &SimOptions::default(),
        );
        let by_op: std::collections::HashMap<usize, &ScheduledOp> =
            s.ops().iter().map(|so| (so.op.index(), so)).collect();
        for op in g.trace().ops() {
            for dep in op.inputs() {
                assert!(
                    by_op[&op.id().index()].start >= by_op[&dep.index()].end,
                    "op {} started before its dependency finished",
                    op.name()
                );
            }
        }
    }

    #[test]
    fn resources_never_overlap() {
        let g = graph(4);
        let s = run(
            &g,
            &cfg(),
            &Mapping::uniform(1, 1, 3, 1),
            &SimOptions::default(),
        );
        for r in [
            Resource::NnPartition,
            Resource::VsaPartition,
            Resource::Simd,
        ] {
            let mut intervals: Vec<(u64, u64)> = s
                .ops()
                .iter()
                .filter(|so| so.resource == r)
                .map(|so| (so.start, so.end))
                .collect();
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap on {r:?}: {w:?}");
            }
        }
    }

    /// A workload where the NN part saturates at one sub-array (n ≤ H) and
    /// the symbolic part is heavy — the regime where folded parallel
    /// execution beats time-sharing the whole array.
    fn overlap_friendly_graph(loops: usize) -> DataflowGraph {
        let mut b = TraceBuilder::new("overlap");
        let c = b.push(
            "conv",
            OpKind::Gemm {
                m: 256,
                n: 16,
                k: 64,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let _v = b.push(
            "bind",
            OpKind::VsaConv {
                n_vec: 64,
                dim: 128,
            },
            Domain::Symbolic,
            DType::Int4,
            &[c],
        );
        DataflowGraph::from_trace(b.finish(loops).unwrap())
    }

    #[test]
    fn pipelining_beats_serial_execution_when_parts_balance() {
        let g = overlap_friendly_graph(8);
        let par = run(
            &g,
            &cfg(),
            &Mapping::uniform(1, 1, 1, 3),
            &SimOptions::default(),
        );
        let seq = run(
            &g,
            &cfg(),
            &Mapping::sequential(1, 1, 4),
            &SimOptions::default(),
        );
        assert!(
            par.total_cycles() < seq.total_cycles(),
            "parallel {} !< sequential {}",
            par.total_cycles(),
            seq.total_cycles()
        );
    }

    #[test]
    fn sequential_mode_wins_when_nn_needs_the_whole_array() {
        // The original graph's conv benefits 4× from the full array while
        // overlap only hides the smaller VSA time — the case Algorithm 1's
        // sequential-mode check exists for.
        let g = graph(8);
        let par = run(
            &g,
            &cfg(),
            &Mapping::uniform(1, 1, 3, 1),
            &SimOptions::default(),
        );
        let seq = run(
            &g,
            &cfg(),
            &Mapping::sequential(1, 1, 4),
            &SimOptions::default(),
        );
        assert!(
            seq.total_cycles() < par.total_cycles(),
            "sequential {} !< parallel {}",
            seq.total_cycles(),
            par.total_cycles()
        );
    }

    #[test]
    fn single_loop_matches_analytical_parallel_bound() {
        let g = graph(1);
        let m = Mapping::uniform(1, 1, 3, 1);
        let opts = SimOptions {
            simd_lanes: 64,
            transfer: None,
        };
        let s = run(&g, &cfg(), &m, &opts);
        let t = analytical::loop_timing(&g, &cfg(), &m, 64);
        // The schedule serializes the dependent chain, so it is at least
        // the max-partition bound and at most the serial sum.
        assert!(s.total_cycles() >= t.t_loop);
        assert!(s.total_cycles() <= t.t_nn + t.t_vsa + t.t_simd);
    }

    #[test]
    fn steady_state_period_is_bounded_by_loop_time() {
        // With many loops, the amortized per-loop cost approaches the
        // bottleneck partition's serial chain, not the full loop latency.
        let g8 = graph(8);
        let g16 = graph(16);
        let m = Mapping::uniform(1, 1, 3, 1);
        let opts = SimOptions::default();
        let c8 = run(&g8, &cfg(), &m, &opts).total_cycles();
        let c16 = run(&g16, &cfg(), &m, &opts).total_cycles();
        let period = c16 - c8; // 8 extra loops
        let t = analytical::loop_timing(&g8, &cfg(), &m, 64);
        assert!(period <= 8 * (t.t_nn + t.t_vsa + t.t_simd));
        assert!(period >= 8 * t.t_loop.min(t.t_nn.max(t.t_vsa)));
    }

    #[test]
    fn gantt_text_lists_every_instance_in_start_order() {
        let g = graph(2);
        let s = run_pooled(
            &g,
            &cfg(),
            &Mapping::uniform(1, 1, 3, 1),
            &SimOptions::default(),
        );
        let text = s.to_gantt_text(&g);
        assert_eq!(text.lines().count(), g.trace().ops().len() * 2);
        assert!(text.contains("conv"));
        assert!(text.contains("bind"));
        // Start cycles are non-decreasing down the page.
        let starts: Vec<u64> = text
            .lines()
            .map(|l| {
                let nums = l.split('|').nth(2).unwrap();
                nums.trim()
                    .split("..")
                    .next()
                    .unwrap()
                    .trim()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn pooled_capacity_is_never_exceeded() {
        let g = graph(6);
        let cfg = cfg();
        let m = Mapping::uniform(1, 1, 3, 2);
        let s = run_pooled(&g, &cfg, &m, &SimOptions::default());
        // Sweep events: at any time, claimed sub-arrays ≤ pool.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for so in s.ops() {
            let demand = match g.trace().op(so.op).kind() {
                OpKind::Gemm { .. } => 3i64,
                OpKind::VsaConv { .. } => 2i64,
                _ => 0,
            };
            if demand > 0 {
                events.push((so.start, demand));
                events.push((so.end, -demand));
            }
        }
        events.sort();
        let mut level = 0i64;
        for (_, delta) in events {
            level += delta;
            assert!(level <= cfg.n_subarrays() as i64, "pool oversubscribed");
        }
    }

    #[test]
    fn pooled_respects_dependencies_and_instance_serialization() {
        let g = graph(4);
        let s = run_pooled(
            &g,
            &cfg(),
            &Mapping::uniform(1, 1, 2, 1),
            &SimOptions::default(),
        );
        let mut end: std::collections::HashMap<(usize, usize), u64> =
            std::collections::HashMap::new();
        for so in s.ops() {
            end.insert((so.loop_idx, so.op.index()), so.end);
        }
        for so in s.ops() {
            for dep in g.trace().op(so.op).inputs() {
                assert!(so.start >= end[&(so.loop_idx, dep.index())]);
            }
            if so.loop_idx > 0 {
                assert!(
                    so.start >= end[&(so.loop_idx - 1, so.op.index())],
                    "instance serialization violated"
                );
            }
        }
    }

    #[test]
    fn pooled_is_at_least_as_fast_as_partition_queues() {
        let g = overlap_friendly_graph(8);
        let m = Mapping::uniform(1, 1, 1, 3);
        let opts = SimOptions::default();
        let pooled = run_pooled(&g, &cfg(), &m, &opts).total_cycles();
        let queued = run(&g, &cfg(), &m, &opts).total_cycles();
        assert!(pooled <= queued, "pooled {pooled} !<= queued {queued}");
    }

    #[test]
    fn pooled_utilization_uses_pool_denominator() {
        let g = graph(4);
        let s = run_pooled(
            &g,
            &cfg(),
            &Mapping::uniform(1, 1, 3, 1),
            &SimOptions::default(),
        );
        let u = s.array_utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }

    #[test]
    fn transfer_stalls_increase_latency() {
        let g = graph(1);
        let m = Mapping::uniform(1, 1, 3, 1);
        let fast = SimOptions {
            simd_lanes: 64,
            transfer: None,
        };
        let slow = SimOptions {
            simd_lanes: 64,
            transfer: Some(TransferModel::new(0.25)), // 1 byte per 4 cycles
        };
        let c_fast = run(&g, &cfg(), &m, &fast).total_cycles();
        let c_slow = run(&g, &cfg(), &m, &slow).total_cycles();
        assert!(c_slow > c_fast, "{c_slow} !> {c_fast}");
    }

    #[test]
    fn utilization_and_seconds() {
        let g = graph(4);
        let s = run(
            &g,
            &cfg(),
            &Mapping::uniform(1, 1, 3, 1),
            &SimOptions::default(),
        );
        let u = s.array_utilization();
        assert!(u > 0.0 && u <= 1.0);
        let secs = s.seconds_at(272.0e6);
        assert!(secs > 0.0);
        let (nn, vsa, simd_busy) = s.busy_cycles();
        assert!(nn > 0 && vsa > 0 && simd_busy > 0);
    }
}
