//! Roofline analysis (paper Fig. 1c).
//!
//! Places each domain of a workload on a device's roofline: operational
//! intensity (FLOPs per byte of memory traffic) against attained
//! performance, showing that symbolic kernels sit under the bandwidth
//! roof while neural kernels sit near the compute roof.

use nsflow_trace::{Domain, ExecutionTrace};

/// A device roof: peak compute and peak bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roof {
    /// Peak compute, FLOPs per second.
    pub peak_flops: f64,
    /// Peak memory bandwidth, bytes per second.
    pub peak_bw: f64,
}

impl Roof {
    /// The RTX 2080 Ti roof used in Fig. 1c.
    #[must_use]
    pub fn rtx_2080_ti() -> Self {
        Roof {
            peak_flops: 13.4e12,
            peak_bw: 616.0e9,
        }
    }

    /// Intensity at which the compute and bandwidth roofs meet
    /// (the ridge point), in FLOPs/byte.
    #[must_use]
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_flops / self.peak_bw
    }

    /// Attainable performance at a given operational intensity.
    #[must_use]
    pub fn attainable(&self, intensity: f64) -> f64 {
        (intensity * self.peak_bw).min(self.peak_flops)
    }
}

/// Whether a kernel class is limited by bandwidth or compute on a roof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Under the slanted bandwidth roof.
    Memory,
    /// Under the flat compute roof.
    Compute,
}

/// One point on the roofline plot.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Label, e.g. "NVSA neural".
    pub label: String,
    /// Operational intensity, FLOPs/byte.
    pub intensity: f64,
    /// Attainable performance on the roof, FLOPs/s.
    pub attainable_flops: f64,
    /// Which roof limits it.
    pub bound: Bound,
}

/// Computes the roofline points for a workload's neural and symbolic
/// halves on a given roof.
#[must_use]
pub fn workload_points(trace: &ExecutionTrace, roof: &Roof) -> Vec<RooflinePoint> {
    let mut points = Vec::new();
    for domain in [Domain::Neural, Domain::Symbolic] {
        let (flops, bytes) = domain_totals(trace, domain);
        if bytes == 0 || flops == 0 {
            continue;
        }
        let intensity = flops as f64 / bytes as f64;
        let attain = roof.attainable(intensity);
        points.push(RooflinePoint {
            label: format!("{} {domain}", trace.name()),
            intensity,
            attainable_flops: attain,
            bound: if intensity < roof.ridge_intensity() {
                Bound::Memory
            } else {
                Bound::Compute
            },
        });
    }
    points
}

fn domain_totals(trace: &ExecutionTrace, domain: Domain) -> (u64, usize) {
    // The roofline characterizes the workload on a *commodity* device
    // (the paper uses the RTX 2080 Ti at FP32), so memory traffic uses
    // the lowered operand footprint at 4 B/element — circular
    // convolutions materialize rotated copies there (see
    // [`crate::devices::lowered_elems`]).
    // Pointwise glue (element-wise/reduction ops) is fused into its
    // producer kernels on commodity stacks, so it contributes no separate
    // traffic to the roofline points.
    let mut flops = 0u64;
    let mut bytes = 0usize;
    for op in trace.ops() {
        if op.domain() != domain {
            continue;
        }
        match *op.kind() {
            nsflow_trace::OpKind::Elementwise { .. } | nsflow_trace::OpKind::Reduce { .. } => {
                continue;
            }
            // Implicit-GEMM convolution kernels tile the input through
            // shared memory, reusing each fetched activation ~8× — the
            // im2col expansion (m·k) never hits DRAM in full.
            nsflow_trace::OpKind::Gemm { m, n, k } => {
                flops += 2 * (m * n * k) as u64;
                bytes += 4 * (m * n + k * n + m * k / 8);
            }
            ref kind => {
                flops += 2 * kind.macs();
                bytes += 4 * crate::devices::lowered_elems(kind);
            }
        }
    }
    (flops, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;
    use nsflow_trace::{OpKind, TraceBuilder};

    fn trace() -> ExecutionTrace {
        let mut b = TraceBuilder::new("nvsa");
        // Dense conv: high reuse (weights amortized over 6400 pixels).
        let c = b.push(
            "conv",
            OpKind::Gemm {
                m: 6400,
                n: 256,
                k: 1152,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        // Symbolic similarity: touches every byte once.
        let _s = b.push(
            "sim",
            OpKind::Similarity {
                n_vec: 64,
                dim: 1024,
            },
            Domain::Symbolic,
            DType::Int4,
            &[c],
        );
        b.finish(1).unwrap()
    }

    #[test]
    fn ridge_point_is_ratio() {
        let r = Roof::rtx_2080_ti();
        assert!((r.ridge_intensity() - 13.4e12 / 616.0e9).abs() < 1e-6);
    }

    #[test]
    fn attainable_clamps_at_peak() {
        let r = Roof {
            peak_flops: 100.0,
            peak_bw: 10.0,
        };
        assert_eq!(r.attainable(5.0), 50.0);
        assert_eq!(r.attainable(100.0), 100.0);
    }

    #[test]
    fn symbolic_is_memory_bound_neural_is_compute_bound() {
        let points = workload_points(&trace(), &Roof::rtx_2080_ti());
        assert_eq!(points.len(), 2);
        let neural = &points[0];
        let symbolic = &points[1];
        assert!(neural.intensity > symbolic.intensity);
        assert_eq!(symbolic.bound, Bound::Memory);
        assert_eq!(neural.bound, Bound::Compute);
    }

    #[test]
    fn empty_domain_produces_no_point() {
        let mut b = TraceBuilder::new("nn_only");
        b.push(
            "conv",
            OpKind::Gemm {
                m: 64,
                n: 64,
                k: 64,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let t = b.finish(1).unwrap();
        let points = workload_points(&t, &Roof::rtx_2080_ti());
        assert_eq!(points.len(), 1);
    }
}
