//! Energy modeling — an extension beyond the paper's latency results.
//!
//! The paper characterizes its baselines by board power (Coral 4 W, TX2
//! 15 W, NX 20 W, RTX 2080 Ti 250 W) but reports only runtime. This module
//! adds the natural follow-up: energy per inference, with the NSFlow
//! design's power estimated from its FPGA resource usage (a standard
//! component-wise dynamic-power model at the 272 MHz template clock).

use nsflow_fpga::resources::DesignResources;

/// Nominal board power of each baseline device, in watts (the figures the
/// paper quotes in Sec. II-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DevicePower {
    /// Board/device power in watts.
    pub watts: f64,
}

impl DevicePower {
    /// Google Coral edge TPU: 4 W.
    #[must_use]
    pub fn coral_tpu() -> Self {
        DevicePower { watts: 4.0 }
    }

    /// Jetson TX2: 15 W.
    #[must_use]
    pub fn jetson_tx2() -> Self {
        DevicePower { watts: 15.0 }
    }

    /// Xavier NX: 20 W.
    #[must_use]
    pub fn xavier_nx() -> Self {
        DevicePower { watts: 20.0 }
    }

    /// RTX 2080 Ti: 250 W.
    #[must_use]
    pub fn rtx_2080_ti() -> Self {
        DevicePower { watts: 250.0 }
    }

    /// Xeon server CPU (package): 150 W.
    #[must_use]
    pub fn xeon_cpu() -> Self {
        DevicePower { watts: 150.0 }
    }

    /// TPU-like accelerator card: 75 W.
    #[must_use]
    pub fn tpu_like() -> Self {
        DevicePower { watts: 75.0 }
    }

    /// Xilinx DPU on its host card: 40 W.
    #[must_use]
    pub fn dpu_like() -> Self {
        DevicePower { watts: 40.0 }
    }

    /// Energy for a run of `seconds`, in joules.
    #[must_use]
    pub fn energy_joules(&self, seconds: f64) -> f64 {
        self.watts * seconds
    }
}

/// Component-wise dynamic-power estimate of an NSFlow design at the given
/// clock, plus static power.
///
/// Per-component coefficients are standard UltraScale+ ballpark figures at
/// ~0.85 V: ~1.5 mW per active DSP at 272 MHz, ~10 µW per logic LUT,
/// ~2.5 mW per active BRAM block, ~5 mW per URAM block, 5 W static.
///
/// # Examples
///
/// ```
/// use nsflow_sim::energy::fpga_watts;
/// use nsflow_fpga::resources::DesignResources;
/// let res = DesignResources {
///     dsps: 10_000, luts: 900_000, ffs: 2_000_000,
///     bram_blocks: 1_500, uram_blocks: 100, lutram_luts: 190_000,
/// };
/// let w = fpga_watts(&res, 272.0e6);
/// assert!(w > 20.0 && w < 60.0);
/// ```
#[must_use]
pub fn fpga_watts(resources: &DesignResources, freq_hz: f64) -> f64 {
    let scale = freq_hz / 272.0e6;
    let dsp = resources.dsps as f64 * 1.5e-3;
    let lut = resources.luts as f64 * 10.0e-6;
    let ff = resources.ffs as f64 * 1.0e-6;
    let bram = resources.bram_blocks as f64 * 2.5e-3;
    let uram = resources.uram_blocks as f64 * 5.0e-3;
    let lutram = resources.lutram_luts as f64 * 12.0e-6;
    5.0 + scale * (dsp + lut + ff + bram + uram + lutram)
}

/// Energy per inference in joules for an NSFlow deployment.
#[must_use]
pub fn fpga_energy_joules(resources: &DesignResources, freq_hz: f64, seconds: f64) -> f64 {
    fpga_watts(resources, freq_hz) * seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res() -> DesignResources {
        DesignResources {
            dsps: 10_700,
            luts: 950_000,
            ffs: 2_100_000,
            bram_blocks: 1_800,
            uram_blocks: 116,
            lutram_luts: 190_000,
        }
    }

    #[test]
    fn nsflow_design_power_is_tens_of_watts() {
        let w = fpga_watts(&res(), 272.0e6);
        assert!((20.0..60.0).contains(&w), "watts {w}");
    }

    #[test]
    fn power_scales_with_clock() {
        let full = fpga_watts(&res(), 272.0e6);
        let half = fpga_watts(&res(), 136.0e6);
        assert!(half < full);
        // Static floor keeps the ratio above the pure clock ratio.
        assert!(half > full / 2.0);
    }

    #[test]
    fn device_energy_is_power_times_time() {
        let e = DevicePower::rtx_2080_ti().energy_joules(0.1);
        assert!((e - 25.0).abs() < 1e-9);
    }

    #[test]
    fn fpga_energy_consistent_with_watts() {
        let r = res();
        let w = fpga_watts(&r, 272.0e6);
        assert!((fpga_energy_joules(&r, 272.0e6, 2.0) - 2.0 * w).abs() < 1e-9);
    }

    #[test]
    fn wattage_catalog_matches_paper_figures() {
        assert_eq!(DevicePower::coral_tpu().watts, 4.0);
        assert_eq!(DevicePower::jetson_tx2().watts, 15.0);
        assert_eq!(DevicePower::xavier_nx().watts, 20.0);
        assert_eq!(DevicePower::rtx_2080_ti().watts, 250.0);
    }
}
