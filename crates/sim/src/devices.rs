//! Calibrated analytical models of the baseline devices the paper
//! evaluates against (Fig. 1 and Fig. 5).
//!
//! Each roofline device executes the trace op-by-op (no overlap — the
//! profiling in the paper shows symbolic work serializing on the critical
//! path): an op takes `max(compute time, memory time) + launch overhead`,
//! where the compute and memory terms are derated by per-domain efficiency
//! factors. The factors encode the paper's characterization: symbolic
//! kernels achieve a few percent of peak on GPU/TPU-class devices (low
//! reuse, irregular streaming access) while dense NN kernels reach
//! ~half of peak.
//!
//! The TPU-like 128×128 systolic array is modeled *structurally* instead:
//! NN ops use the same eq.-(1) cycle model as NSFlow, but VSA ops must be
//! lowered to GEMMs against materialized circulant matrices (the mapping
//! inefficiency NSFlow's streaming mode removes), paying both the array's
//! fill/drain overheads at tiny dimensions and the circulant's memory
//! traffic. The Xilinx DPU model runs NN on a fixed INT8 engine and falls
//! back to an embedded CPU for every symbolic kernel.

use nsflow_arch::{analytical, ArrayConfig};
use nsflow_trace::{Domain, ExecutionTrace, OpKind};

/// Per-domain, per-device latency report, in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// Device name.
    pub device: String,
    /// Seconds spent in neural ops (whole workload, all loops).
    pub neural_seconds: f64,
    /// Seconds spent in symbolic ops (whole workload, all loops).
    pub symbolic_seconds: f64,
}

impl DeviceReport {
    /// End-to-end seconds.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.neural_seconds + self.symbolic_seconds
    }

    /// Fraction of runtime spent in symbolic ops.
    #[must_use]
    pub fn symbolic_fraction(&self) -> f64 {
        let t = self.total_seconds();
        if t == 0.0 {
            0.0
        } else {
            self.symbolic_seconds / t
        }
    }
}

/// A device that can execute an [`ExecutionTrace`].
pub trait DeviceModel {
    /// The device's display name.
    fn name(&self) -> &str;
    /// Executes the whole workload (all loop iterations) and reports the
    /// per-domain latency split.
    fn run(&self, trace: &ExecutionTrace) -> DeviceReport;
}

/// Memory elements an op touches on a *commodity* device (GPU/CPU/TPU
/// class, without NSFlow's circular-convolution streaming path).
///
/// Circular convolutions have no native kernel there: they are lowered to
/// dense products against materialized circulant/rotated copies, touching
/// `n_vec·d²` operand elements with no reuse — which is precisely why the
/// paper finds symbolic kernels memory-bound (Fig. 1c). All other ops
/// touch their natural operand sizes.
#[must_use]
pub fn lowered_elems(kind: &OpKind) -> usize {
    match *kind {
        OpKind::VsaConv { n_vec, dim } => n_vec * dim * dim + 2 * n_vec * dim,
        ref k => k.input_elems() + k.weight_elems() + k.output_elems(),
    }
}

/// Roofline device with per-domain efficiency derating.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    name: String,
    /// Peak throughput in ops/s at the device's native precision.
    peak_ops: f64,
    /// Peak memory bandwidth in bytes/s.
    mem_bw: f64,
    /// Fraction of peak compute achievable on dense NN kernels.
    nn_eff: f64,
    /// Fraction of peak compute achievable on symbolic kernels.
    sym_compute_eff: f64,
    /// Fraction of peak bandwidth achievable on symbolic streaming.
    sym_bw_eff: f64,
    /// Per-kernel launch/dispatch overhead in seconds.
    op_overhead: f64,
    /// Bytes per element at the device's native execution precision.
    native_bytes: f64,
}

impl Device {
    /// Builds a custom roofline device.
    ///
    /// # Panics
    ///
    /// Panics if any throughput, bandwidth or efficiency parameter is not
    /// positive (overhead may be zero).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        peak_ops: f64,
        mem_bw: f64,
        nn_eff: f64,
        sym_compute_eff: f64,
        sym_bw_eff: f64,
        op_overhead: f64,
        native_bytes: f64,
    ) -> Self {
        assert!(
            peak_ops > 0.0 && mem_bw > 0.0,
            "throughput must be positive"
        );
        assert!(
            nn_eff > 0.0 && sym_compute_eff > 0.0 && sym_bw_eff > 0.0,
            "efficiencies must be positive"
        );
        assert!(op_overhead >= 0.0 && native_bytes > 0.0);
        Device {
            name: name.into(),
            peak_ops,
            mem_bw,
            nn_eff,
            sym_compute_eff,
            sym_bw_eff,
            op_overhead,
            native_bytes,
        }
    }

    /// NVIDIA Jetson TX2 (15 W edge SoC): 1.33 TFLOPS FP16, 59.7 GB/s.
    #[must_use]
    pub fn jetson_tx2() -> Self {
        Device::new("Jetson TX2", 1.33e12, 59.7e9, 0.40, 0.04, 0.19, 6.0e-5, 2.0)
    }

    /// NVIDIA Xavier NX (20 W edge SoC): ~6 TFLOPS FP16, 51.2 GB/s.
    #[must_use]
    pub fn xavier_nx() -> Self {
        Device::new("Xavier NX", 6.0e12, 51.2e9, 0.45, 0.04, 0.40, 5.0e-5, 2.0)
    }

    /// Intel Xeon server CPU: ~2 TFLOPS AVX-512 multicore, 100 GB/s.
    #[must_use]
    pub fn xeon_cpu() -> Self {
        Device::new("Xeon CPU", 2.0e12, 100.0e9, 0.50, 0.10, 0.50, 5.0e-6, 4.0)
    }

    /// NVIDIA RTX 2080 Ti (250 W): 13.4 TFLOPS FP32, 616 GB/s.
    #[must_use]
    pub fn rtx_2080_ti() -> Self {
        Device::new(
            "RTX 2080 Ti",
            13.4e12,
            616.0e9,
            0.55,
            0.03,
            0.15,
            2.0e-5,
            4.0,
        )
    }

    /// Google Coral edge TPU (4 W): 4 TOPS INT8, host-fed.
    #[must_use]
    pub fn coral_tpu() -> Self {
        Device::new("Coral TPU", 4.0e12, 4.0e9, 0.50, 0.015, 0.08, 1.0e-4, 1.0)
    }

    fn op_seconds(&self, kind: &OpKind, domain: Domain) -> f64 {
        let flops = 2.0 * kind.macs() as f64;
        let bytes = lowered_elems(kind) as f64 * self.native_bytes;
        let (ce, be) = match domain {
            Domain::Neural => (self.nn_eff, 1.0),
            Domain::Symbolic => (self.sym_compute_eff, self.sym_bw_eff),
        };
        let compute = flops / (self.peak_ops * ce);
        let memory = bytes / (self.mem_bw * be);
        compute.max(memory) + self.op_overhead
    }
}

impl DeviceModel for Device {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, trace: &ExecutionTrace) -> DeviceReport {
        let mut neural = 0.0;
        let mut symbolic = 0.0;
        for op in trace.ops() {
            let t = self.op_seconds(op.kind(), op.domain());
            match op.domain() {
                Domain::Neural => neural += t,
                Domain::Symbolic => symbolic += t,
            }
        }
        let loops = trace.loop_count() as f64;
        DeviceReport {
            device: self.name.clone(),
            neural_seconds: neural * loops,
            symbolic_seconds: symbolic * loops,
        }
    }
}

/// TPU-like weight-stationary systolic array (128×128) without the
/// circular-convolution streaming path.
#[derive(Debug, Clone, PartialEq)]
pub struct TpuLikeArray {
    name: String,
    config: ArrayConfig,
    freq_hz: f64,
    /// Effective host-interface bandwidth for the materialized circulant
    /// operands, in bytes per array cycle. The array has no rotation
    /// hardware, so the host generates each circulant and pushes it over
    /// the accelerator interface — an order of magnitude below the
    /// streaming-weight path.
    circulant_bytes_per_cycle: f64,
    /// Host kernel-dispatch overhead per symbolic op, in seconds (VSA
    /// kernels are not natively supported and run as host-lowered calls).
    symbolic_dispatch_s: f64,
    /// SIMD-ish vector unit width for element-wise tails.
    vector_lanes: usize,
}

impl TpuLikeArray {
    /// The paper's baseline: a 128×128 array at 700 MHz.
    #[must_use]
    pub fn new_128x128() -> Self {
        TpuLikeArray {
            name: "TPU-like 128×128 SA".into(),
            config: ArrayConfig::new(128, 128, 1).expect("static dims are valid"),
            freq_hz: 700.0e6,
            circulant_bytes_per_cycle: 30.0,
            symbolic_dispatch_s: 1.0e-5,
            vector_lanes: 128,
        }
    }

    fn op_cycles(&self, kind: &OpKind) -> u64 {
        match *kind {
            OpKind::Gemm { m, n, k } => analytical::nn_layer_cycles(&self.config, 1, m, n, k),
            OpKind::VsaConv { n_vec, dim } => {
                // Lowering: each circular convolution becomes a GEMM of the
                // streamed vector against a materialized d×d circulant.
                let gemm = analytical::nn_layer_cycles(&self.config, 1, n_vec, dim, dim);
                // The circulant (n_vec·d·d elements, 1 B each at INT8) is
                // generated host-side and fetched across the accelerator
                // interface — none of it reusable across outputs.
                let circulant_bytes = (n_vec * dim * dim) as f64;
                let transfer = (circulant_bytes / self.circulant_bytes_per_cycle).ceil() as u64;
                let dispatch = (self.symbolic_dispatch_s * self.freq_hz) as u64;
                gemm + transfer + dispatch
            }
            ref k => nsflow_arch::simd::op_cycles(k, self.vector_lanes).max(1),
        }
    }
}

impl DeviceModel for TpuLikeArray {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, trace: &ExecutionTrace) -> DeviceReport {
        let mut neural = 0u64;
        let mut symbolic = 0u64;
        for op in trace.ops() {
            let c = self.op_cycles(op.kind());
            match op.domain() {
                Domain::Neural => neural += c,
                Domain::Symbolic => symbolic += c,
            }
        }
        let loops = trace.loop_count() as f64;
        DeviceReport {
            device: self.name.clone(),
            neural_seconds: neural as f64 / self.freq_hz * loops,
            symbolic_seconds: symbolic as f64 / self.freq_hz * loops,
        }
    }
}

/// Xilinx-DPU-like fixed-function INT8 CNN engine with host-CPU fallback
/// for non-CNN kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct DpuLike {
    name: String,
    /// MACs per cycle of the convolution engine.
    macs_per_cycle: f64,
    freq_hz: f64,
    nn_eff: f64,
    /// Host (embedded CPU) throughput for symbolic fallback, flops/s.
    host_flops: f64,
    /// Host memory bandwidth, bytes/s.
    host_bw: f64,
    /// Per-kernel dispatch overhead on the host path.
    host_overhead: f64,
}

impl DpuLike {
    /// DPUCZDX8G-class engine: 4096 MACs/cycle at 300 MHz, ARM host.
    #[must_use]
    pub fn new_b4096() -> Self {
        DpuLike {
            name: "Xilinx DPU (B4096)".into(),
            macs_per_cycle: 4096.0,
            freq_hz: 300.0e6,
            nn_eff: 0.60,
            host_flops: 500.0e9,
            host_bw: 115.0e9,
            host_overhead: 2.0e-5,
        }
    }
}

impl DeviceModel for DpuLike {
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, trace: &ExecutionTrace) -> DeviceReport {
        let mut neural = 0.0;
        let mut symbolic = 0.0;
        for op in trace.ops() {
            match (op.kind(), op.domain()) {
                (OpKind::Gemm { .. }, _) => {
                    neural += op.kind().macs() as f64
                        / (self.macs_per_cycle * self.nn_eff)
                        / self.freq_hz;
                }
                (kind, domain) => {
                    // Everything non-GEMM runs on the embedded host.
                    let flops = 2.0 * kind.macs() as f64;
                    let bytes = lowered_elems(kind) as f64 * 4.0;
                    let t =
                        (flops / self.host_flops).max(bytes / self.host_bw) + self.host_overhead;
                    match domain {
                        Domain::Neural => neural += t,
                        Domain::Symbolic => symbolic += t,
                    }
                }
            }
        }
        let loops = trace.loop_count() as f64;
        DeviceReport {
            device: self.name.clone(),
            neural_seconds: neural * loops,
            symbolic_seconds: symbolic * loops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsflow_tensor::DType;
    use nsflow_trace::TraceBuilder;

    fn mixed_trace(loops: usize) -> ExecutionTrace {
        let mut b = TraceBuilder::new("mixed");
        let c = b.push(
            "conv",
            OpKind::Gemm {
                m: 6400,
                n: 64,
                k: 576,
            },
            Domain::Neural,
            DType::Int8,
            &[],
        );
        let mut prev = c;
        for i in 0..16 {
            prev = b.push(
                format!("bind{i}"),
                OpKind::VsaConv {
                    n_vec: 4,
                    dim: 1024,
                },
                Domain::Symbolic,
                DType::Int4,
                &[prev],
            );
        }
        b.finish(loops).unwrap()
    }

    #[test]
    fn report_totals_and_fractions() {
        let r = DeviceReport {
            device: "d".into(),
            neural_seconds: 1.0,
            symbolic_seconds: 3.0,
        };
        assert_eq!(r.total_seconds(), 4.0);
        assert_eq!(r.symbolic_fraction(), 0.75);
    }

    #[test]
    fn gpu_runs_symbolic_inefficiently() {
        let t = mixed_trace(1);
        let gpu = Device::rtx_2080_ti();
        let r = gpu.run(&t);
        let (n_mac, s_mac) = t.macs_by_domain();
        // Symbolic has far fewer MACs than neural here…
        assert!(s_mac < n_mac);
        // …but takes the dominant share of GPU runtime (Fig. 1a shape).
        assert!(
            r.symbolic_fraction() > 0.5,
            "symbolic fraction {}",
            r.symbolic_fraction()
        );
    }

    #[test]
    fn edge_devices_are_slower_than_gpu() {
        let t = mixed_trace(4);
        let gpu = Device::rtx_2080_ti().run(&t).total_seconds();
        let tx2 = Device::jetson_tx2().run(&t).total_seconds();
        let nx = Device::xavier_nx().run(&t).total_seconds();
        assert!(tx2 > gpu, "TX2 {tx2} !> GPU {gpu}");
        assert!(nx > gpu);
        assert!(tx2 > nx, "TX2 should trail NX");
    }

    #[test]
    fn loop_count_scales_latency_linearly() {
        let d = Device::xeon_cpu();
        let t1 = d.run(&mixed_trace(1)).total_seconds();
        let t8 = d.run(&mixed_trace(8)).total_seconds();
        assert!((t8 / t1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn tpu_like_pays_circulant_lowering_on_vsa() {
        let tpu = TpuLikeArray::new_128x128();
        let gemm_only = {
            let mut b = TraceBuilder::new("nn");
            b.push(
                "conv",
                OpKind::Gemm {
                    m: 4096,
                    n: 1024,
                    k: 1024,
                },
                Domain::Neural,
                DType::Int8,
                &[],
            );
            b.finish(1).unwrap()
        };
        let vsa_only = {
            let mut b = TraceBuilder::new("vsa");
            b.push(
                "bind",
                OpKind::VsaConv {
                    n_vec: 4,
                    dim: 1024,
                },
                Domain::Symbolic,
                DType::Int4,
                &[],
            );
            b.finish(1).unwrap()
        };
        let nn_macs = 4096u64 * 1024 * 1024;
        let vsa_macs = 4u64 * 1024 * 1024;
        let nn_time = tpu.run(&gemm_only).total_seconds();
        let vsa_time = tpu.run(&vsa_only).total_seconds();
        // Per MAC, the lowered VSA op is dramatically more expensive.
        let nn_per_mac = nn_time / nn_macs as f64;
        let vsa_per_mac = vsa_time / vsa_macs as f64;
        assert!(
            vsa_per_mac > 10.0 * nn_per_mac,
            "lowering penalty missing: {vsa_per_mac} vs {nn_per_mac}"
        );
    }

    #[test]
    fn dpu_is_fast_on_nn_slow_on_symbolic() {
        let dpu = DpuLike::new_b4096();
        let t = mixed_trace(1);
        let r = dpu.run(&t);
        assert!(
            r.symbolic_fraction() > 0.8,
            "fraction {}",
            r.symbolic_fraction()
        );
    }

    #[test]
    fn device_names_are_stable() {
        assert_eq!(Device::coral_tpu().name(), "Coral TPU");
        assert_eq!(TpuLikeArray::new_128x128().name(), "TPU-like 128×128 SA");
        assert_eq!(DpuLike::new_b4096().name(), "Xilinx DPU (B4096)");
    }
}
