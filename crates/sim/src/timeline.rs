//! Execution-timeline observability for [`Schedule`]s.
//!
//! Turns the scheduler's per-op stall attribution into inspectable
//! artifacts, the way occupancy traces are used to diagnose dataflow
//! accelerators:
//!
//! - [`Schedule::to_chrome_trace`]: a Chrome Trace Event Format document
//!   (viewable in Perfetto / `chrome://tracing`) with one track per
//!   resource — the NN/VSA partitions and SIMD unit for the
//!   partition-queue scheduler, one track per sub-array for the pooled
//!   scheduler — plus a counter track of per-class occupancy. Built on
//!   the workspace's own [`JsonValue`] machinery: no new dependency, and
//!   the strict parser can validate every emitted document.
//! - [`Schedule::critical_path`]: walks the scheduled DAG backwards from
//!   the last-finishing op, at each hop following the constraint that
//!   actually bound the op's start (a data dependency or a resource
//!   release). The resulting chain tiles `[0, total_cycles)` exactly, so
//!   attributed cycles sum to the makespan.
//! - [`Schedule::utilization_timeline`]: windowed per-class occupancy
//!   series, and [`Schedule::classes_overlap_cycles`] — how long at
//!   least two of NN/VSA/SIMD were simultaneously active (the step-③
//!   pipelining the paper's speedups come from).
//! - [`bottleneck_report`]: the human-readable rollup the `simtrace`
//!   binary prints.
//!
//! Cycle timestamps are written into the trace's `ts`/`dur` fields
//! unscaled (one microsecond per cycle in the viewer's display; the
//! `metadata` object records the unit).

use std::collections::HashMap;
use std::fmt::Write as _;

use nsflow_graph::DataflowGraph;
use nsflow_telemetry::JsonValue;
use nsflow_trace::{OpId, OpKind};

use crate::schedule::{Resource, Schedule};

/// Sum of each stall category over every scheduled op instance.
///
/// `dep_wait`/`resource_wait` are pre-start gaps and may overlap across
/// ops (several ops can wait concurrently), so totals are diagnostic
/// volumes, not a partition of the makespan. `transfer_stall` cycles are
/// occupancy (the claimed arrays idle during a double-buffered
/// transfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallTotals {
    /// Total dependency-wait cycles.
    pub dep_wait: u64,
    /// Total resource-busy wait cycles.
    pub resource_wait: u64,
    /// Total double-buffered transfer stall cycles.
    pub transfer_stall: u64,
}

/// Why an op on the critical path started exactly when it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindKind {
    /// Started at cycle 0 (nothing before it on the path).
    Origin,
    /// Waited for a data dependency (or the previous loop instance of
    /// the same op on the pooled backend) to finish.
    Dependency,
    /// Waited for its resource — partition queue, SIMD unit, or pool
    /// capacity — to be released.
    Resource,
}

/// One op instance on the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalNode {
    /// Index into [`Schedule::ops`].
    pub index: usize,
    /// Loop iteration.
    pub loop_idx: usize,
    /// The op.
    pub op: OpId,
    /// Resource class the op ran on.
    pub resource: Resource,
    /// Cycles the op occupied on the path (its full duration).
    pub cycles: u64,
    /// Transfer-stall cycles inside that duration.
    pub transfer_stall: u64,
    /// The constraint that dictated this op's start time.
    pub bound: BindKind,
}

/// The critical path of a schedule: a chain of op instances covering
/// `[0, total_cycles)` with no gaps, chronological order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CriticalPathReport {
    /// Path nodes, first-starting op first.
    pub nodes: Vec<CriticalNode>,
    /// The schedule's makespan the path is measured against.
    pub total_cycles: u64,
}

impl CriticalPathReport {
    /// Total cycles attributed to path ops. Equals
    /// [`total_cycles`](Self::total_cycles) because consecutive path ops
    /// abut exactly (each op starts the cycle its binding predecessor
    /// ends).
    #[must_use]
    pub fn attributed_cycles(&self) -> u64 {
        self.nodes.iter().map(|n| n.cycles).sum()
    }

    /// Path cycles per resource class `(nn, vsa, simd)`.
    #[must_use]
    pub fn cycles_by_resource(&self) -> (u64, u64, u64) {
        let mut out = (0u64, 0u64, 0u64);
        for n in &self.nodes {
            match n.resource {
                Resource::NnPartition => out.0 += n.cycles,
                Resource::VsaPartition => out.1 += n.cycles,
                Resource::Simd => out.2 += n.cycles,
            }
        }
        out
    }

    /// Transfer-stall cycles sitting on the critical path.
    #[must_use]
    pub fn transfer_stall_cycles(&self) -> u64 {
        self.nodes.iter().map(|n| n.transfer_stall).sum()
    }

    /// Path cycles entered through resource serialization (nodes whose
    /// start was bound by a resource release, not a data dependency).
    #[must_use]
    pub fn resource_bound_cycles(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.bound == BindKind::Resource)
            .map(|n| n.cycles)
            .sum()
    }

    /// Aggregates path cycles per op (summed over loop instances),
    /// heaviest first; ties broken by op index for determinism.
    #[must_use]
    pub fn top_ops(&self, graph: &DataflowGraph, n: usize) -> Vec<(String, u64, usize)> {
        let mut per_op: HashMap<usize, (u64, usize)> = HashMap::new();
        for node in &self.nodes {
            let e = per_op.entry(node.op.index()).or_insert((0, 0));
            e.0 += node.cycles;
            e.1 += 1;
        }
        let mut rows: Vec<(usize, u64, usize)> = per_op
            .into_iter()
            .map(|(op, (cycles, count))| (op, cycles, count))
            .collect();
        rows.sort_by_key(|&(op, cycles, _)| (std::cmp::Reverse(cycles), op));
        rows.truncate(n);
        rows.into_iter()
            .map(|(op, cycles, count)| {
                let name = graph.trace().ops()[op].name().to_string();
                (name, cycles, count)
            })
            .collect()
    }
}

/// One window of the per-class occupancy series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationWindow {
    /// Window start cycle (inclusive).
    pub start: u64,
    /// Window end cycle (exclusive).
    pub end: u64,
    /// NN-class occupancy in `[0, 1]` (fraction of the class capacity).
    pub nn: f64,
    /// VSA-class occupancy in `[0, 1]`.
    pub vsa: f64,
    /// SIMD occupancy in `[0, 1]`.
    pub simd: f64,
}

/// Stable label for an op kind, used as the trace event category.
#[must_use]
pub fn kind_label(kind: &OpKind) -> &'static str {
    match kind {
        OpKind::Gemm { .. } => "gemm",
        OpKind::VsaConv { .. } => "vsa_conv",
        OpKind::Elementwise { .. } => "elementwise",
        OpKind::Reduce { .. } => "reduce",
        OpKind::Similarity { .. } => "similarity",
        _ => "other",
    }
}

fn resource_label(r: Resource) -> &'static str {
    match r {
        Resource::NnPartition => "nn",
        Resource::VsaPartition => "vsa",
        Resource::Simd => "simd",
    }
}

fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Track id layout: fixed lanes for the partition-queue scheduler and
/// the SIMD unit, `POOL_TID_BASE + u` for pooled sub-array `u`.
const TID_NN: u64 = 1;
const TID_VSA: u64 = 2;
const TID_SIMD: u64 = 3;
const POOL_TID_BASE: u64 = 10;

impl Schedule {
    /// Per-op weight for occupancy accounting: claimed sub-arrays on the
    /// pooled backend, one lane otherwise.
    fn occupancy_weight(&self, i: usize) -> u64 {
        if self.pool_units() > 0 && self.ops()[i].resource != Resource::Simd {
            self.claimed_units(i).len() as u64
        } else {
            1
        }
    }

    /// Sum of each stall category over all scheduled op instances.
    #[must_use]
    pub fn stall_totals(&self) -> StallTotals {
        let mut t = StallTotals::default();
        for op in self.ops() {
            t.dep_wait += op.dep_wait;
            t.resource_wait += op.resource_wait;
            t.transfer_stall += op.transfer_stall;
        }
        t
    }

    /// Cycles during which at least two of the NN/VSA/SIMD classes had
    /// an op in flight — the overlap the step-③ pipelined schedule
    /// exists to create.
    #[must_use]
    pub fn classes_overlap_cycles(&self) -> u64 {
        // Event sweep over per-class active-op counts.
        let mut events: Vec<(u64, usize, i64)> = Vec::with_capacity(self.ops().len() * 2);
        for so in self.ops() {
            let c = match so.resource {
                Resource::NnPartition => 0,
                Resource::VsaPartition => 1,
                Resource::Simd => 2,
            };
            events.push((so.start, c, 1));
            events.push((so.end, c, -1));
        }
        events.sort_unstable();
        let mut active = [0i64; 3];
        let mut overlap = 0u64;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            // Duration until the next distinct event time, counted under
            // the state *after* applying all events at `t`.
            while i < events.len() && events[i].0 == t {
                active[events[i].1] += events[i].2;
                i += 1;
            }
            if let Some(&(next, _, _)) = events.get(i) {
                if active.iter().filter(|&&a| a > 0).count() >= 2 {
                    overlap += next - t;
                }
            }
        }
        overlap
    }

    /// Windowed per-class occupancy over the makespan.
    ///
    /// NN/VSA occupancy is normalized by the class capacity: claimed
    /// sub-arrays over the pool for pooled schedules, busy fraction of
    /// the partition lane otherwise. SIMD occupancy is the busy fraction
    /// of the (single) SIMD unit.
    ///
    /// # Panics
    ///
    /// Panics if `windows == 0`.
    #[must_use]
    pub fn utilization_timeline(&self, windows: usize) -> Vec<UtilizationWindow> {
        assert!(windows > 0, "need at least one window");
        let total = self.total_cycles();
        if total == 0 {
            return Vec::new();
        }
        let pool = self.pool_units().max(1) as f64;
        let mut out: Vec<UtilizationWindow> = (0..windows)
            .map(|w| UtilizationWindow {
                start: total * w as u64 / windows as u64,
                end: total * (w as u64 + 1) / windows as u64,
                nn: 0.0,
                vsa: 0.0,
                simd: 0.0,
            })
            .collect();
        for (i, so) in self.ops().iter().enumerate() {
            let weight = self.occupancy_weight(i) as f64;
            let capacity = if so.resource == Resource::Simd || self.pool_units() == 0 {
                1.0
            } else {
                pool
            };
            for w in out.iter_mut() {
                let lo = so.start.max(w.start);
                let hi = so.end.min(w.end);
                if lo >= hi || w.end == w.start {
                    continue;
                }
                let frac = (hi - lo) as f64 * weight / ((w.end - w.start) as f64 * capacity);
                match so.resource {
                    Resource::NnPartition => w.nn += frac,
                    Resource::VsaPartition => w.vsa += frac,
                    Resource::Simd => w.simd += frac,
                }
            }
        }
        out
    }

    /// Exports the schedule as a Chrome Trace Event Format document.
    ///
    /// One duration (`"ph": "X"`) event per op instance — per *claimed
    /// sub-array* on the pooled backend, so every track shows what that
    /// physical unit was doing — with args carrying the op kind, loop
    /// index, cycle count and the stall breakdown. A `"ph": "C"` counter
    /// series tracks per-class occupancy at every change point. The
    /// document loads in Perfetto / `chrome://tracing` and round-trips
    /// through [`JsonValue::parse`].
    #[must_use]
    pub fn to_chrome_trace(&self, graph: &DataflowGraph) -> JsonValue {
        let trace = graph.trace();
        let pooled = self.pool_units() > 0;
        let mut events: Vec<JsonValue> = Vec::new();

        // Track metadata.
        let meta = |tid: u64, name: String| {
            obj(vec![
                ("ph", JsonValue::Str("M".into())),
                ("pid", JsonValue::UInt(0)),
                ("tid", JsonValue::UInt(tid)),
                ("name", JsonValue::Str("thread_name".into())),
                ("args", obj(vec![("name", JsonValue::Str(name))])),
            ])
        };
        events.push(obj(vec![
            ("ph", JsonValue::Str("M".into())),
            ("pid", JsonValue::UInt(0)),
            ("name", JsonValue::Str("process_name".into())),
            (
                "args",
                obj(vec![(
                    "name",
                    JsonValue::Str(format!("nsflow-sim: {}", trace.name())),
                )]),
            ),
        ]));
        if pooled {
            for u in 0..self.pool_units() {
                events.push(meta(POOL_TID_BASE + u as u64, format!("subarray[{u}]")));
            }
        } else {
            events.push(meta(
                TID_NN,
                if self.is_sequential() {
                    "array (sequential)".to_string()
                } else {
                    "NN partition".to_string()
                },
            ));
            events.push(meta(
                TID_VSA,
                if self.is_sequential() {
                    "VSA ops (time-shared on array)".to_string()
                } else {
                    "VSA partition".to_string()
                },
            ));
        }
        events.push(meta(TID_SIMD, "SIMD unit".to_string()));

        // Duration events.
        let mut timed: Vec<(u64, u64, JsonValue)> = Vec::new();
        for (i, so) in self.ops().iter().enumerate() {
            let op = trace.op(so.op);
            let args = obj(vec![
                ("loop", JsonValue::UInt(so.loop_idx as u64)),
                ("op", JsonValue::UInt(so.op.index() as u64)),
                ("kind", JsonValue::Str(kind_label(op.kind()).into())),
                ("cycles", JsonValue::UInt(so.end - so.start)),
                ("dep_wait", JsonValue::UInt(so.dep_wait)),
                ("resource_wait", JsonValue::UInt(so.resource_wait)),
                ("transfer_stall", JsonValue::UInt(so.transfer_stall)),
                (
                    "subarrays",
                    JsonValue::Array(
                        self.claimed_units(i)
                            .iter()
                            .map(|&u| JsonValue::UInt(u64::from(u)))
                            .collect(),
                    ),
                ),
            ]);
            let tids: Vec<u64> = if pooled && so.resource != Resource::Simd {
                self.claimed_units(i)
                    .iter()
                    .map(|&u| POOL_TID_BASE + u64::from(u))
                    .collect()
            } else {
                vec![match so.resource {
                    Resource::NnPartition => TID_NN,
                    Resource::VsaPartition => TID_VSA,
                    Resource::Simd => TID_SIMD,
                }]
            };
            for tid in tids {
                timed.push((
                    so.start,
                    tid,
                    obj(vec![
                        ("ph", JsonValue::Str("X".into())),
                        ("pid", JsonValue::UInt(0)),
                        ("tid", JsonValue::UInt(tid)),
                        ("name", JsonValue::Str(op.name().to_string())),
                        ("cat", JsonValue::Str(resource_label(so.resource).into())),
                        ("ts", JsonValue::UInt(so.start)),
                        ("dur", JsonValue::UInt(so.end - so.start)),
                        ("args", args.clone()),
                    ]),
                ));
            }
        }

        // Per-class occupancy counter series at every change point.
        let mut deltas: Vec<(u64, usize, i64)> = Vec::new();
        for (i, so) in self.ops().iter().enumerate() {
            let w = self.occupancy_weight(i) as i64;
            let c = match so.resource {
                Resource::NnPartition => 0,
                Resource::VsaPartition => 1,
                Resource::Simd => 2,
            };
            deltas.push((so.start, c, w));
            deltas.push((so.end, c, -w));
        }
        deltas.sort_unstable();
        let mut level = [0i64; 3];
        let mut i = 0;
        while i < deltas.len() {
            let t = deltas[i].0;
            while i < deltas.len() && deltas[i].0 == t {
                level[deltas[i].1] += deltas[i].2;
                i += 1;
            }
            timed.push((
                t,
                u64::MAX, // counters sort after duration events at the same ts
                obj(vec![
                    ("ph", JsonValue::Str("C".into())),
                    ("pid", JsonValue::UInt(0)),
                    ("name", JsonValue::Str("occupancy".into())),
                    ("ts", JsonValue::UInt(t)),
                    (
                        "args",
                        obj(vec![
                            ("nn", JsonValue::UInt(level[0].max(0) as u64)),
                            ("vsa", JsonValue::UInt(level[1].max(0) as u64)),
                            ("simd", JsonValue::UInt(level[2].max(0) as u64)),
                        ]),
                    ),
                ]),
            ));
        }
        timed.sort_by_key(|a| (a.0, a.1));
        events.extend(timed.into_iter().map(|(_, _, e)| e));

        let stalls = self.stall_totals();
        obj(vec![
            ("displayTimeUnit", JsonValue::Str("ms".into())),
            (
                "metadata",
                obj(vec![
                    ("workload", JsonValue::Str(trace.name().to_string())),
                    (
                        "scheduler",
                        JsonValue::Str(if pooled { "pooled" } else { "queues" }.into()),
                    ),
                    ("time_unit", JsonValue::Str("cycle".into())),
                    ("total_cycles", JsonValue::UInt(self.total_cycles())),
                    ("pool_units", JsonValue::UInt(self.pool_units() as u64)),
                    ("loops", JsonValue::UInt(trace.loop_count() as u64)),
                    ("stall_dep_wait_cycles", JsonValue::UInt(stalls.dep_wait)),
                    (
                        "stall_resource_wait_cycles",
                        JsonValue::UInt(stalls.resource_wait),
                    ),
                    (
                        "stall_transfer_cycles",
                        JsonValue::UInt(stalls.transfer_stall),
                    ),
                ]),
            ),
            ("traceEvents", JsonValue::Array(events)),
        ])
    }

    /// Extracts the critical path: starting from the last-finishing op,
    /// repeatedly steps to the op whose completion dictated the current
    /// op's start — the data dependency that finished exactly at `start`
    /// if one exists, otherwise the op whose completion released the
    /// resource. The chain tiles `[0, total_cycles)`, so
    /// [`CriticalPathReport::attributed_cycles`] equals the makespan.
    #[must_use]
    pub fn critical_path(&self, graph: &DataflowGraph) -> CriticalPathReport {
        let ops = self.ops();
        if ops.is_empty() {
            return CriticalPathReport::default();
        }
        let trace = graph.trace();
        let pooled = self.pool_units() > 0;

        let mut by_inst: HashMap<(usize, usize), usize> = HashMap::with_capacity(ops.len());
        let mut by_end: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, so) in ops.iter().enumerate() {
            by_inst.insert((so.loop_idx, so.op.index()), i);
            by_end.entry(so.end).or_default().push(i);
        }
        // Deterministic candidate order inside one end time.
        for list in by_end.values_mut() {
            list.sort_by_key(|&i| (ops[i].loop_idx, ops[i].op.index()));
        }

        // Last-finishing op; ties broken toward the smallest instance.
        let mut cur = (0..ops.len())
            .max_by_key(|&i| {
                (
                    ops[i].end,
                    std::cmp::Reverse((ops[i].loop_idx, ops[i].op.index())),
                )
            })
            .expect("non-empty schedule");

        let same_group = |a: Resource, b: Resource| -> bool {
            match (a, b) {
                (Resource::Simd, Resource::Simd) => true,
                (Resource::Simd, _) | (_, Resource::Simd) => false,
                // Array classes share hardware on the pooled backend and
                // in sequential (time-shared) mode; otherwise each
                // partition is its own queue.
                (a, b) => {
                    if pooled || self.is_sequential() {
                        true
                    } else {
                        a == b
                    }
                }
            }
        };

        let mut nodes = Vec::new();
        loop {
            let so = ops[cur];
            let mut node = CriticalNode {
                index: cur,
                loop_idx: so.loop_idx,
                op: so.op,
                resource: so.resource,
                cycles: so.end - so.start,
                transfer_stall: so.transfer_stall,
                bound: BindKind::Origin,
            };
            if so.start == 0 {
                nodes.push(node);
                break;
            }
            // Dependency instances that finished exactly at our start.
            let mut dep_pred = None;
            for d in trace.op(so.op).inputs() {
                if let Some(&i) = by_inst.get(&(so.loop_idx, d.index())) {
                    if ops[i].end == so.start {
                        dep_pred = Some(i);
                        break;
                    }
                }
            }
            if dep_pred.is_none() && pooled && so.loop_idx > 0 {
                // Stationary-operand serialization with the previous
                // instance counts as a dependency.
                if let Some(&i) = by_inst.get(&(so.loop_idx - 1, so.op.index())) {
                    if ops[i].end == so.start {
                        dep_pred = Some(i);
                    }
                }
            }
            let pred = if let Some(i) = dep_pred {
                node.bound = BindKind::Dependency;
                Some(i)
            } else {
                // The resource release that unblocked us: prefer an op of
                // the same resource group, fall back to any completion.
                let cands = by_end.get(&so.start).map_or(&[][..], Vec::as_slice);
                node.bound = BindKind::Resource;
                cands
                    .iter()
                    .copied()
                    .find(|&i| i != cur && same_group(ops[i].resource, so.resource))
                    .or_else(|| cands.iter().copied().find(|&i| i != cur))
            };
            nodes.push(node);
            match pred {
                Some(i) => cur = i,
                None => break, // no completion at our start: attribution ends here
            }
        }
        nodes.reverse();
        CriticalPathReport {
            nodes,
            total_cycles: self.total_cycles(),
        }
    }
}

/// Intensity glyph for a `[0, 1]` occupancy value.
fn intensity(v: f64) -> char {
    const RAMP: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    let idx = (v.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[idx.min(RAMP.len() - 1)]
}

/// Renders the human-readable bottleneck report `simtrace` prints: the
/// stall taxonomy totals, NN/VSA/SIMD overlap, a windowed occupancy
/// strip per class, and the top-`top_n` ops by critical-path
/// contribution.
#[must_use]
pub fn bottleneck_report(schedule: &Schedule, graph: &DataflowGraph, top_n: usize) -> String {
    let total = schedule.total_cycles();
    let path = schedule.critical_path(graph);
    let stalls = schedule.stall_totals();
    let overlap = schedule.classes_overlap_cycles();
    let pct = |c: u64| 100.0 * c as f64 / total.max(1) as f64;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "schedule: {} ops, {} cycles, scheduler={}, array utilization {:.1}%",
        schedule.ops().len(),
        total,
        if schedule.pool_units() > 0 {
            "pooled"
        } else {
            "queues"
        },
        100.0 * schedule.array_utilization()
    );
    let _ = writeln!(
        out,
        "overlap: >=2 of NN/VSA/SIMD active for {overlap} cycles ({:.1}% of makespan)",
        pct(overlap)
    );
    let _ = writeln!(
        out,
        "stalls:  dep_wait {} | resource_wait {} | transfer {} cycles (per-op sums)",
        stalls.dep_wait, stalls.resource_wait, stalls.transfer_stall
    );

    let windows = schedule.utilization_timeline(32);
    for (label, pick) in [("NN  ", 0usize), ("VSA ", 1usize), ("SIMD", 2usize)] {
        let strip: String = windows
            .iter()
            .map(|w| intensity([w.nn, w.vsa, w.simd][pick]))
            .collect();
        let _ = writeln!(out, "occupancy {label} |{strip}|");
    }

    let (nn, vsa, simd) = path.cycles_by_resource();
    let _ = writeln!(
        out,
        "critical path: {} nodes, {} cycles attributed (makespan {total}); NN {:.1}% | VSA {:.1}% | SIMD {:.1}%; transfer stall on path {} ({:.1}%); resource-serialized {} ({:.1}%)",
        path.nodes.len(),
        path.attributed_cycles(),
        pct(nn),
        pct(vsa),
        pct(simd),
        path.transfer_stall_cycles(),
        pct(path.transfer_stall_cycles()),
        path.resource_bound_cycles(),
        pct(path.resource_bound_cycles()),
    );
    let _ = writeln!(out, "top ops by critical-path contribution:");
    for (name, cycles, count) in path.top_ops(graph, top_n) {
        let _ = writeln!(
            out,
            "  {cycles:>12} cycles ({:>5.1}%)  x{count:<3} {name}",
            pct(cycles)
        );
    }
    out
}
