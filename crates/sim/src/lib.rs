//! # nsflow-sim
//!
//! Cycle-level simulation and baseline device models for the NSFlow
//! reproduction.
//!
//! - [`schedule`]: an event-driven scheduler that executes a
//!   [`DataflowGraph`](nsflow_graph::DataflowGraph) on the AdArray/SIMD
//!   resource model across all loop iterations, honoring data dependencies,
//!   partition occupancy and double-buffered transfer stalls — the
//!   reproduction's equivalent of running the bitstream,
//! - [`devices`]: calibrated analytical models of every baseline the paper
//!   compares against (Jetson TX2, Xavier NX, Xeon CPU, RTX 2080 Ti, Coral
//!   edge TPU, a TPU-like 128×128 systolic array, Xilinx DPU), built on a
//!   roofline with per-domain efficiency factors (see DESIGN.md for the
//!   substitution argument),
//! - [`roofline`]: operational-intensity / attained-performance analysis
//!   reproducing Fig. 1c,
//! - [`energy`]: board-power catalog + FPGA dynamic-power model for the
//!   energy-per-inference extension experiment.
//!
//! # Examples
//!
//! ```
//! use nsflow_sim::devices::{Device, DeviceModel};
//! use nsflow_trace::{TraceBuilder, OpKind, Domain};
//! use nsflow_tensor::DType;
//!
//! let mut b = TraceBuilder::new("w");
//! b.push("conv", OpKind::Gemm { m: 1000, n: 64, k: 576 }, Domain::Neural, DType::Int8, &[]);
//! let trace = b.finish(1)?;
//! let report = Device::rtx_2080_ti().run(&trace);
//! assert!(report.total_seconds() > 0.0);
//! # Ok::<(), nsflow_trace::TraceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod devices;
pub mod energy;
pub mod roofline;
pub mod schedule;
pub mod timeline;
