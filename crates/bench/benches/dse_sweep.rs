//! Criterion microbenchmarks of the DSE sweep paths: the serial
//! trace-walking reference vs the memoized cycle-table engine (one
//! thread) vs the threaded sweep, plus the two-phase `explore` on top.
//!
//! ```sh
//! cargo bench -p nsflow-bench --bench dse_sweep
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nsflow_dse::exhaustive::{exhaustive_uniform, exhaustive_uniform_reference};
use nsflow_dse::{explore, phase1, phase1_reference, DseOptions};
use nsflow_graph::DataflowGraph;
use nsflow_workloads::traces;

fn opts(threads: Option<usize>) -> DseOptions {
    DseOptions {
        max_pes: 1 << 12,
        threads,
        ..DseOptions::default()
    }
}

fn bench_sweeps(c: &mut Criterion) {
    let graph = DataflowGraph::from_trace(traces::nvsa().trace);

    c.bench_function("exhaustive_uniform/reference", |b| {
        let o = opts(Some(1));
        b.iter(|| black_box(exhaustive_uniform_reference(black_box(&graph), &o)));
    });
    c.bench_function("exhaustive_uniform/table_1thread", |b| {
        let o = opts(Some(1));
        b.iter(|| black_box(exhaustive_uniform(black_box(&graph), &o)));
    });
    c.bench_function("exhaustive_uniform/table_parallel", |b| {
        let o = opts(None);
        b.iter(|| black_box(exhaustive_uniform(black_box(&graph), &o)));
    });
    c.bench_function("phase1/reference", |b| {
        let o = opts(Some(1));
        b.iter(|| black_box(phase1_reference(black_box(&graph), &o)));
    });
    c.bench_function("phase1/table_parallel", |b| {
        let o = opts(None);
        b.iter(|| black_box(phase1(black_box(&graph), &o)));
    });
    c.bench_function("explore/two_phase", |b| {
        let o = opts(None);
        b.iter(|| black_box(explore(black_box(&graph), &o)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sweeps
}
criterion_main!(benches);
