//! Criterion microbenchmarks of the reproduction's hot kernels: the VSA
//! circular-convolution paths (functional + microsimulated), the GEMM
//! reference, the resonator, the dataflow-graph + DSE frontend and the
//! cycle-level scheduler.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nsflow_arch::adarray::microsim;
use nsflow_arch::{ArrayConfig, Mapping};
use nsflow_dse::{explore, DseOptions};
use nsflow_graph::DataflowGraph;
use nsflow_nn::gemm;
use nsflow_sim::schedule::{self, SimOptions};
use nsflow_vsa::ops;
use nsflow_vsa::resonator::{Resonator, ResonatorConfig};
use nsflow_vsa::Codebook;
use nsflow_workloads::traces;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn randvec(n: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn bench_vsa_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a256 = randvec(256, &mut rng);
    let b256 = randvec(256, &mut rng);
    let a1k = randvec(1024, &mut rng);
    let b1k = randvec(1024, &mut rng);

    c.bench_function("circular_convolve_d256", |b| {
        b.iter(|| ops::circular_convolve(black_box(&a256), black_box(&b256)))
    });
    c.bench_function("circular_convolve_d1024", |b| {
        b.iter(|| ops::circular_convolve(black_box(&a1k), black_box(&b1k)))
    });
    c.bench_function("circular_correlate_d256", |b| {
        b.iter(|| ops::circular_correlate(black_box(&a256), black_box(&b256)))
    });
    c.bench_function("microsim_circ_conv_column_h64_d64", |b| {
        let a = randvec(64, &mut rng);
        let bb = randvec(64, &mut rng);
        b.iter(|| microsim::circular_conv_column(64, black_box(&a), black_box(&bb)).unwrap())
    });
}

fn bench_nn_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let a = randvec(128 * 128, &mut rng);
    let b = randvec(128 * 128, &mut rng);
    c.bench_function("gemm_matmul_128", |bch| {
        bch.iter(|| gemm::matmul(black_box(&a), black_box(&b), 128, 128, 128))
    });
    c.bench_function("microsim_nn_layer_16x8x2_m32", |bch| {
        let act = randvec(32 * 40, &mut rng);
        let wt = randvec(40 * 24, &mut rng);
        bch.iter(|| {
            microsim::nn_layer(16, 8, 2, black_box(&act), black_box(&wt), 32, 40, 24).unwrap()
        })
    });
}

fn bench_resonator(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let books: Vec<Codebook> = (0..3)
        .map(|_| Codebook::random_unitary(8, 4, 64, &mut rng))
        .collect();
    let target = books[0]
        .codeword(2)
        .bind(books[1].codeword(5))
        .unwrap()
        .bind(books[2].codeword(1))
        .unwrap();
    let res = Resonator::new(books).unwrap();
    c.bench_function("resonator_factorize_3x8_d256", |b| {
        b.iter(|| {
            res.factorize(black_box(&target), ResonatorConfig::default())
                .unwrap()
        })
    });
}

fn bench_frontend(c: &mut Criterion) {
    let trace = traces::nvsa().trace;
    c.bench_function("dataflow_graph_from_nvsa_trace", |b| {
        b.iter(|| DataflowGraph::from_trace(black_box(trace.clone())))
    });
    let graph = DataflowGraph::from_trace(trace);
    let opts = DseOptions::default();
    c.bench_function("dse_explore_nvsa", |b| {
        b.iter(|| explore(black_box(&graph), &opts))
    });

    let result = explore(&graph, &opts);
    let sim_opts = SimOptions {
        simd_lanes: 64,
        transfer: None,
    };
    c.bench_function("schedule_run_nvsa_8_loops", |b| {
        b.iter(|| {
            schedule::run(
                black_box(&graph),
                &result.config,
                &result.mapping,
                &sim_opts,
            )
        })
    });

    let cfg = ArrayConfig::new(16, 16, 4).unwrap();
    let nn = graph.trace().nn_nodes().len();
    let vsa = graph.trace().vsa_nodes().len();
    let mapping = Mapping::uniform(nn, vsa, 3, 1);
    c.bench_function("analytical_loop_timing_nvsa", |b| {
        b.iter(|| nsflow_arch::analytical::loop_timing(black_box(&graph), &cfg, &mapping, 64))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_vsa_kernels, bench_nn_kernels, bench_resonator, bench_frontend
}
criterion_main!(benches);
