//! Integration tests for the `bench_gate` regression gate: the binary
//! must exit zero against the committed baselines and non-zero against
//! synthetically regressed artifacts.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use nsflow_bench::gate::{compare_dirs, Verdict};

/// The committed baseline directory at the workspace root.
fn baselines_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../baselines")
}

/// A scratch directory unique to this test, wiped on creation.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nsflow_gate_{}_{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_gate(baseline: &Path, current: &Path, tolerance: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_bench_gate"))
        .args([
            "--baseline",
            baseline.to_str().unwrap(),
            "--current",
            current.to_str().unwrap(),
            "--tolerance",
            tolerance,
        ])
        .output()
        .expect("spawn bench_gate")
}

const BASELINE_DOC: &str = r#"{
  "bench": "dse_throughput",
  "quick": true,
  "runs": [
    {
      "points": 6277,
      "cached": { "wall_s": 0.0002, "points_per_sec": 30000000.0, "speedup": 40.0 },
      "best_speedup": 40.0
    }
  ],
  "meets_target": true,
  "telemetry": { "counters": { "dse.cache_hits": 2506068 } }
}
"#;

fn regressed(speedup: f64, points: u64, meets: bool, hits: u64) -> String {
    format!(
        r#"{{
  "bench": "dse_throughput",
  "quick": true,
  "runs": [
    {{
      "points": {points},
      "cached": {{ "wall_s": 0.002, "points_per_sec": 3000000.0, "speedup": {speedup} }},
      "best_speedup": {speedup}
    }}
  ],
  "meets_target": {meets},
  "telemetry": {{ "counters": {{ "dse.cache_hits": {hits} }} }}
}}
"#
    )
}

#[test]
fn gate_passes_on_committed_baselines() {
    let baselines = baselines_dir();
    let out = run_gate(&baselines, &baselines, "0.5");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "gate failed against its own baselines:\n{stdout}"
    );
    assert!(
        stdout.contains("gate: PASS"),
        "unexpected output:\n{stdout}"
    );
}

#[test]
fn gate_exits_nonzero_on_synthetic_regression() {
    let base = scratch("base");
    let cur = scratch("cur");
    fs::write(base.join("BENCH_dse.json"), BASELINE_DOC).unwrap();
    // Speedup collapses 40x → 4x: far below the 0.5 tolerance floor.
    fs::write(cur.join("BENCH_dse.json"), regressed(4.0, 6277, true, 999)).unwrap();

    let out = run_gate(&base, &cur, "0.5");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "gate passed a 10x speedup regression:\n{stdout}"
    );
    assert!(
        stdout.contains("gate: FAIL"),
        "unexpected output:\n{stdout}"
    );
    assert!(stdout.contains("below tolerance floor"));
}

#[test]
fn gate_exits_nonzero_when_a_counter_goes_silent() {
    let base = scratch("cbase");
    let cur = scratch("ccur");
    fs::write(base.join("BENCH_dse.json"), BASELINE_DOC).unwrap();
    fs::write(cur.join("BENCH_dse.json"), regressed(40.0, 6277, true, 0)).unwrap();
    let out = run_gate(&base, &cur, "0.5");
    assert!(!out.status.success(), "gate ignored a silent counter");
    assert!(String::from_utf8_lossy(&out.stdout).contains("counter went silent"));
}

#[test]
fn gate_exits_nonzero_on_point_count_drift() {
    let base = scratch("pbase");
    let cur = scratch("pcur");
    fs::write(base.join("BENCH_dse.json"), BASELINE_DOC).unwrap();
    fs::write(cur.join("BENCH_dse.json"), regressed(40.0, 9999, true, 999)).unwrap();
    let out = run_gate(&base, &cur, "0.5");
    assert!(!out.status.success(), "gate ignored a design-space drift");
}

#[test]
fn gate_rejects_missing_current_artifact_and_bad_flags() {
    let base = scratch("mbase");
    let cur = scratch("mcur");
    fs::write(base.join("BENCH_dse.json"), BASELINE_DOC).unwrap();
    // No current artifact at all → the gate cannot render a verdict.
    let out = run_gate(&base, &cur, "0.5");
    assert!(!out.status.success());

    let out = run_gate(&base, &base, "1.5");
    assert!(!out.status.success(), "tolerance ≥ 1 must be rejected");
}

#[test]
fn library_comparison_agrees_with_the_binary() {
    let base = scratch("lbase");
    let cur = scratch("lcur");
    fs::write(base.join("BENCH_dse.json"), BASELINE_DOC).unwrap();
    fs::write(cur.join("BENCH_dse.json"), regressed(4.0, 6277, false, 0)).unwrap();
    let report = compare_dirs(&base, &cur, 0.5).expect("comparable dirs");
    assert!(!report.passed());
    // All three regression kinds surface: throughput, target, liveness.
    let fails: Vec<&str> = report
        .rows
        .iter()
        .filter(|d| d.verdict == Verdict::Fail)
        .map(|d| d.path.as_str())
        .collect();
    assert!(fails.iter().any(|p| p.ends_with("speedup")));
    assert!(fails.iter().any(|p| p.ends_with("meets_target")));
    assert!(fails.iter().any(|p| p.contains("counters")));
}
