//! Acceptance test for the `simtrace` pipeline (ISSUE 4): every suite
//! workload must emit a Chrome Trace Event JSON that passes the strict
//! parser, and the critical-path report must attribute exactly the
//! schedule's makespan.

use nsflow_bench::simreport::{analyze, parse_config};
use nsflow_sim::schedule::SimOptions;
use nsflow_telemetry::JsonValue;
use nsflow_workloads::traces;

#[test]
fn every_workload_emits_a_valid_trace_with_exact_attribution() {
    let cfg = parse_config("32x32x8").unwrap();
    for workload in traces::all() {
        let name = workload.name;
        let t = analyze(workload, &cfg, &SimOptions::default(), true);

        let rendered = t.chrome_trace().render_pretty();
        t.validate_trace(&rendered)
            .unwrap_or_else(|e| panic!("{name}: {e}"));

        // Spot-check the event structure beyond the strict parse: every
        // duration event has the stall-breakdown args the schema
        // promises.
        let doc = JsonValue::parse(&rendered).unwrap();
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .unwrap();
        for e in events {
            if e.get("ph").and_then(JsonValue::as_str) != Some("X") {
                continue;
            }
            let args = e.get("args").expect("X event args");
            for key in [
                "kind",
                "loop",
                "cycles",
                "dep_wait",
                "resource_wait",
                "transfer_stall",
            ] {
                assert!(args.get(key).is_some(), "{name}: missing args.{key}");
            }
        }

        // Attribution is exact, not just "± pipelining overlap".
        let path = t.schedule.critical_path(&t.graph);
        assert_eq!(
            path.attributed_cycles(),
            t.schedule.total_cycles(),
            "{name}: critical path must tile the makespan"
        );
        // And the report renders with the roofline section.
        let report = t.report(5);
        assert!(report.contains("roofline"), "{name}: {report}");
    }
}

#[test]
fn queues_scheduler_also_produces_valid_traces() {
    let cfg = parse_config("16x16x4").unwrap();
    let t = analyze(traces::prae(), &cfg, &SimOptions::default(), false);
    let rendered = t.chrome_trace().render_compact();
    t.validate_trace(&rendered).unwrap();
}

#[test]
fn config_parsing_accepts_hxwxn_and_rejects_garbage() {
    assert!(parse_config("32x32x8").is_ok());
    assert!(parse_config("8X8X2").is_ok());
    assert!(parse_config("32x32").is_err());
    assert!(parse_config("0x8x2").is_err());
    assert!(parse_config("axbxc").is_err());
}
