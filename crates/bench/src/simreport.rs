//! Shared pipeline behind the `simtrace` binary and its integration
//! tests: run a named workload through the two-phase mapping pipeline
//! and a scheduler, then package the schedule's observability artifacts
//! (Chrome trace JSON, bottleneck report, roofline phase bounds).

use nsflow_arch::ArrayConfig;
use nsflow_graph::DataflowGraph;
use nsflow_sim::roofline::{workload_points, Bound, Roof};
use nsflow_sim::schedule::{self, Schedule, SimOptions};
use nsflow_sim::timeline::bottleneck_report;
use nsflow_telemetry::JsonValue;
use nsflow_workloads::traces::Workload;

use crate::mapping;

/// A workload scheduled for timeline inspection: the graph it ran as
/// and the resulting schedule.
#[derive(Debug, Clone)]
pub struct WorkloadTimeline {
    /// Workload display name.
    pub name: &'static str,
    /// The dataflow graph the scheduler consumed.
    pub graph: DataflowGraph,
    /// The schedule with per-op stall attribution.
    pub schedule: Schedule,
}

/// Parses an `HxWxN` array-config argument (e.g. `32x32x8`).
///
/// # Errors
///
/// Returns a message when the string is not three positive integers
/// separated by `x`, or the geometry is rejected by [`ArrayConfig`].
pub fn parse_config(s: &str) -> Result<ArrayConfig, String> {
    let parts: Vec<&str> = s.split(['x', 'X']).collect();
    let [h, w, n] = parts.as_slice() else {
        return Err(format!("expected HxWxN (e.g. 32x32x8), got `{s}`"));
    };
    let parse = |p: &str| p.parse::<usize>().map_err(|e| format!("`{p}`: {e}"));
    ArrayConfig::new(parse(h)?, parse(w)?, parse(n)?).map_err(|e| e.to_string())
}

/// Schedules one workload: two-phase mapping selection, then the pooled
/// scheduler (or the partition-queue scheduler when `pooled` is false).
#[must_use]
pub fn analyze(
    workload: Workload,
    cfg: &ArrayConfig,
    opts: &SimOptions,
    pooled: bool,
) -> WorkloadTimeline {
    let name = workload.name;
    let graph = DataflowGraph::from_trace(workload.trace);
    let mapping = mapping::two_phase_mapping(&graph, cfg, opts);
    let schedule = if pooled {
        schedule::run_pooled(&graph, cfg, &mapping, opts)
    } else {
        schedule::run(&graph, cfg, &mapping, opts)
    };
    WorkloadTimeline {
        name,
        graph,
        schedule,
    }
}

impl WorkloadTimeline {
    /// The Chrome Trace Event Format document for this schedule.
    #[must_use]
    pub fn chrome_trace(&self) -> JsonValue {
        self.schedule.to_chrome_trace(&self.graph)
    }

    /// Validates a rendered trace document: it must strict-parse, carry
    /// a non-empty `traceEvents` array with at least one duration event,
    /// and the critical path must attribute exactly the makespan.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated property.
    pub fn validate_trace(&self, rendered: &str) -> Result<(), String> {
        let doc = JsonValue::parse(rendered).map_err(|e| format!("trace does not parse: {e}"))?;
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .ok_or("missing traceEvents array")?;
        let has_duration = events.iter().any(|e| {
            e.get("ph").and_then(JsonValue::as_str) == Some("X")
                && e.get("dur").and_then(JsonValue::as_u64).is_some()
        });
        if !has_duration {
            return Err("no duration (ph=X) events in trace".into());
        }
        let path = self.schedule.critical_path(&self.graph);
        let attributed = path.attributed_cycles();
        let total = self.schedule.total_cycles();
        if attributed != total {
            return Err(format!(
                "critical path attributes {attributed} cycles, makespan is {total}"
            ));
        }
        Ok(())
    }

    /// The bottleneck report plus the roofline phase bounds — what
    /// `simtrace` prints per workload.
    #[must_use]
    pub fn report(&self, top_n: usize) -> String {
        let mut out = bottleneck_report(&self.schedule, &self.graph, top_n);
        let roof = Roof::rtx_2080_ti();
        out.push_str("roofline (RTX 2080 Ti roof, per phase):\n");
        for p in workload_points(self.graph.trace(), &roof) {
            out.push_str(&format!(
                "  {:<24} intensity {:>8.2} FLOP/B -> {}-bound ({:.2} TFLOP/s attainable)\n",
                p.label,
                p.intensity,
                match p.bound {
                    Bound::Memory => "memory",
                    Bound::Compute => "compute",
                },
                p.attainable_flops / 1e12
            ));
        }
        out
    }
}
