//! # nsflow-bench
//!
//! Experiment harness for the NSFlow reproduction: one binary per table
//! and figure of the paper's evaluation, plus criterion microbenchmarks
//! of the hot kernels.
//!
//! | target | regenerates |
//! |---|---|
//! | `fig1_characterization` | Fig. 1a/1b/1c — device latency breakdowns + roofline |
//! | `table2_design_space` | Tab. II — design-space sizes, original vs DAG |
//! | `table3_deployment` | Tab. III — design configs + U250 utilization |
//! | `table4_precision` | Tab. IV — mixed-precision reasoning accuracy + memory |
//! | `fig5_speedup` | Fig. 5 — end-to-end runtime vs six baselines |
//! | `fig6_ablation` | Fig. 6 — scalability/ablation vs symbolic proportion |
//! | `scalability_150x` | abstract — 150× symbolic scale-up |
//!
//! Every binary prints the series to stdout and writes a CSV under
//! `target/experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod mapping;
pub mod simreport;

use std::fs;
use std::path::PathBuf;

/// Directory experiment CSVs are written to (created on demand).
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn experiment_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Writes a CSV file into [`experiment_dir`].
///
/// # Panics
///
/// Panics on I/O failure — experiment artifacts must not be silently
/// dropped.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = experiment_dir().join(name);
    let mut text = String::with_capacity(rows.len() * 32 + header.len() + 1);
    text.push_str(header);
    text.push('\n');
    for row in rows {
        text.push_str(row);
        text.push('\n');
    }
    fs::write(&path, text).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("\n[csv] wrote {}", path.display());
}

/// Renders the current global telemetry snapshot as a `"telemetry": {…}`
/// JSON object member (indented one level, no trailing comma or
/// newline), ready to splice into the hand-built `BENCH_*.json`
/// documents the bench binaries emit. Empty-but-valid when the
/// `telemetry` feature is off.
#[must_use]
pub fn telemetry_json_member() -> String {
    let mut out = String::from("  \"telemetry\": ");
    nsflow_telemetry::TelemetrySnapshot::capture()
        .to_json_value()
        .write_pretty(&mut out, 1);
    out
}

/// Formats a seconds value with an adaptive unit.
#[must_use]
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_seconds_units() {
        assert_eq!(fmt_seconds(2.5), "2.50 s");
        assert_eq!(fmt_seconds(0.0031), "3.10 ms");
        assert_eq!(fmt_seconds(42.0e-6), "42.0 µs");
    }

    #[test]
    fn csv_round_trip() {
        write_csv("test_artifact.csv", "a,b", &["1,2".to_string()]);
        let text = std::fs::read_to_string(experiment_dir().join("test_artifact.csv")).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
    }
}
