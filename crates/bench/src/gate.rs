//! Performance-regression gate over `BENCH_*.json` artifacts.
//!
//! The bench binaries ([`dse_throughput`], [`kernels_throughput`]) emit
//! machine-readable JSON with speedups, point counts, and an embedded
//! telemetry snapshot. CI commits known-good copies under `baselines/`;
//! the `bench_gate` binary re-runs the benches and calls into this
//! module to compare fresh output against the baseline.
//!
//! # Comparison rules
//!
//! Fields are matched structurally (objects by key, arrays by index) and
//! judged by name:
//!
//! - **`speedup` / `best_speedup` / `points_per_sec`** — throughput
//!   metrics. Fail when `current < baseline · (1 − tolerance)`;
//!   improvements never fail. The wide default tolerance (0.5) absorbs
//!   noisy shared CI runners while still catching order-of-magnitude
//!   regressions (a lost cache, an accidental serial fallback).
//! - **`points`** — design-space sizes are deterministic; any drift is a
//!   correctness bug, so they must match exactly.
//! - **`meets_target`** — fails only on a `true → false` transition (a
//!   baseline that never met the target cannot regress).
//! - **`stall_*`** (any key containing `stall`) — bounded-above cycle
//!   volumes from the scheduler's stall attribution. Fail when
//!   `current > baseline · (1 + tolerance)`; reductions never fail.
//! - **`telemetry.counters.*`** — liveness, not magnitude: every counter
//!   that was nonzero in the baseline must be nonzero in the current run
//!   (a zero means an instrumented fast path silently stopped running).
//! - **`wall_s`** and everything else — informational only; absolute
//!   wall times are machine-dependent.
//! - **`quick`** — a mode mismatch (quick baseline vs full current run)
//!   downgrades every verdict to a warning-level note but is itself only
//!   a warning.
//!
//! [`dse_throughput`]: ../../dse_throughput/index.html
//! [`kernels_throughput`]: ../../kernels_throughput/index.html

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use nsflow_telemetry::JsonValue;

/// Default relative tolerance for throughput metrics.
pub const DEFAULT_TOLERANCE: f64 = 0.5;

/// Verdict for one compared field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or improved).
    Pass,
    /// Recorded for the delta table but never gating (e.g. `wall_s`).
    Info,
    /// Suspicious but not gating (mode mismatch, missing optional field).
    Warn,
    /// Regression — the gate exits non-zero.
    Fail,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Pass => "ok",
            Verdict::Info => "info",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
        }
    }
}

/// One row of the delta table: a single compared field.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Dotted path of the field inside the document, prefixed with the
    /// artifact name (e.g. `BENCH_dse.json:runs[0].parallel.speedup`).
    pub path: String,
    /// Baseline value, rendered.
    pub baseline: String,
    /// Current value, rendered.
    pub current: String,
    /// Relative change in percent where both sides are numeric
    /// (`(current − baseline) / baseline`), else `None`.
    pub change_pct: Option<f64>,
    /// The verdict for this field.
    pub verdict: Verdict,
    /// Human-readable reason for non-`Pass` verdicts.
    pub note: String,
}

/// Result of comparing one or more artifacts.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// All compared fields, in document order.
    pub rows: Vec<Delta>,
}

impl GateReport {
    /// Number of failing rows.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.rows
            .iter()
            .filter(|d| d.verdict == Verdict::Fail)
            .count()
    }

    /// Number of warning rows.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.rows
            .iter()
            .filter(|d| d.verdict == Verdict::Warn)
            .count()
    }

    /// Whether the gate passes (no failures).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures() == 0
    }

    /// Renders the report as an aligned, human-readable delta table.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut path_w = "field".len();
        let mut base_w = "baseline".len();
        let mut cur_w = "current".len();
        for d in &self.rows {
            path_w = path_w.max(d.path.len());
            base_w = base_w.max(d.baseline.len());
            cur_w = cur_w.max(d.current.len());
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<path_w$}  {:>base_w$}  {:>cur_w$}  {:>8}  {:<4}  note",
            "field", "baseline", "current", "delta", "verdict"
        );
        for d in &self.rows {
            let delta = d
                .change_pct
                .map_or_else(|| "-".to_string(), |p| format!("{p:+.1}%"));
            let _ = writeln!(
                out,
                "{:<path_w$}  {:>base_w$}  {:>cur_w$}  {:>8}  {:<4}  {}",
                d.path,
                d.baseline,
                d.current,
                delta,
                d.verdict.label(),
                d.note
            );
        }
        let _ = writeln!(
            out,
            "\n{} field(s) compared, {} warning(s), {} failure(s)",
            self.rows.len(),
            self.warnings(),
            self.failures()
        );
        out
    }
}

/// How a field name is judged.
fn classify(key: &str) -> FieldClass {
    if key == "points" {
        FieldClass::Exact
    } else if key == "speedup_target" {
        // A configured constant, not a measurement.
        FieldClass::Informational
    } else if key.contains("speedup") || key == "points_per_sec" {
        // speedup / best_speedup / best_resonator_speedup_dim_ge_1024 / …
        FieldClass::Throughput
    } else if key.contains("stall") {
        // stall_transfer / stall_dep_wait / … — cycle volumes that must
        // stay bounded: growth past baseline·(1+tolerance) gates.
        FieldClass::BoundedAbove
    } else if key == "meets_target" {
        FieldClass::MeetsTarget
    } else if key == "quick" {
        FieldClass::Quick
    } else {
        FieldClass::Informational
    }
}

enum FieldClass {
    Exact,
    Throughput,
    BoundedAbove,
    MeetsTarget,
    Quick,
    Informational,
}

fn render_value(v: &JsonValue) -> String {
    match v {
        JsonValue::Float(f) => format!("{f:.3}"),
        other => other.render_compact(),
    }
}

fn change_pct(baseline: &JsonValue, current: &JsonValue) -> Option<f64> {
    let (b, c) = (baseline.as_f64()?, current.as_f64()?);
    if b == 0.0 {
        None
    } else {
        Some((c - b) / b * 100.0)
    }
}

/// Compares two parsed benchmark documents and returns the delta rows.
///
/// `name` prefixes every row's path (normally the artifact filename).
#[must_use]
pub fn compare_documents(
    name: &str,
    baseline: &JsonValue,
    current: &JsonValue,
    tolerance: f64,
) -> Vec<Delta> {
    let mut rows = Vec::new();
    walk(name, baseline, current, tolerance, false, &mut rows);
    rows
}

fn push(rows: &mut Vec<Delta>, path: &str, b: &JsonValue, c: &JsonValue, v: Verdict, note: &str) {
    rows.push(Delta {
        path: path.to_string(),
        baseline: render_value(b),
        current: render_value(c),
        change_pct: change_pct(b, c),
        verdict: v,
        note: note.to_string(),
    });
}

fn walk(
    path: &str,
    baseline: &JsonValue,
    current: &JsonValue,
    tolerance: f64,
    in_counters: bool,
    rows: &mut Vec<Delta>,
) {
    match (baseline, current) {
        (JsonValue::Object(b_fields), JsonValue::Object(_)) => {
            for (key, b_val) in b_fields {
                let child = format!("{path}.{key}");
                match current.get(key) {
                    Some(c_val) => {
                        let counters = in_counters || key == "counters";
                        walk(&child, b_val, c_val, tolerance, counters, rows);
                    }
                    None => push(
                        rows,
                        &child,
                        b_val,
                        &JsonValue::Null,
                        Verdict::Fail,
                        "field missing from current run",
                    ),
                }
            }
        }
        (JsonValue::Array(b_items), JsonValue::Array(c_items)) => {
            if b_items.len() != c_items.len() {
                push(
                    rows,
                    path,
                    baseline,
                    current,
                    Verdict::Warn,
                    "array length differs; comparing the common prefix",
                );
            }
            for (i, (b, c)) in b_items.iter().zip(c_items).enumerate() {
                walk(&format!("{path}[{i}]"), b, c, tolerance, in_counters, rows);
            }
        }
        _ => leaf(path, baseline, current, tolerance, in_counters, rows),
    }
}

fn leaf(
    path: &str,
    baseline: &JsonValue,
    current: &JsonValue,
    tolerance: f64,
    in_counters: bool,
    rows: &mut Vec<Delta>,
) {
    let key = path.rsplit('.').next().unwrap_or(path);
    if in_counters {
        // Telemetry counter liveness: nonzero in the baseline means the
        // instrumented path must still be exercised.
        let b = baseline.as_u64().unwrap_or(0);
        let c = current.as_u64().unwrap_or(0);
        if b > 0 && c == 0 {
            push(
                rows,
                path,
                baseline,
                current,
                Verdict::Fail,
                "counter went silent (instrumented path no longer runs)",
            );
        } else {
            push(rows, path, baseline, current, Verdict::Pass, "");
        }
        return;
    }
    match classify(key) {
        FieldClass::Exact => {
            if baseline == current {
                push(rows, path, baseline, current, Verdict::Pass, "");
            } else {
                push(
                    rows,
                    path,
                    baseline,
                    current,
                    Verdict::Fail,
                    "deterministic field changed",
                );
            }
        }
        FieldClass::Throughput => match (baseline.as_f64(), current.as_f64()) {
            (Some(b), Some(c)) => {
                let floor = b * (1.0 - tolerance);
                if c < floor {
                    push(
                        rows,
                        path,
                        baseline,
                        current,
                        Verdict::Fail,
                        &format!("below tolerance floor {floor:.3}"),
                    );
                } else {
                    push(rows, path, baseline, current, Verdict::Pass, "");
                }
            }
            _ => push(
                rows,
                path,
                baseline,
                current,
                Verdict::Warn,
                "non-numeric throughput field",
            ),
        },
        FieldClass::BoundedAbove => match (baseline.as_f64(), current.as_f64()) {
            (Some(b), Some(c)) => {
                let ceiling = b * (1.0 + tolerance);
                if c > ceiling {
                    push(
                        rows,
                        path,
                        baseline,
                        current,
                        Verdict::Fail,
                        &format!("above tolerance ceiling {ceiling:.3}"),
                    );
                } else {
                    push(rows, path, baseline, current, Verdict::Pass, "");
                }
            }
            _ => push(
                rows,
                path,
                baseline,
                current,
                Verdict::Warn,
                "non-numeric bounded field",
            ),
        },
        FieldClass::MeetsTarget => {
            let regressed = baseline.as_bool() == Some(true) && current.as_bool() == Some(false);
            if regressed {
                push(
                    rows,
                    path,
                    baseline,
                    current,
                    Verdict::Fail,
                    "speedup target no longer met",
                );
            } else {
                push(rows, path, baseline, current, Verdict::Pass, "");
            }
        }
        FieldClass::Quick => {
            if baseline == current {
                push(rows, path, baseline, current, Verdict::Pass, "");
            } else {
                push(
                    rows,
                    path,
                    baseline,
                    current,
                    Verdict::Warn,
                    "quick-mode mismatch between baseline and current",
                );
            }
        }
        FieldClass::Informational => push(rows, path, baseline, current, Verdict::Info, ""),
    }
}

/// Compares every `BENCH_*.json` in `baseline_dir` against its
/// counterpart in `current_dir`.
///
/// # Errors
///
/// Returns an error string when a directory is unreadable, a baseline
/// artifact is missing from the current directory, or a document fails
/// to parse — all of which mean the gate cannot render a verdict at all
/// (distinct from a comparison failure, which is reported in the
/// [`GateReport`]).
pub fn compare_dirs(
    baseline_dir: &Path,
    current_dir: &Path,
    tolerance: f64,
) -> Result<GateReport, String> {
    let mut names: Vec<String> = fs::read_dir(baseline_dir)
        .map_err(|e| format!("read {}: {e}", baseline_dir.display()))?
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            (name.starts_with("BENCH_") && name.ends_with(".json")).then_some(name)
        })
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines in {}",
            baseline_dir.display()
        ));
    }

    let mut report = GateReport::default();
    for name in &names {
        let b_path = baseline_dir.join(name);
        let c_path = current_dir.join(name);
        let b_text =
            fs::read_to_string(&b_path).map_err(|e| format!("read {}: {e}", b_path.display()))?;
        let c_text =
            fs::read_to_string(&c_path).map_err(|e| format!("read {}: {e}", c_path.display()))?;
        let b_doc =
            JsonValue::parse(&b_text).map_err(|e| format!("parse {}: {e}", b_path.display()))?;
        let c_doc =
            JsonValue::parse(&c_text).map_err(|e| format!("parse {}: {e}", c_path.display()))?;
        report
            .rows
            .extend(compare_documents(name, &b_doc, &c_doc, tolerance));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(speedup: f64, points: u64, meets: bool, counter: u64) -> JsonValue {
        JsonValue::parse(&format!(
            r#"{{
                "bench": "t", "quick": true, "points": {points},
                "parallel": {{ "wall_s": 0.5, "speedup": {speedup} }},
                "meets_target": {meets},
                "telemetry": {{ "counters": {{ "dse.cache_hits": {counter} }} }}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let d = doc(4.0, 100, true, 7);
        let rows = compare_documents("b.json", &d, &d, 0.5);
        assert!(rows.iter().all(|r| r.verdict != Verdict::Fail));
    }

    #[test]
    fn speedup_regression_fails_and_improvement_passes() {
        let base = doc(4.0, 100, true, 7);
        let slow = doc(1.0, 100, true, 7);
        let rows = compare_documents("b.json", &base, &slow, 0.5);
        assert!(rows
            .iter()
            .any(|r| r.verdict == Verdict::Fail && r.path.ends_with("speedup")));
        let fast = doc(9.0, 100, true, 7);
        let rows = compare_documents("b.json", &base, &fast, 0.5);
        assert!(rows.iter().all(|r| r.verdict != Verdict::Fail));
    }

    #[test]
    fn boundary_sits_exactly_on_the_tolerance_floor() {
        let base = doc(4.0, 100, true, 7);
        // Exactly baseline·(1−tol) is allowed; strictly below fails.
        let at_floor = doc(2.0, 100, true, 7);
        assert!(compare_documents("b", &base, &at_floor, 0.5)
            .iter()
            .all(|r| r.verdict != Verdict::Fail));
        let below = doc(1.99, 100, true, 7);
        assert!(compare_documents("b", &base, &below, 0.5)
            .iter()
            .any(|r| r.verdict == Verdict::Fail));
    }

    #[test]
    fn point_count_drift_fails() {
        let rows = compare_documents("b", &doc(4.0, 100, true, 7), &doc(4.0, 101, true, 7), 0.5);
        assert!(rows
            .iter()
            .any(|r| r.verdict == Verdict::Fail && r.path.ends_with("points")));
    }

    #[test]
    fn silent_counter_fails_but_zero_baseline_does_not() {
        let rows = compare_documents("b", &doc(4.0, 100, true, 7), &doc(4.0, 100, true, 0), 0.5);
        assert!(rows
            .iter()
            .any(|r| r.verdict == Verdict::Fail && r.path.contains("counters")));
        let rows = compare_documents("b", &doc(4.0, 100, true, 0), &doc(4.0, 100, true, 0), 0.5);
        assert!(rows.iter().all(|r| r.verdict != Verdict::Fail));
    }

    #[test]
    fn stall_growth_fails_and_reduction_passes() {
        let doc_with_stall = |stall: u64| {
            JsonValue::parse(&format!(
                r#"{{ "workloads": [ {{ "name": "NVSA", "stall_transfer": {stall} }} ] }}"#
            ))
            .unwrap()
        };
        let base = doc_with_stall(1000);
        // 1000·(1+0.5) = 1500 is the ceiling: at it passes, above fails.
        let at_ceiling = doc_with_stall(1500);
        assert!(compare_documents("b", &base, &at_ceiling, 0.5)
            .iter()
            .all(|r| r.verdict != Verdict::Fail));
        let above = doc_with_stall(1501);
        assert!(compare_documents("b", &base, &above, 0.5)
            .iter()
            .any(|r| r.verdict == Verdict::Fail && r.path.ends_with("stall_transfer")));
        let reduced = doc_with_stall(0);
        assert!(compare_documents("b", &base, &reduced, 0.5)
            .iter()
            .all(|r| r.verdict != Verdict::Fail));
    }

    #[test]
    fn stall_counters_inside_telemetry_keep_liveness_semantics() {
        // `telemetry.counters.sim.stall_*` go through the counter rule
        // (liveness), not the bounded-above rule: growth there is fine.
        let doc_with_counter = |v: u64| {
            JsonValue::parse(&format!(
                r#"{{ "telemetry": {{ "counters": {{ "sim.stall_transfer": {v} }} }} }}"#
            ))
            .unwrap()
        };
        let rows = compare_documents("b", &doc_with_counter(10), &doc_with_counter(10_000), 0.5);
        assert!(rows.iter().all(|r| r.verdict != Verdict::Fail));
        let rows = compare_documents("b", &doc_with_counter(10), &doc_with_counter(0), 0.5);
        assert!(rows.iter().any(|r| r.verdict == Verdict::Fail));
    }

    #[test]
    fn meets_target_only_fails_on_true_to_false() {
        let rows = compare_documents("b", &doc(4.0, 100, true, 7), &doc(4.0, 100, false, 7), 0.5);
        assert!(rows
            .iter()
            .any(|r| r.verdict == Verdict::Fail && r.path.ends_with("meets_target")));
        let rows = compare_documents("b", &doc(4.0, 100, false, 7), &doc(4.0, 100, false, 7), 0.5);
        assert!(rows.iter().all(|r| r.verdict != Verdict::Fail));
    }

    #[test]
    fn missing_field_fails_and_wall_time_is_informational() {
        let base = doc(4.0, 100, true, 7);
        let mut trimmed = base.clone();
        if let JsonValue::Object(fields) = &mut trimmed {
            fields.retain(|(k, _)| k != "parallel");
        }
        let rows = compare_documents("b", &base, &trimmed, 0.5);
        assert!(rows
            .iter()
            .any(|r| r.verdict == Verdict::Fail && r.note.contains("missing")));

        // wall_s regressions never gate.
        let slow_wall = JsonValue::parse(&base.render_compact().replace("0.5", "500.0")).unwrap();
        let rows = compare_documents("b", &base, &slow_wall, 0.5);
        assert!(rows
            .iter()
            .all(|r| !(r.verdict == Verdict::Fail && r.path.ends_with("wall_s"))));
    }

    #[test]
    fn report_table_renders_and_counts() {
        let base = doc(4.0, 100, true, 7);
        let bad = doc(0.5, 100, true, 7);
        let report = GateReport {
            rows: compare_documents("b.json", &base, &bad, 0.5),
        };
        assert!(!report.passed());
        let table = report.render_table();
        assert!(table.contains("FAIL"));
        assert!(table.contains("failure(s)"));
    }
}
