//! Mapping-selection helpers shared by the experiment binaries.
//!
//! Extracted from `fig6_ablation` so that `simtrace` (and any future
//! harness) picks mappings the same way the ablation study does: a best
//! *static* Phase-I partition selected by pipelined scheduled cycles,
//! optionally refined per node Phase-II style against the pooled
//! scheduler. All helpers are parameterized on [`SimOptions`] so callers
//! control the SIMD width and transfer model.

use nsflow_arch::{ArrayConfig, Mapping};
use nsflow_dse::{phase2, DseOptions};
use nsflow_graph::DataflowGraph;
use nsflow_sim::schedule::{self, SimOptions};

/// Pooled scheduled cycles of a mapping — the objective every helper
/// here minimizes (the pipelined steady state is what folding buys).
#[must_use]
pub fn scheduled_cycles(
    graph: &DataflowGraph,
    cfg: &ArrayConfig,
    mapping: &Mapping,
    opts: &SimOptions,
) -> u64 {
    schedule::run_pooled(graph, cfg, mapping, opts).total_cycles()
}

/// Best static (Phase-I style) mapping of the fixed AdArray, selected by
/// *scheduled* cycles: sequential mode plus every uniform `n_l/(n−n_l)`
/// split.
#[must_use]
pub fn best_static_mapping(graph: &DataflowGraph, cfg: &ArrayConfig, opts: &SimOptions) -> Mapping {
    let nn = graph.trace().nn_nodes().len();
    let vsa = graph.trace().vsa_nodes().len();
    let n = cfg.n_subarrays();
    let mut best = Mapping::sequential(nn, vsa, n);
    let mut best_t = scheduled_cycles(graph, cfg, &best, opts);
    if nn > 0 && vsa > 0 {
        for nl in 1..n {
            let m = Mapping::uniform(nn, vsa, nl, n - nl);
            let t = scheduled_cycles(graph, cfg, &m, opts);
            if t < best_t {
                best_t = t;
                best = m;
            }
        }
    }
    best
}

/// Phase-II-style per-node refinement evaluated against the pooled
/// scheduler: greedily adjust each node's sub-array allocation by ±1 and
/// keep any move that shortens the schedule (at most 6 sweeps).
#[must_use]
pub fn refine_per_node(
    graph: &DataflowGraph,
    cfg: &ArrayConfig,
    start: &Mapping,
    opts: &SimOptions,
) -> Mapping {
    let n = cfg.n_subarrays();
    let mut best = start.clone();
    let mut best_t = scheduled_cycles(graph, cfg, &best, opts);
    for _sweep in 0..6 {
        let mut improved = false;
        for field in 0..2 {
            let len = if field == 0 {
                best.n_l.len()
            } else {
                best.n_v.len()
            };
            for i in 0..len {
                for delta in [1i64, -1] {
                    let mut cand = best.clone();
                    let slot = if field == 0 {
                        &mut cand.n_l[i]
                    } else {
                        &mut cand.n_v[i]
                    };
                    let new = *slot as i64 + delta;
                    if new < 1 || new > n as i64 {
                        continue;
                    }
                    *slot = new as usize;
                    let t = scheduled_cycles(graph, cfg, &cand, opts);
                    if t < best_t {
                        best_t = t;
                        best = cand;
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    best
}

/// The full two-phase pipeline: best static partition, Algorithm-1
/// analytical refinement (kept only if it does not lengthen the pooled
/// schedule), then the per-node greedy polish.
#[must_use]
pub fn two_phase_mapping(graph: &DataflowGraph, cfg: &ArrayConfig, opts: &SimOptions) -> Mapping {
    let static_mapping = best_static_mapping(graph, cfg, opts);
    let p1_cycles = scheduled_cycles(graph, cfg, &static_mapping, opts);
    let dse_opts = DseOptions {
        iter_max: 16,
        simd_lanes: opts.simd_lanes,
        ..DseOptions::default()
    };
    let (alg1, _) = phase2(graph, cfg, &static_mapping, &dse_opts);
    let seed = if scheduled_cycles(graph, cfg, &alg1, opts) <= p1_cycles {
        alg1
    } else {
        static_mapping
    };
    refine_per_node(graph, cfg, &seed, opts)
}
