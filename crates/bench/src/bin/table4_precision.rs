//! Tab. IV — NSFlow algorithm-optimization performance: reasoning accuracy
//! of the executable VSA pipeline across precisions on the three synthetic
//! suites, plus the model memory row.
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin table4_precision
//! ```

use nsflow_bench::write_csv;
use nsflow_workloads::accuracy::{evaluate, model_memory_bytes, EvalConfig, Precision};
use nsflow_workloads::suites::Suite;
use nsflow_workloads::traces;

/// The paper's Tab. IV reference values (percent).
fn paper_accuracy(suite: Suite, label: &str) -> f64 {
    match (suite, label) {
        (Suite::RavenLike, "FP32") => 98.9,
        (Suite::RavenLike, "FP16") => 98.9,
        (Suite::RavenLike, "INT8") => 98.7,
        (Suite::RavenLike, "MP") => 98.0,
        (Suite::RavenLike, "INT4") => 92.5,
        (Suite::IRavenLike, "FP32") => 99.0,
        (Suite::IRavenLike, "FP16") => 98.9,
        (Suite::IRavenLike, "INT8") => 98.8,
        (Suite::IRavenLike, "MP") => 98.1,
        (Suite::IRavenLike, "INT4") => 91.3,
        (Suite::PgmLike, "FP32") => 68.7,
        (Suite::PgmLike, "FP16") => 68.6,
        (Suite::PgmLike, "INT8") => 68.4,
        (Suite::PgmLike, "MP") => 67.4,
        (Suite::PgmLike, "INT4") => 59.9,
        _ => f64::NAN,
    }
}

fn main() {
    let cfg = EvalConfig { tasks: 200 };
    let columns = Precision::table4_columns();

    println!(
        "Tab. IV — reasoning accuracy, {} tasks per cell (ours / paper):\n",
        cfg.tasks
    );
    print!("{:<14}", "suite");
    for p in &columns {
        print!(" {:>16}", p.label);
    }
    println!();

    let mut rows = Vec::new();
    for suite in Suite::all() {
        print!("{:<14}", suite.name());
        let mut cells = vec![suite.name().to_string()];
        for p in &columns {
            let report = evaluate(suite, *p, &cfg, 2025);
            let ours = 100.0 * report.accuracy;
            let theirs = paper_accuracy(suite, p.label);
            print!(" {:>7.1}% /{:>5.1}%", ours, theirs);
            cells.push(format!("{ours:.2}"));
        }
        println!();
        rows.push(cells.join(","));
    }

    // Memory row: the NVSA workload model's footprint per precision.
    let w = traces::nvsa();
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    print!("{:<14}", "memory (MB)");
    let mut mem_cells = vec!["memory_mb".to_string()];
    for p in &columns {
        let m = mb(model_memory_bytes(w.nn_params, w.symbolic_elems, *p));
        print!(" {:>16.1}", m);
        mem_cells.push(format!("{m:.2}"));
    }
    println!();
    let fp32 = model_memory_bytes(w.nn_params, w.symbolic_elems, Precision::fp32());
    let mp = model_memory_bytes(w.nn_params, w.symbolic_elems, Precision::mixed());
    println!(
        "\nmixed precision memory saving: {:.1}× (paper: 5.8×, 32 MB → 5.5 MB)",
        fp32 as f64 / mp as f64
    );
    rows.push(mem_cells.join(","));

    write_csv(
        "table4_precision.csv",
        "suite,fp32,fp16,int8,mp,int4",
        &rows,
    );
}
