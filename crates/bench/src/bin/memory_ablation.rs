//! Extension experiment — re-organizable memory ablation.
//!
//! The paper argues its adaptive, double-buffered memory "eliminates
//! unnecessary transactions and stalls" (Sec. V-A) but does not quantify
//! it. This harness does: the same NVSA design runs with the double-
//! buffered memory system and with a single-buffered baseline (every
//! weight/vector load serializes with compute), across off-chip bandwidth
//! levels.
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin memory_ablation
//! ```

use nsflow_arch::memory::TransferModel;
use nsflow_bench::write_csv;
use nsflow_core::NsFlow;
use nsflow_sim::schedule::SimOptions;
use nsflow_workloads::traces;

fn main() {
    let workload = traces::nvsa();
    let design = NsFlow::new()
        .compile(workload.trace)
        .expect("NVSA fits the U250");
    let dep = design.deploy();
    let lanes = design.config.simd_lanes;

    println!("Re-organizable memory ablation — NVSA on the generated design:\n");
    println!(
        "{:>18} {:>16} {:>16} {:>10}",
        "off-chip B/cycle", "double-buffered", "single-buffered", "stall cost"
    );
    let mut rows = Vec::new();
    for bpc in [256.0f64, 64.0, 16.0, 4.0] {
        let db = dep.run_with(&SimOptions {
            simd_lanes: lanes,
            transfer: Some(TransferModel::new(bpc)),
        });
        let sb = dep.run_with(&SimOptions {
            simd_lanes: lanes,
            transfer: Some(TransferModel::single_buffered(bpc)),
        });
        let overhead = 100.0 * (sb.cycles as f64 - db.cycles as f64) / db.cycles as f64;
        println!(
            "{bpc:>18} {:>16} {:>16} {:>9.1}%",
            db.cycles, sb.cycles, overhead
        );
        rows.push(format!("{bpc},{},{},{overhead:.2}", db.cycles, sb.cycles));
    }
    println!("\ndouble buffering hides loads behind compute; the gap widens as off-chip");
    println!("bandwidth shrinks — the regime FPGAs actually operate in.");
    write_csv(
        "memory_ablation.csv",
        "bytes_per_cycle,double_buffered_cycles,single_buffered_cycles,overhead_pct",
        &rows,
    );
}
