//! Extension experiment — datacenter vs edge deployment.
//!
//! The paper notes "NSFlow framework can be deployed on any type of FPGA
//! board" but evaluates only the U250. This harness compiles every
//! workload for both the U250 and the embedded ZCU104, comparing the
//! DSE-chosen designs, utilization, latency and batch throughput.
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin edge_deployment
//! ```

use nsflow_bench::{fmt_seconds, write_csv};
use nsflow_core::{CompileError, NsFlow};
use nsflow_fpga::FpgaDevice;
use nsflow_workloads::traces;

fn main() {
    println!("Deployment portability — U250 (datacenter) vs ZCU104 (edge):\n");
    println!(
        "{:<10} {:<10} {:>12} {:>8} {:>7} {:>12} {:>14}",
        "workload", "device", "AdArray", "PEs", "DSP", "latency", "throughput"
    );
    let mut rows = Vec::new();
    for workload in traces::all() {
        for device in [FpgaDevice::u250(), FpgaDevice::zcu104()] {
            let short = if device.name().contains("U250") {
                "U250"
            } else {
                "ZCU104"
            };
            match NsFlow::new()
                .with_device(device)
                .compile(workload.trace.clone())
            {
                Ok(design) => {
                    let report = design.deploy().run();
                    let batch = design.deploy().run_batch(16);
                    println!(
                        "{:<10} {:<10} {:>12} {:>8} {:>6.0}% {:>12} {:>11.1}/s",
                        workload.name,
                        short,
                        design.array().to_string(),
                        design.array().total_pes(),
                        design.utilization.dsp_pct,
                        fmt_seconds(report.seconds),
                        batch.throughput_per_s
                    );
                    rows.push(format!(
                        "{},{},{},{},{:.1},{},{:.2}",
                        workload.name,
                        short,
                        design.array(),
                        design.array().total_pes(),
                        design.utilization.dsp_pct,
                        report.seconds,
                        batch.throughput_per_s
                    ));
                }
                Err(CompileError::DeviceTooSmall(e)) => {
                    println!("{:<10} {:<10} does not fit: {e}", workload.name, short);
                    rows.push(format!("{},{},unfit,,,,", workload.name, short));
                }
                Err(e) => panic!("unexpected compile error: {e}"),
            }
        }
    }
    println!("\nthe DSE scales the same template down to the edge part: smaller arrays,");
    println!("longer latency, but the full workload still deploys without manual work.");
    write_csv(
        "edge_deployment.csv",
        "workload,device,array,pes,dsp_pct,latency_s,throughput_per_s",
        &rows,
    );
}
