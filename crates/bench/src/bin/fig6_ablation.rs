//! Fig. 6 — ablation study: a fixed NSFlow-generated architecture
//! (32×32×8) with and without the proposed mapping/hardware techniques,
//! against a traditional systolic array of the same PE count, across
//! workloads with varying vector-symbolic data proportions (ResNet-18 +
//! scaled VSA stage).
//!
//! Variants:
//! - **traditional SA**: one monolithic 128×64 array (same 8192 PEs), no
//!   folding, no circular-convolution streaming — VSA ops lowered to
//!   GEMMs against materialized circulants,
//! - **Phase I** (array folding only): best *static* partition of the
//!   32×32×8 AdArray,
//! - **two-phase** (folding + Phase-II per-node mapping refinement).
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin fig6_ablation
//! ```

use nsflow_arch::{analytical, ArrayConfig};

use nsflow_bench::{mapping, write_csv};
use nsflow_graph::DataflowGraph;
use nsflow_sim::schedule::SimOptions;
use nsflow_trace::{ExecutionTrace, OpKind};
use nsflow_workloads::traces;

/// Scheduler options shared by every variant (no transfer stalls in the
/// Fig. 6 comparison; both designs double-buffer identically).
fn sim_options() -> SimOptions {
    SimOptions {
        simd_lanes: 64,
        transfer: None,
    }
}

/// Cycles on the "normal TPU design": the same 8192 PEs permanently
/// merged into one weight-stationary array — no folding, no
/// circular-convolution streaming, no loop overlap. Circular convolutions
/// are lowered to GEMMs against circulant matrices that an internal DMA
/// engine materializes at 256 B/cycle (a generous 2048-bit on-chip bus);
/// each bound pair needs its own circulant, so the materialized traffic
/// is `n_vec·d²` bytes per kernel. Pointwise ops pipeline with the array
/// (same vector unit both designs have) and contribute no serial time.
fn traditional_sa_cycles(trace: &ExecutionTrace, cfg: &ArrayConfig) -> u64 {
    let n = cfg.n_subarrays();
    let mut per_loop = 0u64;
    for op in trace.ops() {
        per_loop += match *op.kind() {
            OpKind::Gemm { m, n: on, k } => analytical::nn_layer_cycles(cfg, n, m, on, k),
            OpKind::VsaConv { n_vec, dim } => {
                let gemm = analytical::nn_layer_cycles(cfg, n, n_vec, dim, dim);
                let circulant_bytes = (n_vec * dim * dim) as u64;
                gemm + circulant_bytes.div_ceil(256)
            }
            _ => 0,
        };
    }
    per_loop * trace.loop_count() as u64
}

fn main() {
    let cfg = ArrayConfig::new(32, 32, 8).expect("the paper's fig. 6 architecture");
    let ratios = [0.005, 0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8];

    println!("Fig. 6 — runtime on a 32×32×8 AdArray vs symbolic memory proportion:\n");
    println!(
        "{:>8} {:>9} {:>14} {:>13} {:>13} {:>9} {:>11}",
        "target", "achieved", "trad. SA", "Phase I", "two-phase", "speedup", "P2 gain"
    );

    let mut rows = Vec::new();
    for &ratio in &ratios {
        let (trace, achieved) = traces::nvsa_like_with_symbolic_ratio(ratio);
        let baseline = traditional_sa_cycles(&trace, &cfg);
        let graph = DataflowGraph::from_trace(trace);
        let opts = sim_options();

        let static_mapping = mapping::best_static_mapping(&graph, &cfg, &opts);
        let p1_cycles = mapping::scheduled_cycles(&graph, &cfg, &static_mapping, &opts);

        // Phase II: Algorithm-1 analytical refinement, then the per-node
        // pooled-objective polish (the shared two-phase pipeline).
        let refined = mapping::two_phase_mapping(&graph, &cfg, &opts);
        let p2_cycles = mapping::scheduled_cycles(&graph, &cfg, &refined, &opts);

        let speedup = baseline as f64 / p2_cycles as f64;
        let p2_gain = 100.0 * (p1_cycles as f64 - p2_cycles as f64) / p1_cycles as f64;
        println!(
            "{:>7.1}% {:>8.1}% {:>14} {:>13} {:>13} {:>8.2}× {:>10.1}%",
            100.0 * ratio,
            100.0 * achieved,
            baseline,
            p1_cycles,
            p2_cycles,
            speedup,
            p2_gain
        );
        rows.push(format!(
            "{ratio},{achieved:.4},{baseline},{p1_cycles},{p2_cycles},{speedup:.3},{p2_gain:.2}"
        ));
    }

    println!("\npaper shape: slight overhead when symbolic <1%, speedup grows with symbolic");
    println!("share (> 7× at 80% symbolic memory); Phase II adds up to ~44% near 20%.");
    write_csv(
        "fig6_ablation.csv",
        "target_ratio,achieved_ratio,traditional_sa_cycles,phase1_cycles,two_phase_cycles,speedup,phase2_gain_pct",
        &rows,
    );
}
