//! DSE sweep throughput: serial seed implementation vs memoized cycle
//! tables vs the threaded sweep, on the NVSA workload at growing PE
//! budgets.
//!
//! For each `max_pes ∈ {2¹⁰, 2¹², 2¹⁴}` the full uniform design space is
//! enumerated three ways — all three must agree bit-for-bit:
//!
//! - **serial**: [`exhaustive_uniform_reference`], the original
//!   trace-walking implementation (the baseline),
//! - **cached**: [`exhaustive_uniform`] pinned to one thread — isolates
//!   the cycle-table memoization win,
//! - **parallel**: [`exhaustive_uniform`] at the host's available
//!   parallelism — adds the threaded `(H, W)` sweep on top.
//!
//! Results go to stdout, `target/experiments/dse_throughput.csv`, and a
//! machine-readable `BENCH_dse.json` in the working directory. Pass
//! `--quick` to run only the smallest budget (CI smoke).
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin dse_throughput
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use nsflow_bench::{fmt_seconds, write_csv};
use nsflow_dse::exhaustive::{exhaustive_uniform, exhaustive_uniform_reference, ExhaustiveResult};
use nsflow_dse::DseOptions;
use nsflow_graph::DataflowGraph;
use nsflow_workloads::traces;

/// The speedup the parallel+memoized sweep must reach over the serial
/// seed at the largest budget.
const SPEEDUP_TARGET: f64 = 4.0;

/// Minimum measured wall time per mode; short sweeps are repeated until
/// this is reached so points/sec stays stable.
const MIN_WALL: f64 = 0.2;

struct Mode {
    name: &'static str,
    wall: f64,
    points_per_sec: f64,
}

struct Run {
    max_pes: usize,
    points: usize,
    modes: Vec<Mode>,
}

fn options(max_pes: usize) -> DseOptions {
    DseOptions {
        max_pes,
        // Wider geometry menu than the defaults so the sweep grows with
        // the budget; `h*w ≤ max_pes` prunes what does not fit.
        heights: vec![2, 4, 8, 16, 32, 64, 128, 256],
        widths: vec![2, 4, 8, 16, 32, 64, 128, 256],
        max_subarrays: 32,
        ..DseOptions::default()
    }
}

/// Times `f` over enough repetitions to accumulate [`MIN_WALL`] seconds,
/// returning the per-iteration wall time and the last result.
fn time_mode<F: FnMut() -> ExhaustiveResult>(mut f: F) -> (f64, ExhaustiveResult) {
    let _warmup = f();
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        let result = f();
        iters += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= MIN_WALL || iters >= 200 {
            return (elapsed / f64::from(iters), result);
        }
    }
}

fn bench_budget(graph: &DataflowGraph, max_pes: usize, threads: usize) -> Run {
    let opts = options(max_pes);
    let serial_opts = opts.clone();
    let cached_opts = DseOptions {
        threads: Some(1),
        ..opts.clone()
    };
    let parallel_opts = DseOptions {
        threads: None,
        ..opts
    };

    let (serial_wall, serial) = time_mode(|| exhaustive_uniform_reference(graph, &serial_opts));
    let (cached_wall, cached) = time_mode(|| exhaustive_uniform(graph, &cached_opts));
    let (parallel_wall, parallel) = time_mode(|| exhaustive_uniform(graph, &parallel_opts));

    // The whole point of the engine: same optimum, same tie-breaking,
    // same point count — only the wall time changes.
    for (name, r) in [("cached", &cached), ("parallel", &parallel)] {
        assert_eq!(r.config, serial.config, "{name} diverged on config");
        assert_eq!(r.mapping, serial.mapping, "{name} diverged on mapping");
        assert_eq!(r.t_loop, serial.t_loop, "{name} diverged on t_loop");
        assert_eq!(r.points, serial.points, "{name} diverged on points");
    }

    let points = serial.points;
    let mode = |name, wall: f64| Mode {
        name,
        wall,
        points_per_sec: points as f64 / wall,
    };
    println!(
        "max_pes=2^{:<2} points={points:>6}  serial {:>10}  cached {:>10} ({:>5.1}x)  parallel({threads}t) {:>10} ({:>5.1}x)",
        max_pes.ilog2(),
        fmt_seconds(serial_wall),
        fmt_seconds(cached_wall),
        serial_wall / cached_wall,
        fmt_seconds(parallel_wall),
        serial_wall / parallel_wall,
    );
    Run {
        max_pes,
        points,
        modes: vec![
            mode("serial", serial_wall),
            mode("cached", cached_wall),
            mode("parallel", parallel_wall),
        ],
    }
}

fn emit_json(runs: &[Run], threads: usize, quick: bool) {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"dse_throughput\",");
    let _ = writeln!(json, "  \"workload\": \"nvsa\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"parallel_threads\": {threads},");
    let _ = writeln!(json, "  \"speedup_target\": {SPEEDUP_TARGET},");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, run) in runs.iter().enumerate() {
        let serial_wall = run.modes[0].wall;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"max_pes\": {},", run.max_pes);
        let _ = writeln!(json, "      \"points\": {},", run.points);
        for m in &run.modes {
            let _ = writeln!(
                json,
                "      \"{}\": {{ \"wall_s\": {:.6}, \"points_per_sec\": {:.1}, \"speedup\": {:.2} }},",
                m.name,
                m.wall,
                m.points_per_sec,
                serial_wall / m.wall
            );
        }
        let _ = writeln!(json, "      \"best_speedup\": {:.2}", best_speedup(run));
        let _ = writeln!(json, "    }}{}", if i + 1 < runs.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let meets = runs
        .last()
        .is_some_and(|r| !quick && r.max_pes == 1 << 14 && best_speedup(r) >= SPEEDUP_TARGET);
    let _ = writeln!(json, "  \"meets_target\": {meets},");
    json.push_str(&nsflow_bench::telemetry_json_member());
    json.push_str("\n}\n");
    std::fs::write("BENCH_dse.json", &json).expect("write BENCH_dse.json");
    println!("[json] wrote BENCH_dse.json (meets_target: {meets})");
}

fn best_speedup(run: &Run) -> f64 {
    let serial = run.modes[0].wall;
    run.modes[1..]
        .iter()
        .map(|m| serial / m.wall)
        .fold(0.0, f64::max)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Fresh counters so the embedded snapshot covers exactly this run.
    nsflow_telemetry::reset();
    let workload = traces::nvsa();
    let graph = DataflowGraph::from_trace(workload.trace);
    let threads = DseOptions::default().effective_threads();
    let budgets: &[usize] = if quick {
        &[1 << 10]
    } else {
        &[1 << 10, 1 << 12, 1 << 14]
    };

    println!(
        "DSE throughput — workload {} ({} nodes), {} worker thread(s)\n",
        workload.name,
        graph.trace().ops().len(),
        threads
    );

    let runs: Vec<Run> = budgets
        .iter()
        .map(|&m| bench_budget(&graph, m, threads))
        .collect();

    let rows: Vec<String> = runs
        .iter()
        .flat_map(|run| {
            let serial = run.modes[0].wall;
            run.modes.iter().map(move |m| {
                format!(
                    "{},{},{},{:.6},{:.1},{:.2}",
                    run.max_pes,
                    run.points,
                    m.name,
                    m.wall,
                    m.points_per_sec,
                    serial / m.wall
                )
            })
        })
        .collect();
    write_csv(
        "dse_throughput.csv",
        "max_pes,points,mode,wall_s,points_per_sec,speedup",
        &rows,
    );
    if nsflow_telemetry::enabled() {
        let snapshot = nsflow_telemetry::TelemetrySnapshot::capture();
        let hits = snapshot.counter("dse.cache_hits");
        println!(
            "[telemetry] points={} cache_hits={hits} tables_built={}",
            snapshot.counter("dse.points_evaluated"),
            snapshot.counter("dse.tables_built"),
        );
        assert!(
            hits > 0,
            "cycle-table memoizer recorded zero cache hits — the cached sweep is not caching"
        );
    }
    emit_json(&runs, threads, quick);

    if !quick {
        let last = runs.last().expect("at least one budget");
        assert!(
            best_speedup(last) >= SPEEDUP_TARGET,
            "memoized sweep below {SPEEDUP_TARGET}x target at max_pes={}",
            last.max_pes
        );
    }
}
