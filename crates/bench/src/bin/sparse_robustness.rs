//! Extension experiment — why NVSA's sparse block codes quantize so well.
//!
//! Runs the RPM reasoning pipeline twice over the same tasks: once with
//! dense unitary codes (the general VSA family, `crates/workloads/
//! reasoning.rs`) and once with sparse one-hot-per-block codes (NVSA's
//! family, `sparse_reasoning.rs`), sweeping the perception precision.
//! Sparse codes only need each block's argmax to survive quantization, so
//! their INT4 column barely moves — the structural reason behind the
//! paper's near-lossless MP/INT4 symbolic quantization.
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin sparse_robustness
//! ```

use nsflow_bench::write_csv;
use nsflow_tensor::DType;
use nsflow_workloads::raven::{generate, TaskParams};
use nsflow_workloads::reasoning::{PipelineConfig, VsaReasoner};
use nsflow_workloads::sparse_reasoning::{SparsePipelineConfig, SparseReasoner};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TASKS: usize = 100;
const AMBIGUITY: f32 = 0.11;

fn dense_accuracy(dtype: DType, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = PipelineConfig {
        noise_std: 0.01,
        ambiguity_std: AMBIGUITY,
        neural_dtype: dtype,
        symbolic_dtype: dtype,
        ..PipelineConfig::default()
    };
    let reasoner = VsaReasoner::new(3, 8, cfg, &mut rng);
    let mut ok = 0;
    for _ in 0..TASKS {
        let t = generate(&TaskParams::default(), &mut rng);
        if reasoner.solve(&t, &mut rng) == t.answer {
            ok += 1;
        }
    }
    ok as f64 / TASKS as f64
}

fn sparse_accuracy(dtype: DType, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let cfg = SparsePipelineConfig {
        noise_std: 0.05,
        ambiguity_std: AMBIGUITY,
        dtype,
        ..SparsePipelineConfig::default()
    };
    let reasoner = SparseReasoner::new(3, 8, cfg, &mut rng);
    let mut ok = 0;
    for _ in 0..TASKS {
        let t = generate(&TaskParams::default(), &mut rng);
        if reasoner.solve(&t, &mut rng) == t.answer {
            ok += 1;
        }
    }
    ok as f64 / TASKS as f64
}

fn main() {
    println!("Code-family quantization robustness — RAVEN-like, {TASKS} tasks per cell:\n");
    println!(
        "{:>8} {:>16} {:>16}",
        "dtype", "dense unitary", "sparse one-hot"
    );
    let mut rows = Vec::new();
    for dtype in [DType::Fp32, DType::Int8, DType::Int4] {
        let dense = dense_accuracy(dtype, 17);
        let sparse = sparse_accuracy(dtype, 17);
        println!(
            "{:>8} {:>15.1}% {:>15.1}%",
            dtype.to_string(),
            100.0 * dense,
            100.0 * sparse
        );
        rows.push(format!("{dtype},{dense:.4},{sparse:.4}"));
    }
    println!("\nsparse block codes keep their accuracy at INT4 because quantization only");
    println!("has to preserve each block's argmax — the property NVSA's design relies on.");
    write_csv(
        "sparse_robustness.csv",
        "dtype,dense_accuracy,sparse_accuracy",
        &rows,
    );
}
