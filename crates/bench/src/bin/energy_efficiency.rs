//! Extension experiment — energy per inference.
//!
//! The paper reports latency only; its Sec. II-B quotes each baseline's
//! board power (Coral 4 W, TX2 15 W, NX 20 W, 2080 Ti 250 W). This harness
//! combines those with the measured latencies, and estimates the NSFlow
//! design's power from its FPGA resource usage, to produce the natural
//! follow-up metric: joules per reasoning task.
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin energy_efficiency
//! ```

use nsflow_bench::write_csv;
use nsflow_core::NsFlow;
use nsflow_sim::devices::{Device, DeviceModel, DpuLike, TpuLikeArray};
use nsflow_sim::energy::{fpga_watts, DevicePower};
use nsflow_workloads::traces;

fn main() {
    println!("Energy per inference (extension — not in the paper):\n");
    println!(
        "{:<10} {:>14} {:>12} {:>14} {:>14}",
        "workload", "device", "power", "latency", "energy"
    );

    let mut rows = Vec::new();
    for workload in traces::all() {
        let design = NsFlow::new()
            .compile(workload.trace.clone())
            .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
        let report = design.deploy().run();
        let ns_watts = fpga_watts(&design.resources, design.config.freq_hz);
        let ns_energy = ns_watts * report.seconds;
        println!(
            "{:<10} {:>14} {:>10.1} W {:>12.2} ms {:>12.3} J",
            workload.name,
            "NSFlow (U250)",
            ns_watts,
            report.seconds * 1e3,
            ns_energy
        );
        rows.push(format!(
            "{},NSFlow,{ns_watts:.2},{},{ns_energy:.5}",
            workload.name, report.seconds
        ));

        let baselines: Vec<(Box<dyn DeviceModel>, DevicePower)> = vec![
            (Box::new(Device::jetson_tx2()), DevicePower::jetson_tx2()),
            (Box::new(Device::xavier_nx()), DevicePower::xavier_nx()),
            (Box::new(Device::rtx_2080_ti()), DevicePower::rtx_2080_ti()),
            (Box::new(Device::coral_tpu()), DevicePower::coral_tpu()),
            (
                Box::new(TpuLikeArray::new_128x128()),
                DevicePower::tpu_like(),
            ),
            (Box::new(DpuLike::new_b4096()), DevicePower::dpu_like()),
        ];
        let mut best_ratio = f64::INFINITY;
        for (device, power) in &baselines {
            let seconds = device.run(&workload.trace).total_seconds();
            let energy = power.energy_joules(seconds);
            println!(
                "{:<10} {:>14} {:>10.1} W {:>12.2} ms {:>12.3} J   ({:.0}× NSFlow)",
                "",
                device.name().chars().take(14).collect::<String>(),
                power.watts,
                seconds * 1e3,
                energy,
                energy / ns_energy
            );
            best_ratio = best_ratio.min(energy / ns_energy);
            rows.push(format!(
                "{},{},{:.2},{seconds},{energy:.5}",
                workload.name,
                device.name(),
                power.watts
            ));
        }
        println!(
            "{:<10} → NSFlow is ≥{best_ratio:.0}× more energy-efficient than every baseline\n",
            ""
        );
    }
    write_csv(
        "energy_efficiency.csv",
        "workload,device,watts,seconds,joules",
        &rows,
    );
}
