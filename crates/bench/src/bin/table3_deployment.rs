//! Tab. III — design configuration and FPGA deployment of NVSA, MIMONet
//! and LVRF on the AMD U250: the DSE-chosen AdArray geometry, default
//! partition, SIMD size, planned memory blocks and per-resource
//! utilization, side by side with the paper's reported point.
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin table3_deployment
//! ```

use nsflow_bench::write_csv;
use nsflow_core::NsFlow;
use nsflow_workloads::traces;

struct PaperRow {
    config: &'static str,
    partition: &'static str,
    dsp: f64,
    lut: f64,
    ff: f64,
    bram: f64,
    uram: f64,
    lutram: f64,
}

fn paper_row(name: &str) -> Option<PaperRow> {
    match name {
        "NVSA" => Some(PaperRow {
            config: "32,16,16",
            partition: "14:2",
            dsp: 89.0,
            lut: 56.0,
            ff: 60.0,
            bram: 34.0,
            uram: 8.0,
            lutram: 24.0,
        }),
        "MIMONet" => Some(PaperRow {
            config: "32,32,8",
            partition: "6:2",
            dsp: 89.0,
            lut: 44.0,
            ff: 52.0,
            bram: 43.0,
            uram: 10.0,
            lutram: 20.0,
        }),
        "LVRF" => Some(PaperRow {
            config: "32,16,16",
            partition: "14:2",
            dsp: 89.0,
            lut: 56.0,
            ff: 60.0,
            bram: 31.0,
            uram: 7.0,
            lutram: 24.0,
        }),
        _ => None,
    }
}

fn main() {
    println!("Tab. III — design configuration and U250 deployment @ 272 MHz\n");
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    let mut rows = Vec::new();
    for workload in traces::all() {
        let Some(paper) = paper_row(workload.name) else {
            continue;
        };
        let design = NsFlow::new()
            .compile(workload.trace.clone())
            .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
        let u = &design.utilization;
        let m = &design.config.memory;
        let (nl, nv) = design.config.default_partition;

        println!("=== {} ===", workload.name);
        println!(
            "  AdArray (H,W,N): ours {} | paper {}",
            design.array(),
            paper.config
        );
        println!(
            "  default partition: ours {nl}:{nv} | paper {}",
            paper.partition
        );
        println!("  SIMD size: {}", design.config.simd_lanes);
        println!(
            "  memory (MemA1, MemA2, MemB, MemC | cache): {:.2}, {:.2}, {:.2}, {:.2} | {:.2} MB",
            mb(m.mem_a1),
            mb(m.mem_a2),
            mb(m.mem_b),
            mb(m.mem_c),
            mb(m.cache)
        );
        println!("  utilization (ours | paper):");
        for (label, ours, theirs) in [
            ("DSP", u.dsp_pct, paper.dsp),
            ("LUT", u.lut_pct, paper.lut),
            ("FF", u.ff_pct, paper.ff),
            ("BRAM", u.bram_pct, paper.bram),
            ("URAM", u.uram_pct, paper.uram),
            ("LUTRAM", u.lutram_pct, paper.lutram),
        ] {
            println!("    {label:<7} {ours:>5.1}% | {theirs:>4.0}%");
        }
        println!();
        rows.push(format!(
            "{},{},{}:{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1}",
            workload.name,
            design.array(),
            nl,
            nv,
            design.config.simd_lanes,
            mb(m.mem_a1),
            mb(m.mem_a2),
            mb(m.mem_b),
            mb(m.mem_c),
            mb(m.cache),
            u.dsp_pct,
            u.lut_pct,
            u.ff_pct,
            u.bram_pct,
            u.uram_pct,
            u.lutram_pct
        ));
    }
    write_csv(
        "table3_deployment.csv",
        "workload,array,partition,simd,mem_a1_mb,mem_a2_mb,mem_b_mb,mem_c_mb,cache_mb,dsp_pct,lut_pct,ff_pct,bram_pct,uram_pct,lutram_pct",
        &rows,
    );
    println!("note: our DSE optimizes the analytical model, so the chosen (H,W,N) can differ");
    println!("from the paper's point; the resource model itself is validated at the paper's");
    println!("exact configurations in crates/fpga unit tests.");
}
