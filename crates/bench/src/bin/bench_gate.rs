//! Performance-regression gate: compares fresh `BENCH_*.json` artifacts
//! against the committed baselines and exits non-zero on regression.
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin dse_throughput -- --quick
//! cargo run --release -p nsflow-bench --bin kernels_throughput -- --quick
//! cargo run --release -p nsflow-bench --bin bench_gate -- \
//!     --baseline baselines/ --tolerance 0.5
//! ```
//!
//! Flags:
//!
//! - `--baseline <dir>` — directory holding the committed baseline
//!   artifacts (default `baselines`).
//! - `--current <dir>` — directory holding the freshly generated
//!   artifacts (default `.`, where the bench binaries write).
//! - `--tolerance <f>` — relative slack for throughput metrics; `0.5`
//!   means a metric may drop to half its baseline before failing.
//!
//! Comparison semantics live in [`nsflow_bench::gate`].

use std::path::PathBuf;
use std::process::ExitCode;

use nsflow_bench::gate::{compare_dirs, DEFAULT_TOLERANCE};

struct Args {
    baseline: PathBuf,
    current: PathBuf,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: PathBuf::from("baselines"),
        current: PathBuf::from("."),
        tolerance: DEFAULT_TOLERANCE,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")?),
            "--current" => args.current = PathBuf::from(value("--current")?),
            "--tolerance" => {
                let raw = value("--tolerance")?;
                args.tolerance = raw
                    .parse::<f64>()
                    .map_err(|e| format!("--tolerance {raw}: {e}"))?;
                if !(0.0..1.0).contains(&args.tolerance) {
                    return Err(format!(
                        "--tolerance must be in [0, 1), got {}",
                        args.tolerance
                    ));
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "bench_gate: {} vs {} (tolerance {})\n",
        args.baseline.display(),
        args.current.display(),
        args.tolerance
    );
    match compare_dirs(&args.baseline, &args.current, args.tolerance) {
        Ok(report) => {
            print!("{}", report.render_table());
            if report.passed() {
                println!("gate: PASS");
                ExitCode::SUCCESS
            } else {
                println!("gate: FAIL");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}
