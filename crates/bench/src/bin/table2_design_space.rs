//! Tab. II — NSFlow design space: original (exhaustive) size vs the
//! two-phase DAG exploration, at `m = 10` (max 2¹⁰ PEs per the table) and
//! the NVSA workload's actual node counts.
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin table2_design_space
//! ```

use nsflow_bench::write_csv;
use nsflow_dse::{explore, space, DseOptions};
use nsflow_graph::DataflowGraph;
use nsflow_workloads::traces;

fn main() {
    let workload = traces::nvsa();
    let graph = DataflowGraph::from_trace(workload.trace);
    let nn = graph.trace().nn_nodes().len();
    let vsa = graph.trace().vsa_nodes().len();
    let nodes = nn + vsa;

    // Measure the DAG side from an actual exploration run.
    let opts = DseOptions::default();
    let result = explore(&graph, &opts);
    let pruned_pairs = opts
        .heights
        .iter()
        .flat_map(|&h| opts.widths.iter().map(move |&w| (h, w)))
        .filter(|&(h, w)| {
            let ar = h as f64 / w as f64;
            h * w <= opts.max_pes && (0.25..=16.0).contains(&ar)
        })
        .count();

    println!("Tab. II — design-space size (m = 10, {nodes} mapped nodes):\n");
    println!(
        "{:<10} {:>24} {:>22}",
        "", "HW config (H, W, N)", "mapping (N_l, N_v)"
    );
    println!(
        "{:<10} {:>24} {:>22}",
        "original",
        format!("m(m+1)/2 = {}", space::hw_config_count(10)),
        format!("(N−1)^k per N"),
    );
    println!(
        "{:<10} {:>24} {:>22}",
        "DAG",
        format!("{pruned_pairs} pruned pairs"),
        format!("Iter×layers = {}", opts.iter_max * nn),
    );

    let row = space::table2_row(10, nodes, pruned_pairs, 16, opts.iter_max, nn);
    println!("\ntotal design-space size:");
    println!("  original : 10^{:.0}", row.original_log10);
    println!(
        "  DAG      : 10^{:.1}  ({} points actually evaluated in Phase I)",
        row.dag_log10, result.phase1_points
    );
    println!(
        "  reduction: {} orders of magnitude (paper: \"reduced by 100 magnitudes\", 10^300 → 10^3)",
        row.reduction_magnitudes() as u64
    );

    write_csv(
        "table2_design_space.csv",
        "m,nodes,original_log10,dag_log10,reduction_magnitudes,phase1_points",
        &[format!(
            "10,{nodes},{:.1},{:.2},{:.1},{}",
            row.original_log10,
            row.dag_log10,
            row.reduction_magnitudes(),
            result.phase1_points
        )],
    );
}
