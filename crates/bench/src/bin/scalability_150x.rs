//! Abstract claim — "only 4× runtime increase when symbolic workloads
//! scale by 150×": sweep the symbolic scale of an NVSA-like workload and
//! measure NSFlow end-to-end cycles (with the DSE re-run per point, as
//! the framework would) against a TPU-like baseline.
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin scalability_150x
//! ```

use nsflow_bench::{fmt_seconds, write_csv};
use nsflow_core::NsFlow;
use nsflow_sim::devices::{DeviceModel, TpuLikeArray};
use nsflow_workloads::traces;

fn main() {
    println!("Scalability — symbolic workload scaled ×1 … ×150 (NN fixed):\n");
    println!(
        "{:>6} {:>14} {:>9} {:>14} {:>9}",
        "scale", "NSFlow", "vs ×1", "TPU-like", "vs ×1"
    );
    let tpu = TpuLikeArray::new_128x128();
    let mut rows = Vec::new();
    let mut ns_base = None;
    let mut tpu_base = None;
    for scale in [1usize, 2, 5, 10, 20, 50, 100, 150] {
        let trace = traces::nvsa_scaled_symbolic(scale);
        let design = NsFlow::new().compile(trace.clone()).expect("fits the U250");
        let report = design.deploy().run();
        let tpu_s = tpu.run(&trace).total_seconds();
        let nb = *ns_base.get_or_insert(report.seconds);
        let tb = *tpu_base.get_or_insert(tpu_s);
        println!(
            "{:>5}× {:>14} {:>8.2}× {:>14} {:>8.1}×",
            scale,
            fmt_seconds(report.seconds),
            report.seconds / nb,
            fmt_seconds(tpu_s),
            tpu_s / tb
        );
        rows.push(format!(
            "{scale},{},{:.4},{},{:.4}",
            report.seconds,
            report.seconds / nb,
            tpu_s,
            tpu_s / tb
        ));
    }
    println!("\npaper: ~4× runtime increase at 150× symbolic scale on NSFlow;");
    println!("a traditional accelerator grows near-linearly with the symbolic load.");
    write_csv(
        "scalability_150x.csv",
        "scale,nsflow_s,nsflow_rel,tpu_like_s,tpu_like_rel",
        &rows,
    );
}
