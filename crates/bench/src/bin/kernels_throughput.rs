//! VSA/NN kernel-engine throughput: reference kernels vs the
//! spectral-cached, thread-parallel engine.
//!
//! Three kernel families are measured, each against its reference oracle
//! with an equivalence assertion (the engine's whole contract is "same
//! answer, less time"):
//!
//! - **resonator** (the headline): end-to-end [`Resonator::factorize`]
//!   (O(d²) direct convolutions per factor update) vs
//!   [`SpectralResonator::factorize`] (cached spectra, one inverse FFT
//!   per update) on three-factor unitary codebooks at growing dimension.
//!   Recovered indices must match exactly.
//! - **gemm**: the reference `matmul` vs the blocked/threaded
//!   `matmul_fast`, bit-identical by construction.
//! - **bind/cleanup**: direct blockwise convolution vs the FFT fast
//!   path, and the reference codebook similarity scan vs the
//!   precomputed-matrix scan (bit-identical).
//!
//! Results go to stdout, `target/experiments/kernels_throughput.csv`,
//! and a machine-readable `BENCH_kernels.json` in the working directory.
//! Pass `--quick` to run only the smallest geometry (CI smoke).
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin kernels_throughput
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use nsflow_bench::{fmt_seconds, write_csv};
use nsflow_nn::gemm;
use nsflow_tensor::par::{available_threads, KernelOptions};
use nsflow_vsa::engine::{SpectralCodebook, SpectralResonator};
use nsflow_vsa::resonator::{Resonator, ResonatorConfig};
use nsflow_vsa::{fft, ops, Codebook};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The end-to-end factorization speedup the spectral engine must reach
/// over the reference resonator at total dimension ≥ 1024.
const SPEEDUP_TARGET: f64 = 8.0;

/// Minimum measured wall time per mode; fast kernels are repeated until
/// this is reached so the per-call time stays stable.
const MIN_WALL: f64 = 0.2;

/// Codewords per factor codebook in the resonator benchmark.
const CODEWORDS: usize = 16;

/// Factors in the resonator benchmark (the RPM attribute count).
const FACTORS: usize = 3;

struct Mode {
    name: &'static str,
    wall: f64,
}

struct Run {
    kernel: &'static str,
    geometry: String,
    dim: usize,
    modes: Vec<Mode>,
}

impl Run {
    fn speedup(&self) -> f64 {
        let reference = self.modes[0].wall;
        self.modes[1..]
            .iter()
            .map(|m| reference / m.wall)
            .fold(0.0, f64::max)
    }
}

/// Times `f` over enough repetitions to accumulate [`MIN_WALL`] seconds,
/// returning the per-call wall time and the last result.
fn time_mode<T, F: FnMut() -> T>(mut f: F) -> (f64, T) {
    let _warmup = f();
    let start = Instant::now();
    let mut iters = 0u32;
    loop {
        let result = f();
        iters += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= MIN_WALL || iters >= 500 {
            return (elapsed / f64::from(iters), result);
        }
    }
}

fn print_run(run: &Run, threads: usize) {
    let reference = run.modes[0].wall;
    let mut line = format!(
        "{:<10} {:<12} reference {:>10}",
        run.kernel,
        run.geometry,
        fmt_seconds(reference)
    );
    for m in &run.modes[1..] {
        let _ = write!(
            line,
            "  {} {:>10} ({:>5.1}x)",
            m.name,
            fmt_seconds(m.wall),
            reference / m.wall
        );
    }
    let _ = threads;
    println!("{line}");
}

/// End-to-end resonator factorization at one geometry. The target is the
/// bound product of one codeword per factor, so the recovered indices
/// are known and both paths must return them.
fn bench_resonator(n_blocks: usize, block_dim: usize, seed: u64) -> Run {
    let mut rng = StdRng::seed_from_u64(seed);
    let books: Vec<Codebook> = (0..FACTORS)
        .map(|_| Codebook::random_unitary(CODEWORDS, n_blocks, block_dim, &mut rng))
        .collect();
    let expected: Vec<usize> = (0..FACTORS).map(|f| (3 * f + 1) % CODEWORDS).collect();
    let mut target = books[0].codeword(expected[0]).clone();
    for (book, &idx) in books.iter().zip(&expected).skip(1) {
        target = target.bind(book.codeword(idx)).expect("shared geometry");
    }
    let cfg = ResonatorConfig::default();

    let reference = Resonator::new(books.clone()).expect("valid factors");
    let spectral_serial =
        SpectralResonator::new(books.clone(), KernelOptions::serial()).expect("valid factors");
    let spectral_auto =
        SpectralResonator::new(books, KernelOptions::auto()).expect("valid factors");

    let (ref_wall, ref_out) = time_mode(|| reference.factorize(&target, cfg).expect("factorizes"));
    let (serial_wall, serial_out) =
        time_mode(|| spectral_serial.factorize(&target, cfg).expect("factorizes"));
    let (auto_wall, auto_out) =
        time_mode(|| spectral_auto.factorize(&target, cfg).expect("factorizes"));

    assert_eq!(
        ref_out.indices, expected,
        "reference missed the planted factors"
    );
    assert_eq!(
        serial_out.indices, expected,
        "spectral diverged from reference"
    );
    assert_eq!(
        auto_out, serial_out,
        "spectral result depends on thread count"
    );

    Run {
        kernel: "resonator",
        geometry: format!("{n_blocks}x{block_dim}"),
        dim: n_blocks * block_dim,
        modes: vec![
            Mode {
                name: "reference",
                wall: ref_wall,
            },
            Mode {
                name: "spectral",
                wall: serial_wall,
            },
            Mode {
                name: "spectral_mt",
                wall: auto_wall,
            },
        ],
    }
}

/// Square GEMM: reference vs blocked serial vs blocked threaded.
fn bench_gemm(size: usize, seed: u64) -> Run {
    let mut rng = StdRng::seed_from_u64(seed);
    use rand::Rng;
    let a: Vec<f32> = (0..size * size).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let b: Vec<f32> = (0..size * size).map(|_| rng.gen_range(-1.0..1.0)).collect();

    let (ref_wall, expected) = time_mode(|| gemm::matmul(&a, &b, size, size, size));
    let serial = KernelOptions::serial();
    let (serial_wall, serial_out) =
        time_mode(|| gemm::matmul_fast(&a, &b, size, size, size, &serial));
    let auto = KernelOptions::auto();
    let (auto_wall, auto_out) = time_mode(|| gemm::matmul_fast(&a, &b, size, size, size, &auto));

    assert_eq!(serial_out, expected, "blocked GEMM not bit-identical");
    assert_eq!(auto_out, expected, "threaded GEMM not bit-identical");

    Run {
        kernel: "gemm",
        geometry: format!("{size}^3"),
        dim: size,
        modes: vec![
            Mode {
                name: "reference",
                wall: ref_wall,
            },
            Mode {
                name: "blocked",
                wall: serial_wall,
            },
            Mode {
                name: "blocked_mt",
                wall: auto_wall,
            },
        ],
    }
}

/// Blockwise binding plus a codebook similarity scan: the direct kernels
/// vs the FFT fast path and the precomputed-matrix scan.
fn bench_bind_cleanup(n_blocks: usize, block_dim: usize, seed: u64) -> Run {
    let mut rng = StdRng::seed_from_u64(seed);
    let book = Codebook::random_unitary(64, n_blocks, block_dim, &mut rng);
    let engine = SpectralCodebook::new(book.clone());
    let a = book.codeword(0);
    let b = book.codeword(1);
    let opts = KernelOptions::auto();

    let (direct_wall, direct) = time_mode(|| {
        let bound = ops::bind(a, b).expect("shared geometry");
        book.similarities(&bound).expect("shared geometry")
    });
    let (fast_wall, fast) = time_mode(|| {
        let bound = fft::bind_fast(a, b).expect("shared geometry");
        engine.similarities(&bound, &opts).expect("shared geometry")
    });

    // The bound vectors differ by FFT rounding, so compare scans within
    // tolerance; the scan itself is bit-identical on identical queries.
    for (d, f) in direct.iter().zip(&fast) {
        assert!((d - f).abs() < 1e-3, "bind+scan diverged: {d} vs {f}");
    }

    Run {
        kernel: "bind",
        geometry: format!("{n_blocks}x{block_dim}"),
        dim: n_blocks * block_dim,
        modes: vec![
            Mode {
                name: "reference",
                wall: direct_wall,
            },
            Mode {
                name: "spectral",
                wall: fast_wall,
            },
        ],
    }
}

fn emit_json(runs: &[Run], threads: usize, quick: bool) {
    let best_large = runs
        .iter()
        .filter(|r| r.kernel == "resonator" && r.dim >= 1024)
        .map(Run::speedup)
        .fold(0.0, f64::max);
    let meets = !quick && best_large >= SPEEDUP_TARGET;

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"kernels_throughput\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"speedup_target\": {SPEEDUP_TARGET},");
    let _ = writeln!(json, "  \"runs\": [");
    for (i, run) in runs.iter().enumerate() {
        let reference = run.modes[0].wall;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"kernel\": \"{}\",", run.kernel);
        let _ = writeln!(json, "      \"geometry\": \"{}\",", run.geometry);
        let _ = writeln!(json, "      \"dim\": {},", run.dim);
        for m in &run.modes {
            let _ = writeln!(
                json,
                "      \"{}\": {{ \"wall_s\": {:.9}, \"speedup\": {:.2} }},",
                m.name,
                m.wall,
                reference / m.wall
            );
        }
        let _ = writeln!(json, "      \"best_speedup\": {:.2}", run.speedup());
        let _ = writeln!(json, "    }}{}", if i + 1 < runs.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"best_resonator_speedup_dim_ge_1024\": {best_large:.2},"
    );
    let _ = writeln!(json, "  \"meets_target\": {meets},");
    json.push_str(&nsflow_bench::telemetry_json_member());
    json.push_str("\n}\n");
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("[json] wrote BENCH_kernels.json (meets_target: {meets})");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Fresh counters so the embedded snapshot covers exactly this run.
    nsflow_telemetry::reset();
    let threads = available_threads();
    println!("kernel engine throughput — {threads} worker thread(s) available\n");

    let mut runs = Vec::new();
    // The NVSA block-code geometry (4×256 = d 1024) plus single-block
    // codes at growing dimension, where the O(d²)→O(d·log d) gap widens.
    runs.push(bench_resonator(4, 256, 101));
    if !quick {
        runs.push(bench_resonator(1, 1024, 102));
        runs.push(bench_resonator(1, 2048, 103));
        runs.push(bench_gemm(192, 104));
        runs.push(bench_bind_cleanup(4, 1024, 105));
    }
    for run in &runs {
        print_run(run, threads);
    }

    let rows: Vec<String> = runs
        .iter()
        .flat_map(|run| {
            let reference = run.modes[0].wall;
            run.modes.iter().map(move |m| {
                format!(
                    "{},{},{},{},{:.9},{:.2}",
                    run.kernel,
                    run.geometry,
                    run.dim,
                    m.name,
                    m.wall,
                    reference / m.wall
                )
            })
        })
        .collect();
    write_csv(
        "kernels_throughput.csv",
        "kernel,geometry,dim,mode,wall_s,speedup",
        &rows,
    );
    if nsflow_telemetry::enabled() {
        let snapshot = nsflow_telemetry::TelemetrySnapshot::capture();
        let hits = snapshot.counter("vsa.spectral_cache_hits");
        println!(
            "[telemetry] spectral_cache_hits={hits} fft_forward={} fft_inverse={} resonator_iterations={}",
            snapshot.counter("vsa.fft_forward"),
            snapshot.counter("vsa.fft_inverse"),
            snapshot.counter("vsa.resonator_iterations"),
        );
        assert!(
            hits > 0,
            "spectral engine recorded zero cache hits — the cached-spectra path is not running"
        );
    }
    emit_json(&runs, threads, quick);

    if !quick {
        let best = runs
            .iter()
            .filter(|r| r.kernel == "resonator" && r.dim >= 1024)
            .map(Run::speedup)
            .fold(0.0, f64::max);
        assert!(
            best >= SPEEDUP_TARGET,
            "spectral resonator below {SPEEDUP_TARGET}x target (best {best:.2}x at d ≥ 1024)"
        );
    }
}
