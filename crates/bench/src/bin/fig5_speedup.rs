//! Fig. 5 — end-to-end runtime improvement: the NSFlow accelerator vs
//! edge SoCs (Jetson TX2, Xavier NX), a Xeon CPU, an RTX 2080 Ti, a
//! TPU-like 128×128 systolic array and a Xilinx-DPU-class engine, across
//! six reasoning-task instances.
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin fig5_speedup
//! ```

use nsflow_bench::{fmt_seconds, write_csv};
use nsflow_core::NsFlow;
use nsflow_sim::devices::{Device, DeviceModel, DpuLike, TpuLikeArray};
use nsflow_trace::ExecutionTrace;
use nsflow_workloads::traces;

fn tasks() -> Vec<(&'static str, ExecutionTrace)> {
    vec![
        ("RAVEN (NVSA)", traces::nvsa().trace),
        ("PGM (NVSA)", traces::nvsa_scaled_symbolic(4)),
        ("CVR (MIMONet)", traces::mimonet().trace),
        (
            "SVRT (MIMONet)",
            traces::mimonet()
                .trace
                .with_loop_count(8)
                .expect("nonzero loops"),
        ),
        ("SVRT (LVRF)", traces::lvrf().trace),
        ("RAVEN (PrAE)", traces::prae().trace),
    ]
}

fn main() {
    let devices: Vec<Box<dyn DeviceModel>> = vec![
        Box::new(Device::jetson_tx2()),
        Box::new(Device::xavier_nx()),
        Box::new(Device::xeon_cpu()),
        Box::new(Device::rtx_2080_ti()),
        Box::new(TpuLikeArray::new_128x128()),
        Box::new(DpuLike::new_b4096()),
    ];

    println!("Fig. 5 — speedup of NSFlow over each baseline (higher is better):\n");
    print!("{:<16} {:>12}", "task", "NSFlow");
    for d in &devices {
        print!(" {:>12}", shorten(d.name()));
    }
    println!();

    let mut geo: Vec<f64> = vec![0.0; devices.len()];
    let mut rows = Vec::new();
    let task_list = tasks();
    for (name, trace) in &task_list {
        let design = NsFlow::new()
            .compile(trace.clone())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let ns = design.deploy().run().seconds;
        print!("{:<16} {:>12}", name, fmt_seconds(ns));
        let mut cells = vec![name.to_string(), format!("{ns}")];
        for (i, d) in devices.iter().enumerate() {
            let t = d.run(trace).total_seconds();
            let speedup = t / ns;
            geo[i] += speedup.ln();
            print!(" {:>11.1}×", speedup);
            cells.push(format!("{speedup:.2}"));
        }
        println!();
        rows.push(cells.join(","));
    }

    print!("{:<16} {:>12}", "geomean", "");
    let mut geo_cells = vec!["geomean".to_string(), String::new()];
    for g in &mut geo {
        *g = (*g / task_list.len() as f64).exp();
        print!(" {:>11.1}×", g);
        geo_cells.push(format!("{g:.2}"));
    }
    println!();
    rows.push(geo_cells.join(","));

    println!(
        "\npaper shape: ~31× vs TX2, ~18× vs NX, >2× vs GPU, up to 8× vs TPU-like, >3× vs DPU"
    );
    write_csv(
        "fig5_speedup.csv",
        "task,nsflow_s,tx2_x,nx_x,xeon_x,rtx2080ti_x,tpu_like_x,dpu_x",
        &rows,
    );
}

fn shorten(name: &str) -> String {
    name.chars().take(12).collect()
}
