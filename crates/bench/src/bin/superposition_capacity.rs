//! Extension experiment — MIMONet superposition capacity.
//!
//! Retrieval accuracy of computation-in-superposition as the number of
//! bundled inputs grows, at each precision — the MIMONet-side counterpart
//! of Tab. IV ("similar results are observed in MIMONet/LVRF on CVR/SVRT
//! datasets").
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin superposition_capacity
//! ```

use nsflow_bench::write_csv;
use nsflow_tensor::DType;
use nsflow_workloads::superposition::{measure_capacity, CapacityConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let widths = [1usize, 4, 8, 16, 24, 32, 48];
    let dtypes = [DType::Fp32, DType::Int8, DType::Int4];
    let trials = 40;

    println!("Superposition capacity — per-item retrieval accuracy ({trials} trials):\n");
    print!("{:>6}", "width");
    for d in &dtypes {
        print!(" {:>8}", d.to_string());
    }
    println!();

    let mut rows = Vec::new();
    for &w in &widths {
        print!("{w:>6}");
        let mut cells = vec![w.to_string()];
        for &d in &dtypes {
            let mut rng = StdRng::seed_from_u64(1000 + w as u64);
            let cfg = CapacityConfig {
                dtype: d,
                block_dim: 32,
                items: 64,
                ..CapacityConfig::default()
            };
            let r = measure_capacity(&cfg, w, trials, &mut rng);
            print!(" {:>7.1}%", 100.0 * r.retrieval_accuracy);
            cells.push(format!("{:.4}", r.retrieval_accuracy));
        }
        println!();
        rows.push(cells.join(","));
    }
    println!("\nthe capacity cliff (accuracy falling with width) is the mechanism that");
    println!("bounds MIMONet's superposition count; coarser precisions reach it sooner.");
    write_csv("superposition_capacity.csv", "width,fp32,int8,int4", &rows);
}
