//! Cycle-level execution timeline inspector: runs a named workload
//! through the two-phase mapping pipeline and the AdArray scheduler,
//! writes a Chrome Trace Event Format JSON (open it in Perfetto or
//! `chrome://tracing`), and prints a bottleneck report — top ops by
//! critical-path contribution, stall-category totals, NN/VSA/SIMD
//! overlap, and the roofline bound per phase.
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin simtrace -- nvsa
//! cargo run --release -p nsflow-bench --bin simtrace -- all --config 32x32x8 --top 5
//! ```
//!
//! Usage: `simtrace <nvsa|mimonet|lvrf|prae|all> [--config HxWxN]
//! [--queues] [--top N] [--out DIR]`
//!
//! - `--config HxWxN`: AdArray geometry (default `32x32x8`, the paper's
//!   Fig. 6 architecture),
//! - `--queues`: use the partition-queue scheduler instead of the pooled
//!   one,
//! - `--top N`: rows in the top-ops table (default 8),
//! - `--out DIR`: directory for `<workload>.trace.json` (default `.`).
//!
//! Also emits `BENCH_simtrace.json` (stall totals + attribution check)
//! for the `bench_gate` regression gate.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use nsflow_arch::ArrayConfig;
use nsflow_bench::simreport::{analyze, parse_config, WorkloadTimeline};
use nsflow_sim::schedule::SimOptions;
use nsflow_workloads::traces;

struct Args {
    workloads: Vec<String>,
    cfg: ArrayConfig,
    pooled: bool,
    top: usize,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut workloads = Vec::new();
    let mut cfg = parse_config("32x32x8")?;
    let mut pooled = true;
    let mut top = 8usize;
    let mut out = PathBuf::from(".");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--config" => {
                let v = argv.next().ok_or("--config needs a value (HxWxN)")?;
                cfg = parse_config(&v)?;
            }
            "--queues" => pooled = false,
            "--top" => {
                let v = argv.next().ok_or("--top needs a value")?;
                top = v.parse().map_err(|e| format!("--top `{v}`: {e}"))?;
            }
            "--out" => {
                out = PathBuf::from(argv.next().ok_or("--out needs a directory")?);
            }
            "all" => workloads.extend(["nvsa", "mimonet", "lvrf", "prae"].map(String::from)),
            name if !name.starts_with('-') => workloads.push(name.to_string()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if workloads.is_empty() {
        return Err("usage: simtrace <nvsa|mimonet|lvrf|prae|all> [--config HxWxN] [--queues] [--top N] [--out DIR]".into());
    }
    Ok(Args {
        workloads,
        cfg,
        pooled,
        top,
        out,
    })
}

fn emit_json(timelines: &[WorkloadTimeline], args: &Args, all_exact: bool) {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"simtrace\",");
    let _ = writeln!(
        json,
        "  \"config\": \"{}x{}x{}\",",
        args.cfg.height(),
        args.cfg.width(),
        args.cfg.n_subarrays()
    );
    let _ = writeln!(
        json,
        "  \"scheduler\": \"{}\",",
        if args.pooled { "pooled" } else { "queues" }
    );
    let _ = writeln!(json, "  \"workloads\": [");
    for (i, t) in timelines.iter().enumerate() {
        let stalls = t.schedule.stall_totals();
        let path = t.schedule.critical_path(&t.graph);
        let total = t.schedule.total_cycles();
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"name\": \"{}\",", t.name);
        let _ = writeln!(json, "      \"ops\": {},", t.schedule.ops().len());
        let _ = writeln!(json, "      \"total_cycles\": {total},");
        let _ = writeln!(
            json,
            "      \"utilization\": {:.4},",
            t.schedule.array_utilization()
        );
        let _ = writeln!(
            json,
            "      \"overlap_pct\": {:.2},",
            100.0 * t.schedule.classes_overlap_cycles() as f64 / total.max(1) as f64
        );
        let _ = writeln!(json, "      \"stall_dep_wait\": {},", stalls.dep_wait);
        let _ = writeln!(
            json,
            "      \"stall_resource_wait\": {},",
            stalls.resource_wait
        );
        let _ = writeln!(json, "      \"stall_transfer\": {},", stalls.transfer_stall);
        let _ = writeln!(json, "      \"critical_path_nodes\": {},", path.nodes.len());
        let _ = writeln!(
            json,
            "      \"critical_path_cycles\": {}",
            path.attributed_cycles()
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if i + 1 < timelines.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"meets_target\": {all_exact},");
    json.push_str(&nsflow_bench::telemetry_json_member());
    json.push_str("\n}\n");
    std::fs::write("BENCH_simtrace.json", &json).expect("write BENCH_simtrace.json");
    println!("[json] wrote BENCH_simtrace.json (meets_target: {all_exact})");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simtrace: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Fresh counters so the embedded snapshot covers exactly this run.
    nsflow_telemetry::reset();
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("simtrace: create {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }

    let mut timelines = Vec::new();
    let mut all_exact = true;
    for name in &args.workloads {
        let Some(workload) = traces::by_name(name) else {
            eprintln!("simtrace: unknown workload `{name}` (want nvsa|mimonet|lvrf|prae|all)");
            return ExitCode::FAILURE;
        };
        let opts = SimOptions::default();
        let t = analyze(workload, &args.cfg, &opts, args.pooled);

        let rendered = t.chrome_trace().render_pretty();
        if let Err(e) = t.validate_trace(&rendered) {
            eprintln!("simtrace: {name}: invalid trace: {e}");
            all_exact = false;
        }
        let path = args.out.join(format!("{}.trace.json", name.to_lowercase()));
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("simtrace: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }

        println!("=== {} ===", t.name);
        print!("{}", t.report(args.top));
        println!("[trace] wrote {}\n", path.display());
        timelines.push(t);
    }

    emit_json(&timelines, &args, all_exact);
    if all_exact {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
