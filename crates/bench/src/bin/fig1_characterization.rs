//! Fig. 1 — end-to-end neuro-symbolic runtime and roofline
//! characterization.
//!
//! (a) latency breakdown on a CPU+GPU system, (b) end-to-end latency on
//! Coral TPU / TX2 / NX / 2080 Ti against a real-time bound, (c) roofline
//! placement of the neural and symbolic halves on the 2080 Ti.
//!
//! ```sh
//! cargo run --release -p nsflow-bench --bin fig1_characterization
//! ```

use nsflow_bench::{fmt_seconds, write_csv};
use nsflow_sim::devices::{Device, DeviceModel};
use nsflow_sim::roofline::{workload_points, Roof};
use nsflow_workloads::traces;

fn main() {
    let workloads = traces::all();

    // ── Fig. 1a: CPU+GPU system breakdown ──────────────────────────────
    println!("Fig. 1a — latency breakdown on the CPU+GPU system (RTX 2080 Ti):");
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>16}",
        "workload", "neural", "symbolic", "symbolic %", "symbolic FLOP %"
    );
    let gpu = Device::rtx_2080_ti();
    let mut rows_a = Vec::new();
    for w in &workloads {
        let r = gpu.run(&w.trace);
        let flop_share = 100.0 * w.trace.symbolic_flop_fraction();
        println!(
            "{:<10} {:>12} {:>12} {:>13.1}% {:>15.1}%",
            w.name,
            fmt_seconds(r.neural_seconds),
            fmt_seconds(r.symbolic_seconds),
            100.0 * r.symbolic_fraction(),
            flop_share
        );
        rows_a.push(format!(
            "{},{},{},{:.4},{:.4}",
            w.name,
            r.neural_seconds,
            r.symbolic_seconds,
            r.symbolic_fraction(),
            flop_share / 100.0
        ));
    }
    println!(
        "(paper: symbolic dominates runtime — 87% for NVSA — while contributing ~19% of FLOPs)"
    );
    write_csv(
        "fig1a_breakdown.csv",
        "workload,neural_s,symbolic_s,symbolic_runtime_frac,symbolic_flop_frac",
        &rows_a,
    );

    // ── Fig. 1b: end-to-end latency per device ─────────────────────────
    const REAL_TIME_S: f64 = 0.1; // 10 inferences/s target
    println!(
        "\nFig. 1b — end-to-end latency per device (real-time bound {}):",
        fmt_seconds(REAL_TIME_S)
    );
    let devices: Vec<Device> = vec![
        Device::coral_tpu(),
        Device::jetson_tx2(),
        Device::xavier_nx(),
        Device::rtx_2080_ti(),
    ];
    print!("{:<10}", "workload");
    for d in &devices {
        print!(" {:>14}", d.name());
    }
    println!();
    let mut rows_b = Vec::new();
    for w in &workloads {
        print!("{:<10}", w.name);
        let mut cells = vec![w.name.to_string()];
        let mut meets_real_time = false;
        for d in &devices {
            let t = d.run(&w.trace).total_seconds();
            print!(" {:>14}", fmt_seconds(t));
            cells.push(format!("{t}"));
            meets_real_time |= t <= REAL_TIME_S;
        }
        println!(
            "{}",
            if meets_real_time {
                ""
            } else {
                "   [misses real-time]"
            }
        );
        rows_b.push(cells.join(","));
    }
    write_csv(
        "fig1b_devices.csv",
        "workload,coral_tpu_s,jetson_tx2_s,xavier_nx_s,rtx2080ti_s",
        &rows_b,
    );

    // ── Fig. 1c: roofline of the RTX 2080 Ti ───────────────────────────
    println!(
        "\nFig. 1c — RTX 2080 Ti roofline (ridge at {:.1} FLOP/B):",
        Roof::rtx_2080_ti().ridge_intensity()
    );
    println!(
        "{:<22} {:>16} {:>18} {:>10}",
        "kernel class", "intensity", "attainable", "bound"
    );
    let roof = Roof::rtx_2080_ti();
    let mut rows_c = Vec::new();
    for w in &workloads {
        for p in workload_points(&w.trace, &roof) {
            println!(
                "{:<22} {:>12.1} F/B {:>13.2} TF/s {:>10}",
                p.label,
                p.intensity,
                p.attainable_flops / 1e12,
                format!("{:?}", p.bound)
            );
            rows_c.push(format!(
                "{},{},{},{:?}",
                p.label, p.intensity, p.attainable_flops, p.bound
            ));
        }
    }
    println!("(paper: symbolic modules are memory-bounded, neural modules compute-bounded)");
    write_csv(
        "fig1c_roofline.csv",
        "label,intensity_flop_per_byte,attainable_flops,bound",
        &rows_c,
    );
}
