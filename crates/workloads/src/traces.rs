//! Architectural workload models: `ExecutionTrace` builders for NVSA,
//! MIMONet, LVRF and PrAE.
//!
//! Each builder reproduces the workload's operator mix at the level the
//! NSFlow frontend consumes: CNN backbones expand into per-layer GEMM +
//! SIMD ops (shapes from `nsflow-nn`), symbolic stages into blockwise
//! circular-convolution, similarity and reduction kernels with NVSA-style
//! block-code geometry (`[4, 256]`-class codes, Listing 1). One **loop**
//! is one candidate evaluation; RPM-style workloads run 8 loops.
//!
//! Proportions follow the paper's characterization: NVSA's symbolic ops
//! are ~19% of FLOPs (yet dominate runtime on GPU-class devices);
//! MIMONet is NN-heavier; LVRF/PrAE are symbolic-heavier.

use nsflow_nn::{models, LayerKind, Model};
use nsflow_tensor::DType;
use nsflow_trace::{Domain, EltFunc, ExecutionTrace, OpId, OpKind, ReduceFunc, TraceBuilder};

/// A workload: its trace plus the model-size facts the Tab. IV memory row
/// needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Display name.
    pub name: &'static str,
    /// The execution trace (one loop, plus loop count).
    pub trace: ExecutionTrace,
    /// NN parameter count (stored at the neural precision).
    pub nn_params: usize,
    /// Symbolic dictionary/codebook element count (stored at the symbolic
    /// precision).
    pub symbolic_elems: usize,
}

/// Pushes a CNN backbone's layers as trace ops (the GEMM `m` dimension
/// and element counts scaled by `batch`); returns the last op id.
fn push_model(
    b: &mut TraceBuilder,
    model: &Model,
    dtype: DType,
    batch: usize,
    prev: Option<OpId>,
) -> OpId {
    push_model_with_taps(b, model, dtype, batch, prev).0
}

/// Like [`push_model`] but also returns the ids of the GEMM-class layers,
/// so callers can attach symbolic branches at intermediate depths (the
/// paper's Fig. 4 dataflow interleaves symbolic ops with NN layers).
fn push_model_with_taps(
    b: &mut TraceBuilder,
    model: &Model,
    dtype: DType,
    batch: usize,
    prev: Option<OpId>,
) -> (OpId, Vec<OpId>) {
    let mut last = prev;
    let mut taps = Vec::new();
    let dims = model.gemm_dims();
    for (i, layer) in model.layers().iter().enumerate() {
        let inputs: Vec<OpId> = last.into_iter().collect();
        let out_elems = if i + 1 < model.layers().len() {
            model.layer_input_shape(i + 1).volume()
        } else {
            model.output_shape().volume()
        };
        let id = match (&dims[i], layer.kind()) {
            (Some(g), _) => b.push(
                format!("{}_{}", model.name(), layer.name()),
                OpKind::Gemm {
                    m: g.m * batch,
                    n: g.n,
                    k: g.k,
                },
                Domain::Neural,
                dtype,
                &inputs,
            ),
            (None, LayerKind::Relu) => b.push(
                format!("{}_{}", model.name(), layer.name()),
                OpKind::Elementwise {
                    elems: out_elems * batch,
                    func: EltFunc::Relu,
                },
                Domain::Neural,
                dtype,
                &inputs,
            ),
            (None, LayerKind::BatchNorm2d) => b.push(
                format!("{}_{}", model.name(), layer.name()),
                OpKind::Elementwise {
                    elems: out_elems * batch,
                    func: EltFunc::Affine,
                },
                Domain::Neural,
                dtype,
                &inputs,
            ),
            (None, LayerKind::GlobalAvgPool) => b.push(
                format!("{}_{}", model.name(), layer.name()),
                OpKind::Reduce {
                    elems: model.layer_input_shape(i).volume() * batch,
                    func: ReduceFunc::Mean,
                },
                Domain::Neural,
                dtype,
                &inputs,
            ),
            (None, _) => b.push(
                format!("{}_{}", model.name(), layer.name()),
                OpKind::Elementwise {
                    elems: out_elems * batch,
                    func: EltFunc::PoolMax,
                },
                Domain::Neural,
                dtype,
                &inputs,
            ),
        };
        if dims[i].is_some() {
            taps.push(id);
        }
        last = Some(id);
    }
    (last.expect("models have at least one layer"), taps)
}

/// Pushes a chain of symbolic kernels: `bind_count` blockwise circular
/// convolutions (geometry `n_vec × dim`), with a similarity + sum + clamp
/// + mul glue group every `sim_every` bindings — the Listing-1 pattern.
#[allow(clippy::too_many_arguments)]
fn push_symbolic_chain(
    b: &mut TraceBuilder,
    prev: OpId,
    bind_count: usize,
    n_vec: usize,
    dim: usize,
    dict: usize,
    sim_every: usize,
    dtype: DType,
) -> OpId {
    let mut last = prev;
    for j in 0..bind_count {
        last = b.push(
            format!("inv_binding_circular_{j}"),
            OpKind::VsaConv { n_vec, dim },
            Domain::Symbolic,
            dtype,
            &[last],
        );
        if sim_every > 0 && (j + 1) % sim_every == 0 {
            let sim = b.push(
                format!("match_prob_multi_batched_{j}"),
                OpKind::Similarity {
                    n_vec: dict,
                    dim: n_vec * dim,
                },
                Domain::Symbolic,
                dtype,
                &[last],
            );
            let sum = b.push(
                format!("sum_{j}"),
                OpKind::Reduce {
                    elems: dict,
                    func: ReduceFunc::Sum,
                },
                Domain::Symbolic,
                dtype,
                &[sim],
            );
            let clamp = b.push(
                format!("clamp_{j}"),
                OpKind::Elementwise {
                    elems: 1,
                    func: EltFunc::Clamp,
                },
                Domain::Symbolic,
                dtype,
                &[sum],
            );
            // The scalar product is a consumed leaf; the next binding
            // chains from the similarity output.
            let _mul = b.push(
                format!("mul_{j}"),
                OpKind::Elementwise {
                    elems: 1,
                    func: EltFunc::Mul,
                },
                Domain::Symbolic,
                dtype,
                &[sim, clamp],
            );
            last = sim;
        }
    }
    last
}

/// NVSA (Hersche et al.): ResNet-18 perception + blockwise-circular-code
/// rule inference over 8 answer candidates.
#[must_use]
pub fn nvsa() -> Workload {
    let mut b = TraceBuilder::new("NVSA");
    // Perception runs on a panel batch (the paper's trace shows batch-16
    // ResNet-18 activations); two panels per candidate loop here.
    let backbone = models::resnet18(96, 3);
    let last_nn = push_model(&mut b, &backbone, DType::Int8, 2, None);
    // Symbolic share tuned to ~19% of workload FLOPs: 20 batched binding
    // kernels per candidate loop, each processing 32 block-code vectors of
    // 512 elements (rule sets and dictionary probes are evaluated in
    // batches, as NVSA's `match_prob_multi_batched` does).
    let _ = push_symbolic_chain(&mut b, last_nn, 20, 32, 512, 8, 3, DType::Int4);
    Workload {
        name: "NVSA",
        trace: b.finish(8).expect("construction is valid"),
        nn_params: backbone.total_params() as usize,
        symbolic_elems: 20 * 1024 * 1024,
    }
}

/// MIMONet (Menet et al.): computation-in-superposition — binding wraps a
/// mid-size CNN processing 4 superposed inputs; NN-dominant.
#[must_use]
pub fn mimonet() -> Workload {
    let mut b = TraceBuilder::new("MIMONet");
    // Superposition encode: bind each of 4 inputs with its key.
    let enc = b.push(
        "superpose_bind",
        OpKind::VsaConv { n_vec: 8, dim: 512 },
        Domain::Symbolic,
        DType::Int8,
        &[],
    );
    let backbone = models::mimonet_backbone(64, 4);
    let last_nn = push_model(&mut b, &backbone, DType::Int8, 1, Some(enc));
    // Decode: unbind per input + similarity readout.
    let dec = b.push(
        "unbind_readout",
        OpKind::VsaConv { n_vec: 8, dim: 512 },
        Domain::Symbolic,
        DType::Int8,
        &[last_nn],
    );
    let _ = b.push(
        "readout_sim",
        OpKind::Similarity {
            n_vec: 16,
            dim: 512,
        },
        Domain::Symbolic,
        DType::Int8,
        &[dec],
    );
    Workload {
        name: "MIMONet",
        trace: b.finish(4).expect("construction is valid"),
        nn_params: backbone.total_params() as usize,
        symbolic_elems: 4 * 1024 * 1024,
    }
}

/// LVRF (Hersche et al.): probabilistic abduction — a small perception
/// CNN feeding a heavy vector-symbolic rule-probability engine.
#[must_use]
pub fn lvrf() -> Workload {
    let mut b = TraceBuilder::new("LVRF");
    let backbone = models::small_cnn(32, 1, 512);
    let last_nn = push_model(&mut b, &backbone, DType::Int8, 1, None);
    let last = push_symbolic_chain(&mut b, last_nn, 16, 32, 512, 16, 2, DType::Int4);
    // Probabilistic normalization tail (exp/log on rule probabilities).
    let t = b.push(
        "rule_prob_exp",
        OpKind::Elementwise {
            elems: 4096,
            func: EltFunc::Transcendental,
        },
        Domain::Symbolic,
        DType::Int4,
        &[last],
    );
    let _ = b.push(
        "rule_prob_norm",
        OpKind::Reduce {
            elems: 4096,
            func: ReduceFunc::Norm,
        },
        Domain::Symbolic,
        DType::Int4,
        &[t],
    );
    Workload {
        name: "LVRF",
        trace: b.finish(8).expect("construction is valid"),
        nn_params: backbone.total_params() as usize,
        symbolic_elems: 12 * 1024 * 1024,
    }
}

/// PrAE (Zhang et al.): abstract reasoning via probabilistic abduction
/// and execution — small perception, many small symbolic scene-algebra
/// kernels.
#[must_use]
pub fn prae() -> Workload {
    let mut b = TraceBuilder::new("PrAE");
    let backbone = models::small_cnn(32, 1, 256);
    let mut last = push_model(&mut b, &backbone, DType::Int8, 1, None);
    for j in 0..24 {
        let bind = b.push(
            format!("scene_bind_{j}"),
            OpKind::VsaConv { n_vec: 4, dim: 256 },
            Domain::Symbolic,
            DType::Int4,
            &[last],
        );
        let prob = b.push(
            format!("scene_prob_{j}"),
            OpKind::Elementwise {
                elems: 2048,
                func: EltFunc::Softmax,
            },
            Domain::Symbolic,
            DType::Int4,
            &[bind],
        );
        last = prob;
    }
    let _ = b.push(
        "abduce_sim",
        OpKind::Similarity {
            n_vec: 8,
            dim: 1024,
        },
        Domain::Symbolic,
        DType::Int4,
        &[last],
    );
    Workload {
        name: "PrAE",
        trace: b.finish(8).expect("construction is valid"),
        nn_params: backbone.total_params() as usize,
        symbolic_elems: 6 * 1024 * 1024,
    }
}

/// All four evaluated workloads (Fig. 1 order).
#[must_use]
pub fn all() -> Vec<Workload> {
    vec![nvsa(), mimonet(), lvrf(), prae()]
}

/// Looks up a suite workload by case-insensitive name (`"nvsa"`,
/// `"mimonet"`, `"lvrf"`, `"prae"`); `None` for anything else.
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    match name.to_ascii_lowercase().as_str() {
        "nvsa" => Some(nvsa()),
        "mimonet" => Some(mimonet()),
        "lvrf" => Some(lvrf()),
        "prae" => Some(prae()),
        _ => None,
    }
}

/// Fig. 6 ablation workload: ResNet-18 plus a symbolic stage scaled so
/// that symbolic ops account for (approximately) `target_ratio` of the
/// loop's memory traffic. Returns the trace and the achieved ratio.
///
/// # Panics
///
/// Panics unless `0.0 <= target_ratio < 1.0`.
#[must_use]
pub fn nvsa_like_with_symbolic_ratio(target_ratio: f64) -> (ExecutionTrace, f64) {
    assert!(
        (0.0..1.0).contains(&target_ratio),
        "ratio must be in [0, 1)"
    );
    let mut b = TraceBuilder::new("nvsa-like-ablation");
    let backbone = models::resnet18(96, 3);
    let (last_nn, taps) = push_model_with_taps(&mut b, &backbone, DType::Int8, 2, None);
    let _ = last_nn;

    // Probe the NN-only bytes to size the symbolic stage.
    let probe = b.clone().finish(1).expect("NN chain is valid");
    let (nn_bytes, _) = probe.bytes_by_domain();

    // Heterogeneous symbolic stage (mixed vector quantities and
    // dimensions, as real rule sets have) — this heterogeneity is what
    // Phase II's per-node mapping refinement exploits.
    let shapes: [(usize, usize); 3] = [(64, 256), (128, 512), (64, 1024)];
    let avg_node_bytes = shapes
        .iter()
        .map(|&(n_vec, dim)| {
            let kind = OpKind::VsaConv { n_vec, dim };
            DType::Int4
                .storage_bytes(kind.input_elems() + kind.weight_elems() + kind.output_elems())
        })
        .sum::<usize>() as f64
        / shapes.len() as f64;
    let count = if target_ratio <= 0.0 {
        0
    } else {
        ((target_ratio * nn_bytes as f64) / ((1.0 - target_ratio) * avg_node_bytes)).round()
            as usize
    };
    // Interleave the symbolic branches across the NN depth: node j hangs
    // off tap j%taps (serial within a branch), mirroring how the paper's
    // dataflow graph groups symbolic ops with the layers they overlap.
    let mut branch_tail: Vec<OpId> = taps.clone();
    for j in 0..count {
        let (n_vec, dim) = shapes[j % shapes.len()];
        let t = j % branch_tail.len();
        let id = b.push(
            format!("inv_binding_circular_{j}"),
            OpKind::VsaConv { n_vec, dim },
            Domain::Symbolic,
            DType::Int4,
            &[branch_tail[t]],
        );
        branch_tail[t] = id;
    }
    let trace = b.finish(8).expect("construction is valid");
    let achieved = trace.symbolic_memory_fraction();
    (trace, achieved)
}

/// Scalability workload (the abstract's 150× claim): NVSA with its
/// symbolic vector count scaled by `scale` while the NN part is fixed.
#[must_use]
pub fn nvsa_scaled_symbolic(scale: usize) -> ExecutionTrace {
    assert!(scale > 0, "scale must be positive");
    let mut b = TraceBuilder::new("nvsa-scaled");
    let backbone = models::resnet18(96, 3);
    let last_nn = push_model(&mut b, &backbone, DType::Int8, 2, None);
    // Baseline symbolic stage is deliberately small relative to the NN so
    // the sweep exposes how the architecture absorbs symbolic growth; the
    // scale multiplies the *vector batch* of each kernel, which is how
    // symbolic working sets actually grow (bigger dictionaries/rule sets).
    let _ = push_symbolic_chain(&mut b, last_nn, 12, 8 * scale, 512, 8, 0, DType::Int4);
    b.finish(8).expect("construction is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvsa_symbolic_flop_share_matches_paper() {
        let w = nvsa();
        let share = w.trace.symbolic_flop_fraction();
        assert!(
            (0.12..0.30).contains(&share),
            "NVSA symbolic FLOP share {share} should be ~19%"
        );
    }

    #[test]
    fn nvsa_loops_eight_candidates() {
        assert_eq!(nvsa().trace.loop_count(), 8);
    }

    #[test]
    fn mimonet_is_nn_dominant() {
        let w = mimonet();
        assert!(w.trace.symbolic_flop_fraction() < 0.2);
    }

    #[test]
    fn lvrf_and_prae_are_symbolic_heavier_than_mimonet() {
        let m = mimonet().trace.symbolic_flop_fraction();
        assert!(lvrf().trace.symbolic_flop_fraction() > m);
        assert!(prae().trace.symbolic_flop_fraction() > m);
    }

    #[test]
    fn all_returns_four_distinct_workloads() {
        let ws = all();
        assert_eq!(ws.len(), 4);
        let names: std::collections::HashSet<_> = ws.iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 4);
        for w in &ws {
            assert!(!w.trace.ops().is_empty());
            assert!(w.nn_params > 0);
        }
    }

    #[test]
    fn ablation_ratio_is_achieved() {
        for target in [0.01, 0.2, 0.5, 0.8] {
            let (_, achieved) = nvsa_like_with_symbolic_ratio(target);
            assert!(
                (achieved - target).abs() < 0.08,
                "target {target} achieved {achieved}"
            );
        }
    }

    #[test]
    fn ablation_zero_ratio_has_no_symbolic_ops() {
        let (trace, achieved) = nvsa_like_with_symbolic_ratio(0.0);
        assert_eq!(trace.vsa_nodes().len(), 0);
        assert_eq!(achieved, 0.0);
    }

    #[test]
    fn scaled_symbolic_grows_linearly() {
        let base = nvsa_scaled_symbolic(1);
        let big = nvsa_scaled_symbolic(150);
        let (_, s1) = base.macs_by_domain();
        let (_, s150) = big.macs_by_domain();
        let ratio = s150 as f64 / s1 as f64;
        assert!(
            (145.0..155.0).contains(&ratio),
            "symbolic scale ratio {ratio}"
        );
        // NN part unchanged.
        let (n1, _) = base.macs_by_domain();
        let (n150, _) = big.macs_by_domain();
        assert_eq!(n1, n150);
    }

    #[test]
    fn baseline_scaled_workload_is_nn_dominated() {
        let base = nvsa_scaled_symbolic(1);
        let (n, s) = base.macs_by_domain();
        assert!(n > 20 * s, "baseline symbolic should be tiny: {n} vs {s}");
    }
}
