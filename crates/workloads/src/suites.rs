//! Benchmark suites emulating the difficulty profile of the paper's
//! reasoning datasets.
//!
//! The real datasets differ in how hard their tasks are for the
//! NVSA-style pipeline (Tab. IV: RAVEN ≈ 98.9%, I-RAVEN ≈ 99.0%,
//! PGM ≈ 68.7% at FP32). The synthetic suites reproduce that ordering
//! through three knobs: perception noise, candidate confusability
//! (RAVEN-style resampled distractors vs I-RAVEN-style one-attribute
//! edits) and attribute count.

use nsflow_tensor::par::KernelOptions;

use crate::raven::{CandidateStyle, TaskParams};
use crate::reasoning::PipelineConfig;

/// The synthetic counterpart of each evaluation dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// RAVEN-style: 3 attributes, resampled distractors, low noise.
    RavenLike,
    /// I-RAVEN-style: 3 attributes, one-edit distractors, low noise.
    IRavenLike,
    /// PGM-style: 5 attributes, one-edit distractors, high noise.
    PgmLike,
}

impl Suite {
    /// All suites in Tab. IV order.
    #[must_use]
    pub const fn all() -> [Suite; 3] {
        [Suite::RavenLike, Suite::IRavenLike, Suite::PgmLike]
    }

    /// Display name referencing the emulated dataset.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Suite::RavenLike => "RAVEN-like",
            Suite::IRavenLike => "I-RAVEN-like",
            Suite::PgmLike => "PGM-like",
        }
    }

    /// Task-generator parameters for this suite.
    #[must_use]
    pub fn task_params(&self) -> TaskParams {
        match self {
            Suite::RavenLike => TaskParams {
                attributes: 3,
                values: 8,
                candidates: 8,
                style: CandidateStyle::Raven,
            },
            Suite::IRavenLike => TaskParams {
                attributes: 3,
                values: 8,
                candidates: 8,
                style: CandidateStyle::IRaven,
            },
            Suite::PgmLike => TaskParams {
                attributes: 3,
                values: 8,
                candidates: 8,
                style: CandidateStyle::IRaven,
            },
        }
    }

    /// Baseline pipeline geometry/noise for this suite (precisions are
    /// overridden by the accuracy harness).
    ///
    /// Ambiguity levels are calibrated so the FP32 column lands near the
    /// paper's Tab. IV (RAVEN ≈ 98.9%, I-RAVEN ≈ 99.0%, PGM ≈ 68.7%);
    /// PGM's difficulty is reproduced through perception ambiguity and
    /// bias-free confusable candidates rather than attribute count.
    #[must_use]
    pub fn pipeline_config(&self) -> PipelineConfig {
        let base = PipelineConfig {
            noise_std: 0.01,
            ..PipelineConfig::default()
        };
        match self {
            Suite::RavenLike => PipelineConfig {
                ambiguity_std: 0.11,
                ..base
            },
            Suite::IRavenLike => PipelineConfig {
                ambiguity_std: 0.11,
                ..base
            },
            Suite::PgmLike => PipelineConfig {
                ambiguity_std: 0.165,
                ..base
            },
        }
    }

    /// [`Suite::pipeline_config`] with an explicit kernel-engine
    /// threading knob. Accuracy results are identical at every thread
    /// count — the engine's kernels are deterministic — so this only
    /// trades wall-clock for cores.
    #[must_use]
    pub fn pipeline_config_with_kernels(&self, kernels: KernelOptions) -> PipelineConfig {
        PipelineConfig {
            kernels,
            ..self.pipeline_config()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_parameters_differ_as_documented() {
        assert_eq!(Suite::RavenLike.task_params().style, CandidateStyle::Raven);
        assert_eq!(
            Suite::IRavenLike.task_params().style,
            CandidateStyle::IRaven
        );
        assert_eq!(Suite::PgmLike.task_params().attributes, 3);
        assert!(
            Suite::PgmLike.pipeline_config().ambiguity_std
                > Suite::RavenLike.pipeline_config().ambiguity_std
        );
    }

    #[test]
    fn all_lists_three_suites() {
        assert_eq!(Suite::all().len(), 3);
        let names: Vec<_> = Suite::all().iter().map(Suite::name).collect();
        assert_eq!(names, vec!["RAVEN-like", "I-RAVEN-like", "PGM-like"]);
    }
}
