//! # nsflow-workloads
//!
//! The neuro-symbolic workloads the paper evaluates, in two executable
//! forms:
//!
//! 1. **Functional** ([`raven`], [`reasoning`], [`suites`], [`accuracy`]):
//!    a synthetic Raven's-Progressive-Matrices task generator and a real
//!    VSA reasoning pipeline (binding → resonator factorization → rule
//!    inference → candidate scoring) whose arithmetic can be run at any
//!    precision — the measurement behind Tab. IV. The RAVEN-style,
//!    I-RAVEN-style and PGM-style suites differ in noise level, candidate
//!    confusability and attribute count, emulating the difficulty ordering
//!    of the real datasets (RAVEN ≈ I-RAVEN ≫ PGM).
//! 2. **Architectural** ([`traces`]): `ExecutionTrace` builders for NVSA,
//!    MIMONet, LVRF and PrAE that reproduce each workload's operator mix
//!    (CNN backbone + vector-symbolic kernels + SIMD glue) with the
//!    paper's characteristic proportions — symbolic ops contribute ~19%
//!    of NVSA's FLOPs yet dominate its runtime on GPU-class devices.
//!
//! # Examples
//!
//! ```
//! use nsflow_workloads::{suites::Suite, accuracy};
//! use nsflow_tensor::DType;
//!
//! let cfg = accuracy::EvalConfig { tasks: 10, ..accuracy::EvalConfig::default() };
//! let acc = accuracy::evaluate(Suite::RavenLike, accuracy::Precision::fp32(), &cfg, 7);
//! assert!(acc.accuracy >= 0.0 && acc.accuracy <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod raven;
pub mod reasoning;
pub mod sparse_reasoning;
pub mod suites;
pub mod superposition;
pub mod traces;
