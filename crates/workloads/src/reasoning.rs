//! Executable VSA reasoning pipeline (NVSA-style) over synthetic RPM
//! tasks.
//!
//! The pipeline mirrors the neuro-vector-symbolic flow the paper profiles:
//!
//! 1. **Perception** (the neural stand-in): each panel's attribute values
//!    are encoded as the *bound product* of per-attribute codewords, plus
//!    Gaussian perception noise; the resulting vector is quantized at the
//!    **neural** precision (it is the CNN front-end's output),
//! 2. **Factorization**: a resonator network recovers each context
//!    panel's attribute values from its (noisy, quantized) product vector
//!    — all arithmetic on block codes quantized at the **symbolic**
//!    precision,
//! 3. **Rule inference**: per attribute, the row rule (constant /
//!    progression / distribute-three) is inferred from the two complete
//!    rows and applied to the partial third row,
//! 4. **Answer selection**: the predicted panel is re-encoded and every
//!    candidate scored by vector similarity (`match_prob` style); argmax
//!    wins.
//!
//! Accuracy therefore degrades through exactly the mechanism the paper's
//! Tab. IV measures: coarser symbolic precision erodes codebook
//! similarity margins until factorization or candidate scoring flips.

use nsflow_tensor::par::KernelOptions;
use nsflow_tensor::quant::{self, QuantParams};
use nsflow_tensor::DType;
use nsflow_vsa::engine::SpectralResonator;
use nsflow_vsa::fft;
use nsflow_vsa::resonator::ResonatorConfig;
use nsflow_vsa::{BlockCode, Codebook};
use rand::Rng;

use crate::raven::RpmTask;

/// Precision and geometry configuration of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Blocks per code (NVSA uses 4).
    pub n_blocks: usize,
    /// Elements per block.
    pub block_dim: usize,
    /// Std-dev of additive perception noise (relative to the unit-norm
    /// codes).
    pub noise_std: f32,
    /// Precision of the perception output (panel encodings).
    pub neural_dtype: DType,
    /// Precision of the symbolic datapath (codebooks + intermediates).
    pub symbolic_dtype: DType,
    /// Scale of the *accumulated* quantization error a network running at
    /// the neural precision injects into its output, as a multiple of the
    /// output's quantization step (0 disables; the default models a
    /// handful of quantized layers' error accumulation).
    pub neural_quant_noise: f32,
    /// Std-dev of per-attribute perception **ambiguity**: with ambiguity
    /// `ε ~ |N(0, σ)|`, the perceived codeword is the soft mixture
    /// `(1−ε)·x_true + ε·x_other`. Ambiguity above 0.5 is an outright
    /// perception error; values just below 0.5 leave margins so thin that
    /// coarser precisions flip them — the mechanism behind the Tab. IV
    /// accuracy ladder.
    pub ambiguity_std: f32,
    /// Resonator settings for panel factorization.
    pub resonator: ResonatorConfig,
    /// Threading knob for the kernel engine (resonator, codebook scans).
    /// [`KernelOptions::auto`] sizes worker pools to the machine;
    /// [`KernelOptions::serial`] pins everything to one thread. Results
    /// are identical either way — the engine's kernels are deterministic
    /// at every thread count.
    pub kernels: KernelOptions,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            n_blocks: 4,
            block_dim: 64,
            noise_std: 0.02,
            neural_dtype: DType::Fp32,
            symbolic_dtype: DType::Fp32,
            neural_quant_noise: 0.45,
            ambiguity_std: 0.0,
            resonator: ResonatorConfig {
                max_iterations: 12,
                temperature: 0.08,
            },
            kernels: KernelOptions::auto(),
        }
    }
}

/// Intermediate reasoning state returned by
/// [`VsaReasoner::solve_explained`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Chosen candidate index.
    pub choice: usize,
    /// Predicted attribute values of the hidden panel.
    pub predicted: Vec<usize>,
    /// Decoded attribute values of the context grid (entry `[2][2]` is
    /// empty).
    pub decoded_context: [[Vec<usize>; 3]; 3],
    /// Similarity of each candidate to the predicted panel.
    pub candidate_sims: Vec<f32>,
}

/// The reasoner: per-attribute codebooks plus the factorizer.
///
/// All VSA arithmetic runs on the spectral-cached kernel engine
/// ([`nsflow_vsa::engine`]): factorization through [`SpectralResonator`],
/// cleanup through the precomputed codeword matrices, binding through the
/// FFT fast path. The engine is numerically equivalent to the reference
/// kernels (see the engine module docs for the bounded differences) and
/// its outputs are independent of [`PipelineConfig::kernels`].
#[derive(Debug, Clone)]
pub struct VsaReasoner {
    codebooks: Vec<Codebook>,
    engine: SpectralResonator,
    values: usize,
    config: PipelineConfig,
}

impl VsaReasoner {
    /// Builds a reasoner for `attributes` attributes of `values` values.
    ///
    /// Codebooks are random *unitary* block codes (exactly invertible
    /// binding), immediately quantized to the symbolic precision.
    ///
    /// # Panics
    ///
    /// Panics if `attributes < 2` (the resonator needs two factors) or
    /// `values == 0`.
    pub fn new<R: Rng + ?Sized>(
        attributes: usize,
        values: usize,
        config: PipelineConfig,
        rng: &mut R,
    ) -> Self {
        assert!(
            attributes >= 2,
            "resonator factorization needs >= 2 attributes"
        );
        assert!(values > 0, "need at least one value");
        let codebooks: Vec<Codebook> = (0..attributes)
            .map(|_| {
                let book = Codebook::random_unitary(values, config.n_blocks, config.block_dim, rng);
                quantize_codebook(&book, config.symbolic_dtype)
            })
            .collect();
        let engine = SpectralResonator::new(codebooks.clone(), config.kernels)
            .expect("codebooks share geometry by construction");
        VsaReasoner {
            codebooks,
            engine,
            values,
            config,
        }
    }

    /// The pipeline configuration.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Encodes a panel as the bound product of its attribute codewords,
    /// with perception noise and neural-precision quantization.
    ///
    /// # Panics
    ///
    /// Panics if `attrs` length differs from the attribute count or any
    /// value index is out of range.
    pub fn encode_panel<R: Rng + ?Sized>(&self, attrs: &[usize], rng: &mut R) -> BlockCode {
        assert_eq!(
            attrs.len(),
            self.codebooks.len(),
            "attribute count mismatch"
        );
        let mut acc: Option<BlockCode> = None;
        for (book, &val) in self.codebooks.iter().zip(attrs) {
            let cw = self.perceived_codeword(book, val, rng);
            acc = Some(match acc {
                None => cw.clone(),
                Some(prev) => fft::bind_fast(&prev, &cw).expect("geometry fixed at construction"),
            });
        }
        let mut code = acc.expect("at least two attributes");
        if self.config.noise_std > 0.0 {
            for x in code.data_mut() {
                *x += gaussianish(rng) * self.config.noise_std;
            }
        }
        quantize_code(&mut code, self.config.neural_dtype);
        // Accumulated quantization error of the (quantized) perception
        // network: proportional to the output lattice's step size.
        let extra = self.config.neural_quant_noise * quant_step(&code, self.config.neural_dtype);
        if extra > 0.0 {
            for x in code.data_mut() {
                *x += gaussianish(rng) * extra;
            }
        }
        code
    }

    /// Clean (noise-free, symbolic-precision) encoding used for candidate
    /// prediction.
    #[must_use]
    pub fn encode_exact(&self, attrs: &[usize]) -> BlockCode {
        let mut acc: Option<BlockCode> = None;
        for (book, &val) in self.codebooks.iter().zip(attrs) {
            let cw = book.codeword(val);
            acc = Some(match acc {
                None => cw.clone(),
                Some(prev) => fft::bind_fast(&prev, cw).expect("geometry fixed at construction"),
            });
        }
        let mut code = acc.expect("at least two attributes");
        quantize_code(&mut code, self.config.symbolic_dtype);
        code
    }

    /// Factorizes a panel encoding back into attribute value indices:
    /// a soft resonator pass followed by hard coordinate descent (unbind
    /// the other factors' current codewords, clean up, repeat) — the
    /// "cleanup memory" refinement NVSA applies after resonance.
    #[must_use]
    pub fn decode_panel(&self, panel: &BlockCode) -> Vec<usize> {
        let mut target = panel.clone();
        quantize_code(&mut target, self.config.symbolic_dtype);
        let mut indices = self
            .engine
            .factorize(&target, self.config.resonator)
            .expect("geometry fixed at construction")
            .indices;
        self.hard_descent(&target, &mut indices);
        let mut best_sim = self.reconstruction_similarity(&target, &indices);

        // The resonator occasionally settles on a spurious fixed point
        // (≈1% of panels). A correct assignment reconstructs the target
        // almost exactly, so a low similarity is a reliable failure
        // detector; recover by enumerating the first factor and running
        // coordinate descent on the rest.
        if best_sim < 0.5 {
            let v = self.codebooks[0].len();
            'outer: for first in 0..v {
                let mut cand = indices.clone();
                cand[0] = first;
                // Re-derive the remaining factors from scratch given the
                // fixed first factor.
                for idx in cand.iter_mut().skip(1) {
                    *idx = 0;
                }
                self.hard_descent_fixed_first(&target, &mut cand);
                let sim = self.reconstruction_similarity(&target, &cand);
                if sim > best_sim {
                    best_sim = sim;
                    indices = cand;
                }
                if best_sim > 0.8 {
                    break 'outer;
                }
            }
        }

        // Last resort: enumerate the first *two* factors (exact for
        // three-factor codes, the RPM case) and descend the rest. The
        // tighter threshold keeps this off the path for merely-ambiguous
        // panels, which legitimately reconstruct below 0.5.
        if best_sim < 0.35 && self.codebooks.len() >= 2 {
            let v0 = self.codebooks[0].len();
            let v1 = self.codebooks[1].len();
            'pairs: for first in 0..v0 {
                for second in 0..v1 {
                    let mut cand = indices.clone();
                    cand[0] = first;
                    cand[1] = second;
                    for idx in cand.iter_mut().skip(2) {
                        *idx = 0;
                    }
                    for _ in 0..2 {
                        let mut changed = false;
                        for a in 2..self.codebooks.len() {
                            if self.descend_one(&target, &mut cand, a) {
                                changed = true;
                            }
                        }
                        if !changed {
                            break;
                        }
                    }
                    let sim = self.reconstruction_similarity(&target, &cand);
                    if sim > best_sim {
                        best_sim = sim;
                        indices = cand;
                    }
                    if best_sim > 0.8 {
                        break 'pairs;
                    }
                }
            }
        }
        indices
    }

    /// The perception front-end's view of one attribute codeword: a soft
    /// mixture with a confusable alternative, weighted by a random
    /// ambiguity draw (see [`PipelineConfig::ambiguity_std`]).
    fn perceived_codeword<R: Rng + ?Sized>(
        &self,
        book: &Codebook,
        val: usize,
        rng: &mut R,
    ) -> BlockCode {
        let cw = book.codeword(val);
        if self.config.ambiguity_std <= 0.0 || book.len() < 2 {
            return cw.clone();
        }
        // Quantized perception networks drift further on ambiguous inputs:
        // the decision margin absorbs noise proportional to the relative
        // quantization step (zero for floating formats).
        let margin_noise = match self.config.neural_dtype.integer_max() {
            Some(qmax) => self.config.neural_quant_noise / qmax as f32,
            None => 0.0,
        };
        let eps = (gaussianish(rng) * self.config.ambiguity_std + gaussianish(rng) * margin_noise)
            .abs()
            .min(0.95);
        if eps == 0.0 {
            return cw.clone();
        }
        let alt_offset = 1 + rng.gen_range(0..book.len() - 1);
        let alt = book.codeword((val + alt_offset) % book.len());
        let mut mixed = cw.clone();
        for (m, a) in mixed.data_mut().iter_mut().zip(alt.data()) {
            *m = (1.0 - eps) * *m + eps * a;
        }
        mixed
    }

    /// Coordinate descent over discrete assignments (all factors).
    fn hard_descent(&self, target: &BlockCode, indices: &mut [usize]) {
        for _ in 0..3 {
            let mut changed = false;
            for a in 0..self.codebooks.len() {
                if self.descend_one(target, indices, a) {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Coordinate descent holding factor 0 fixed.
    fn hard_descent_fixed_first(&self, target: &BlockCode, indices: &mut [usize]) {
        for _ in 0..3 {
            let mut changed = false;
            for a in 1..self.codebooks.len() {
                if self.descend_one(target, indices, a) {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// One coordinate update: re-derive factor `a` by unbinding the
    /// others and cleaning up. Returns whether the assignment changed.
    fn descend_one(&self, target: &BlockCode, indices: &mut [usize], a: usize) -> bool {
        let mut others: Option<BlockCode> = None;
        for (g, book) in self.codebooks.iter().enumerate() {
            if g == a {
                continue;
            }
            let cw = book.codeword(indices[g]);
            others = Some(match others {
                None => cw.clone(),
                Some(prev) => fft::bind_fast(&prev, cw).expect("geometry fixed"),
            });
        }
        let residual = fft::unbind_fast(target, &others.expect("at least two factors"))
            .expect("geometry fixed");
        let best = self.engine.books()[a]
            .cleanup(&residual, &self.config.kernels)
            .expect("geometry fixed");
        let changed = best != indices[a];
        indices[a] = best;
        changed
    }

    /// Similarity between the target and the bound product of an
    /// assignment — ≈1 for the true factorization of a clean product.
    fn reconstruction_similarity(&self, target: &BlockCode, indices: &[usize]) -> f32 {
        let mut acc: Option<BlockCode> = None;
        for (book, &idx) in self.codebooks.iter().zip(indices) {
            let cw = book.codeword(idx);
            acc = Some(match acc {
                None => cw.clone(),
                Some(prev) => fft::bind_fast(&prev, cw).expect("geometry fixed"),
            });
        }
        target
            .similarity(&acc.expect("at least two factors"))
            .expect("geometry fixed")
    }

    /// Solves a task end to end, returning the chosen candidate index.
    ///
    /// # Panics
    ///
    /// Panics if the task's attribute/value counts disagree with the
    /// reasoner's.
    pub fn solve<R: Rng + ?Sized>(&self, task: &RpmTask, rng: &mut R) -> usize {
        self.solve_explained(task, rng).choice
    }

    /// Solves a task and exposes the intermediate reasoning state (useful
    /// for error analysis and the examples).
    ///
    /// # Panics
    ///
    /// Panics if the task's attribute/value counts disagree with the
    /// reasoner's.
    pub fn solve_explained<R: Rng + ?Sized>(&self, task: &RpmTask, rng: &mut R) -> Solution {
        assert_eq!(
            task.attributes,
            self.codebooks.len(),
            "attribute count mismatch"
        );
        assert_eq!(task.values, self.values, "value count mismatch");

        // ① Perceive and ② factorize the eight context panels.
        let mut decoded = [
            [vec![], vec![], vec![]],
            [vec![], vec![], vec![]],
            [vec![], vec![], vec![]],
        ];
        for (r, row) in task.grid.iter().enumerate() {
            for (c, cell) in row.iter().enumerate() {
                if r == 2 && c == 2 {
                    continue;
                }
                let enc = self.encode_panel(cell, rng);
                decoded[r][c] = self.decode_panel(&enc);
            }
        }

        // ③ Infer the rule per attribute and predict the hidden panel.
        let predicted: Vec<usize> = (0..task.attributes)
            .map(|a| self.predict_attribute(&decoded, a))
            .collect();

        // ④ Score candidates against the predicted panel's encoding.
        let target = self.encode_exact(&predicted);
        let mut best = 0usize;
        let mut best_sim = f32::NEG_INFINITY;
        let mut sims = Vec::with_capacity(task.candidates.len());
        for (i, cand) in task.candidates.iter().enumerate() {
            let cand_enc = self.encode_panel(cand, rng);
            let sim = target.similarity(&cand_enc).expect("geometry fixed");
            sims.push(sim);
            if sim > best_sim {
                best_sim = sim;
                best = i;
            }
        }
        Solution {
            choice: best,
            predicted,
            decoded_context: decoded,
            candidate_sims: sims,
        }
    }

    /// Rule inference for one attribute from the decoded context.
    fn predict_attribute(&self, d: &[[Vec<usize>; 3]; 3], a: usize) -> usize {
        let v = self.values;
        let row = |r: usize, c: usize| d[r][c][a];

        // Constant: both complete rows are constant.
        if row(0, 0) == row(0, 1)
            && row(0, 1) == row(0, 2)
            && row(1, 0) == row(1, 1)
            && row(1, 1) == row(1, 2)
        {
            return row(2, 0);
        }
        // Progression: consistent step within and across the two rows.
        let step0 = (row(0, 1) + v - row(0, 0)) % v;
        if step0 != 0
            && (row(0, 2) + v - row(0, 1)) % v == step0
            && (row(1, 1) + v - row(1, 0)) % v == step0
            && (row(1, 2) + v - row(1, 1)) % v == step0
        {
            return (row(2, 1) + step0) % v;
        }
        // Distribute-three: rows share a value triple.
        let mut t0 = [row(0, 0), row(0, 1), row(0, 2)];
        let mut t1 = [row(1, 0), row(1, 1), row(1, 2)];
        t0.sort_unstable();
        t1.sort_unstable();
        if t0 == t1 && t0[0] != t0[1] && t0[1] != t0[2] {
            // The missing element of the triple in row 2.
            for &cand in &t0 {
                if cand != row(2, 0) && cand != row(2, 1) {
                    return cand;
                }
            }
        }
        // Fallback: copy the neighbour (keeps the pipeline total).
        row(2, 1)
    }
}

fn quantize_codebook(book: &Codebook, dtype: DType) -> Codebook {
    let codewords = book
        .codewords()
        .iter()
        .map(|cw| {
            let mut q = cw.clone();
            quantize_code(&mut q, dtype);
            q
        })
        .collect();
    Codebook::from_codewords(codewords).expect("quantization preserves geometry")
}

/// Fake-quantizes a block code **per block**: each block gets its own
/// symmetric scale, matching the per-block scale registers of the NSFlow
/// datapath (block boundaries are hardware tile boundaries, so per-block
/// scaling is free).
fn quantize_code(code: &mut BlockCode, dtype: DType) {
    match dtype {
        DType::Fp32 => {}
        DType::Fp16 => {
            for x in code.data_mut() {
                *x = quant::round_to_f16(*x);
            }
        }
        DType::Int8 | DType::Int4 => {
            let bd = code.block_dim();
            let nb = code.n_blocks();
            for blk in 0..nb {
                let start = blk * bd;
                let slice = &code.data()[start..start + bd];
                if let Ok(p) = QuantParams::fit(slice, dtype) {
                    for x in &mut code.data_mut()[start..start + bd] {
                        *x = p.fake_quantize(*x);
                    }
                }
            }
        }
    }
}

/// Half quantization step of one value lattice over a block code's range —
/// the scale of the error a quantized *network* accumulates per layer.
fn quant_step(code: &BlockCode, dtype: DType) -> f32 {
    match dtype {
        DType::Fp32 | DType::Fp16 => 0.0,
        DType::Int8 | DType::Int4 => {
            let max_abs = code.data().iter().fold(0.0f32, |m, x| m.max(x.abs()));
            let qmax = dtype.integer_max().unwrap_or(1) as f32;
            max_abs / qmax
        }
    }
}

/// Cheap approximately-normal draw (sum of uniforms).
fn gaussianish<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    (0..6).map(|_| rng.gen::<f32>()).sum::<f32>() * 2.0 - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raven::{generate, TaskParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            block_dim: 32,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn encode_decode_round_trip_clean() {
        let mut rng = StdRng::seed_from_u64(1);
        let r = VsaReasoner::new(
            3,
            6,
            PipelineConfig {
                noise_std: 0.0,
                ..small_config()
            },
            &mut rng,
        );
        for attrs in [[0usize, 0, 0], [5, 3, 1], [2, 2, 4]] {
            let enc = r.encode_panel(&attrs, &mut rng);
            assert_eq!(r.decode_panel(&enc), attrs.to_vec());
        }
    }

    #[test]
    fn decode_survives_moderate_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let r = VsaReasoner::new(
            3,
            6,
            PipelineConfig {
                noise_std: 0.02,
                ..small_config()
            },
            &mut rng,
        );
        let mut correct = 0;
        for trial in 0..20 {
            let attrs = [trial % 6, (trial * 2) % 6, (trial * 3) % 6];
            let enc = r.encode_panel(&attrs, &mut rng);
            if r.decode_panel(&enc) == attrs.to_vec() {
                correct += 1;
            }
        }
        assert!(correct >= 18, "decode accuracy {correct}/20 too low");
    }

    #[test]
    fn solve_is_near_perfect_at_fp32_low_noise() {
        let mut rng = StdRng::seed_from_u64(3);
        let reasoner = VsaReasoner::new(
            3,
            8,
            PipelineConfig {
                noise_std: 0.01,
                ..small_config()
            },
            &mut rng,
        );
        let mut correct = 0;
        for _ in 0..15 {
            let task = generate(&TaskParams::default(), &mut rng);
            if reasoner.solve(&task, &mut rng) == task.answer {
                correct += 1;
            }
        }
        assert!(correct >= 13, "fp32 accuracy {correct}/15 too low");
    }

    #[test]
    fn int4_symbolic_is_worse_or_equal_to_fp32() {
        let mut rng = StdRng::seed_from_u64(4);
        let noisy = PipelineConfig {
            noise_std: 0.06,
            ..small_config()
        };
        let fp32 = VsaReasoner::new(3, 8, noisy, &mut rng);
        let mut rng2 = StdRng::seed_from_u64(4);
        let int4 = VsaReasoner::new(
            3,
            8,
            PipelineConfig {
                symbolic_dtype: DType::Int4,
                neural_dtype: DType::Int4,
                ..noisy
            },
            &mut rng2,
        );
        let eval = |r: &VsaReasoner, seed: u64| {
            let mut trng = StdRng::seed_from_u64(seed);
            let mut c = 0;
            for _ in 0..12 {
                let task = generate(&TaskParams::default(), &mut trng);
                if r.solve(&task, &mut trng) == task.answer {
                    c += 1;
                }
            }
            c
        };
        let acc_fp32 = eval(&fp32, 77);
        let acc_int4 = eval(&int4, 77);
        assert!(
            acc_int4 <= acc_fp32 + 1,
            "INT4 {acc_int4} vs FP32 {acc_fp32}"
        );
    }

    #[test]
    fn rule_prediction_constant_progression_distribute() {
        let mut rng = StdRng::seed_from_u64(5);
        let r = VsaReasoner::new(
            3,
            8,
            PipelineConfig {
                noise_std: 0.0,
                ..small_config()
            },
            &mut rng,
        );
        // Hand-built decoded grid: attr0 constant 5, attr1 progression +1
        // from 2, attr2 distribute-three {1,4,6}.
        let mk = |a0: usize, a1: usize, a2: usize| vec![a0, a1, a2];
        let d: [[Vec<usize>; 3]; 3] = [
            [mk(5, 2, 1), mk(5, 3, 4), mk(5, 4, 6)],
            [mk(5, 4, 4), mk(5, 5, 6), mk(5, 6, 1)],
            [mk(5, 6, 6), mk(5, 7, 1), vec![0, 0, 0]],
        ];
        assert_eq!(r.predict_attribute(&d, 0), 5);
        assert_eq!(r.predict_attribute(&d, 1), 0); // (7+1) mod 8
        assert_eq!(r.predict_attribute(&d, 2), 4); // missing from {1,4,6}
    }

    #[test]
    #[should_panic(expected = "attribute count mismatch")]
    fn encode_checks_attribute_count() {
        let mut rng = StdRng::seed_from_u64(6);
        let r = VsaReasoner::new(3, 6, small_config(), &mut rng);
        let _ = r.encode_panel(&[1, 2], &mut rng);
    }
}
