//! The Tab. IV harness: reasoning accuracy and model memory across
//! precisions.

use nsflow_tensor::DType;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::raven::generate;
use crate::reasoning::{PipelineConfig, VsaReasoner};
use crate::suites::Suite;

/// A named precision assignment (the columns of Tab. IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Precision {
    /// Column label.
    pub label: &'static str,
    /// Neural (perception output) precision.
    pub neural: DType,
    /// Symbolic (VSA datapath) precision.
    pub symbolic: DType,
}

impl Precision {
    /// FP32 everywhere.
    #[must_use]
    pub fn fp32() -> Self {
        Precision {
            label: "FP32",
            neural: DType::Fp32,
            symbolic: DType::Fp32,
        }
    }

    /// FP16 everywhere.
    #[must_use]
    pub fn fp16() -> Self {
        Precision {
            label: "FP16",
            neural: DType::Fp16,
            symbolic: DType::Fp16,
        }
    }

    /// INT8 everywhere.
    #[must_use]
    pub fn int8() -> Self {
        Precision {
            label: "INT8",
            neural: DType::Int8,
            symbolic: DType::Int8,
        }
    }

    /// The paper's mixed precision: INT8 neural, INT4 symbolic.
    #[must_use]
    pub fn mixed() -> Self {
        Precision {
            label: "MP",
            neural: DType::Int8,
            symbolic: DType::Int4,
        }
    }

    /// INT4 everywhere.
    #[must_use]
    pub fn int4() -> Self {
        Precision {
            label: "INT4",
            neural: DType::Int4,
            symbolic: DType::Int4,
        }
    }

    /// The Tab. IV column order.
    #[must_use]
    pub fn table4_columns() -> [Precision; 5] {
        [
            Precision::fp32(),
            Precision::fp16(),
            Precision::int8(),
            Precision::mixed(),
            Precision::int4(),
        ]
    }
}

/// Evaluation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Number of tasks to evaluate.
    pub tasks: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { tasks: 200 }
    }
}

/// One accuracy measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Suite evaluated.
    pub suite: Suite,
    /// Precision column.
    pub precision: Precision,
    /// Fraction of tasks answered correctly.
    pub accuracy: f64,
    /// Tasks evaluated.
    pub tasks: usize,
}

/// Runs the reasoning pipeline over `cfg.tasks` generated tasks of the
/// suite at the given precision.
#[must_use]
pub fn evaluate(suite: Suite, precision: Precision, cfg: &EvalConfig, seed: u64) -> AccuracyReport {
    let params = suite.task_params();
    let pipeline = PipelineConfig {
        neural_dtype: precision.neural,
        symbolic_dtype: precision.symbolic,
        ..suite.pipeline_config()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let reasoner = VsaReasoner::new(params.attributes, params.values, pipeline, &mut rng);
    let mut correct = 0usize;
    for _ in 0..cfg.tasks {
        let task = generate(&params, &mut rng);
        if reasoner.solve(&task, &mut rng) == task.answer {
            correct += 1;
        }
    }
    AccuracyReport {
        suite,
        precision,
        accuracy: correct as f64 / cfg.tasks.max(1) as f64,
        tasks: cfg.tasks,
    }
}

/// Model memory footprint (bytes) at a precision split: NN weights at the
/// neural precision plus the symbolic dictionaries/codebooks at the
/// symbolic precision — the Tab. IV "Memory" row.
#[must_use]
pub fn model_memory_bytes(nn_params: usize, symbolic_elems: usize, precision: Precision) -> usize {
    precision.neural.storage_bytes(nn_params) + precision.symbolic.storage_bytes(symbolic_elems)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_columns_are_five() {
        let cols = Precision::table4_columns();
        assert_eq!(cols.len(), 5);
        assert_eq!(cols[3].label, "MP");
        assert_eq!(cols[3].neural, DType::Int8);
        assert_eq!(cols[3].symbolic, DType::Int4);
    }

    #[test]
    fn evaluate_is_deterministic_per_seed() {
        let cfg = EvalConfig { tasks: 5 };
        let a = evaluate(Suite::RavenLike, Precision::fp32(), &cfg, 11);
        let b = evaluate(Suite::RavenLike, Precision::fp32(), &cfg, 11);
        assert_eq!(a.accuracy, b.accuracy);
    }

    #[test]
    fn fp32_raven_accuracy_is_high_on_small_sample() {
        let cfg = EvalConfig { tasks: 12 };
        let r = evaluate(Suite::RavenLike, Precision::fp32(), &cfg, 21);
        assert!(r.accuracy >= 0.8, "accuracy {}", r.accuracy);
    }

    #[test]
    fn memory_row_matches_paper_ratios() {
        // The paper's NVSA model: 32 MB at FP32. With the 3M/5M split of
        // NN parameters vs symbolic elements, MP lands at 5.5 MB — the
        // 5.8× saving Tab. IV reports.
        let nn = 3 * 1024 * 1024;
        let symb = 5 * 1024 * 1024;
        let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
        assert_eq!(mb(model_memory_bytes(nn, symb, Precision::fp32())), 32.0);
        assert_eq!(mb(model_memory_bytes(nn, symb, Precision::fp16())), 16.0);
        assert_eq!(mb(model_memory_bytes(nn, symb, Precision::int8())), 8.0);
        assert_eq!(mb(model_memory_bytes(nn, symb, Precision::mixed())), 5.5);
        assert_eq!(mb(model_memory_bytes(nn, symb, Precision::int4())), 4.0);
    }
}
