//! Synthetic Raven's-Progressive-Matrices task generator.
//!
//! A task is a 3×3 matrix of panels; each panel has `attributes` discrete
//! attributes taking one of `values` values. Each attribute follows one
//! row rule sampled independently:
//!
//! - **Constant**: the attribute is identical across a row,
//! - **Progression**: the attribute increases by a fixed step per column
//!   (mod `values`),
//! - **DistributeThree**: each row is a permutation of the same three
//!   values, cyclically shifted per row (as in RAVEN).
//!
//! The bottom-right panel is withheld; `candidates` answer panels are
//! offered, one correct and the rest perturbed — either by resampling an
//! attribute (RAVEN-style, attribute-bias-prone) or by single-attribute
//! edits of the answer (I-RAVEN-style, bias-free and more confusable).

use rand::Rng;

/// Row rule for one attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Same value across the row.
    Constant,
    /// `+step` per column, modulo the value count.
    Progression {
        /// Per-column increment (1 or 2).
        step: usize,
    },
    /// Rows are cyclic shifts of a common value triple.
    DistributeThree,
}

/// One generated task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpmTask {
    /// Number of attributes per panel.
    pub attributes: usize,
    /// Number of values per attribute.
    pub values: usize,
    /// `grid[r][c][a]` = value of attribute `a` in panel `(r, c)`;
    /// the grid includes the (hidden) answer at `[2][2]`.
    pub grid: [[Vec<usize>; 3]; 3],
    /// Rule per attribute.
    pub rules: Vec<Rule>,
    /// Candidate panels (attribute vectors).
    pub candidates: Vec<Vec<usize>>,
    /// Index of the correct candidate.
    pub answer: usize,
}

/// Candidate-generation style.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateStyle {
    /// RAVEN-style: distractors resample whole attributes at random.
    Raven,
    /// I-RAVEN-style: distractors are single-attribute edits of the
    /// answer — harder to reject.
    IRaven,
}

/// Generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskParams {
    /// Attributes per panel (RAVEN uses type/size/color ≈ 3; PGM more).
    pub attributes: usize,
    /// Values per attribute (≥ 4 so DistributeThree has room).
    pub values: usize,
    /// Number of answer candidates (8 in RAVEN/I-RAVEN/PGM).
    pub candidates: usize,
    /// Distractor style.
    pub style: CandidateStyle,
}

impl Default for TaskParams {
    fn default() -> Self {
        TaskParams {
            attributes: 3,
            values: 8,
            candidates: 8,
            style: CandidateStyle::Raven,
        }
    }
}

/// Generates one task.
///
/// # Panics
///
/// Panics if `values < 4`, `attributes == 0` or `candidates < 2`.
pub fn generate<R: Rng + ?Sized>(params: &TaskParams, rng: &mut R) -> RpmTask {
    assert!(params.values >= 4, "need at least 4 values");
    assert!(params.attributes > 0, "need at least one attribute");
    assert!(params.candidates >= 2, "need at least two candidates");
    let v = params.values;
    // The candidate pool must be large enough for distinct distractors.
    let pool = match params.style {
        CandidateStyle::Raven => v.pow(params.attributes as u32),
        CandidateStyle::IRaven => params.attributes * (v - 1) + 1,
    };
    assert!(
        params.candidates <= pool,
        "candidate count exceeds distractor pool {pool}"
    );

    // Sample a rule per attribute and fill the 3×3 grid.
    let mut rules = Vec::with_capacity(params.attributes);
    let mut grid: [[Vec<usize>; 3]; 3] = Default::default();
    for row in &mut grid {
        for cell in row.iter_mut() {
            *cell = vec![0; params.attributes];
        }
    }
    for a in 0..params.attributes {
        let rule = match rng.gen_range(0..3) {
            0 => Rule::Constant,
            1 => Rule::Progression {
                step: rng.gen_range(1..=2),
            },
            _ => Rule::DistributeThree,
        };
        rules.push(rule);
        match rule {
            Rule::Constant => {
                for row in &mut grid {
                    let val = rng.gen_range(0..v);
                    for cell in row.iter_mut() {
                        cell[a] = val;
                    }
                }
            }
            Rule::Progression { step } => {
                for row in &mut grid {
                    let start = rng.gen_range(0..v);
                    for (c, cell) in row.iter_mut().enumerate() {
                        cell[a] = (start + c * step) % v;
                    }
                }
            }
            Rule::DistributeThree => {
                // Three distinct values, rows are cyclic shifts.
                let mut triple = [0usize; 3];
                triple[0] = rng.gen_range(0..v);
                triple[1] = (triple[0] + 1 + rng.gen_range(0..v - 2)) % v;
                loop {
                    triple[2] = rng.gen_range(0..v);
                    if triple[2] != triple[0] && triple[2] != triple[1] {
                        break;
                    }
                }
                for (r, row) in grid.iter_mut().enumerate() {
                    for (c, cell) in row.iter_mut().enumerate() {
                        cell[a] = triple[(c + r) % 3];
                    }
                }
            }
        }
    }

    let answer_panel = grid[2][2].clone();
    // Build candidates: the answer plus perturbed distractors, all unique.
    let mut candidates: Vec<Vec<usize>> = vec![answer_panel.clone()];
    while candidates.len() < params.candidates {
        let mut distractor = answer_panel.clone();
        match params.style {
            CandidateStyle::Raven => {
                // Resample 1..=attributes attributes entirely.
                let edits = rng.gen_range(1..=params.attributes);
                for _ in 0..edits {
                    let a = rng.gen_range(0..params.attributes);
                    distractor[a] = rng.gen_range(0..v);
                }
            }
            CandidateStyle::IRaven => {
                // Exactly one attribute shifted to a different value —
                // maximally confusable while keeping the candidate pool
                // large enough (attributes × (values − 1) possibilities).
                let a = rng.gen_range(0..params.attributes);
                let delta = rng.gen_range(1..v);
                distractor[a] = (distractor[a] + delta) % v;
            }
        }
        if !candidates.contains(&distractor) {
            candidates.push(distractor);
        }
    }
    // Shuffle (Fisher–Yates) and locate the answer.
    for i in (1..candidates.len()).rev() {
        let j = rng.gen_range(0..=i);
        candidates.swap(i, j);
    }
    let answer = candidates
        .iter()
        .position(|c| *c == answer_panel)
        .expect("answer panel is always among the candidates");

    RpmTask {
        attributes: params.attributes,
        values: v,
        grid,
        rules,
        candidates,
        answer,
    }
}

impl RpmTask {
    /// The eight context panels in row-major order (excluding `[2][2]`).
    #[must_use]
    pub fn context(&self) -> Vec<&[usize]> {
        let mut out = Vec::with_capacity(8);
        for (r, row) in self.grid.iter().enumerate() {
            for (c, cell) in row.iter().enumerate() {
                if r == 2 && c == 2 {
                    continue;
                }
                out.push(cell.as_slice());
            }
        }
        out
    }

    /// The hidden answer panel's attribute values.
    #[must_use]
    pub fn answer_panel(&self) -> &[usize] {
        &self.grid[2][2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn generated_grid_respects_rules() {
        let mut r = rng();
        for _ in 0..50 {
            let t = generate(&TaskParams::default(), &mut r);
            for (a, rule) in t.rules.iter().enumerate() {
                for row in &t.grid {
                    match *rule {
                        Rule::Constant => {
                            assert_eq!(row[0][a], row[1][a]);
                            assert_eq!(row[1][a], row[2][a]);
                        }
                        Rule::Progression { step } => {
                            assert_eq!((row[0][a] + step) % t.values, row[1][a]);
                            assert_eq!((row[1][a] + step) % t.values, row[2][a]);
                        }
                        Rule::DistributeThree => {
                            let mut vals = [row[0][a], row[1][a], row[2][a]];
                            vals.sort_unstable();
                            assert!(vals[0] != vals[1] && vals[1] != vals[2]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn distribute_three_rows_share_the_triple() {
        let mut r = rng();
        for _ in 0..50 {
            let t = generate(&TaskParams::default(), &mut r);
            for (a, rule) in t.rules.iter().enumerate() {
                if *rule == Rule::DistributeThree {
                    let row_set = |row: usize| {
                        let mut s = [t.grid[row][0][a], t.grid[row][1][a], t.grid[row][2][a]];
                        s.sort_unstable();
                        s
                    };
                    assert_eq!(row_set(0), row_set(1));
                    assert_eq!(row_set(1), row_set(2));
                }
            }
        }
    }

    #[test]
    fn answer_is_among_unique_candidates() {
        let mut r = rng();
        for _ in 0..50 {
            let t = generate(&TaskParams::default(), &mut r);
            assert_eq!(t.candidates.len(), 8);
            assert_eq!(t.candidates[t.answer], *t.answer_panel());
            let unique: std::collections::HashSet<_> = t.candidates.iter().collect();
            assert_eq!(unique.len(), t.candidates.len());
        }
    }

    #[test]
    fn context_has_eight_panels() {
        let t = generate(&TaskParams::default(), &mut rng());
        assert_eq!(t.context().len(), 8);
    }

    #[test]
    fn iraven_distractors_differ_in_one_attribute() {
        let params = TaskParams {
            style: CandidateStyle::IRaven,
            ..TaskParams::default()
        };
        let mut r = rng();
        for _ in 0..20 {
            let t = generate(&params, &mut r);
            for (i, c) in t.candidates.iter().enumerate() {
                if i == t.answer {
                    continue;
                }
                let diffs = c
                    .iter()
                    .zip(t.answer_panel())
                    .filter(|(x, y)| x != y)
                    .count();
                assert_eq!(
                    diffs, 1,
                    "I-RAVEN distractor must differ in exactly 1 attribute"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&TaskParams::default(), &mut StdRng::seed_from_u64(5));
        let b = generate(&TaskParams::default(), &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
