//! Computation-in-superposition capacity — the mechanism behind MIMONet.
//!
//! MIMONet binds several inputs to distinct keys, *bundles* them into one
//! vector, pushes the superposition through a single network pass, and
//! unbinds per-key outputs. The fidelity of that scheme is bounded by VSA
//! superposition capacity: crosstalk between the bundled items grows with
//! their count and with quantization noise. This module measures exactly
//! that — per-item retrieval accuracy as a function of superposition width
//! and precision — the MIMONet-side counterpart of the Tab. IV study
//! ("similar results are observed in MIMONet/LVRF on CVR/SVRT datasets").

use nsflow_tensor::quant::QuantParams;
use nsflow_tensor::DType;
use nsflow_vsa::{ops, BlockCode, Codebook};
use rand::Rng;

/// Configuration of a capacity measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityConfig {
    /// Blocks per code.
    pub n_blocks: usize,
    /// Elements per block.
    pub block_dim: usize,
    /// Item-codebook size (distinct retrievable symbols).
    pub items: usize,
    /// Precision the superposed vector (the "network activation") is
    /// quantized to.
    pub dtype: DType,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        CapacityConfig {
            n_blocks: 4,
            block_dim: 64,
            items: 16,
            dtype: DType::Fp32,
        }
    }
}

/// Result of one capacity measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityReport {
    /// Superposition width measured.
    pub superposition: usize,
    /// Fraction of items retrieved correctly.
    pub retrieval_accuracy: f64,
    /// Trials performed (each trial retrieves every superposed item).
    pub trials: usize,
}

/// Measures per-item retrieval accuracy at superposition width
/// `superposition` over `trials` random bundles.
///
/// Each trial draws `superposition` distinct items, binds each to its own
/// random unitary key, bundles the bound pairs, quantizes the bundle at
/// `config.dtype`, then unbinds with each key and recalls through the item
/// codebook. A retrieval counts as correct when cleanup returns the
/// original item.
///
/// # Panics
///
/// Panics if `superposition == 0` or `superposition > config.items`.
pub fn measure_capacity<R: Rng + ?Sized>(
    config: &CapacityConfig,
    superposition: usize,
    trials: usize,
    rng: &mut R,
) -> CapacityReport {
    assert!(superposition > 0, "superposition width must be positive");
    assert!(
        superposition <= config.items,
        "cannot superpose more distinct items than the codebook holds"
    );
    let items = Codebook::random_unitary(config.items, config.n_blocks, config.block_dim, rng);
    let keys =
        Codebook::random_unitary(superposition.max(2), config.n_blocks, config.block_dim, rng);

    let mut correct = 0usize;
    let mut total = 0usize;
    for _ in 0..trials {
        // Draw distinct item indices.
        let mut chosen: Vec<usize> = Vec::with_capacity(superposition);
        while chosen.len() < superposition {
            let c = rng.gen_range(0..config.items);
            if !chosen.contains(&c) {
                chosen.push(c);
            }
        }
        // Superpose bind(item_i, key_i).
        let bound: Vec<BlockCode> = chosen
            .iter()
            .enumerate()
            .map(|(slot, &item)| {
                items
                    .codeword(item)
                    .bind(keys.codeword(slot))
                    .expect("geometry fixed")
            })
            .collect();
        let mut bundle = ops::bundle(bound.iter()).expect("non-empty");
        bundle.normalize();
        quantize(&mut bundle, config.dtype);

        // Retrieve each slot.
        for (slot, &item) in chosen.iter().enumerate() {
            let recovered = bundle.unbind(keys.codeword(slot)).expect("geometry fixed");
            total += 1;
            if items.cleanup(&recovered).expect("geometry fixed") == item {
                correct += 1;
            }
        }
    }
    CapacityReport {
        superposition,
        retrieval_accuracy: correct as f64 / total.max(1) as f64,
        trials,
    }
}

fn quantize(code: &mut BlockCode, dtype: DType) {
    match dtype {
        DType::Fp32 => {}
        DType::Fp16 => {
            for x in code.data_mut() {
                *x = nsflow_tensor::quant::round_to_f16(*x);
            }
        }
        DType::Int8 | DType::Int4 => {
            let bd = code.block_dim();
            for blk in 0..code.n_blocks() {
                let start = blk * bd;
                if let Ok(p) = QuantParams::fit(&code.data()[start..start + bd], dtype) {
                    for x in &mut code.data_mut()[start..start + bd] {
                        *x = p.fake_quantize(*x);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    #[test]
    fn single_item_retrieval_is_perfect() {
        let r = measure_capacity(&CapacityConfig::default(), 1, 20, &mut rng());
        assert_eq!(r.retrieval_accuracy, 1.0);
    }

    #[test]
    fn small_superpositions_retrieve_reliably() {
        let r = measure_capacity(&CapacityConfig::default(), 4, 15, &mut rng());
        assert!(
            r.retrieval_accuracy > 0.95,
            "accuracy {}",
            r.retrieval_accuracy
        );
    }

    #[test]
    fn accuracy_degrades_with_width() {
        let mut g = rng();
        let cfg = CapacityConfig::default();
        let narrow = measure_capacity(&cfg, 2, 15, &mut g).retrieval_accuracy;
        let wide = measure_capacity(&cfg, 14, 15, &mut g).retrieval_accuracy;
        assert!(
            wide <= narrow,
            "capacity must not improve with width: {wide} vs {narrow}"
        );
    }

    #[test]
    fn int4_is_no_better_than_fp32() {
        let mut g1 = StdRng::seed_from_u64(5);
        let mut g2 = StdRng::seed_from_u64(5);
        let fp = measure_capacity(&CapacityConfig::default(), 8, 15, &mut g1);
        let q = measure_capacity(
            &CapacityConfig {
                dtype: DType::Int4,
                ..CapacityConfig::default()
            },
            8,
            15,
            &mut g2,
        );
        assert!(q.retrieval_accuracy <= fp.retrieval_accuracy + 0.05);
    }

    #[test]
    #[should_panic(expected = "cannot superpose more distinct items")]
    fn width_beyond_codebook_rejected() {
        let _ = measure_capacity(&CapacityConfig::default(), 17, 1, &mut rng());
    }
}
