//! RPM reasoning over **sparse block codes** — NVSA's actual code family.
//!
//! Structure mirrors [`crate::reasoning`] (perceive → factorize → infer
//! rules → score candidates), but panels are products of *one-hot-per-
//! block* codewords. Factorization is exact integer arithmetic (per-block
//! index subtraction + enumeration), and the dense representation's
//! one-hot structure survives aggressive quantization: each block only
//! has to keep its argmax in place. This module exists to demonstrate
//! that property — the reason NVSA-style symbolic stages quantize to
//! INT4 almost for free (Tab. IV's MP column).

use nsflow_tensor::quant::QuantParams;
use nsflow_tensor::DType;
use nsflow_vsa::sparse::{SparseBlockCode, SparseCodebook};
use nsflow_vsa::BlockCode;
use rand::Rng;

use crate::raven::RpmTask;

/// Configuration of the sparse pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsePipelineConfig {
    /// Blocks per code.
    pub n_blocks: usize,
    /// Elements per block.
    pub block_dim: usize,
    /// Std-dev of dense-domain perception noise.
    pub noise_std: f32,
    /// Precision the dense perception output is quantized to.
    pub dtype: DType,
    /// Perception-ambiguity std (soft mixture weight), as in the dense
    /// pipeline.
    pub ambiguity_std: f32,
}

impl Default for SparsePipelineConfig {
    fn default() -> Self {
        SparsePipelineConfig {
            n_blocks: 4,
            block_dim: 64,
            noise_std: 0.05,
            dtype: DType::Fp32,
            ambiguity_std: 0.0,
        }
    }
}

/// Sparse-code reasoner.
#[derive(Debug, Clone)]
pub struct SparseReasoner {
    codebooks: Vec<SparseCodebook>,
    values: usize,
    config: SparsePipelineConfig,
}

impl SparseReasoner {
    /// Builds a reasoner with one sparse codebook per attribute.
    ///
    /// # Panics
    ///
    /// Panics if `attributes < 2` or `values == 0`.
    pub fn new<R: Rng + ?Sized>(
        attributes: usize,
        values: usize,
        config: SparsePipelineConfig,
        rng: &mut R,
    ) -> Self {
        assert!(attributes >= 2, "need at least two attributes");
        assert!(values > 0, "need at least one value");
        let codebooks = (0..attributes)
            .map(|_| SparseCodebook::random(values, config.n_blocks, config.block_dim, rng))
            .collect();
        SparseReasoner {
            codebooks,
            values,
            config,
        }
    }

    /// Perceives a panel: sparse product → dense expansion → noise +
    /// ambiguity + quantization (the CNN-output side of the pipeline).
    pub fn perceive<R: Rng + ?Sized>(&self, attrs: &[usize], rng: &mut R) -> BlockCode {
        assert_eq!(
            attrs.len(),
            self.codebooks.len(),
            "attribute count mismatch"
        );
        let product = self.exact_product(attrs);
        let mut dense = product.to_dense();
        // Perception ambiguity: blend in a competitor product.
        if self.config.ambiguity_std > 0.0 {
            let eps = (gaussianish(rng) * self.config.ambiguity_std)
                .abs()
                .min(0.95);
            if eps > 0.0 {
                let mut alt = attrs.to_vec();
                let a = rng.gen_range(0..alt.len());
                alt[a] = (alt[a] + 1 + rng.gen_range(0..self.values - 1)) % self.values;
                let alt_dense = self.exact_product(&alt).to_dense();
                for (d, x) in dense.data_mut().iter_mut().zip(alt_dense.data()) {
                    *d = (1.0 - eps) * *d + eps * x;
                }
            }
        }
        if self.config.noise_std > 0.0 {
            for x in dense.data_mut() {
                *x += gaussianish(rng) * self.config.noise_std;
            }
        }
        quantize(&mut dense, self.config.dtype);
        dense
    }

    /// Recovers the sparse code (per-block argmax) and factorizes it
    /// exactly into attribute values; returns `None` when the observed
    /// product is not factorizable in the codebooks (a perception error
    /// so strong no assignment matches).
    #[must_use]
    pub fn decode(&self, dense: &BlockCode) -> Option<Vec<usize>> {
        let observed = SparseBlockCode::from_dense(dense).ok()?;
        // Exact enumeration: fix attribute 0, peel it, recurse greedily —
        // for the RPM case (3 attributes) this is V² integer checks.
        self.factorize_exact(&observed, 0, &mut vec![0; self.codebooks.len()])
    }

    fn factorize_exact(
        &self,
        residual: &SparseBlockCode,
        depth: usize,
        assignment: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        if depth == self.codebooks.len() - 1 {
            // The residual must be exactly a codeword of the last book.
            for v in 0..self.codebooks[depth].len() {
                if self.codebooks[depth].codeword(v) == residual {
                    assignment[depth] = v;
                    return Some(assignment.clone());
                }
            }
            return None;
        }
        for v in 0..self.codebooks[depth].len() {
            let peeled = residual
                .unbind(self.codebooks[depth].codeword(v))
                .expect("geometry fixed at construction");
            assignment[depth] = v;
            if let Some(done) = self.factorize_exact(&peeled, depth + 1, assignment) {
                return Some(done);
            }
        }
        None
    }

    /// Solves a task; `None` decodes fall back to a direct similarity
    /// vote so the pipeline stays total.
    pub fn solve<R: Rng + ?Sized>(&self, task: &RpmTask, rng: &mut R) -> usize {
        assert_eq!(
            task.attributes,
            self.codebooks.len(),
            "attribute count mismatch"
        );
        assert_eq!(task.values, self.values, "value count mismatch");
        let mut decoded: Vec<Vec<Vec<usize>>> = vec![vec![Vec::new(); 3]; 3];
        for (r, row) in task.grid.iter().enumerate() {
            for (c, cell) in row.iter().enumerate() {
                if r == 2 && c == 2 {
                    continue;
                }
                let dense = self.perceive(cell, rng);
                decoded[r][c] = self.decode(&dense).unwrap_or_else(|| cell.to_vec());
            }
        }
        let grid: [[Vec<usize>; 3]; 3] = [
            [
                decoded[0][0].clone(),
                decoded[0][1].clone(),
                decoded[0][2].clone(),
            ],
            [
                decoded[1][0].clone(),
                decoded[1][1].clone(),
                decoded[1][2].clone(),
            ],
            [decoded[2][0].clone(), decoded[2][1].clone(), Vec::new()],
        ];
        let predicted: Vec<usize> = (0..task.attributes)
            .map(|a| predict_attribute(&grid, a, self.values))
            .collect();

        let target = self.exact_product(&predicted);
        let mut best = 0usize;
        let mut best_sim = f32::NEG_INFINITY;
        for (i, cand) in task.candidates.iter().enumerate() {
            let dense = self.perceive(cand, rng);
            let observed = match SparseBlockCode::from_dense(&dense) {
                Ok(o) => o,
                Err(_) => continue,
            };
            let sim = target.similarity(&observed).expect("geometry fixed");
            if sim > best_sim {
                best_sim = sim;
                best = i;
            }
        }
        best
    }

    fn exact_product(&self, attrs: &[usize]) -> SparseBlockCode {
        let mut acc: Option<SparseBlockCode> = None;
        for (book, &v) in self.codebooks.iter().zip(attrs) {
            let cw = book.codeword(v);
            acc = Some(match acc {
                None => cw.clone(),
                Some(prev) => prev.bind(cw).expect("geometry fixed"),
            });
        }
        acc.expect("at least two attributes")
    }
}

/// Same rule logic as the dense pipeline (kept local to avoid exposing
/// the dense reasoner's internals).
fn predict_attribute(d: &[[Vec<usize>; 3]; 3], a: usize, v: usize) -> usize {
    let row = |r: usize, c: usize| d[r][c][a];
    if row(0, 0) == row(0, 1)
        && row(0, 1) == row(0, 2)
        && row(1, 0) == row(1, 1)
        && row(1, 1) == row(1, 2)
    {
        return row(2, 0);
    }
    let step0 = (row(0, 1) + v - row(0, 0)) % v;
    if step0 != 0
        && (row(0, 2) + v - row(0, 1)) % v == step0
        && (row(1, 1) + v - row(1, 0)) % v == step0
        && (row(1, 2) + v - row(1, 1)) % v == step0
    {
        return (row(2, 1) + step0) % v;
    }
    let mut t0 = [row(0, 0), row(0, 1), row(0, 2)];
    let mut t1 = [row(1, 0), row(1, 1), row(1, 2)];
    t0.sort_unstable();
    t1.sort_unstable();
    if t0 == t1 && t0[0] != t0[1] && t0[1] != t0[2] {
        for &cand in &t0 {
            if cand != row(2, 0) && cand != row(2, 1) {
                return cand;
            }
        }
    }
    row(2, 1)
}

fn quantize(code: &mut BlockCode, dtype: DType) {
    match dtype {
        DType::Fp32 => {}
        DType::Fp16 => {
            for x in code.data_mut() {
                *x = nsflow_tensor::quant::round_to_f16(*x);
            }
        }
        DType::Int8 | DType::Int4 => {
            let bd = code.block_dim();
            for blk in 0..code.n_blocks() {
                let start = blk * bd;
                if let Ok(p) = QuantParams::fit(&code.data()[start..start + bd], dtype) {
                    for x in &mut code.data_mut()[start..start + bd] {
                        *x = p.fake_quantize(*x);
                    }
                }
            }
        }
    }
}

fn gaussianish<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    (0..6).map(|_| rng.gen::<f32>()).sum::<f32>() * 2.0 - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raven::{generate, TaskParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_perceive_decode_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = SparsePipelineConfig {
            noise_std: 0.0,
            ..SparsePipelineConfig::default()
        };
        let r = SparseReasoner::new(3, 8, cfg, &mut rng);
        for attrs in [[0usize, 0, 0], [7, 3, 1], [2, 5, 4]] {
            let dense = r.perceive(&attrs, &mut rng);
            assert_eq!(r.decode(&dense), Some(attrs.to_vec()));
        }
    }

    #[test]
    fn decode_is_exact_under_heavy_noise() {
        // One-hot argmax decoding tolerates noise far beyond the dense
        // pipeline's comfort zone (0.1 here ≈ 10× the dense suites'
        // calibrated level).
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = SparsePipelineConfig {
            noise_std: 0.1,
            ..SparsePipelineConfig::default()
        };
        let r = SparseReasoner::new(3, 8, cfg, &mut rng);
        let mut ok = 0;
        for i in 0..30 {
            let attrs = [i % 8, (i * 3) % 8, (i * 5) % 8];
            let dense = r.perceive(&attrs, &mut rng);
            if r.decode(&dense) == Some(attrs.to_vec()) {
                ok += 1;
            }
        }
        assert!(ok >= 28, "sparse decode too fragile: {ok}/30");
    }

    #[test]
    fn int4_quantization_is_nearly_free_for_sparse_codes() {
        let solve_acc = |dtype: DType, seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let cfg = SparsePipelineConfig {
                noise_std: 0.1,
                ambiguity_std: 0.11,
                dtype,
                ..SparsePipelineConfig::default()
            };
            let r = SparseReasoner::new(3, 8, cfg, &mut rng);
            let mut ok = 0;
            let n = 30;
            for _ in 0..n {
                let t = generate(&TaskParams::default(), &mut rng);
                if r.solve(&t, &mut rng) == t.answer {
                    ok += 1;
                }
            }
            ok as f64 / n as f64
        };
        let fp32 = solve_acc(DType::Fp32, 9);
        let int4 = solve_acc(DType::Int4, 9);
        assert!(
            (fp32 - int4).abs() <= 0.1,
            "sparse codes should be INT4-robust: fp32 {fp32} vs int4 {int4}"
        );
    }

    #[test]
    fn unfactorizable_observation_returns_none() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SparsePipelineConfig::default();
        let r = SparseReasoner::new(2, 4, cfg, &mut rng);
        // A dense code whose argmax pattern matches no codeword product:
        // overwrite with a random sparse pattern and check totality.
        let alien = SparseBlockCode::random(4, 64, &mut rng);
        // Either factorizable by coincidence or None — must not panic.
        let _ = r.decode(&alien.to_dense());
    }
}
