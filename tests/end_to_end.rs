//! Cross-crate integration tests: the full compile → deploy → run pipeline
//! for every paper workload, plus the headline comparative claims at
//! test-friendly scale (the bench binaries regenerate the full figures).

use nsflow::core::NsFlow;
use nsflow::fpga::design::DesignConfig;
use nsflow::fpga::FpgaDevice;
use nsflow::sim::devices::{Device, DeviceModel, DpuLike, TpuLikeArray};
use nsflow::workloads::traces;

#[test]
fn every_workload_compiles_and_runs() {
    for workload in traces::all() {
        let design = NsFlow::new()
            .compile(workload.trace.clone())
            .unwrap_or_else(|e| panic!("{} failed to compile: {e}", workload.name));
        let report = design.deploy().run();
        assert!(report.cycles > 0, "{} produced no cycles", workload.name);
        assert!(
            report.seconds < 1.0,
            "{} unreasonably slow: {}s",
            workload.name,
            report.seconds
        );
        // The design always fits the U250 with margin.
        assert!(design.utilization.dsp_pct <= 100.0);
        assert!(design.utilization.bram_pct <= 100.0);
    }
}

#[test]
fn emitted_config_round_trips_for_every_workload() {
    for workload in traces::all() {
        let design = NsFlow::new().compile(workload.trace).unwrap();
        let parsed = DesignConfig::parse(&design.config_text()).unwrap();
        assert_eq!(parsed, design.config, "{} config drifted", workload.name);
    }
}

#[test]
fn host_schedule_covers_all_ops_for_every_workload() {
    for workload in traces::all() {
        let design = NsFlow::new().compile(workload.trace).unwrap();
        let schedule = design.host_schedule();
        let launches = schedule.lines().filter(|l| l.starts_with("launch")).count();
        assert_eq!(
            launches,
            design.graph.trace().ops().len(),
            "{} schedule incomplete",
            workload.name
        );
    }
}

#[test]
fn nsflow_beats_the_tpu_like_array_on_nvsa() {
    let workload = traces::nvsa();
    let design = NsFlow::new().compile(workload.trace.clone()).unwrap();
    let nsflow_s = design.deploy().run().seconds;
    let tpu_s = TpuLikeArray::new_128x128()
        .run(&workload.trace)
        .total_seconds();
    let speedup = tpu_s / nsflow_s;
    assert!(
        speedup > 2.0,
        "NSFlow vs TPU-like speedup only {speedup:.2}×"
    );
}

#[test]
fn nsflow_beats_the_dpu_on_symbolic_heavy_workloads() {
    for workload in [traces::nvsa(), traces::lvrf()] {
        let design = NsFlow::new().compile(workload.trace.clone()).unwrap();
        let nsflow_s = design.deploy().run().seconds;
        let dpu_s = DpuLike::new_b4096().run(&workload.trace).total_seconds();
        assert!(
            dpu_s / nsflow_s > 1.5,
            "{}: DPU {}s vs NSFlow {}s",
            workload.name,
            dpu_s,
            nsflow_s
        );
    }
}

#[test]
fn symbolic_dominates_gpu_runtime_but_not_flops_for_nvsa() {
    let workload = traces::nvsa();
    let flop_share = workload.trace.symbolic_flop_fraction();
    assert!(
        flop_share < 0.35,
        "symbolic FLOPs should be a minority: {flop_share}"
    );
    let gpu = Device::rtx_2080_ti().run(&workload.trace);
    assert!(
        gpu.symbolic_fraction() > 0.5,
        "GPU symbolic runtime share only {:.2}",
        gpu.symbolic_fraction()
    );
}

#[test]
fn edge_devices_are_slower_than_the_gpu_on_every_workload() {
    for workload in traces::all() {
        let gpu = Device::rtx_2080_ti().run(&workload.trace).total_seconds();
        let tx2 = Device::jetson_tx2().run(&workload.trace).total_seconds();
        let nx = Device::xavier_nx().run(&workload.trace).total_seconds();
        assert!(tx2 > gpu, "{}: TX2 not slower than GPU", workload.name);
        assert!(nx > gpu, "{}: NX not slower than GPU", workload.name);
    }
}

#[test]
fn symbolic_scaling_is_sublinear_on_nsflow() {
    let base = NsFlow::new()
        .compile(traces::nvsa_scaled_symbolic(1))
        .unwrap()
        .deploy()
        .run()
        .cycles;
    let scaled = NsFlow::new()
        .compile(traces::nvsa_scaled_symbolic(50))
        .unwrap()
        .deploy()
        .run()
        .cycles;
    let growth = scaled as f64 / base as f64;
    assert!(
        growth < 5.0,
        "50× symbolic growth should cost ≪50× runtime, got {growth:.1}×"
    );
}

#[test]
fn ablation_ratio_sweep_is_monotone_in_symbolic_work() {
    let mut last_cycles = 0u64;
    for ratio in [0.05, 0.4, 0.8] {
        let (trace, achieved) = traces::nvsa_like_with_symbolic_ratio(ratio);
        assert!((achieved - ratio).abs() < 0.1);
        let design = NsFlow::new().compile(trace).unwrap();
        let cycles = design.deploy().run().cycles;
        assert!(
            cycles >= last_cycles,
            "more symbolic work cannot reduce total cycles"
        );
        last_cycles = cycles;
    }
}

#[test]
fn zcu104_hosts_a_smaller_feasible_design_for_small_workloads() {
    let workload = traces::prae();
    match NsFlow::new()
        .with_device(FpgaDevice::zcu104())
        .compile(workload.trace)
    {
        Ok(design) => {
            assert!(design.array().total_pes() < 8192);
            assert!(design.utilization.dsp_pct <= 100.0);
        }
        Err(e) => panic!("PrAE should fit the ZCU104: {e}"),
    }
}
