//! Frontend integration tests: trace parsing → dataflow-graph generation
//! → memory planning, across the crates' boundaries.

use nsflow::graph::DataflowGraph;
use nsflow::tensor::DType;
use nsflow::trace::parser::{parse_trace, ModuleRegistry, ParsePrecision, LISTING1_NVSA};
use nsflow::trace::{Domain, OpKind, TraceBuilder};
use nsflow::workloads::traces;

fn registry() -> ModuleRegistry {
    let mut r = ModuleRegistry::new();
    r.insert("conv2", 64 * 9);
    r
}

#[test]
fn listing1_flows_through_graph_generation() {
    let trace = parse_trace(
        LISTING1_NVSA,
        "nvsa",
        &registry(),
        ParsePrecision::default(),
        8,
    )
    .unwrap();
    let graph = DataflowGraph::from_trace(trace);
    assert!(!graph.critical_path().is_empty());
    // Every op lands in exactly one parallel group.
    let mut seen = std::collections::HashSet::new();
    for g in graph.groups() {
        assert!(seen.insert(g.anchor));
        for id in &g.attached {
            assert!(seen.insert(*id));
        }
    }
    assert_eq!(seen.len(), graph.trace().ops().len());
}

#[test]
fn listing1_memory_plan_is_consistent() {
    let trace = parse_trace(
        LISTING1_NVSA,
        "nvsa",
        &registry(),
        ParsePrecision::default(),
        8,
    )
    .unwrap();
    let graph = DataflowGraph::from_trace(trace);
    let req = graph.memory_requirements();
    assert!(req.max_nn_filter_bytes > 0);
    assert!(req.max_vsa_node_bytes > 0);
    assert_eq!(
        req.cache_bytes(),
        2 * (req.merged_mem_a_bytes() + req.max_nn_input_bytes + req.max_output_bytes)
    );
}

#[test]
fn critical_path_is_really_the_longest_weighted_path() {
    // Exhaustively enumerate all paths of a small diamond DAG and compare.
    let mut b = TraceBuilder::new("diamond");
    let s = b.push(
        "s",
        OpKind::Gemm {
            m: 10,
            n: 10,
            k: 10,
        },
        Domain::Neural,
        DType::Int8,
        &[],
    );
    let heavy = b.push(
        "heavy",
        OpKind::Gemm {
            m: 100,
            n: 100,
            k: 100,
        },
        Domain::Neural,
        DType::Int8,
        &[s],
    );
    let light = b.push(
        "light",
        OpKind::VsaConv { n_vec: 1, dim: 16 },
        Domain::Symbolic,
        DType::Int4,
        &[s],
    );
    let _t = b.push(
        "t",
        OpKind::Similarity { n_vec: 2, dim: 64 },
        Domain::Symbolic,
        DType::Int4,
        &[heavy, light],
    );
    let graph = DataflowGraph::from_trace(b.finish(1).unwrap());

    // All source→sink paths: s→heavy→t and s→light→t.
    let weight = |name: &str| {
        graph
            .trace()
            .ops()
            .iter()
            .find(|o| o.name() == name)
            .unwrap()
            .kind()
            .macs()
    };
    let heavy_path = weight("s") + weight("heavy") + weight("t");
    let light_path = weight("s") + weight("light") + weight("t");
    assert!(heavy_path > light_path);
    assert_eq!(graph.critical_path_macs(), heavy_path);
}

#[test]
fn workload_traces_have_consistent_domain_tagging() {
    for workload in traces::all() {
        for op in workload.trace.ops() {
            match op.kind() {
                OpKind::Gemm { .. } => assert_eq!(
                    op.domain(),
                    Domain::Neural,
                    "{}: GEMM op {} mis-tagged",
                    workload.name,
                    op.name()
                ),
                OpKind::VsaConv { .. } => assert_eq!(
                    op.domain(),
                    Domain::Symbolic,
                    "{}: VSA op {} mis-tagged",
                    workload.name,
                    op.name()
                ),
                _ => {}
            }
        }
    }
}

#[test]
fn workload_traces_are_schedulable_in_topological_order() {
    for workload in traces::all() {
        let mut done = std::collections::HashSet::new();
        for op in workload.trace.ops() {
            for dep in op.inputs() {
                assert!(
                    done.contains(dep),
                    "{}: op {} depends on later op",
                    workload.name,
                    op.name()
                );
            }
            done.insert(op.id());
        }
    }
}

#[test]
fn parser_and_builder_produce_equivalent_structures() {
    // Build the same tiny workload both ways and compare the derived
    // dataflow structure (op classes and dependency depths).
    let text = "\
%conv_1[1,8,16,16] : call_module[conv1](args = (%input[1,3,16,16]))
%relu_1[1,8,16,16] : call_module[relu](args = (%conv_1[1,8,16,16]))
%bind_1[1,4,64] : call_function[nvsa.binding_circular](args = (%relu_1[1,8,16,16], %key[1,4,64]))
";
    let mut registry = ModuleRegistry::new();
    registry.insert("conv1", 27);
    let parsed = parse_trace(text, "tiny", &registry, ParsePrecision::default(), 1).unwrap();

    let mut b = TraceBuilder::new("tiny");
    let c = b.push(
        "conv_1",
        OpKind::Gemm {
            m: 256,
            n: 8,
            k: 27,
        },
        Domain::Neural,
        DType::Int8,
        &[],
    );
    let r = b.push(
        "relu_1",
        OpKind::Elementwise {
            elems: 2048,
            func: nsflow::trace::EltFunc::Relu,
        },
        Domain::Neural,
        DType::Int8,
        &[c],
    );
    let _v = b.push(
        "bind_1",
        OpKind::VsaConv { n_vec: 4, dim: 64 },
        Domain::Symbolic,
        DType::Int4,
        &[r],
    );
    let built = b.finish(1).unwrap();

    assert_eq!(parsed.ops().len(), built.ops().len());
    for (p, q) in parsed.ops().iter().zip(built.ops()) {
        assert_eq!(p.kind(), q.kind(), "op {} differs", p.name());
        assert_eq!(p.domain(), q.domain());
        assert_eq!(p.inputs().len(), q.inputs().len());
    }
}
