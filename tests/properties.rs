//! Property-based tests (proptest) on the core invariants: VSA algebra,
//! microsimulator-vs-analytical-model agreement, DSE feasibility and
//! schedule correctness on randomized workloads.

use nsflow::arch::adarray::microsim;
use nsflow::arch::{analytical, ArrayConfig};
use nsflow::dse::{explore, DseOptions};
use nsflow::graph::DataflowGraph;
use nsflow::nn::gemm;
use nsflow::sim::schedule::{self, SimOptions};
use nsflow::tensor::quant::QuantParams;
use nsflow::tensor::DType;
use nsflow::trace::{Domain, OpKind, TraceBuilder};
use nsflow::vsa::ops;
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    (-100i32..=100).prop_map(|v| v as f32 / 25.0)
}

fn vec_pair(len: std::ops::RangeInclusive<usize>) -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    len.prop_flat_map(|n| {
        (
            proptest::collection::vec(small_f32(), n),
            proptest::collection::vec(small_f32(), n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ── VSA algebra ─────────────────────────────────────────────────────

    #[test]
    fn circular_convolution_commutes((a, b) in vec_pair(1..=24)) {
        let ab = ops::circular_convolve(&a, &b);
        let ba = ops::circular_convolve(&b, &a);
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn circular_convolution_associates((a, b) in vec_pair(1..=12), c_seed in 0u64..1000) {
        let n = a.len();
        let c: Vec<f32> = (0..n).map(|i| (((c_seed as usize + i * 7) % 13) as f32 - 6.0) / 6.0).collect();
        let left = ops::circular_convolve(&ops::circular_convolve(&a, &b), &c);
        let right = ops::circular_convolve(&a, &ops::circular_convolve(&b, &c));
        for (x, y) in left.iter().zip(&right) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn correlation_inverts_convolution_via_involution((a, b) in vec_pair(1..=24)) {
        // corr(x, b) == conv(x, involution(b)) for all x — the identity
        // that lets the AdArray reuse its streaming path for unbinding.
        let corr = ops::circular_correlate(&a, &b);
        let conv = ops::circular_convolve(&a, &ops::involution(&b));
        for (x, y) in corr.iter().zip(&conv) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn convolution_distributes_over_bundling((a, b) in vec_pair(1..=16), shift in 0usize..16) {
        let n = a.len();
        let c: Vec<f32> = (0..n).map(|i| b[(i + shift) % n]).collect();
        // a ⊛ (b + c) == a ⊛ b + a ⊛ c
        let sum: Vec<f32> = b.iter().zip(&c).map(|(x, y)| x + y).collect();
        let lhs = ops::circular_convolve(&a, &sum);
        let ab = ops::circular_convolve(&a, &b);
        let ac = ops::circular_convolve(&a, &c);
        for ((l, x), y) in lhs.iter().zip(&ab).zip(&ac) {
            prop_assert!((l - (x + y)).abs() < 1e-2);
        }
    }

    // ── Microsim ≡ analytical model ≡ functional kernels ────────────────

    #[test]
    fn circular_conv_microsim_matches_kernel_and_timing(
        (a, b) in vec_pair(1..=20),
        extra_height in 0usize..12,
    ) {
        let d = a.len();
        let h = d + extra_height;
        let sim = microsim::circular_conv_column(h, &a, &b).unwrap();
        let reference = ops::circular_convolve(&a, &b);
        for (s, r) in sim.outputs.iter().zip(&reference) {
            prop_assert!((s - r).abs() < 1e-2);
        }
        prop_assert_eq!(sim.cycles, (3 * h + d - 1) as u64);
    }

    #[test]
    fn gemm_microsim_matches_kernel_and_eq1(
        m in 1usize..8, k in 1usize..20, n in 1usize..20,
        h in 4usize..12, w in 4usize..12, n_l in 1usize..4,
    ) {
        let a: Vec<f32> = (0..m * k).map(|i| ((i % 11) as f32 - 5.0) / 5.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i % 7) as f32 - 3.0) / 3.0).collect();
        let sim = microsim::nn_layer(h, w, n_l, &a, &b, m, k, n).unwrap();
        let reference = gemm::matmul(&a, &b, m, k, n);
        for (s, r) in sim.outputs.iter().zip(&reference) {
            prop_assert!((s - r).abs() < 1e-2);
        }
        let cfg = ArrayConfig::new(h, w, n_l).unwrap();
        prop_assert_eq!(sim.cycles, analytical::nn_layer_cycles(&cfg, n_l, m, n, k));
    }

    // ── Quantization ────────────────────────────────────────────────────

    #[test]
    fn fake_quantization_error_is_bounded(values in proptest::collection::vec(small_f32(), 1..64)) {
        for dtype in [DType::Int8, DType::Int4] {
            let q = QuantParams::fit(&values, dtype).unwrap();
            for &v in &values {
                let err = (q.fake_quantize(v) - v).abs();
                prop_assert!(err <= q.max_rounding_error() + 1e-6);
            }
        }
    }

    // ── FFT path ≡ direct kernels ───────────────────────────────────────

    #[test]
    fn fft_convolution_matches_direct(
        exp in 3u32..9,
        seed in 0u64..500,
    ) {
        let n = 1usize << exp;
        let a: Vec<f32> = (0..n).map(|i| ((seed as usize + i * 13) % 17) as f32 / 8.5 - 1.0).collect();
        let b: Vec<f32> = (0..n).map(|i| ((seed as usize + i * 7) % 19) as f32 / 9.5 - 1.0).collect();
        let fast = nsflow::vsa::fft::circular_convolve_fast(&a, &b);
        let direct = ops::circular_convolve(&a, &b);
        for (f, d) in fast.iter().zip(&direct) {
            prop_assert!((f - d).abs() < 1e-2, "{f} vs {d}");
        }
    }

    // ── Sparse block codes ≡ dense one-hot circular convolution ─────────

    #[test]
    fn sparse_binding_equals_dense_convolution(
        idx_a in proptest::collection::vec(0usize..16, 1..5),
        shift in 0usize..16,
    ) {
        use nsflow::vsa::sparse::{dense_equivalence_check, SparseBlockCode};
        let idx_b: Vec<usize> = idx_a.iter().map(|&i| (i + shift) % 16).collect();
        let a = SparseBlockCode::new(idx_a, 16).unwrap();
        let b = SparseBlockCode::new(idx_b, 16).unwrap();
        prop_assert!(dense_equivalence_check(&a, &b).unwrap());
        // Exact inversion, always.
        prop_assert_eq!(a.bind(&b).unwrap().unbind(&b).unwrap(), a);
    }

    // ── Trace emitter round trip ────────────────────────────────────────

    #[test]
    fn emitted_traces_reparse_to_the_same_structure(
        nn_layers in 1usize..4,
        vsa_nodes in 0usize..4,
        m in 1usize..512,
        loops in 1usize..5,
    ) {
        use nsflow::trace::emitter::{emit_trace, structural_signature};
        use nsflow::trace::parser::{parse_trace, ParsePrecision};
        let mut b = TraceBuilder::new("rt");
        let mut prev = None;
        for i in 0..nn_layers {
            let inputs: Vec<_> = prev.into_iter().collect();
            prev = Some(b.push(
                format!("conv{i}"),
                OpKind::Gemm { m, n: 16, k: 32 },
                Domain::Neural,
                DType::Int8,
                &inputs,
            ));
        }
        for j in 0..vsa_nodes {
            let inputs: Vec<_> = prev.into_iter().collect();
            prev = Some(b.push(
                format!("bind{j}"),
                OpKind::VsaConv { n_vec: 4, dim: 64 },
                Domain::Symbolic,
                DType::Int4,
                &inputs,
            ));
        }
        let original = b.finish(loops).unwrap();
        let (text, registry) = emit_trace(&original);
        let reparsed = parse_trace(&text, "rt", &registry, Default::default(), loops).unwrap();
        prop_assert_eq!(structural_signature(&reparsed), structural_signature(&original));
        let _ = ParsePrecision::default();
    }

    // ── DSE + scheduling on randomized workloads ────────────────────────

    #[test]
    fn dse_and_schedule_invariants_hold(
        nn_layers in 1usize..4,
        vsa_nodes in 1usize..5,
        m in 16usize..512,
        dim_exp in 5u32..10,
        loops in 1usize..6,
    ) {
        let mut b = TraceBuilder::new("random");
        let mut prev = None;
        for i in 0..nn_layers {
            let inputs: Vec<_> = prev.into_iter().collect();
            prev = Some(b.push(
                format!("conv{i}"),
                OpKind::Gemm { m, n: 32 << (i % 3), k: 64 },
                Domain::Neural,
                DType::Int8,
                &inputs,
            ));
        }
        for j in 0..vsa_nodes {
            let inputs: Vec<_> = prev.into_iter().collect();
            prev = Some(b.push(
                format!("bind{j}"),
                OpKind::VsaConv { n_vec: 4, dim: 1 << dim_exp },
                Domain::Symbolic,
                DType::Int4,
                &inputs,
            ));
        }
        let graph = DataflowGraph::from_trace(b.finish(loops).unwrap());
        let opts = DseOptions { max_pes: 2048, iter_max: 4, ..DseOptions::default() };
        let result = explore(&graph, &opts);

        // Budget and mapping feasibility.
        prop_assert!(result.config.total_pes() <= opts.max_pes);
        result.mapping.validate(&result.config, nn_layers, vsa_nodes).unwrap();

        // The schedule respects dependencies and resources.
        let sched = schedule::run(
            &graph,
            &result.config,
            &result.mapping,
            &SimOptions { simd_lanes: 64, transfer: None },
        );
        let mut end_of = std::collections::HashMap::new();
        for so in sched.ops() {
            for dep in graph.trace().op(so.op).inputs() {
                let dep_end = end_of.get(&(so.loop_idx, dep.index())).copied().unwrap_or(0);
                prop_assert!(so.start >= dep_end);
            }
            end_of.insert((so.loop_idx, so.op.index()), so.end);
        }
        // The schedule is never faster than the analytical single-loop bound.
        prop_assert!(sched.total_cycles() >= result.timing.t_loop);
    }
}
