//! `nsflow` — command-line front door to the framework.
//!
//! ```text
//! nsflow demo [nvsa|mimonet|lvrf|prae]          compile+run a built-in workload
//! nsflow compile --trace FILE [options]         compile an FX-style trace dump
//! nsflow devices                                list supported FPGA devices
//! ```
//!
//! `compile` options:
//!
//! - `--registry conv1=147,conv2=576`  reduction lengths for GEMM modules
//! - `--loops N`                       loop count (default 1)
//! - `--device u250|zcu104`            target device (default u250)
//! - `--precision mp|int8|fp16|fp32`   precision preset (default mp)
//! - `--out DIR`                       write artifacts (config/schedule/RTL/Gantt/Chrome trace)

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use nsflow::arch::memory::TransferModel;
use nsflow::arch::PrecisionConfig;
use nsflow::core::NsFlow;
use nsflow::fpga::FpgaDevice;
use nsflow::sim::schedule::{run_pooled, SimOptions};
use nsflow::tensor::DType;
use nsflow::trace::parser::{parse_trace, ModuleRegistry, ParsePrecision};
use nsflow::workloads::traces;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("demo") => demo(args.get(1).map_or("nvsa", String::as_str)),
        Some("compile") => compile(parse_compile_args(&args[1..])?),
        Some("devices") => {
            for d in [FpgaDevice::u250(), FpgaDevice::zcu104()] {
                println!(
                    "{:<16} {:>6} DSP  {:>9} LUT  {:>5} BRAM blocks  {:>5} URAM blocks  {:.0} MHz",
                    d.name(),
                    d.dsps,
                    d.luts,
                    d.bram_blocks,
                    d.uram_blocks,
                    d.default_freq_hz / 1e6
                );
            }
            Ok(())
        }
        _ => {
            eprintln!("usage: nsflow <demo [workload] | compile --trace FILE ... | devices>");
            Err("missing or unknown subcommand".into())
        }
    }
}

fn demo(name: &str) -> Result<(), String> {
    let workload = match name {
        "nvsa" => traces::nvsa(),
        "mimonet" => traces::mimonet(),
        "lvrf" => traces::lvrf(),
        "prae" => traces::prae(),
        other => return Err(format!("unknown workload {other} (nvsa|mimonet|lvrf|prae)")),
    };
    let design = NsFlow::new()
        .compile(workload.trace)
        .map_err(|e| e.to_string())?;
    let report = design.deploy().run();
    println!(
        "{}: AdArray {} ({} PEs), SIMD ×{}, DSP {:.0}%  →  {:.3} ms end-to-end",
        workload.name,
        design.array(),
        design.array().total_pes(),
        design.config.simd_lanes,
        design.utilization.dsp_pct,
        report.seconds * 1e3
    );
    Ok(())
}

/// Parsed `compile` invocation.
#[derive(Debug, Clone, PartialEq)]
struct CompileArgs {
    trace_path: PathBuf,
    registry: ModuleRegistry,
    loops: usize,
    device: FpgaDevice,
    precision: PrecisionConfig,
    out_dir: Option<PathBuf>,
}

fn parse_compile_args(args: &[String]) -> Result<CompileArgs, String> {
    let mut trace_path = None;
    let mut registry = ModuleRegistry::new();
    let mut loops = 1usize;
    let mut device = FpgaDevice::u250();
    let mut precision = PrecisionConfig::mixed();
    let mut out_dir = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--trace" => trace_path = Some(PathBuf::from(value()?)),
            "--registry" => {
                for pair in value()?.split(',') {
                    let (target, k) = pair
                        .split_once('=')
                        .ok_or_else(|| format!("bad registry entry {pair} (want name=k)"))?;
                    let k: usize = k.parse().map_err(|_| format!("non-numeric k in {pair}"))?;
                    registry.insert(target.trim(), k);
                }
            }
            "--loops" => {
                loops = value()?
                    .parse()
                    .map_err(|_| "non-numeric --loops".to_string())?;
            }
            "--device" => {
                device = match value()?.as_str() {
                    "u250" => FpgaDevice::u250(),
                    "zcu104" => FpgaDevice::zcu104(),
                    other => return Err(format!("unknown device {other} (u250|zcu104)")),
                };
            }
            "--precision" => {
                precision = match value()?.as_str() {
                    "mp" => PrecisionConfig::mixed(),
                    "int8" => PrecisionConfig::uniform(DType::Int8),
                    "fp16" => PrecisionConfig::uniform(DType::Fp16),
                    "fp32" => PrecisionConfig::uniform(DType::Fp32),
                    other => return Err(format!("unknown precision {other}")),
                };
            }
            "--out" => out_dir = Some(PathBuf::from(value()?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(CompileArgs {
        trace_path: trace_path.ok_or("--trace is required")?,
        registry,
        loops,
        device,
        precision,
        out_dir,
    })
}

fn compile(args: CompileArgs) -> Result<(), String> {
    let text = fs::read_to_string(&args.trace_path)
        .map_err(|e| format!("read {}: {e}", args.trace_path.display()))?;
    let name = args
        .trace_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "workload".into());
    let trace = parse_trace(
        &text,
        &name,
        &args.registry,
        ParsePrecision {
            neural: args.precision.neural,
            symbolic: args.precision.symbolic,
        },
        args.loops,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "parsed {name}: {} ops ({} NN, {} VSA, {} SIMD), {} loops",
        trace.ops().len(),
        trace.nn_nodes().len(),
        trace.vsa_nodes().len(),
        trace.simd_nodes().len(),
        trace.loop_count()
    );

    let design = NsFlow::new()
        .with_device(args.device)
        .with_precision(args.precision)
        .compile(trace)
        .map_err(|e| e.to_string())?;
    let report = design.deploy().run();
    println!(
        "design: AdArray {} ({} PEs), SIMD ×{}, DSP {:.0}% LUT {:.0}% BRAM {:.0}%",
        design.array(),
        design.array().total_pes(),
        design.config.simd_lanes,
        design.utilization.dsp_pct,
        design.utilization.lut_pct,
        design.utilization.bram_pct
    );
    println!(
        "runtime: {} cycles = {:.3} ms @ {:.0} MHz",
        report.cycles,
        report.seconds * 1e3,
        design.config.freq_hz / 1e6
    );

    if let Some(dir) = args.out_dir {
        fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let schedule = run_pooled(
            &design.graph,
            design.array(),
            design.mapping(),
            &SimOptions {
                simd_lanes: design.config.simd_lanes,
                transfer: Some(TransferModel::default()),
            },
        );
        let writes = [
            ("design.cfg", design.config_text()),
            ("host_schedule.txt", design.host_schedule()),
            ("nsflow_top.sv", design.rtl_text()),
            ("timeline.gantt.txt", schedule.to_gantt_text(&design.graph)),
            (
                // Open in Perfetto / chrome://tracing.
                "timeline.trace.json",
                schedule.to_chrome_trace(&design.graph).render_pretty(),
            ),
        ];
        for (file, contents) in writes {
            fs::write(dir.join(file), contents).map_err(|e| format!("write {file}: {e}"))?;
            println!("wrote {}", dir.join(file).display());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn compile_args_parse_fully() {
        let a = parse_compile_args(&s(&[
            "--trace",
            "t.txt",
            "--registry",
            "conv1=147,conv2=576",
            "--loops",
            "8",
            "--device",
            "zcu104",
            "--precision",
            "int8",
            "--out",
            "outdir",
        ]))
        .unwrap();
        assert_eq!(a.trace_path, PathBuf::from("t.txt"));
        assert_eq!(a.registry.k_for("conv1"), Some(147));
        assert_eq!(a.registry.k_for("conv2"), Some(576));
        assert_eq!(a.loops, 8);
        assert_eq!(a.device.name(), "AMD ZCU104");
        assert_eq!(a.precision, PrecisionConfig::uniform(DType::Int8));
        assert_eq!(a.out_dir, Some(PathBuf::from("outdir")));
    }

    #[test]
    fn compile_args_require_trace() {
        assert!(parse_compile_args(&s(&["--loops", "2"]))
            .unwrap_err()
            .contains("--trace"));
    }

    #[test]
    fn compile_args_reject_unknown() {
        assert!(parse_compile_args(&s(&["--zap"])).is_err());
        assert!(parse_compile_args(&s(&["--trace", "t", "--device", "vu9p"])).is_err());
        assert!(parse_compile_args(&s(&["--trace", "t", "--registry", "noequals"])).is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }
}
